//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: [`Mutex`] with
//! infallible `lock()` (a poisoned std mutex aborts the test run, which
//! matches parking_lot's no-poisoning semantics closely enough for our
//! worker pools) and `into_inner()`.

use std::sync::MutexGuard;

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock (never returns a poison error).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
