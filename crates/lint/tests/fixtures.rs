//! Seeded-defect fixtures: one `.tirl` design per lint code, each
//! structurally valid, each tripping exactly its own pass — with the
//! diagnostic anchored to the expected source line.

use tytra_device::stratix_v_gsd8;
use tytra_ir::Severity;
use tytra_lint::{lint, LintReport};

fn lint_fixture(name: &str) -> LintReport {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let m = tytra_ir::parse(&src).expect("fixture must be structurally valid");
    let r = lint(&m, &stratix_v_gsd8());
    assert!(r.cost_evaluated, "{name}: cost model should evaluate valid fixtures");
    r
}

/// `(code, line)` pairs for diagnostics that carry a span, plus bare
/// codes for those that do not.
fn anchored(r: &LintReport) -> Vec<(&'static str, Option<u32>)> {
    r.diagnostics.iter().map(|d| (d.code, d.span.map(|s| s.line))).collect()
}

#[test]
fn clean_fixture_is_silent() {
    let r = lint_fixture("clean.tirl");
    assert!(r.diagnostics.is_empty(), "unexpected diagnostics: {:?}", r.diagnostics);
}

#[test]
fn tl1001_unread_input_port() {
    let r = lint_fixture("tl1001.tirl");
    assert_eq!(anchored(&r), vec![("TL1001", Some(18))], "{:?}", r.diagnostics);
    assert_eq!(r.errors(), 0);
    assert!(r.diagnostics[0].message.contains("`%u`"));
}

#[test]
fn tl1002_dead_value_and_uncalled_function() {
    let r = lint_fixture("tl1002.tirl");
    assert_eq!(
        anchored(&r),
        vec![("TL1002", Some(17)), ("TL1002", Some(21))],
        "{:?}",
        r.diagnostics
    );
    assert!(r.diagnostics.iter().any(|d| d.message.contains("`%dead`")));
    assert!(r.diagnostics.iter().any(|d| d.message.contains("`@g0`")));
}

#[test]
fn tl1003_offset_out_of_range_and_wide_window() {
    let r = lint_fixture("tl1003.tirl");
    assert_eq!(
        anchored(&r),
        vec![("TL1003", Some(21)), ("TL1003", Some(19))],
        "{:?}",
        r.diagnostics
    );
    assert_eq!(r.diagnostics[0].severity, Severity::Error);
    assert_eq!(r.diagnostics[1].severity, Severity::Warn);
    assert!(r.diagnostics[0].message.contains("!+300"));
    assert!(r.diagnostics[1].message.contains("260"));
}

#[test]
fn tl1004_reduction_never_reads_accumulator() {
    let r = lint_fixture("tl1004.tirl");
    assert_eq!(anchored(&r), vec![("TL1004", Some(17))], "{:?}", r.diagnostics);
    assert!(r.diagnostics[0].message.contains("`@acc`"));
    assert_eq!(r.errors(), 0);
}

#[test]
fn tl1005_design_does_not_fit() {
    let r = lint_fixture("tl1005.tirl");
    let codes = r.codes();
    assert!(codes.contains(&"TL1005"), "{:?}", r.diagnostics);
    assert!(codes.iter().all(|c| *c == "TL1005"), "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_none(), "feasibility is a whole-module verdict");
    assert!(d.message.contains("BRAM"));
}

#[test]
fn tl1006_memory_bound_advisory() {
    let r = lint_fixture("tl1006.tirl");
    let codes = r.codes();
    assert!(codes.contains(&"TL1006"), "{:?}", r.diagnostics);
    assert!(codes.iter().all(|c| *c == "TL1006"), "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.hint.as_deref().unwrap_or("").contains("Form B/C"));
}

#[test]
fn tl1007_clamp_bound_outside_type_range() {
    let r = lint_fixture("tl1007.tirl");
    assert_eq!(anchored(&r), vec![("TL1007", Some(16))], "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.severity, Severity::Warn);
    assert!(d.message.contains("`min` bound 300"), "{}", d.message);
    assert!(d.message.contains("[0, 255]"), "{}", d.message);
}

#[test]
fn tl1008_memory_feeds_itself() {
    let r = lint_fixture("tl1008.tirl");
    assert_eq!(anchored(&r), vec![("TL1008", Some(7))], "{:?}", r.diagnostics);
    let d = &r.diagnostics[0];
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("`%mem_a`"), "{}", d.message);
    assert!(d.message.contains("`@f0`"), "{}", d.message);
    assert!(d.message.contains("[+0, +1]"), "{}", d.message);
}

#[test]
fn assets_lint_clean_of_errors() {
    let dir = format!("{}/../../assets", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("assets dir") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("tirl") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let m = tytra_ir::parse(&src).expect("asset parses");
        let r = lint(&m, &stratix_v_gsd8());
        assert!(r.cost_evaluated, "{}: cost model should evaluate", path.display());
        assert_eq!(r.errors(), 0, "{}: {:?}", path.display(), r.diagnostics);
    }
    assert_eq!(seen, 4, "expected the four reference designs");
}
