//! Machine-readable output: a hand-rolled JSON emitter and a minimal
//! parser.
//!
//! The workspace is hermetic (no serde), so both directions are written
//! out longhand. The emitter produces the stable schema consumed by
//! editor integrations and CI:
//!
//! ```json
//! {
//!   "file": "assets/sor_c2.tirl",
//!   "module": "sor_l1_v1_pipe_B",
//!   "target": "Stratix-V-GSD8",
//!   "cost_evaluated": true,
//!   "errors": 0,
//!   "warnings": 1,
//!   "diagnostics": [
//!     { "code": "TL1001", "severity": "warning", "message": "...",
//!       "line": 21, "col": 1, "hint": "..." }
//!   ]
//! }
//! ```
//!
//! `line`/`col` and `hint` are `null` when absent. The parser understands
//! exactly the JSON subset the emitter produces (objects, arrays,
//! strings, numbers, booleans, null) — enough for round-trip tests and
//! for downstream tools written against this workspace.

use crate::LintReport;
use std::fmt::Write as _;

/// Render `report` as a single JSON object (trailing newline included).
pub fn render_json(report: &LintReport, path: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": \"{}\",", escape(path));
    let _ = writeln!(out, "  \"module\": \"{}\",", escape(&report.module));
    let _ = writeln!(out, "  \"target\": \"{}\",", escape(&report.target));
    let _ = writeln!(out, "  \"cost_evaluated\": {},", report.cost_evaluated);
    let _ = writeln!(out, "  \"errors\": {},", report.errors());
    let _ = writeln!(out, "  \"warnings\": {},", report.warnings());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{ \"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", ",
            escape(d.code),
            escape(d.severity.label()),
            escape(&d.message)
        );
        match d.span {
            Some(sp) => {
                let _ = write!(out, "\"line\": {}, \"col\": {}, ", sp.line, sp.col);
            }
            None => out.push_str("\"line\": null, \"col\": null, "),
        }
        match &d.hint {
            Some(h) => {
                let _ = write!(out, "\"hint\": \"{}\" }}", escape(h));
            }
            None => out.push_str("\"hint\": null }"),
        }
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value (the subset the emitter produces).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; the emitter only writes integers).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\n\r".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the emitter writes UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{Diagnostic, Span};

    #[test]
    fn parser_handles_emitter_subset() {
        let v = parse(r#"{ "a": [1, -2.5, "x\n\"y\"", true, false, null], "b": {} }"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\n\"y\""));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1, ]").is_err());
    }

    #[test]
    fn emitted_report_round_trips() {
        let report = LintReport {
            module: "m\"q".into(),
            target: "dev".into(),
            diagnostics: vec![
                Diagnostic::error("TL1003", "offset !+300 on `%b`")
                    .with_span(Span { line: 9, col: 3 })
                    .with_hint("check the linearization"),
                Diagnostic::warn("TL1005", "near capacity"),
            ],
            cost_evaluated: true,
        };
        let text = render_json(&report, "fix.tirl");
        let v = parse(&text).unwrap();
        assert_eq!(v.get("file").unwrap().as_str(), Some("fix.tirl"));
        assert_eq!(v.get("module").unwrap().as_str(), Some("m\"q"));
        assert_eq!(v.get("errors").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("warnings").unwrap().as_f64(), Some(1.0));
        let diags = v.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("TL1003"));
        assert_eq!(diags[0].get("severity").unwrap().as_str(), Some("error"));
        assert_eq!(diags[0].get("line").unwrap().as_f64(), Some(9.0));
        assert_eq!(diags[0].get("hint").unwrap().as_str(), Some("check the linearization"));
        assert_eq!(diags[1].get("line"), Some(&Json::Null));
        assert_eq!(diags[1].get("hint"), Some(&Json::Null));
    }
}
