//! The eight lint passes, `TL1001`–`TL1008`.
//!
//! Passes 1–4 are structural: they read the dataflow facts that
//! `tytra_analyze` derives (per-function effect summaries and solver
//! reachability) over the Manage-IR and each reachable function. Passes
//! 5–6 consume the cost model's
//! [`CostReport`](tytra_cost::CostReport) and stay silent when no
//! estimate is available. Passes 7–8 render the findings of the
//! value-range and stream-deadlock analyses.

use crate::{LintContext, Pass};
use std::collections::{BTreeSet, HashMap, HashSet};
use tytra_analyze::{analyze_deadlock, analyze_ranges, reachable, summaries};
use tytra_cost::Limiter;
use tytra_ir::{Dest, DiagSink, Diagnostic, Operand, ParKind, PortDir, Stmt};

/// Function names reachable from `main`, via the analysis crate's
/// call-graph fixpoint (identical to the preorder walk in
/// `IrModule::reachable_functions`, by the solver's own tests).
fn reachable_set(m: &tytra_ir::IrModule) -> BTreeSet<String> {
    reachable(m).0
}

/// TL1001 — liveness of the streaming interface: every input port must be
/// read, every output port written, every stream object consumed by a
/// port, and every memory object reached by a stream. A dataflow design
/// whose interface has slack transports (and buffers) data for nothing.
pub struct Liveness;

impl Pass for Liveness {
    fn code(&self) -> &'static str {
        "TL1001"
    }

    fn name(&self) -> &'static str {
        "liveness"
    }

    fn summary(&self) -> &'static str {
        "unread input ports, unwritten output ports, unconsumed streams and memories"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let m = cx.module;
        let reachable = reachable_set(m);
        let sums = summaries(m);
        for f in &m.functions {
            if f.name == "main" || !reachable.contains(&f.name) {
                continue;
            }
            let summary = &sums[&f.name];
            for p in &f.params {
                match p.dir {
                    PortDir::In => {
                        if !summary.consumes(&p.name) {
                            sink.emit(
                                Diagnostic::warn(
                                    "TL1001",
                                    format!(
                                        "input port `%{}` of `@{}` is never read",
                                        p.name, f.name
                                    ),
                                )
                                .with_loc(f.span)
                                .with_hint(
                                    "remove the parameter or consume the stream in the body",
                                ),
                            );
                        }
                    }
                    PortDir::Out => {
                        if !summary.writes_port(&p.name) {
                            sink.emit(
                                Diagnostic::warn(
                                    "TL1001",
                                    format!(
                                        "output port `%{}` of `@{}` is never written",
                                        p.name, f.name
                                    ),
                                )
                                .with_loc(f.span)
                                .with_hint(format!(
                                    "drive the port, e.g. `ty %{}__out = or ty %value, 0`",
                                    p.name
                                )),
                            );
                        }
                    }
                }
            }
        }
        for s in &m.streams {
            if !m.ports.iter().any(|p| p.stream == s.name) {
                sink.emit(
                    Diagnostic::warn(
                        "TL1001",
                        format!("stream `%{}` is not consumed by any port", s.name),
                    )
                    .with_loc(s.span)
                    .with_hint("bind it with an istream/ostream port declaration or remove it"),
                );
            }
        }
        for mem in &m.mems {
            if !m.streams.iter().any(|s| s.mem == mem.name) {
                sink.emit(
                    Diagnostic::warn(
                        "TL1001",
                        format!("memory object `%{}` is never streamed", mem.name),
                    )
                    .with_loc(mem.span)
                    .with_hint("attach a streamobj or remove the memory object"),
                );
            }
        }
        // Ports that no call ever passes into the kernel: bound but idle.
        // Only meaningful under the explicit-argument call convention; a
        // module whose calls are all zero-arg (lane replication, as in
        // `call @f0() pipe` repeated under a `par` wrapper) binds ports to
        // lanes implicitly, so every port is in use by construction.
        let explicit_args = m.functions.iter().flat_map(|f| f.calls()).any(|c| !c.args.is_empty());
        if !explicit_args {
            return;
        }
        for p in &m.ports {
            let short = p.name.rsplit('.').next().unwrap_or(&p.name);
            let passed = m.functions.iter().flat_map(|f| f.calls()).any(|c| {
                c.args.iter().any(|a| a.name() == Some(short) || a.name() == Some(&p.name))
            });
            if !passed {
                sink.emit(
                    Diagnostic::warn(
                        "TL1001",
                        format!("port `@{}` is never passed to a kernel function", p.name),
                    )
                    .with_loc(p.span)
                    .with_hint("pass it as a call argument in `@main` or remove the port"),
                );
            }
        }
    }
}

/// TL1002 — dead code: SSA values and offset streams computed but never
/// consumed, and functions unreachable from `main`. Dead values still
/// cost ALUTs and pipeline registers in the datapath estimate.
pub struct DeadCode;

impl Pass for DeadCode {
    fn code(&self) -> &'static str {
        "TL1002"
    }

    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn summary(&self) -> &'static str {
        "values computed but never used; functions unreachable from `main`"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let m = cx.module;
        let reachable = reachable_set(m);
        let sums = summaries(m);
        for f in &m.functions {
            if !reachable.contains(&f.name) {
                sink.emit(
                    Diagnostic::warn(
                        "TL1002",
                        format!("function `@{}` is never called from `@main`", f.name),
                    )
                    .with_loc(f.span)
                    .with_hint("dispatch it from `@main` (directly or transitively) or remove it"),
                );
                continue;
            }
            if !matches!(f.kind, ParKind::Pipe | ParKind::Comb) {
                continue;
            }
            let summary = &sums[&f.name];
            for s in &f.body {
                match s {
                    Stmt::Instr(i) => {
                        if let Dest::Local(n) = &i.dest {
                            if !summary.consumes(n) && !n.ends_with("__out") {
                                sink.emit(
                                    Diagnostic::warn(
                                        "TL1002",
                                        format!(
                                            "value `%{}` in `@{}` is computed but never used",
                                            n, f.name
                                        ),
                                    )
                                    .with_loc(i.span)
                                    .with_hint(
                                        "the functional unit still costs ALUTs and registers; \
                                         remove the instruction or consume the value",
                                    ),
                                );
                            }
                        }
                    }
                    Stmt::Offset(o) => {
                        if !summary.consumes(&o.dest) {
                            sink.emit(
                                Diagnostic::warn(
                                    "TL1002",
                                    format!(
                                        "offset stream `%{}` in `@{}` is never consumed",
                                        o.dest, f.name
                                    ),
                                )
                                .with_loc(o.span)
                                .with_hint(
                                    "the offset still allocates smart-buffer BRAM; remove it \
                                     or use the stream",
                                ),
                            );
                        }
                    }
                    Stmt::Call(_) => {}
                }
            }
        }
    }
}

/// TL1003 — stencil offsets versus the NDRange extent. An offset whose
/// magnitude reaches the flattened global size can never be satisfied by
/// a smart buffer; a window as wide as the whole index space means the
/// "buffer" is the entire grid.
pub struct OffsetBounds;

impl Pass for OffsetBounds {
    fn code(&self) -> &'static str {
        "TL1003"
    }

    fn name(&self) -> &'static str {
        "offset-bounds"
    }

    fn summary(&self) -> &'static str {
        "stencil offsets at or beyond the NDRange extent"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let m = cx.module;
        let ngs = m.meta.global_size();
        let reachable = reachable_set(m);
        for f in &m.functions {
            if !reachable.contains(f.name.as_str()) {
                continue;
            }
            let mut errored: HashSet<&str> = HashSet::new();
            for o in f.offsets() {
                if o.offset.unsigned_abs() >= ngs {
                    errored.insert(o.src.as_str());
                    sink.emit(
                        Diagnostic::error(
                            "TL1003",
                            format!(
                                "offset !{:+} on `%{}` reaches outside the NDRange (NGS = {})",
                                o.offset, o.src, ngs
                            ),
                        )
                        .with_loc(o.span)
                        .with_hint(
                            "offsets index the flattened NDRange; check the linearization \
                             against !ndrange",
                        ),
                    );
                }
            }
            for src in f.offset_sources() {
                if errored.contains(src) {
                    continue;
                }
                let window = f.offset_window(src);
                if window > ngs {
                    let span = f.offsets().find(|o| o.src == src).map(|o| o.span).unwrap_or(f.span);
                    sink.emit(
                        Diagnostic::warn(
                            "TL1003",
                            format!(
                                "offset window on `%{}` spans {} elements, wider than the \
                                 NDRange (NGS = {})",
                                src, window, ngs
                            ),
                        )
                        .with_loc(span)
                        .with_hint(
                            "the smart buffer would hold the entire index space; shrink the \
                             stencil reach or enlarge the NDRange",
                        ),
                    );
                }
            }
        }
    }
}

/// TL1004 — reduction accumulator initialization. A reduction that never
/// reads its own accumulator overwrites it on every work-item, so the
/// "reduction" degenerates to the last item's value; an accumulator
/// combined under several different operators has an order-dependent
/// result.
pub struct ReductionInit;

impl Pass for ReductionInit {
    fn code(&self) -> &'static str {
        "TL1004"
    }

    fn name(&self) -> &'static str {
        "reduction-init"
    }

    fn summary(&self) -> &'static str {
        "reductions that never read (accumulate into) their accumulator"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let m = cx.module;
        let reachable = reachable_set(m);
        let mut ops_by_acc: HashMap<&str, Vec<tytra_ir::Opcode>> = HashMap::new();
        for f in &m.functions {
            if !reachable.contains(f.name.as_str()) {
                continue;
            }
            for i in f.instrs() {
                let Dest::Global(acc) = &i.dest else { continue };
                ops_by_acc.entry(acc.as_str()).or_default().push(i.op);
                let reads_self =
                    i.operands.iter().any(|o| matches!(o, Operand::Global(g) if g == acc));
                if !reads_self {
                    sink.emit(
                        Diagnostic::warn(
                            "TL1004",
                            format!(
                                "reduction into `@{}` never reads `@{}`: every work-item \
                                 overwrites the accumulator",
                                acc, acc
                            ),
                        )
                        .with_loc(i.span)
                        .with_hint(format!(
                            "accumulate by including the register among the operands, e.g. \
                             `ty @{acc} = {} ty %x, @{acc}`",
                            i.op.mnemonic()
                        )),
                    );
                }
            }
        }
        for (acc, ops) in ops_by_acc {
            let mut distinct: Vec<tytra_ir::Opcode> = Vec::new();
            for op in ops {
                if !distinct.contains(&op) {
                    distinct.push(op);
                }
            }
            if distinct.len() > 1 {
                let names: Vec<&str> = distinct.iter().map(|o| o.mnemonic()).collect();
                sink.emit(
                    Diagnostic::warn(
                        "TL1004",
                        format!(
                            "accumulator `@{}` is combined under several operators ({}): the \
                             result is order-dependent",
                            acc,
                            names.join(", ")
                        ),
                    )
                    .with_hint("use a single associative operator per accumulator"),
                );
            }
        }
    }
}

/// TL1005 — device feasibility. Judges the cost model's resource estimate
/// against the target's capacity: an error when the design does not fit,
/// a warning when any axis is within 10% of full.
pub struct Feasibility;

impl Pass for Feasibility {
    fn code(&self) -> &'static str {
        "TL1005"
    }

    fn name(&self) -> &'static str {
        "feasibility"
    }

    fn summary(&self) -> &'static str {
        "cost-model resource estimate versus the target device's capacity"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let Some(r) = cx.report else { return };
        let u = &r.utilization;
        let axes =
            [("ALUT", u.aluts), ("register", u.regs), ("BRAM", u.bram_bits), ("DSP", u.dsps)];
        if !r.fits {
            let over: Vec<String> = axes
                .iter()
                .filter(|(_, v)| *v > 1.0)
                .map(|(n, v)| format!("{} {:.0}%", n, v * 100.0))
                .collect();
            sink.emit(
                Diagnostic::error(
                    "TL1005",
                    format!("design does not fit `{}`: {}", r.target, over.join(", ")),
                )
                .with_hint(
                    "reduce kernel lanes or vectorization, shrink local buffers, or target a \
                     larger device",
                ),
            );
            return;
        }
        if let Some((name, v)) =
            axes.iter().filter(|(_, v)| *v > 0.9).max_by(|a, b| a.1.total_cmp(&b.1))
        {
            sink.emit(
                Diagnostic::warn(
                    "TL1005",
                    format!(
                        "design uses {:.0}% of the {} capacity of `{}`",
                        v * 100.0,
                        name,
                        r.target
                    ),
                )
                .with_hint(
                    "under 10% headroom: placement and routing at this utilization usually \
                     degrades the achievable clock",
                ),
            );
        }
    }
}

/// TL1006 — throughput-wall advisory. When the cost model says the design
/// is memory-bound (host or device-DRAM bandwidth wall), the compute
/// pipeline starves and extra lanes buy nothing; the fix is a
/// memory-execution form that stages data closer to the datapath.
pub struct ThroughputWall;

impl Pass for ThroughputWall {
    fn code(&self) -> &'static str {
        "TL1006"
    }

    fn name(&self) -> &'static str {
        "throughput-wall"
    }

    fn summary(&self) -> &'static str {
        "memory-bound designs that would benefit from Form B/C staging"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let Some(r) = cx.report else { return };
        if !matches!(r.limiter, Limiter::HostBandwidth | Limiter::DramBandwidth) {
            return;
        }
        sink.emit(
            Diagnostic::warn(
                "TL1006",
                format!(
                    "design is memory-bound ({}) under form {}: compute lanes will starve",
                    r.limiter, cx.module.meta.form
                ),
            )
            .with_hint(r.limiter.tuning_hint()),
        );
    }
}

/// TL1007 — unreachable clamp ranges. Renders the value-range analysis's
/// findings: a `min`/`max` whose immediate bound lies outside the other
/// operand's derived range either never fires (the clamp is a no-op that
/// still costs a functional unit) or always fires (the whole upstream
/// datapath feeding the clamp is dead).
pub struct UnreachableRange;

impl Pass for UnreachableRange {
    fn code(&self) -> &'static str {
        "TL1007"
    }

    fn name(&self) -> &'static str {
        "unreachable-range"
    }

    fn summary(&self) -> &'static str {
        "min/max clamps whose bound lies outside the operand's derived range"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let ranges = analyze_ranges(cx.module);
        for c in &ranges.findings {
            if c.always_imm {
                sink.emit(
                    Diagnostic::warn(
                        "TL1007",
                        format!(
                            "`{} %{}, {}` in `@{}` always yields {}: the operand's derived \
                             range is [{}, {}]",
                            c.mnemonic, c.value, c.imm, c.func, c.imm, c.lo, c.hi
                        ),
                    )
                    .with_loc(c.span)
                    .with_hint(
                        "the datapath feeding the clamp is dead; replace the result with the \
                         constant or widen the operand",
                    ),
                );
            } else {
                sink.emit(
                    Diagnostic::warn(
                        "TL1007",
                        format!(
                            "`{}` bound {} on `%{}` in `@{}` can never fire: the operand's \
                             derived range is [{}, {}]",
                            c.mnemonic, c.imm, c.value, c.func, c.lo, c.hi
                        ),
                    )
                    .with_loc(c.span)
                    .with_hint(
                        "the clamp is a no-op that still costs a functional unit; remove it \
                         or tighten the bound",
                    ),
                );
            }
        }
    }
}

/// TL1008 — stream deadlock. Renders the stream-dependence analysis's
/// findings: a memory object that a reachable function both consumes
/// (through a read stream) and produces (through a write stream) closes a
/// feedback cycle the smart buffer cannot satisfy — the read side waits
/// on data the write side has not produced yet.
pub struct StreamDeadlock;

impl Pass for StreamDeadlock {
    fn code(&self) -> &'static str {
        "TL1008"
    }

    fn name(&self) -> &'static str {
        "stream-deadlock"
    }

    fn summary(&self) -> &'static str {
        "memory objects both read and written through the same kernel's streams"
    }

    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink) {
        let deadlock = analyze_deadlock(cx.module);
        for d in &deadlock.findings {
            sink.emit(
                Diagnostic::error(
                    "TL1008",
                    format!(
                        "memory `%{}` is read and written through `@{}` in the same pass: \
                         the stream cycle deadlocks (in `%{}`, out `%{}`, window [{:+}, {:+}])",
                        d.mem, d.func, d.in_param, d.out_param, d.window.0, d.window.1
                    ),
                )
                .with_loc(d.span)
                .with_hint(
                    "stage the output in a separate memory object (double-buffer) or split \
                     the pass so no kernel feeds its own input stream",
                ),
            );
        }
    }
}
