//! Rustc-style text rendering of a [`LintReport`].

use crate::LintReport;
use std::fmt::Write as _;

/// Render `report` as human-readable text, one rustc-style block per
/// diagnostic followed by a summary line. `path` is the file the spans
/// refer to (shown in `--> path:line:col` anchors).
pub fn render_text(report: &LintReport, path: &str) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity.label(), d.code, d.message);
        if let Some(sp) = d.span {
            let _ = writeln!(out, "  --> {}:{}:{}", path, sp.line, sp.col);
        }
        if let Some(h) = &d.hint {
            let _ = writeln!(out, "  = help: {h}");
        }
    }
    let errors = report.errors();
    let warnings = report.warnings();
    if report.diagnostics.is_empty() {
        let _ = writeln!(out, "{path}: clean ({} passes, no diagnostics)", crate::registry().len());
    } else {
        let _ = writeln!(
            out,
            "{path}: {errors} error{}, {warnings} warning{}",
            plural(errors),
            plural(warnings)
        );
    }
    if !report.cost_evaluated {
        let _ = writeln!(out, "note: cost model not evaluated; feasibility lints were skipped");
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{Diagnostic, Span};

    fn report(diags: Vec<Diagnostic>) -> LintReport {
        LintReport {
            module: "m".into(),
            target: "t".into(),
            diagnostics: diags,
            cost_evaluated: true,
        }
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let txt = render_text(&report(vec![]), "x.tirl");
        assert!(txt.contains("x.tirl: clean"));
    }

    #[test]
    fn diagnostic_block_has_anchor_and_help() {
        let d = Diagnostic::warn("TL1001", "input port `%u` of `@f0` is never read")
            .with_span(Span { line: 21, col: 1 })
            .with_hint("remove the parameter");
        let txt = render_text(&report(vec![d]), "a/b.tirl");
        assert!(txt.contains("warning[TL1001]: input port `%u` of `@f0` is never read"));
        assert!(txt.contains("  --> a/b.tirl:21:1"));
        assert!(txt.contains("  = help: remove the parameter"));
        assert!(txt.contains("a/b.tirl: 0 errors, 1 warning"));
    }
}
