//! `tirlint`: a span-aware dataflow lint engine for TyTra-IR.
//!
//! Structural validation (the `TL00xx` codes emitted by
//! `tytra_ir::validate`) decides whether a design parses into a meaningful
//! dataflow machine; the lint passes here decide whether that machine is
//! *worth building*. Each pass inspects the module — and, for the
//! feasibility lints, the cost model's estimate against a target device —
//! and reports [`Diagnostic`]s through the same [`DiagSink`] the validator
//! uses, so one driver run yields a single, stably-coded diagnostic stream.
//!
//! | code   | pass              | reports                                          |
//! |--------|-------------------|--------------------------------------------------|
//! | TL1001 | liveness          | unread input ports, unwritten output ports, unconsumed streams and memories |
//! | TL1002 | dead-code         | values computed but never used; functions unreachable from `main` |
//! | TL1003 | offset-bounds     | stencil offsets at or beyond the NDRange extent  |
//! | TL1004 | reduction-init    | reductions that never read their accumulator     |
//! | TL1005 | feasibility       | resource estimate versus the target's capacity   |
//! | TL1006 | throughput-wall   | memory-bound designs that want Form B/C staging  |
//! | TL1007 | unreachable-range | min/max clamps whose bound lies outside the operand's derived range |
//! | TL1008 | stream-deadlock   | memory objects both read and written through the same kernel's streams |
//!
//! TL1001/TL1002 are phrased over the dataflow facts `tytra_analyze`
//! derives (effect summaries, solver reachability); TL1007/TL1008 render
//! the findings of its value-range and stream-dependence analyses
//! (`docs/analysis.md`).
//!
//! Severity policy: structural liveness/dead-code findings are warnings
//! (the design still computes something), out-of-range offsets and
//! designs that do not fit the device are errors (the design cannot run
//! as written), and the throughput wall is an advisory warning carrying
//! the cost model's own tuning hint.
//!
//! The driver runs validation first. If validation reports any error the
//! lint passes are skipped — like a compiler suppressing lints on code
//! that does not type-check — so every `TL1xxx` diagnostic can assume a
//! structurally valid module.

pub mod json;
pub mod passes;
pub mod render;

pub use json::render_json;
pub use render::render_text;

use tytra_cost::CostReport;
use tytra_device::TargetDevice;
use tytra_ir::{DiagSink, Diagnostic, IrModule, Severity};

/// Everything a lint pass may inspect: the module, the device it is being
/// judged against, and (when available) the cost model's verdict.
pub struct LintContext<'a> {
    /// The design under lint.
    pub module: &'a IrModule,
    /// The FPGA target the feasibility lints judge against.
    pub device: &'a TargetDevice,
    /// Cost-model estimate; `None` when validation failed upstream or the
    /// estimator itself rejected the module.
    pub report: Option<&'a CostReport>,
}

/// One lint pass. Passes are pure readers: they may only emit into the
/// sink, never mutate the module.
pub trait Pass {
    /// The stable diagnostic code this pass emits (`TL1xxx`).
    fn code(&self) -> &'static str;
    /// Short machine-friendly pass name (used in `--json` output and docs).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass reports.
    fn summary(&self) -> &'static str;
    /// Run the pass over `cx`, emitting diagnostics into `sink`.
    fn run(&self, cx: &LintContext<'_>, sink: &mut DiagSink);
}

/// The full registry, in execution (and documentation) order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(passes::Liveness),
        Box::new(passes::DeadCode),
        Box::new(passes::OffsetBounds),
        Box::new(passes::ReductionInit),
        Box::new(passes::Feasibility),
        Box::new(passes::ThroughputWall),
        Box::new(passes::UnreachableRange),
        Box::new(passes::StreamDeadlock),
    ]
}

/// The outcome of linting one module.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Module (design) name.
    pub module: String,
    /// Target device name the feasibility lints used.
    pub target: String,
    /// Validation diagnostics (`TL00xx`) followed by lint diagnostics
    /// (`TL1xxx`) in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the cost model produced an estimate (false when validation
    /// failed or the estimator errored; TL1005/TL1006 stay silent then).
    pub cost_evaluated: bool,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Number of diagnostics at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == sev).count()
    }

    /// The codes present, in emission order (repeats preserved).
    pub fn codes(&self) -> Vec<&'static str> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }
}

/// Lint `m` against `dev`: validate, then run every registered pass.
/// Each pass runs under a `lint.pass` span carrying its code and name
/// (`docs/observability.md`); validation traces itself as `ir.validate`.
pub fn lint(m: &IrModule, dev: &TargetDevice) -> LintReport {
    let _root = tytra_trace::span("lint.module").with("module", m.name.as_str());
    let mut sink = DiagSink::new();
    tytra_ir::validate::validate_into(m, &mut sink);

    let mut cost_evaluated = false;
    if !sink.has_errors() {
        let report = {
            let _sp = tytra_trace::span("lint.estimate");
            tytra_cost::estimate(m, dev).ok()
        };
        cost_evaluated = report.is_some();
        let cx = LintContext { module: m, device: dev, report: report.as_ref() };
        for pass in registry() {
            let mut sp =
                tytra_trace::span("lint.pass").with("code", pass.code()).with("pass", pass.name());
            let before = sink.diagnostics().len();
            pass.run(&cx, &mut sink);
            sp.record("diagnostics", (sink.diagnostics().len() - before) as u64);
        }
    }

    LintReport {
        module: m.name.clone(),
        target: dev.name.clone(),
        diagnostics: sink.into_diagnostics(),
        cost_evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_ordered() {
        let codes: Vec<&str> = registry().iter().map(|p| p.code()).collect();
        assert_eq!(
            codes,
            vec!["TL1001", "TL1002", "TL1003", "TL1004", "TL1005", "TL1006", "TL1007", "TL1008"]
        );
    }

    #[test]
    fn validation_errors_suppress_lint_passes() {
        // A module with no `main` fails validation; no TL1xxx may appear.
        let m = IrModule::new("broken");
        let r = lint(&m, &tytra_device::eval_small());
        assert!(!r.cost_evaluated);
        assert!(r.errors() > 0);
        assert!(r.codes().iter().all(|c| c.starts_with("TL00")));
    }
}
