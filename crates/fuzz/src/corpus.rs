//! Crash-corpus management: delta-debugging minimization of failing
//! TIRL sources and on-disk corpus layout.
//!
//! Corpus entries are plain `.tirl` files whose leading `;` comment
//! lines carry the triage metadata (seed, case, oracle, verdict), so a
//! crasher replays directly with `tybec cost <file>` or through the
//! regression test — the metadata is invisible to the parser.

use crate::oracle::Verdict;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Greedy line-granular ddmin: repeatedly remove chunks of lines while
/// `still_fails` keeps returning `true`, halving the chunk size down to
/// single lines. Deterministic and bounded (each pass only shrinks).
pub fn minimize(src: &str, still_fails: impl Fn(&str) -> bool) -> String {
    let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
    let rejoin = |ls: &[String]| {
        let mut s = ls.join("\n");
        s.push('\n');
        s
    };
    if !still_fails(&rejoin(&lines)) {
        // The failure is not reproducible from the text alone (e.g. a
        // panic elsewhere in the case); keep the original.
        return src.to_string();
    }
    let mut chunk = lines.len().div_ceil(2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < lines.len() {
            let hi = (i + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(i..hi);
            if !candidate.is_empty() && still_fails(&rejoin(&candidate)) {
                lines = candidate;
                shrunk = true;
                // Do not advance: the next chunk slid into position i.
            } else {
                i = hi;
            }
        }
        if chunk == 1 && !shrunk {
            break;
        }
        if !shrunk {
            chunk = (chunk / 2).max(1);
        }
    }
    rejoin(&lines)
}

/// One corpus entry ready to be written.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Harness seed that produced the case.
    pub seed: u64,
    /// Case index under that seed.
    pub case_id: u64,
    /// Which oracle flagged it.
    pub oracle: &'static str,
    /// The verdict (never `Pass`/`Skip` for corpus entries).
    pub verdict: Verdict,
    /// The (minimized) TIRL source, when the case has one.
    pub source: Option<String>,
    /// Post-mortem flight-recorder dump captured when the case was
    /// classified; written as a `.flight.txt` companion next to the
    /// `.tirl` entry.
    pub flight_dump: Option<String>,
}

impl CorpusEntry {
    /// Stable file name: `case_<seed>_<id>_<oracle>.tirl`.
    pub fn file_name(&self) -> String {
        format!("case_{}_{}_{}.tirl", self.seed, self.case_id, self.oracle)
    }

    /// Companion file name for the post-mortem trace:
    /// `case_<seed>_<id>_<oracle>.flight.txt`.
    pub fn flight_file_name(&self) -> String {
        format!("case_{}_{}_{}.flight.txt", self.seed, self.case_id, self.oracle)
    }

    /// Render the entry: metadata header comments + source body.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("; tytra-fuzz crasher\n");
        out.push_str(&format!(
            "; seed: {}  case: {}  oracle: {}\n",
            self.seed, self.case_id, self.oracle
        ));
        out.push_str(&format!("; verdict: {}", self.verdict.label()));
        if let Some(d) = self.verdict.detail() {
            for line in d.lines() {
                out.push_str(&format!("\n;   {line}"));
            }
        }
        out.push('\n');
        if let Some(src) = &self.source {
            out.push_str(src);
            if !src.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// Write entries into `dir` (created if missing). Returns the `.tirl`
/// paths written, in entry order; an entry carrying a flight-recorder
/// dump additionally gets a `.flight.txt` companion (not counted in the
/// returned paths — one path per crasher).
pub fn write_corpus(dir: &Path, entries: &[CorpusEntry]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(entries.len());
    for e in entries {
        let path = dir.join(e.file_name());
        fs::write(&path, e.render())?;
        if let Some(dump) = &e.flight_dump {
            fs::write(dir.join(e.flight_file_name()), dump)?;
        }
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_keeps_only_the_failing_line() {
        let src = "alpha\nbeta\nNEEDLE\ngamma\ndelta\n";
        let min = minimize(src, |s| s.contains("NEEDLE"));
        assert_eq!(min, "NEEDLE\n");
    }

    #[test]
    fn minimize_requires_reproduction() {
        let src = "a\nb\n";
        assert_eq!(minimize(src, |_| false), src);
    }

    #[test]
    fn minimize_handles_conjunctive_failures() {
        // Failure needs two far-apart lines; ddmin must keep both.
        let src = "x\nFIRST\ny\nz\nSECOND\nw\n";
        let min = minimize(src, |s| s.contains("FIRST") && s.contains("SECOND"));
        assert_eq!(min, "FIRST\nSECOND\n");
    }

    #[test]
    fn corpus_entries_render_replayable_tirl() {
        let e = CorpusEntry {
            seed: 7,
            case_id: 3,
            oracle: "roundtrip",
            verdict: Verdict::Disagreement("boom\ntwo lines".into()),
            source: Some("!module = !\"m\"".into()),
            flight_dump: None,
        };
        let text = e.render();
        assert!(text.starts_with("; tytra-fuzz crasher\n"));
        assert!(text.contains("; seed: 7  case: 3  oracle: roundtrip"));
        assert!(text.contains(";   two lines"));
        assert!(text.ends_with("!module = !\"m\"\n"));
        assert_eq!(e.file_name(), "case_7_3_roundtrip.tirl");
        assert_eq!(e.flight_file_name(), "case_7_3_roundtrip.flight.txt");
    }

    #[test]
    fn flight_dumps_get_companion_files() {
        let dir = std::env::temp_dir().join("tytra_fuzz_flight_test");
        let _ = fs::remove_dir_all(&dir);
        let entries = [
            CorpusEntry {
                seed: 1,
                case_id: 0,
                oracle: "a",
                verdict: Verdict::Panic("boom".into()),
                source: None,
                flight_dump: Some("== flight recorder ==\n".into()),
            },
            CorpusEntry {
                seed: 1,
                case_id: 1,
                oracle: "b",
                verdict: Verdict::Panic("boom".into()),
                source: None,
                flight_dump: None,
            },
        ];
        let paths = write_corpus(&dir, &entries).unwrap();
        assert_eq!(paths.len(), 2, "one path per crasher, companions not counted");
        assert!(dir.join("case_1_0_a.flight.txt").exists());
        assert!(!dir.join("case_1_1_b.flight.txt").exists());
        let dump = fs::read_to_string(dir.join("case_1_0_a.flight.txt")).unwrap();
        assert_eq!(dump, "== flight recorder ==\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
