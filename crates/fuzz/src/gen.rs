//! Seed-driven random TIRL generation.
//!
//! Two layers, both fully deterministic per seed:
//!
//! * [`TirlGen::valid_module`] — a **valid-by-construction** design built
//!   through [`ModuleBuilder`]: random element type, grid size, stencil
//!   offsets, SSA dataflow DAG, optional reduction, random form / `NKI` /
//!   vectorization. These feed the semantic oracles (estimator-vs-sim,
//!   warm-vs-cold session).
//! * [`TirlGen::mutate`] — textual mutations (line deletion/duplication/
//!   swaps, truncation, character splices) over a printed valid module.
//!   These feed the parser round-trip oracle: every mutant must either
//!   parse or fail with a structured error — never a panic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tytra_ir::{IrModule, MemForm, ModuleBuilder, Opcode, Operand, ParKind, ScalarType};

/// Integer opcodes safe to apply to any two same-typed integer operands.
const INT_OPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Min,
    Opcode::Max,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
];

/// Float opcodes safe on any two same-typed float operands.
const FLOAT_OPS: &[Opcode] = &[Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Min, Opcode::Max];

/// The deterministic TIRL generator. All draws come from one xoshiro
/// stream, so `(seed)` fully determines every artifact produced.
pub struct TirlGen {
    rng: StdRng,
    next_id: u64,
}

impl TirlGen {
    /// A generator over the given seed.
    pub fn new(seed: u64) -> TirlGen {
        TirlGen { rng: StdRng::seed_from_u64(seed), next_id: 0 }
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.rng.random_range(0..xs.len())]
    }

    /// A random valid design: single-lane pipe over 1–3 input streams,
    /// 1–10 instructions, optional stencil offsets and reduction.
    /// Validated by construction — a validation failure here is a
    /// generator bug and panics (which the harness records).
    pub fn valid_module(&mut self) -> IrModule {
        self.next_id += 1;
        let name = format!("fz{}", self.next_id);
        let ty = *self.pick(&[
            ScalarType::UInt(8),
            ScalarType::UInt(16),
            ScalarType::UInt(18),
            ScalarType::UInt(24),
            ScalarType::UInt(32),
            ScalarType::Int(16),
            ScalarType::Int(32),
            ScalarType::Float(32),
        ]);
        let n = *self.pick(&[16u64, 32, 64, 128, 256, 1024]);
        let ninputs = self.rng.random_range(1usize..=3);
        let nki = self.rng.random_range(1u64..=20);
        let form = *self.pick(&[MemForm::A, MemForm::B]);
        let vect = *self.pick(&[1u32, 1, 1, 2]);

        let mut b = ModuleBuilder::new(&name);
        let in_names: Vec<String> = (0..ninputs).map(|i| format!("p{i}")).collect();
        for p in &in_names {
            b.global_input(p, ty, n);
        }
        b.global_output("q", ty, n);

        let ops: &[Opcode] = if ty.is_float() { FLOAT_OPS } else { INT_OPS };
        let n_instrs = self.rng.random_range(1usize..=10);
        let n_offsets = if n >= 32 { self.rng.random_range(0usize..=3) } else { 0 };
        let with_reduce = self.rng.random_range(0u32..4) == 0;

        // Pre-draw everything randomness-dependent so the `FunctionBuilder`
        // borrow below doesn't fight the generator's `&mut self`.
        let mut offset_amounts: Vec<i64> = Vec::with_capacity(n_offsets);
        for _ in 0..n_offsets {
            let mag = self.rng.random_range(1i64..=4);
            let off = if self.rng.random_range(0u32..2) == 0 { mag } else { -mag };
            // Offset streams are named after (src, offset); a repeat draw
            // would redeclare the same SSA name.
            if !offset_amounts.contains(&off) {
                offset_amounts.push(off);
            }
        }
        let n_offsets = offset_amounts.len();
        struct InstrPlan {
            op: Opcode,
            lhs: usize,
            rhs: usize,
            rhs_imm: Option<i64>,
        }
        let mut plans = Vec::with_capacity(n_instrs);
        for i in 0..n_instrs {
            let pool = ninputs + n_offsets + i;
            plans.push(InstrPlan {
                op: *self.pick(ops),
                lhs: self.rng.random_range(0..pool),
                rhs: self.rng.random_range(0..pool),
                rhs_imm: if self.rng.random_range(0u32..4) == 0 {
                    Some(self.rng.random_range(0i64..=7))
                } else {
                    None
                },
            });
        }
        let out_pick = self.rng.random_range(0..ninputs + n_offsets + n_instrs);
        let reduce_op =
            if ty.is_float() { Opcode::Add } else { *self.pick(&[Opcode::Add, Opcode::Max]) };

        {
            let f = b.function("f0", ParKind::Pipe);
            for p in &in_names {
                f.input(p, ty);
            }
            f.output("q", ty);
            let mut pool: Vec<Operand> = in_names.iter().map(|p| f.arg(p)).collect();
            for off in offset_amounts {
                pool.push(f.offset(&in_names[0], ty, off));
            }
            for plan in plans {
                let lhs = pool[plan.lhs].clone();
                let rhs = match plan.rhs_imm {
                    Some(v) if ty.is_float() => f.imm_f(v as f64),
                    Some(v) => f.imm(v),
                    None => pool[plan.rhs].clone(),
                };
                pool.push(f.instr(plan.op, ty, vec![lhs, rhs]));
            }
            let out = pool[out_pick].clone();
            if with_reduce {
                f.reduce("fzAcc", reduce_op, ty, out.clone());
            }
            f.write_out("q", out);
        }
        b.main_calls("f0");
        b.ndrange(&[n]).nki(nki).form(form).vect(vect);
        b.finish().expect("generator produced an invalid module")
    }

    /// A printed valid module — the clean starting point for mutation.
    pub fn valid_source(&mut self) -> String {
        tytra_ir::print(&self.valid_module())
    }

    /// Apply 1–4 random textual mutations to a TIRL source. The result
    /// is frequently ill-formed — deliberately: the parser must reject
    /// it with a structured diagnostic, never a panic.
    pub fn mutate(&mut self, src: &str) -> String {
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        let n_edits = self.rng.random_range(1usize..=4);
        for _ in 0..n_edits {
            if lines.is_empty() {
                break;
            }
            let i = self.rng.random_range(0..lines.len());
            match self.rng.random_range(0u32..6) {
                0 => {
                    lines.remove(i);
                }
                1 => {
                    let dup = lines[i].clone();
                    lines.insert(i, dup);
                }
                2 => {
                    let j = self.rng.random_range(0..lines.len());
                    lines.swap(i, j);
                }
                3 => {
                    let cut = self.rng.random_range(0..=lines[i].chars().count());
                    lines[i] = lines[i].chars().take(cut).collect();
                }
                4 => {
                    // Replace one character with a random punctuation or
                    // control-ish byte the lexer must survive.
                    let chars: Vec<char> = lines[i].chars().collect();
                    if chars.is_empty() {
                        continue;
                    }
                    let pos = self.rng.random_range(0..chars.len());
                    let repl = *self.pick(&[
                        '!', '%', '@', '=', ',', '(', ')', '{', '}', '"', '\\', '\u{7f}', '0', 'x',
                    ]);
                    let mut out: String = chars[..pos].iter().collect();
                    out.push(repl);
                    out.extend(&chars[pos + 1..]);
                    lines[i] = out;
                }
                _ => {
                    let token =
                        *self.pick(&["!42", "%t9", "@ghost", "ui33", "pipe", "!{", "offset"]);
                    let col = self.rng.random_range(0..=lines[i].len());
                    if lines[i].is_char_boundary(col) {
                        lines[i].insert_str(col, token);
                    }
                }
            }
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// A mutated source: print a fresh valid module, then mutate it.
    pub fn mutated_source(&mut self) -> String {
        let src = self.valid_source();
        self.mutate(&src)
    }

    /// Draw a `u64` from the generator's stream (for oracle parameters
    /// that live outside module text, e.g. search-space shapes).
    pub fn draw_u64(&mut self, range: core::ops::RangeInclusive<u64>) -> u64 {
        self.rng.random_range(range)
    }

    /// Draw a `usize` from the generator's stream.
    pub fn draw_usize(&mut self, range: core::ops::RangeInclusive<usize>) -> usize {
        self.rng.random_range(range)
    }

    /// Pick one element of a slice (public variant for oracle setup).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        self.pick(xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TirlGen::new(41);
        let mut b = TirlGen::new(41);
        for _ in 0..16 {
            assert_eq!(a.valid_source(), b.valid_source());
            assert_eq!(a.mutated_source(), b.mutated_source());
        }
        let mut c = TirlGen::new(42);
        assert_ne!(TirlGen::new(41).valid_source(), {
            c.valid_source();
            c.valid_source()
        });
    }

    #[test]
    fn valid_modules_really_validate() {
        let mut g = TirlGen::new(7);
        for _ in 0..64 {
            let m = g.valid_module();
            assert!(tytra_ir::validate(&m).is_ok(), "{}", m.name);
        }
    }

    #[test]
    fn mutants_differ_from_their_parents_eventually() {
        let mut g = TirlGen::new(3);
        let src = g.valid_source();
        let changed = (0..8).any(|_| g.mutate(&src) != src);
        assert!(changed);
    }
}
