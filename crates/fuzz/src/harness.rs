//! The differential harness: deterministic case scheduling, panic
//! containment, verdict bookkeeping and corpus output.
//!
//! Every case is derived from `(seed, case_id)` alone, so any failure
//! replays exactly from the two numbers recorded in its corpus entry.

use crate::corpus::{self, CorpusEntry};
use crate::gen::TirlGen;
use crate::oracle::{self, ToleranceBands, Verdict};
use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use tytra_trace::recorder;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; `(seed, case_id)` determines a case completely.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: u64,
    /// Agreement bands for the estimator-vs-sim oracle.
    pub bands: ToleranceBands,
    /// Where to write minimized crashers (`None` = keep in memory only).
    pub corpus_dir: Option<PathBuf>,
}

impl FuzzConfig {
    /// The fixed-seed smoke configuration used by CI (2,000 cases).
    pub fn smoke() -> FuzzConfig {
        FuzzConfig {
            seed: 0x00C0_FFEE,
            cases: 2000,
            bands: ToleranceBands::default(),
            corpus_dir: None,
        }
    }
}

/// The oracle a case was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Parse → print → reparse on a mutated source.
    RoundtripMutated,
    /// Parse → print → reparse on a clean printed module.
    RoundtripClean,
    /// Estimator vs virtual toolchain + cycle simulator.
    EstimatorVsSim,
    /// Warm-vs-cold `EstimatorSession` bit-identity.
    SessionDeterminism,
    /// Arena/SoA IR vs tree: fingerprints, materialization and the
    /// `estimate_design`/`bound_design` passes must be bit-identical.
    ArenaEquivalence,
    /// `analyze_module` totality plus congruence-key soundness.
    AnalyzeCongruence,
    /// Pruned vs exhaustive search leaderboard bit-identity.
    SearchEquivalence,
    /// In-process `tybec serve` round-trip vs the direct estimate:
    /// served payloads (cold and cache-replayed) must be byte-identical
    /// to the offline rendering, and served errors must carry the
    /// direct path's category.
    ServeEquivalence,
}

impl OracleKind {
    /// Stable label used in JSON and corpus file names.
    pub fn label(self) -> &'static str {
        match self {
            OracleKind::RoundtripMutated => "roundtrip-mutated",
            OracleKind::RoundtripClean => "roundtrip-clean",
            OracleKind::EstimatorVsSim => "estimator-vs-sim",
            OracleKind::SessionDeterminism => "session-determinism",
            OracleKind::ArenaEquivalence => "arena-equivalence",
            OracleKind::AnalyzeCongruence => "analyze-congruence",
            OracleKind::SearchEquivalence => "search-equivalence",
            OracleKind::ServeEquivalence => "serve-equivalence",
        }
    }

    /// Deterministic routing: a 32-slot wheel weighted toward the cheap
    /// parser oracle, with the expensive double-search oracle on one
    /// slot.
    pub fn for_case(case_id: u64) -> OracleKind {
        match case_id % 32 {
            0..=15 => OracleKind::RoundtripMutated,
            16..=19 => OracleKind::RoundtripClean,
            20..=25 => OracleKind::EstimatorVsSim,
            26..=27 => OracleKind::SessionDeterminism,
            28 => OracleKind::ServeEquivalence,
            29 => OracleKind::ArenaEquivalence,
            30 => OracleKind::AnalyzeCongruence,
            _ => OracleKind::SearchEquivalence,
        }
    }
}

/// The result of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case index under the harness seed.
    pub case_id: u64,
    /// Which oracle ran.
    pub oracle: OracleKind,
    /// What it concluded.
    pub verdict: Verdict,
    /// The TIRL source under test, for oracles that have one.
    pub source: Option<String>,
    /// Post-mortem flight-recorder dump of the harness thread, captured
    /// at classification time for `Panic`/`Disagreement`/`NonFinite`
    /// verdicts (the always-on recorder means the caught panic's last
    /// breadcrumbs are still in the ring). `None` for passing cases.
    pub flight_dump: Option<String>,
}

/// Aggregated counters plus the retained failures.
#[derive(Debug, Default)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases whose property held.
    pub passes: u64,
    /// Cases the oracle could not check.
    pub skips: u64,
    /// Panics that escaped the pipeline.
    pub panics: u64,
    /// Cross-implementation disagreements.
    pub disagreements: u64,
    /// NaN/infinity leaks.
    pub non_finite: u64,
    /// Per-oracle `(runs, failures)`.
    pub by_oracle: BTreeMap<&'static str, (u64, u64)>,
    /// Every failing case, minimized where possible.
    pub crashes: Vec<CaseResult>,
    /// Corpus files written (when `corpus_dir` was set).
    pub corpus_written: usize,
}

impl FuzzReport {
    /// Total failing cases.
    pub fn failures(&self) -> u64 {
        self.panics + self.disagreements + self.non_finite
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Derive the per-case generator. Mixing with a large odd constant keeps
/// neighbouring case streams decorrelated under xoshiro seeding.
fn case_gen(seed: u64, case_id: u64) -> TirlGen {
    TirlGen::new(seed ^ case_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Finish a case: failing verdicts (the Panic/Disagreement/NonFinite
/// classifications) are shipped with a post-mortem dump of this thread's
/// flight-recorder lane, whose tail is the case's own breadcrumb trail.
fn finish_case(
    case_id: u64,
    oracle: OracleKind,
    verdict: Verdict,
    source: Option<String>,
) -> CaseResult {
    let flight_dump = if verdict.is_failure() {
        recorder::dump_current_thread().map(|lane| recorder::render_dump(&[lane]))
    } else {
        None
    };
    CaseResult { case_id, oracle, verdict, source, flight_dump }
}

/// Run one case to a verdict, catching any panic the pipeline leaks.
/// Deterministic in `(seed, case_id, bands)`.
pub fn run_case(seed: u64, case_id: u64, bands: &ToleranceBands) -> CaseResult {
    let oracle = OracleKind::for_case(case_id);
    // Breadcrumb before any pipeline work: if the case panics, the
    // post-mortem lane names the case that died.
    recorder::mark("fuzz.case", case_id);
    let mut g = case_gen(seed, case_id);
    // Materialize the input *outside* catch_unwind where possible so a
    // generator bug is distinguishable from a pipeline bug; sources are
    // plain text and always survive.
    let (verdict, source) = match oracle {
        OracleKind::RoundtripMutated | OracleKind::RoundtripClean => {
            let src = if oracle == OracleKind::RoundtripMutated {
                g.mutated_source()
            } else {
                g.valid_source()
            };
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::roundtrip(&src)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
        OracleKind::EstimatorVsSim => {
            let m = g.valid_module();
            let src = tytra_ir::print(&m);
            let dev = tytra_device::stratix_v_gsd8();
            let v =
                panic::catch_unwind(AssertUnwindSafe(|| oracle::estimator_vs_sim(&m, &dev, bands)))
                    .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
        OracleKind::SessionDeterminism => {
            let m = g.valid_module();
            let src = tytra_ir::print(&m);
            let dev = tytra_device::eval_small();
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::session_determinism(&m, &dev)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
        OracleKind::ArenaEquivalence => {
            let m = g.valid_module();
            let src = tytra_ir::print(&m);
            let dev = tytra_device::eval_small();
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::arena_equivalence(&m, &dev)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
        OracleKind::AnalyzeCongruence => {
            let m = g.valid_module();
            let src = tytra_ir::print(&m);
            let dev = tytra_device::eval_small();
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::analyze_congruence(&m, &dev)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
        OracleKind::SearchEquivalence => {
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::search_equivalence(&mut g)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, None)
        }
        OracleKind::ServeEquivalence => {
            let m = g.valid_module();
            let src = tytra_ir::print(&m);
            let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::serve_equivalence(&m)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
            (v, Some(src))
        }
    };
    finish_case(case_id, oracle, verdict, source)
}

/// Re-run the oracle of a failing case on candidate source text; used as
/// the minimizer's reproduction predicate. Only text-carrying oracles
/// can be minimized this way.
fn reproduces(case: &CaseResult, bands: &ToleranceBands, candidate: &str) -> bool {
    let verdict = match case.oracle {
        OracleKind::RoundtripMutated | OracleKind::RoundtripClean => {
            panic::catch_unwind(AssertUnwindSafe(|| oracle::roundtrip(candidate)))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())))
        }
        OracleKind::EstimatorVsSim
        | OracleKind::SessionDeterminism
        | OracleKind::ArenaEquivalence
        | OracleKind::AnalyzeCongruence
        | OracleKind::ServeEquivalence => {
            let m = match tytra_ir::parse(candidate) {
                Ok(m) => m,
                Err(_) => return false,
            };
            let run = || match case.oracle {
                OracleKind::EstimatorVsSim => {
                    oracle::estimator_vs_sim(&m, &tytra_device::stratix_v_gsd8(), bands)
                }
                OracleKind::ArenaEquivalence => {
                    oracle::arena_equivalence(&m, &tytra_device::eval_small())
                }
                OracleKind::AnalyzeCongruence => {
                    oracle::analyze_congruence(&m, &tytra_device::eval_small())
                }
                OracleKind::ServeEquivalence => oracle::serve_equivalence(&m),
                _ => oracle::session_determinism(&m, &tytra_device::eval_small()),
            };
            panic::catch_unwind(AssertUnwindSafe(run))
                .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())))
        }
        OracleKind::SearchEquivalence => return false,
    };
    verdict.label() == case.verdict.label()
}

/// Run the full configured campaign. Installs a quiet panic hook for the
/// duration (expected panics would otherwise spam stderr), restoring the
/// previous hook before returning.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut report = FuzzReport::default();
    for case_id in 0..cfg.cases {
        let mut case = run_case(cfg.seed, case_id, &cfg.bands);
        report.cases += 1;
        let slot = report.by_oracle.entry(case.oracle.label()).or_insert((0, 0));
        slot.0 += 1;
        match &case.verdict {
            Verdict::Pass => report.passes += 1,
            Verdict::Skip(_) => report.skips += 1,
            Verdict::Panic(_) => report.panics += 1,
            Verdict::Disagreement(_) => report.disagreements += 1,
            Verdict::NonFinite(_) => report.non_finite += 1,
        }
        if case.verdict.is_failure() {
            slot.1 += 1;
            if let Some(src) = &case.source {
                case.source = Some(corpus::minimize(src, |candidate| {
                    reproduces(&case, &cfg.bands, candidate)
                }));
            }
            report.crashes.push(case);
        }
    }
    panic::set_hook(prev_hook);

    if let Some(dir) = &cfg.corpus_dir {
        let entries: Vec<CorpusEntry> = report
            .crashes
            .iter()
            .map(|c| CorpusEntry {
                seed: cfg.seed,
                case_id: c.case_id,
                oracle: c.oracle.label(),
                verdict: c.verdict.clone(),
                source: c.source.clone(),
                flight_dump: c.flight_dump.clone(),
            })
            .collect();
        if let Ok(paths) = corpus::write_corpus(dir, &entries) {
            report.corpus_written = paths.len();
        }
    }
    report
}

/// Replay a corpus fixture (or any TIRL source) through every oracle
/// that accepts file input: round-trip always; estimator-vs-sim,
/// session determinism, arena equivalence, analyze-congruence and
/// serve-equivalence when the source parses and validates. Returns
/// the per-oracle verdicts. Search equivalence has no file input; the
/// regression test replays it separately from recorded seeds.
pub fn replay_source(src: &str, bands: &ToleranceBands) -> Vec<(OracleKind, Verdict)> {
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let mut out = Vec::new();
    let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::roundtrip(src)))
        .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
    out.push((OracleKind::RoundtripClean, v));
    if let Ok(m) = tytra_ir::parse(src) {
        let dev = tytra_device::stratix_v_gsd8();
        let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::estimator_vs_sim(&m, &dev, bands)))
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        out.push((OracleKind::EstimatorVsSim, v));
        let dev = tytra_device::eval_small();
        let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::session_determinism(&m, &dev)))
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        out.push((OracleKind::SessionDeterminism, v));
        let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::arena_equivalence(&m, &dev)))
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        out.push((OracleKind::ArenaEquivalence, v));
        let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::analyze_congruence(&m, &dev)))
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        out.push((OracleKind::AnalyzeCongruence, v));
        let v = panic::catch_unwind(AssertUnwindSafe(|| oracle::serve_equivalence(&m)))
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        out.push((OracleKind::ServeEquivalence, v));
    }
    panic::set_hook(prev_hook);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_results_are_deterministic() {
        let bands = ToleranceBands::default();
        for id in 0..40 {
            let a = run_case(11, id, &bands);
            let b = run_case(11, id, &bands);
            assert_eq!(a.verdict, b.verdict, "case {id}");
            assert_eq!(a.source, b.source, "case {id}");
        }
    }

    #[test]
    fn the_wheel_covers_every_oracle() {
        let kinds: std::collections::BTreeSet<&str> =
            (0..32).map(|i| OracleKind::for_case(i).label()).collect();
        assert_eq!(kinds.len(), 8);
    }

    #[test]
    fn a_small_campaign_is_clean() {
        let cfg = FuzzConfig { cases: 64, ..FuzzConfig::smoke() };
        let r = run(&cfg);
        assert_eq!(r.cases, 64);
        assert_eq!(r.failures(), 0, "crashes: {:?}", r.crashes);
        assert!(r.passes > 0);
    }

    #[test]
    fn panic_verdicts_attach_post_mortem_dumps() {
        // The classification path itself: a case that dies mid-pipeline
        // leaves its breadcrumb in the ring, and finish_case ships the
        // lane with the Panic verdict.
        recorder::mark("fuzz.case", 42);
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        let verdict = panic::catch_unwind(|| panic!("pipeline died"))
            .map(|()| Verdict::Pass)
            .unwrap_or_else(|p| Verdict::Panic(panic_message(p.as_ref())));
        panic::set_hook(prev);
        let case = finish_case(42, OracleKind::RoundtripClean, verdict, None);
        let dump = case.flight_dump.expect("panic case must carry a dump");
        assert!(dump.contains("== flight recorder =="), "{dump}");
        assert!(dump.contains("fuzz.case"), "{dump}");
        assert!(dump.contains("detail=42"), "{dump}");

        // Passing cases stay lean: no dump captured.
        let ok = finish_case(43, OracleKind::RoundtripClean, Verdict::Pass, None);
        assert!(ok.flight_dump.is_none());
    }

    #[test]
    fn failing_campaigns_write_flight_companions_into_the_corpus() {
        // Zero-width tolerance bands force estimator-vs-sim
        // disagreements deterministically, driving the whole
        // failure path: dump capture, corpus write, companion files.
        let dir = std::env::temp_dir().join("tytra_fuzz_harness_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FuzzConfig {
            seed: 5,
            cases: 64,
            bands: ToleranceBands {
                cpki_rel: 0.0,
                resource_factor: 1.0,
                resource_slack: 0,
                clock_factor: 1.0,
            },
            corpus_dir: Some(dir.clone()),
        };
        let r = run(&cfg);
        assert!(r.disagreements > 0, "zero bands must disagree: {r:?}");
        for c in &r.crashes {
            let dump = c
                .flight_dump
                .as_deref()
                .unwrap_or_else(|| panic!("failing case {} has no flight dump", c.case_id));
            assert!(dump.contains("fuzz.case"), "{dump}");
        }
        assert_eq!(r.corpus_written, r.crashes.len());
        let companions = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".flight.txt"))
            .count();
        assert_eq!(companions, r.crashes.len(), "every crasher ships its post-mortem");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_runs_semantic_oracles_on_valid_sources() {
        let mut g = TirlGen::new(21);
        let src = g.valid_source();
        let verdicts = replay_source(&src, &ToleranceBands::default());
        assert_eq!(verdicts.len(), 6);
        assert!(verdicts.iter().all(|(_, v)| !v.is_failure()), "{verdicts:?}");
    }
}
