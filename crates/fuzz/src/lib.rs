//! # tytra-fuzz
//!
//! Deterministic differential fuzzing for the TyTra pipeline.
//!
//! The repo owns both the fast cost model (`tytra-cost`) and its ground
//! truth (`tytra-sim`'s virtual toolchain + cycle simulator), which
//! makes differential testing cheap: generate designs, run both sides,
//! and flag any panic, disagreement beyond tolerance, or non-finite
//! metric. Seven oracles (see [`oracle`]):
//!
//! 1. **Round-trip** — parse → print → reparse fixed point; malformed
//!    input must produce a structured error, never a panic.
//! 2. **Estimator vs simulator** — agreement within
//!    [`ToleranceBands`][oracle::ToleranceBands] on valid designs.
//! 3. **Search equivalence** — pruned vs `--exhaustive` leaderboard
//!    bit-identity for random space shapes and worker counts.
//! 4. **Session determinism** — warm (memoized) vs cold
//!    `EstimatorSession` bit-identity.
//! 5. **Analyze congruence** — `analyze_module` is total and
//!    deterministic, and congruence-classed A/B siblings produce
//!    bit-identical cost reports (the DSE prefilter's soundness
//!    contract).
//! 6. **Arena equivalence** — the arena/SoA IR fingerprints,
//!    materializes and costs (`estimate_design`/`bound_design`)
//!    bit-identically to the tree on any module and any
//!    copy-on-write patch.
//! 7. **Serve equivalence** — the in-process `tybec serve` round-trip
//!    (parse → prepare → cache → guarded compute → render) answers
//!    byte-identically to the direct estimate, cold and cache-replayed
//!    alike, and served errors keep the direct path's category.
//!
//! Everything is derived from `(seed, case_id)` — see [`gen::TirlGen`]
//! and [`harness::run_case`] — so every corpus entry replays exactly.
//! The `fuzz_smoke` binary runs a fixed-seed budget and emits
//! `BENCH_fuzz.json`, making robustness a tracked artifact like perf.

pub mod corpus;
pub mod gen;
pub mod harness;
pub mod oracle;

pub use corpus::{minimize, write_corpus, CorpusEntry};
pub use gen::TirlGen;
pub use harness::{replay_source, run, run_case, CaseResult, FuzzConfig, FuzzReport, OracleKind};
pub use oracle::{ToleranceBands, Verdict};
