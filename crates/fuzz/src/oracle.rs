//! The differential oracles.
//!
//! Each oracle takes an input (a TIRL source, a validated module, or a
//! drawn search-space shape) and returns a [`Verdict`]. Oracles never
//! catch panics themselves — the harness wraps every case in
//! `catch_unwind` and classifies an escaped panic as [`Verdict::Panic`],
//! which is itself a finding: the hardened pipeline must never panic on
//! any input, well-formed or not.

use crate::gen::TirlGen;
use tytra_cost::EstimatorSession;
use tytra_device::TargetDevice;
use tytra_dse::explore::ExplorationConfig;
use tytra_dse::{search, SearchConfig, SearchOutcome};
use tytra_ir::{ArenaModule, IrModule, MemForm};
use tytra_kernels::{EvalKernel, Sor, StreamTriad};
use tytra_trace::json::{self, Json};

/// The outcome of running one oracle on one case.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// The property held.
    Pass,
    /// The oracle could not check this case (e.g. the design does not
    /// fit the reference device). Counted separately so a generator
    /// drift that skips everything is visible in `BENCH_fuzz.json`.
    Skip(String),
    /// A panic escaped the pipeline (filled in by the harness).
    Panic(String),
    /// Two implementations that must agree did not.
    Disagreement(String),
    /// A NaN or infinity leaked into a reported metric.
    NonFinite(String),
}

impl Verdict {
    /// True for the three failing variants.
    pub fn is_failure(&self) -> bool {
        matches!(self, Verdict::Panic(_) | Verdict::Disagreement(_) | Verdict::NonFinite(_))
    }

    /// Stable lower-case label for JSON and corpus metadata.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Skip(_) => "skip",
            Verdict::Panic(_) => "panic",
            Verdict::Disagreement(_) => "disagreement",
            Verdict::NonFinite(_) => "non-finite",
        }
    }

    /// The attached detail message, if any.
    pub fn detail(&self) -> Option<&str> {
        match self {
            Verdict::Pass => None,
            Verdict::Skip(s)
            | Verdict::Panic(s)
            | Verdict::Disagreement(s)
            | Verdict::NonFinite(s) => Some(s),
        }
    }
}

/// Per-metric agreement bands for the estimator-vs-simulator oracle.
///
/// The fast model is *approximate* by design (the paper's Table II
/// reports CPKI within ~15% and resources within a factor on small
/// kernels), so exact equality is the wrong oracle; the bands encode
/// "close enough that a divergence means a bug, not model error". They
/// are deliberately loose — the oracle hunts for crashes, non-finite
/// leaks and order-of-magnitude breaks, not calibration drift.
#[derive(Debug, Clone, Copy)]
pub struct ToleranceBands {
    /// Max relative CPKI error vs the cycle simulator.
    pub cpki_rel: f64,
    /// Max ratio (either direction) between estimated and synthesized
    /// resource axes, after an additive slack absorbing near-zero axes.
    pub resource_factor: f64,
    /// Additive slack per resource axis before the ratio test.
    pub resource_slack: u64,
    /// Max ratio between estimated and achieved clock.
    pub clock_factor: f64,
}

impl Default for ToleranceBands {
    fn default() -> ToleranceBands {
        ToleranceBands {
            cpki_rel: 0.5,
            resource_factor: 4.0,
            resource_slack: 64,
            clock_factor: 3.0,
        }
    }
}

/// Oracle 1 — parse → print → reparse round-trip.
///
/// Any input that parses must survive `print ∘ parse` as a fixed point:
/// `print(parse(src))` reparsed and reprinted must be byte-identical.
/// Inputs that fail to parse pass the oracle (a structured rejection is
/// the correct behaviour for a mutant); only a panic or a round-trip
/// break is a finding.
pub fn roundtrip(src: &str) -> Verdict {
    let m = match tytra_ir::parse_unvalidated(src) {
        Ok(m) => m,
        Err(_) => return Verdict::Pass,
    };
    let p1 = tytra_ir::print(&m);
    let m2 = match tytra_ir::parse_unvalidated(&p1) {
        Ok(m2) => m2,
        Err(e) => {
            return Verdict::Disagreement(format!("printed module failed to reparse: {e}"));
        }
    };
    let p2 = tytra_ir::print(&m2);
    if p1 == p2 {
        Verdict::Pass
    } else {
        Verdict::Disagreement("print(parse(print(m))) is not a fixed point".into())
    }
}

fn finite(label: &str, v: f64) -> Result<(), Verdict> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(Verdict::NonFinite(format!("{label} = {v}")))
    }
}

fn within_factor(label: &str, a: f64, b: f64, factor: f64) -> Result<(), Verdict> {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    if lo <= 0.0 || hi / lo <= factor {
        Ok(())
    } else {
        Err(Verdict::Disagreement(format!(
            "{label}: estimate {a} vs actual {b} beyond {factor}x band"
        )))
    }
}

/// Oracle 2 — the fast model vs the virtual toolchain + cycle simulator
/// on a valid design, within [`ToleranceBands`].
pub fn estimator_vs_sim(m: &IrModule, dev: &TargetDevice, bands: &ToleranceBands) -> Verdict {
    let est = match tytra_cost::estimate(m, dev) {
        Ok(r) => r,
        Err(e) => return Verdict::Skip(format!("estimate: {e}")),
    };
    let checks = || -> Result<(), Verdict> {
        finite("est.cpki", est.throughput.cpki)?;
        finite("est.ekit", est.throughput.ekit)?;
        finite("est.t_instance", est.throughput.t_instance)?;
        finite("est.freq_mhz", est.clock.freq_mhz)?;
        finite("est.power_w", est.power_w)?;
        Ok(())
    };
    if let Err(v) = checks() {
        return v;
    }
    if !est.fits {
        return Verdict::Skip("design does not fit the reference device".into());
    }
    let run = match tytra_sim::run_application(m, dev) {
        Ok(r) => r,
        Err(e) => {
            return Verdict::Disagreement(format!(
                "simulator rejected a design the estimator costed: {e}"
            ));
        }
    };
    let compare = || -> Result<(), Verdict> {
        finite("sim.t_total_s", run.t_total_s)?;
        finite("sim.freq_mhz", run.freq_mhz)?;
        finite("sim.delta_watts", run.power.delta_watts)?;
        finite("sim.achieved_bytes_per_s", run.cycles.achieved_bytes_per_s)?;

        let actual = run.cpki() as f64;
        if actual > 0.0 {
            let rel = (est.throughput.cpki - actual).abs() / actual;
            if rel > bands.cpki_rel {
                return Err(Verdict::Disagreement(format!(
                    "CPKI: estimate {:.0} vs simulated {:.0} ({:.0}% > {:.0}% band)",
                    est.throughput.cpki,
                    actual,
                    rel * 100.0,
                    bands.cpki_rel * 100.0
                )));
            }
        }
        within_factor("clock", est.clock.freq_mhz, run.freq_mhz, bands.clock_factor)?;
        let s = bands.resource_slack as f64;
        let e = &est.resources.total;
        let a = &run.synth.resources;
        within_factor("aluts", e.aluts as f64 + s, a.aluts as f64 + s, bands.resource_factor)?;
        within_factor("regs", e.regs as f64 + s, a.regs as f64 + s, bands.resource_factor)?;
        within_factor(
            "bram_bits",
            e.bram_bits as f64 + 8.0 * s,
            a.bram_bits as f64 + 8.0 * s,
            bands.resource_factor,
        )?;
        within_factor("dsps", e.dsps as f64 + s, a.dsps as f64 + s, bands.resource_factor)?;
        Ok(())
    };
    match compare() {
        Ok(()) => Verdict::Pass,
        Err(v) => v,
    }
}

/// A leaderboard fingerprint: variant tags plus bit-exact EKIT values.
fn board_fingerprint(out: &SearchOutcome) -> Vec<(String, u64)> {
    out.leaderboard.iter().map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits())).collect()
}

/// Oracle 3 — pruned search vs `--exhaustive`: for a randomly drawn
/// kernel, space shape, worker count and board size, the two modes must
/// produce bit-identical leaderboards.
pub fn search_equivalence(g: &mut TirlGen) -> Verdict {
    let kernel: Box<dyn EvalKernel> = if *g.choose(&[true, false]) {
        let side = *g.choose(&[8u64, 12, 16]);
        Box::new(Sor::cubic(side, g.draw_u64(1..=10)))
    } else {
        Box::new(StreamTriad { n: 1 << g.draw_u64(10..=14), nki: g.draw_u64(1..=8) })
    };
    let dev = tytra_device::eval_small();

    let all_lanes = [1u64, 2, 3, 4, 8];
    let keep = g.draw_usize(1..=all_lanes.len());
    let lanes: Vec<u64> = all_lanes.iter().copied().take(keep).collect();
    let vects: Vec<u32> = if *g.choose(&[true, false]) { vec![1, 2] } else { vec![1] };
    let forms =
        if *g.choose(&[true, false]) { vec![MemForm::A, MemForm::B] } else { vec![MemForm::B] };
    let space =
        ExplorationConfig { lanes, vects, forms, include_seq: false, workers: g.draw_usize(1..=4) };
    let top_k = g.draw_usize(1..=10);

    let mut pruned_cfg = SearchConfig::pruned(space.clone());
    pruned_cfg.top_k = top_k;
    let mut exhaustive_cfg = SearchConfig::exhaustive(space);
    exhaustive_cfg.top_k = top_k;

    let pruned = search(kernel.as_ref(), &dev, &pruned_cfg);
    let exhaustive = search(kernel.as_ref(), &dev, &exhaustive_cfg);

    for e in pruned.leaderboard.iter().chain(exhaustive.leaderboard.iter()) {
        if !e.report.throughput.ekit.is_finite() {
            return Verdict::NonFinite(format!("EKIT for {}", e.variant.tag()));
        }
    }
    let fp = board_fingerprint(&pruned);
    let fe = board_fingerprint(&exhaustive);
    if fp == fe {
        Verdict::Pass
    } else {
        Verdict::Disagreement(format!(
            "pruned board {fp:?} != exhaustive board {fe:?} on {}",
            kernel.name()
        ))
    }
}

/// Oracle 4 — warm-vs-cold session bit-identity: a memo-warm re-estimate
/// must equal a fresh session's estimate field-for-field. `CostReport`
/// has no `PartialEq`, but Rust's float `Debug` is round-trip exact, so
/// `Debug`-string equality is bit equality.
pub fn session_determinism(m: &IrModule, dev: &TargetDevice) -> Verdict {
    let mut warm = EstimatorSession::new(dev.clone());
    let first = warm.estimate(m);
    let second = warm.estimate(m);
    let mut cold = EstimatorSession::new(dev.clone());
    let fresh = cold.estimate(m);
    match (first, second, fresh) {
        (Ok(a), Ok(b), Ok(c)) => {
            let (da, db, dc) = (format!("{a:?}"), format!("{b:?}"), format!("{c:?}"));
            if da != db {
                Verdict::Disagreement("warm re-estimate differs from first estimate".into())
            } else if db != dc {
                Verdict::Disagreement("warm session differs from cold session".into())
            } else {
                Verdict::Pass
            }
        }
        (Err(a), Err(b), Err(c)) => {
            if a == b && b == c {
                Verdict::Pass
            } else {
                Verdict::Disagreement(format!("error instability: {a} / {b} / {c}"))
            }
        }
        _ => Verdict::Disagreement("Ok/Err disagreement between warm and cold sessions".into()),
    }
}

/// Oracle 7 — the served cost model equals the offline one.
///
/// Drives the daemon's full per-request path in process — parse →
/// prepare → cache probe → guarded compute → render, via
/// [`tytra_serve::Engine::respond`] — and demands the `estimate`
/// payload be byte-identical to the direct `estimate` rendering for
/// the same design. The identical request is then replayed so the
/// cache-served answer is checked against the computed one, and error
/// inputs must carry the exact category the direct path raises. This
/// is the wire-level face of the session-determinism property: no
/// daemon state (warm session, response cache, batch history) may leak
/// into a response.
pub fn serve_equivalence(m: &IrModule) -> Verdict {
    let src = tytra_ir::print(m);
    let dev = tytra_device::eval_small();
    let m2 = match tytra_ir::parse(&src) {
        Ok(m2) => m2,
        // A print→parse failure is the round-trip oracle's finding.
        Err(_) => return Verdict::Skip("printed source does not reparse".into()),
    };
    let direct = tytra_cost::estimate(&m2, &dev);

    let mut engine = tytra_serve::Engine::new();
    let shared = tytra_serve::Shared::new(64);
    let line = format!(
        "{{\"id\":1,\"kind\":\"estimate\",\"design\":\"{}\",\"target\":\"eval-small\"}}",
        json::escape(&src)
    );
    let cold = engine.respond(&line, &shared);
    let warm = engine.respond(&line, &shared);
    let (Ok(cold), Ok(warm)) = (json::parse(cold.trim_end()), json::parse(warm.trim_end())) else {
        return Verdict::Disagreement("served response is not valid JSON".into());
    };

    match direct {
        Ok(report) => {
            let expected = format!("{report}");
            for (pass, v) in [("cold", &cold), ("warm", &warm)] {
                if v.get("ok").and_then(Json::as_bool) != Some(true) {
                    return Verdict::Disagreement(format!(
                        "{pass} served request failed where the direct estimate succeeded"
                    ));
                }
                if v.get("report").and_then(Json::as_str) != Some(expected.as_str()) {
                    return Verdict::Disagreement(format!(
                        "{pass} served payload differs from the offline cost report"
                    ));
                }
            }
            Verdict::Pass
        }
        Err(e) => {
            for (pass, v) in [("cold", &cold), ("warm", &warm)] {
                if v.get("ok").and_then(Json::as_bool) != Some(false) {
                    return Verdict::Disagreement(format!(
                        "{pass} served request succeeded where the direct estimate failed"
                    ));
                }
                let category =
                    v.get("error").and_then(|x| x.get("category")).and_then(Json::as_str);
                if category != Some(e.category.label()) {
                    return Verdict::Disagreement(format!(
                        "{pass} served error category {category:?} != direct `{}`",
                        e.category.label()
                    ));
                }
            }
            Verdict::Pass
        }
    }
}

/// Oracle 5 — static analysis totality and congruence soundness.
///
/// Part (a): `analyze_module` must be total and deterministic on any
/// validated module — two runs produce `Debug`-identical reports, and
/// both render paths complete (a panic anywhere is caught by the
/// harness and is a finding, mirroring `tybec analyze` on user input).
///
/// Part (b): the congruence key's central promise. For the module and
/// its form-flipped A/B sibling, the keys must be equal exactly when
/// `NKI == 1`; and whenever the keys ARE equal, the full cost reports
/// must be bit-identical after normalizing the one field the key
/// deliberately erases (`params.form`). This is the property the DSE
/// prefilter relies on for leaderboard bit-identity.
pub fn analyze_congruence(m: &IrModule, dev: &TargetDevice) -> Verdict {
    let first = tytra_analyze::analyze_module(m);
    let second = tytra_analyze::analyze_module(m);
    if format!("{first:?}") != format!("{second:?}") {
        return Verdict::Disagreement("analyze_module is not deterministic".into());
    }
    let _ = first.render_text();
    let _ = first.render_json();

    let mut sib = m.clone();
    sib.meta.form = match m.meta.form {
        MemForm::A => MemForm::B,
        MemForm::B => MemForm::A,
        other => other,
    };
    if sib.meta.form == m.meta.form {
        // Forms C/Tiled have no congruent sibling on the A/B axis.
        return Verdict::Pass;
    }
    let congruent = tytra_analyze::congruent(m, &sib);
    if congruent != (m.meta.nki == 1) {
        return Verdict::Disagreement(format!(
            "A/B congruence at NKI {} reported as {congruent}",
            m.meta.nki
        ));
    }
    if !congruent {
        return Verdict::Pass;
    }
    match (tytra_cost::estimate(m, dev), tytra_cost::estimate(&sib, dev)) {
        (Ok(mut a), Ok(mut b)) => {
            a.params.form = MemForm::B;
            b.params.form = MemForm::B;
            let (da, db) = (format!("{a:?}"), format!("{b:?}"));
            if da == db {
                Verdict::Pass
            } else {
                Verdict::Disagreement(
                    "congruent A/B siblings produced different cost reports".into(),
                )
            }
        }
        (Err(a), Err(b)) => {
            if a == b {
                Verdict::Pass
            } else {
                Verdict::Disagreement(format!("congruent siblings erred differently: {a} / {b}"))
            }
        }
        _ => Verdict::Disagreement("Ok/Err disagreement between congruent siblings".into()),
    }
}

/// Oracle 6 — arena/tree bit-identity on any validated module.
///
/// The arena IR ([`ArenaModule`]) carries the estimator's whole hot
/// path, so its contract is total: for any module the generator can
/// produce, (a) the identity patch fingerprints and materializes exactly
/// as the tree; (b) for a sweep of copy-on-write patches over the three
/// patched cells (name, form, DV), `estimate_design`/`bound_design` are
/// `Debug`-bit-identical to a tree session estimating the materialized
/// patch. Float `Debug` is round-trip exact, so string equality is bit
/// equality.
pub fn arena_equivalence(m: &IrModule, dev: &TargetDevice) -> Verdict {
    let arena = ArenaModule::build(m.clone());
    if arena.identity().fingerprint() != tytra_ir::fingerprint_module(m) {
        return Verdict::Disagreement("arena identity fingerprint differs from the tree".into());
    }
    if &arena.identity().materialize() != m {
        return Verdict::Disagreement(
            "arena identity materialization differs from the tree".into(),
        );
    }
    let mut via_arena = EstimatorSession::new(dev.clone());
    let mut via_tree = EstimatorSession::new(dev.clone());
    let patches: [(&str, MemForm, u32); 4] = [
        (&m.name, m.meta.form, m.meta.vect),
        ("fz_patch", MemForm::A, 1),
        ("fz_patch", MemForm::B, 2),
        ("fz_patch", MemForm::Tiled { tiles: 2 }, m.meta.vect),
    ];
    for (name, form, vect) in patches {
        let d = arena.patched(name, form, vect);
        let tree = d.materialize();
        match (via_arena.estimate_design(&d), via_tree.estimate(&tree)) {
            (Ok(a), Ok(t)) => {
                if format!("{a:?}") != format!("{t:?}") {
                    return Verdict::Disagreement(format!(
                        "estimate_design differs from tree estimate on patch {name}/{form:?}/DV{vect}"
                    ));
                }
            }
            (Err(a), Err(t)) => {
                if a != t {
                    return Verdict::Disagreement(format!(
                        "arena/tree estimates erred differently: {a} / {t}"
                    ));
                }
            }
            _ => {
                return Verdict::Disagreement(
                    "Ok/Err disagreement between arena and tree estimates".into(),
                );
            }
        }
        match (via_arena.bound_design(&d), via_tree.bound(&tree)) {
            (Ok(a), Ok(t)) => {
                if format!("{a:?}") != format!("{t:?}") {
                    return Verdict::Disagreement(format!(
                        "bound_design differs from tree bound on patch {name}/{form:?}/DV{vect}"
                    ));
                }
            }
            (Err(a), Err(t)) => {
                if a != t {
                    return Verdict::Disagreement(format!(
                        "arena/tree bounds erred differently: {a} / {t}"
                    ));
                }
            }
            _ => {
                return Verdict::Disagreement(
                    "Ok/Err disagreement between arena and tree bounds".into(),
                );
            }
        }
    }
    Verdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> IrModule {
        let mut g = TirlGen::new(99);
        g.valid_module()
    }

    #[test]
    fn roundtrip_accepts_rejections_and_fixed_points() {
        assert_eq!(roundtrip("not tirl at all"), Verdict::Pass);
        let src = tytra_ir::print(&sample_module());
        assert_eq!(roundtrip(&src), Verdict::Pass);
    }

    #[test]
    fn estimator_vs_sim_passes_on_a_generated_module() {
        let m = sample_module();
        let dev = tytra_device::stratix_v_gsd8();
        let v = estimator_vs_sim(&m, &dev, &ToleranceBands::default());
        assert!(!v.is_failure(), "{v:?}");
    }

    #[test]
    fn session_determinism_holds_on_a_generated_module() {
        let m = sample_module();
        let dev = tytra_device::eval_small();
        assert_eq!(session_determinism(&m, &dev), Verdict::Pass);
    }

    #[test]
    fn search_equivalence_holds_for_a_few_draws() {
        let mut g = TirlGen::new(5);
        for _ in 0..2 {
            assert_eq!(search_equivalence(&mut g), Verdict::Pass);
        }
    }

    #[test]
    fn analyze_congruence_holds_across_nki_values() {
        let dev = tytra_device::eval_small();
        let mut checked_congruent = false;
        for seed in 0..40u64 {
            let mut g = TirlGen::new(seed);
            let m = g.valid_module();
            let v = analyze_congruence(&m, &dev);
            assert!(!v.is_failure(), "seed {seed}: {v:?}");
            checked_congruent |= m.meta.nki == 1;
        }
        assert!(checked_congruent, "no NKI == 1 draw in 40 seeds; widen the loop");
    }

    #[test]
    fn analyze_congruence_flags_a_broken_key() {
        // A hand-built NKI > 1 pair with forcibly equal names would NOT
        // be congruent; the oracle must pass (keys differ as required).
        let mut g = TirlGen::new(7);
        let mut m = g.valid_module();
        m.meta.nki = 5;
        let dev = tytra_device::eval_small();
        assert_eq!(analyze_congruence(&m, &dev), Verdict::Pass);
    }

    #[test]
    fn arena_equivalence_holds_on_generated_modules() {
        let dev = tytra_device::eval_small();
        for seed in [3u64, 17, 99] {
            let mut g = TirlGen::new(seed);
            let m = g.valid_module();
            assert_eq!(arena_equivalence(&m, &dev), Verdict::Pass, "seed {seed}");
        }
    }

    #[test]
    fn verdict_labels_are_stable() {
        assert_eq!(Verdict::Pass.label(), "pass");
        assert_eq!(Verdict::Skip("x".into()).label(), "skip");
        assert_eq!(Verdict::Panic("x".into()).label(), "panic");
        assert_eq!(Verdict::Disagreement("x".into()).label(), "disagreement");
        assert_eq!(Verdict::NonFinite("x".into()).label(), "non-finite");
    }
}
