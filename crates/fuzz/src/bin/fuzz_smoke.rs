//! CI fuzzing smoke run: a fixed-seed differential campaign emitting
//! `BENCH_fuzz.json`, so robustness is a tracked artifact like perf.
//!
//! Usage:
//!
//! ```text
//! fuzz_smoke [--cases N] [--seed S] [--out FILE] [--corpus DIR]
//! ```
//!
//! Defaults: 2,000 cases, seed `0xC0FFEE`, `BENCH_fuzz.json`, corpus in
//! `target/fuzz-corpus`. Exits nonzero if any case panics, disagrees or
//! leaks a non-finite value — CI fails on the first robustness
//! regression, and the minimized crashers land in the corpus directory
//! for triage (each replays from its recorded `(seed, case)` pair).
//!
//! All JSON is hand-rolled — the workspace has no serde.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tytra_fuzz::harness::{self, FuzzConfig};

fn parse_args() -> Result<(FuzzConfig, String), String> {
    let mut cfg = FuzzConfig::smoke();
    cfg.corpus_dir = Some(PathBuf::from("target/fuzz-corpus"));
    let mut args = std::env::args().skip(1);
    let mut out = None;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match a.as_str() {
            "--cases" => {
                cfg.cases = value("--cases")?.parse().map_err(|e| format!("--cases: {e}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                cfg.seed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).map_err(|e| format!("--seed: {e}"))?
                } else {
                    v.parse().map_err(|e| format!("--seed: {e}"))?
                };
            }
            "--out" => out = Some(value("--out")?),
            "--corpus" => cfg.corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((cfg, out.unwrap_or_else(|| "BENCH_fuzz.json".into())))
}

fn main() -> ExitCode {
    let (cfg, out_path) = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fuzz_smoke: {e}");
            eprintln!("usage: fuzz_smoke [--cases N] [--seed S] [--out FILE] [--corpus DIR]");
            return ExitCode::FAILURE;
        }
    };

    let t0 = Instant::now();
    let report = harness::run(&cfg);
    let elapsed_s = t0.elapsed().as_secs_f64();
    let cases_per_sec = if elapsed_s > 0.0 { report.cases as f64 / elapsed_s } else { 0.0 };

    let mut oracles = String::new();
    for (i, (name, (runs, failures))) in report.by_oracle.iter().enumerate() {
        if i > 0 {
            oracles.push_str(", ");
        }
        oracles.push_str(&format!("\"{name}\": {{\"runs\": {runs}, \"failures\": {failures}}}"));
    }
    let json = format!(
        "{{\n  \"bench\": \"fuzz_smoke\",\n  \"seed\": {},\n  \"cases\": {},\n  \
         \"elapsed_s\": {:.3},\n  \"cases_per_sec\": {:.1},\n  \"passes\": {},\n  \
         \"skips\": {},\n  \"panics\": {},\n  \"disagreements\": {},\n  \
         \"non_finite\": {},\n  \"corpus_size\": {},\n  \"oracles\": {{{oracles}}}\n}}\n",
        cfg.seed,
        report.cases,
        elapsed_s,
        cases_per_sec,
        report.passes,
        report.skips,
        report.panics,
        report.disagreements,
        report.non_finite,
        report.corpus_written,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("fuzz_smoke: writing {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    print!("{json}");

    if report.failures() > 0 {
        eprintln!(
            "fuzz_smoke: {} failing case(s) — {} panic, {} disagreement, {} non-finite",
            report.failures(),
            report.panics,
            report.disagreements,
            report.non_finite
        );
        for c in report.crashes.iter().take(10) {
            eprintln!(
                "  case {} [{}]: {}: {}",
                c.case_id,
                c.oracle.label(),
                c.verdict.label(),
                c.verdict.detail().unwrap_or("")
            );
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
