//! The SOR (successive over-relaxation) kernel from the LES weather
//! simulator (paper §II and §VI).
//!
//! The kernel iteratively solves the Poisson equation for the pressure:
//! for every grid point,
//!
//! ```text
//! reltmp = omega * (cn1 * ( cn2l*p[i+1] + cn2s*p[i-1]
//!                         + cn3l*p[j+1] + cn3s*p[j-1]
//!                         + cn4l*p[k+1] + cn4s*p[k-1] ) - rhs) - p
//! p_new  = reltmp + p
//! sorErrAcc += |reltmp|
//! ```
//!
//! This is the *integer* version evaluated in Table II: ui18 data, the
//! relaxation weights `cn*` are compile-time constants (so the multiplies
//! strength-reduce to shift-add networks — the zero-DSP row of Table II)
//! and `omega = 1`.

use crate::common::{at, seeded_array, IntOps};
use crate::EvalKernel;
use std::collections::HashMap;
use tytra_ir::{Opcode, ScalarType};
use tytra_transform::lower::Geometry;
use tytra_transform::{Expr, KernelDef, Reduction};

/// The SOR kernel with an `im × jm × km` grid.
#[derive(Debug, Clone)]
pub struct Sor {
    /// Grid side along i.
    pub im: u64,
    /// Grid side along j.
    pub jm: u64,
    /// Grid side along k.
    pub km: u64,
    /// Kernel-instance repetitions (the LES `nmaxp`, 1000 in §VII).
    pub nki: u64,
}

impl Default for Sor {
    fn default() -> Sor {
        // Table II uses a small validation grid; §VII sweeps 24..192.
        Sor { im: 30, jm: 30, km: 30, nki: 1000 }
    }
}

impl Sor {
    /// Cubic grid of the given side (the Fig 17/18 sweep points).
    pub fn cubic(side: u64, nki: u64) -> Sor {
        Sor { im: side, jm: side, km: side, nki }
    }

    /// Integer relaxation weights (constants; powers of two keep the
    /// shift-add networks small, as the hand-written integer port does).
    pub const CN1: i64 = 2;
    pub const CN2L: i64 = 3;
    pub const CN2S: i64 = 3;
    pub const CN3L: i64 = 5;
    pub const CN3S: i64 = 5;
    pub const CN4L: i64 = 9;
    pub const CN4S: i64 = 9;

    fn plane(&self) -> i64 {
        (self.im * self.jm) as i64
    }

    /// The single-precision floating-point SOR (extension: the paper
    /// evaluates the *integer* versions; the real LES kernel is f32 with
    /// an over-relaxation factor ω = 1.45). Same stencil, FP datapath.
    pub fn float_kernel_def(&self) -> KernelDef {
        use tytra_ir::ScalarType;
        let ft = ScalarType::Float(32);
        let row = self.im as i64;
        let plane = self.plane();
        let term = |off: i64, w: f64| Expr::mul(Expr::off("p", off), Expr::ConstF(w));
        let sum = Expr::add(
            Expr::add(
                Expr::add(term(1, 0.30), term(-1, 0.30)),
                Expr::add(term(row, 0.25), term(-row, 0.25)),
            ),
            Expr::add(term(plane, 0.20), term(-plane, 0.20)),
        );
        let omega = Expr::ConstF(1.45);
        let reltmp = Expr::sub(
            Expr::mul(omega, Expr::sub(Expr::mul(sum, Expr::ConstF(0.65)), Expr::arg("rhs"))),
            Expr::arg("p"),
        );
        let pnew = Expr::add(reltmp.clone(), Expr::arg("p"));
        KernelDef {
            name: "sor_f32".into(),
            elem_ty: ft,
            inputs: vec!["p".into(), "rhs".into()],
            outputs: vec![("pnew".into(), pnew)],
            reductions: vec![Reduction {
                acc: "sorErrAcc".into(),
                op: Opcode::Add,
                value: Expr::Un(Opcode::Abs, Box::new(reltmp)),
            }],
        }
    }

    /// Lower the floating-point version under a variant.
    pub fn lower_float_variant(
        &self,
        variant: &tytra_transform::Variant,
    ) -> Result<tytra_ir::IrModule, tytra_ir::IrError> {
        tytra_transform::lower(&self.float_kernel_def(), &EvalKernel::geometry(self), variant)
    }
}

const TY: ScalarType = ScalarType::UInt(18);

impl EvalKernel for Sor {
    fn name(&self) -> &'static str {
        "sor"
    }

    fn kernel_def(&self) -> KernelDef {
        let row = self.im as i64;
        let plane = self.plane();
        let sum = Expr::add(
            Expr::add(
                Expr::add(
                    Expr::mul(Expr::off("p", 1), Expr::ConstI(Sor::CN2L)),
                    Expr::mul(Expr::off("p", -1), Expr::ConstI(Sor::CN2S)),
                ),
                Expr::add(
                    Expr::mul(Expr::off("p", row), Expr::ConstI(Sor::CN3L)),
                    Expr::mul(Expr::off("p", -row), Expr::ConstI(Sor::CN3S)),
                ),
            ),
            Expr::add(
                Expr::mul(Expr::off("p", plane), Expr::ConstI(Sor::CN4L)),
                Expr::mul(Expr::off("p", -plane), Expr::ConstI(Sor::CN4S)),
            ),
        );
        // omega = 1: reltmp = cn1*sum − rhs − p.
        let reltmp = Expr::sub(
            Expr::sub(Expr::mul(sum, Expr::ConstI(Sor::CN1)), Expr::arg("rhs")),
            Expr::arg("p"),
        );
        let pnew = Expr::add(reltmp.clone(), Expr::arg("p"));
        KernelDef {
            name: "sor".into(),
            elem_ty: TY,
            inputs: vec!["p".into(), "rhs".into()],
            outputs: vec![("pnew".into(), pnew)],
            reductions: vec![Reduction {
                acc: "sorErrAcc".into(),
                op: Opcode::Add,
                value: Expr::Un(Opcode::Abs, Box::new(reltmp)),
            }],
        }
    }

    fn geometry(&self) -> Geometry {
        Geometry { ndrange: vec![self.im, self.jm, self.km], nki: self.nki }
    }

    fn workload(&self) -> HashMap<String, Vec<f64>> {
        let n = (self.im * self.jm * self.km) as usize;
        let mut w = HashMap::new();
        w.insert("p".to_string(), seeded_array(0x50, n, 512));
        w.insert("rhs".to_string(), seeded_array(0x52, n, 512));
        w
    }

    fn reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> (HashMap<String, Vec<f64>>, HashMap<String, f64>) {
        let ops = IntOps::new(TY);
        let p = &inputs["p"];
        let rhs = &inputs["rhs"];
        let n = (self.im * self.jm * self.km) as usize;
        let row = self.im as i64;
        let plane = self.plane();
        let mut pnew = vec![0.0; n];
        let mut err = 0.0;
        for idx in 0..n {
            let i = idx as i64;
            let sum = {
                let a = ops.mul(at(p, i + 1), Sor::CN2L as f64);
                let b = ops.mul(at(p, i - 1), Sor::CN2S as f64);
                let c = ops.mul(at(p, i + row), Sor::CN3L as f64);
                let d = ops.mul(at(p, i - row), Sor::CN3S as f64);
                let e = ops.mul(at(p, i + plane), Sor::CN4L as f64);
                let f = ops.mul(at(p, i - plane), Sor::CN4S as f64);
                // Match the lowered association: ((a+b)+(c+d)) + (e+f).
                ops.add(ops.add(ops.add(a, b), ops.add(c, d)), ops.add(e, f))
            };
            let reltmp = ops.sub(ops.sub(ops.mul(sum, Sor::CN1 as f64), rhs[idx]), p[idx]);
            pnew[idx] = ops.add(reltmp, p[idx]);
            err = ops.add(err, ops.abs(reltmp));
        }
        let mut outs = HashMap::new();
        outs.insert("pnew".to_string(), pnew);
        let mut reds = HashMap::new();
        reds.insert("sorErrAcc".to_string(), err);
        (outs, reds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_transform::Variant;

    #[test]
    fn float_version_lowers_with_deep_fp_pipeline() {
        use tytra_cost::estimate;
        use tytra_device::stratix_v_gsd8;
        let sor = Sor::cubic(24, 10);
        let m = sor.lower_float_variant(&Variant::baseline()).unwrap();
        let dev = stratix_v_gsd8();
        let r = estimate(&m, &dev).unwrap();
        // FP adders/multipliers: thousands of ALUTs, DSPs for the
        // multiplies, and a pipeline tens of stages deep.
        assert!(r.resources.total.aluts > 3000, "{}", r.resources.total);
        assert!(r.resources.total.dsps >= 7);
        assert!(r.params.sched.kpd > 30, "KPD {}", r.params.sched.kpd);
        // Far costlier than the integer version.
        let int_r = estimate(&sor.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
        assert!(r.resources.total.aluts > 5 * int_r.resources.total.aluts);
    }

    #[test]
    fn float_reference_eval_is_finite_and_nontrivial() {
        let sor = Sor::cubic(8, 1);
        let k = sor.float_kernel_def();
        let w = sor.workload();
        let (outs, reds) = k.eval_reference(&w, 512).unwrap();
        assert!(outs["pnew"].iter().all(|v| v.is_finite()));
        assert!(outs["pnew"].iter().any(|&v| v != 0.0));
        assert!(reds["sorErrAcc"] > 0.0);
    }

    #[test]
    fn kernel_census_matches_fig13_scale() {
        let sor = Sor::default();
        let k = sor.kernel_def();
        // 7 multiplies, 5 adds, 2 subs in the update; +1 add, +1 abs,
        // +1 fold in the reduction path (reltmp shared by CSE at lowering
        // but counted per expression here).
        assert!(k.n_ops() >= 15);
        let offs = k.offsets();
        assert_eq!(offs.len(), 6, "six cardinal neighbours");
        assert!(offs.contains(&("p".into(), 900)));
        assert!(offs.contains(&("p".into(), -900)));
    }

    #[test]
    fn lowered_sor_has_fig12_structure() {
        let sor = Sor::default();
        let m = sor.lower_variant(&Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        assert_eq!(f0.offsets().count(), 6);
        assert_eq!(f0.offset_window("p"), 1800);
        assert!(f0.instrs().any(|i| i.is_reduction()));
        // CSE: exactly 7 multiplies despite reltmp appearing twice.
        assert_eq!(f0.instrs().filter(|i| i.op == Opcode::Mul).count(), 7);
    }

    #[test]
    fn reference_is_deterministic_and_nonzero() {
        let sor = Sor::cubic(8, 1);
        let w = sor.workload();
        let (o1, r1) = sor.reference(&w);
        let (o2, r2) = sor.reference(&w);
        assert_eq!(o1["pnew"], o2["pnew"]);
        assert_eq!(r1["sorErrAcc"], r2["sorErrAcc"]);
        assert!(o1["pnew"].iter().any(|&v| v != 0.0));
        assert!(r1["sorErrAcc"] > 0.0);
    }

    #[test]
    fn boundary_cells_use_zero_neighbours() {
        let sor = Sor::cubic(4, 1);
        let mut w = HashMap::new();
        let n = 64;
        w.insert("p".to_string(), vec![1.0; n]);
        w.insert("rhs".to_string(), vec![0.0; n]);
        let (outs, _) = sor.reference(&w);
        // Interior cell: sum = 3+3+5+5+9+9 = 34; reltmp = 68−0−1 = 67;
        // pnew = 68.
        let interior = (1 + 4 + 16) as usize; // (1,1,1)
        assert_eq!(outs["pnew"][interior], 68.0);
        // Corner (0,0,0): only +1, +row, +plane neighbours exist:
        // sum = 3+5+9 = 17, reltmp = 34−1 = 33, pnew = 34.
        assert_eq!(outs["pnew"][0], 34.0);
    }
}
