//! # tytra-kernels — the evaluation kernels
//!
//! The three HPC scientific kernels of the paper's evaluation
//! (section VI-B, Table II):
//!
//! 1. [`sor`] — the successive over-relaxation kernel from the LES
//!    weather simulator (iteratively solves the Poisson equation for the
//!    pressure; the main computation is a stencil over the six cardinal
//!    neighbours);
//! 2. [`hotspot`] — the Rodinia Hotspot benchmark (processor temperature
//!    from an architectural floorplan and simulated power);
//! 3. [`lavamd`] — the Rodinia LavaMD molecular-dynamics kernel
//!    (particle potential/relocation from mutual forces within a 3-D
//!    neighbourhood).
//!
//! A fourth kernel, [`triad`] (the STREAM benchmark the paper's §V-C
//! extends), serves as the canonical memory-bound probe.
//!
//! Each module provides the kernel as a front-end [`KernelDef`]
//! (integer version, as evaluated in the paper), a plain-Rust reference
//! implementation with identical boundary semantics, and a deterministic
//! workload generator. The integration tests check lowered-IR execution
//! against the references element-for-element.
//!
//! [`KernelDef`]: tytra_transform::KernelDef

pub mod common;
pub mod hotspot;
pub mod lavamd;
pub mod sor;
pub mod triad;

pub use hotspot::Hotspot;
pub use lavamd::LavaMd;
pub use sor::Sor;
pub use triad::StreamTriad;

use std::collections::HashMap;
use tytra_ir::{IrError, IrModule};
use tytra_transform::lower::Geometry;
use tytra_transform::{lower, KernelDef, Variant, VariantFactory};

/// Common interface over the three evaluation kernels. `Sync` so sweep
/// drivers can cost variants from worker threads.
pub trait EvalKernel: Sync {
    /// Kernel name as used in reports.
    fn name(&self) -> &'static str;

    /// The front-end definition (integer version).
    fn kernel_def(&self) -> KernelDef;

    /// NDRange + iteration geometry of the standard workload.
    fn geometry(&self) -> Geometry;

    /// Deterministic input arrays for the standard workload (keyed by
    /// stream name, one element per work-item).
    fn workload(&self) -> HashMap<String, Vec<f64>>;

    /// Reference CPU implementation over the workload: output arrays and
    /// reduction values (must equal `kernel_def().eval_reference`, but is
    /// written as the natural nested-loop code — the cross-check is a
    /// test).
    fn reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> (HashMap<String, Vec<f64>>, HashMap<String, f64>);

    /// Approximate integer-op count per work-item of the natural CPU
    /// code (drives the CPU baseline timing model). Uses the lowered,
    /// CSE-shared instruction count — the compiler shares subexpressions
    /// just as the hardware datapath does — plus loop/index overhead.
    fn cpu_ops_per_item(&self) -> u64 {
        let lowered = self
            .lower_variant(&Variant::baseline())
            .map(|m| m.function("f0").map(|f| f.n_instructions()).unwrap_or(0))
            .unwrap_or_else(|_| self.kernel_def().n_ops());
        lowered + 4 // loop control and index arithmetic
    }

    /// Lower the kernel under a variant.
    fn lower_variant(&self, variant: &Variant) -> Result<IrModule, IrError> {
        lower(&self.kernel_def(), &self.geometry(), variant)
    }

    /// A copy-on-write variant factory over the standard workload: one
    /// lowered arena base per structural class, each variant served as a
    /// three-cell patch with the same fingerprint as
    /// [`lower_variant`][EvalKernel::lower_variant] (see
    /// [`tytra_transform::VariantFactory`]). The DSE engine builds one
    /// per sweep and costs designs through the estimator's arena path.
    fn variant_factory(&self) -> VariantFactory {
        VariantFactory::new(self.kernel_def(), self.geometry())
    }
}

/// All three kernels, boxed, for sweep drivers.
pub fn all_kernels() -> Vec<Box<dyn EvalKernel>> {
    vec![Box::new(Sor::default()), Box::new(Hotspot::default()), Box::new(LavaMd::default())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_lower_under_baseline() {
        for k in all_kernels() {
            let m = k.lower_variant(&Variant::baseline()).unwrap();
            assert!(m.total_instructions() > 0, "{}", k.name());
            assert_eq!(m.meta.global_size(), k.geometry().size());
        }
    }

    #[test]
    fn workloads_cover_the_ndrange() {
        for k in all_kernels() {
            let w = k.workload();
            let n = k.geometry().size() as usize;
            let def = k.kernel_def();
            for input in &def.inputs {
                let arr = w.get(input).unwrap_or_else(|| panic!("{} missing {input}", k.name()));
                assert!(arr.len() >= n, "{}::{input}", k.name());
            }
        }
    }

    /// The decisive semantics test: the natural nested-loop reference
    /// equals the front-end evaluator on every kernel.
    #[test]
    fn references_match_frontend_evaluator() {
        for k in all_kernels() {
            let w = k.workload();
            let n = k.geometry().size() as usize;
            let (ref_out, ref_red) = k.reference(&w);
            let (fe_out, fe_red) = k.kernel_def().eval_reference(&w, n).unwrap();
            for (name, arr) in &fe_out {
                let r = &ref_out[name];
                assert_eq!(r.len(), arr.len(), "{}::{name}", k.name());
                for i in 0..arr.len() {
                    assert_eq!(
                        r[i],
                        arr[i],
                        "{}::{name}[{i}] reference {} vs front-end {}",
                        k.name(),
                        r[i],
                        arr[i]
                    );
                }
            }
            for (acc, v) in &fe_red {
                assert_eq!(ref_red[acc], *v, "{}::{acc}", k.name());
            }
        }
    }
}
