//! The Rodinia Hotspot kernel (paper §VI: "used to estimate processor
//! temperature based on an architectural floorplan and simulated power
//! measurements").
//!
//! Per grid cell, the new temperature is the old one plus weighted
//! differences with the four cardinal neighbours plus the local power
//! dissipation:
//!
//! ```text
//! t_new = t + cN*t[n] + cS*t[s] + cE*t[e] + cW*t[w] + cC*t + cP*pwr
//! ```
//!
//! Integer version: ui32 data on a `rows × cols` grid with per-cell
//! *coefficient streams* (the floorplan makes conductances
//! space-dependent), so the six multiplies are genuine variable×variable
//! products — 2 DSPs each at 32 bits, the 12-DSP row of Table II. The
//! row stencil (±cols with cols = 512) makes the offset window
//! `(2·512 + 1) × 32 = 32.8 Kbit` estimated vs `2·512 × 32 = 32.7 Kbit`
//! synthesised — Table II's BRAM row.

use crate::common::{at, seeded_array, IntOps};
use crate::EvalKernel;
use std::collections::HashMap;
use tytra_ir::ScalarType;
use tytra_transform::lower::Geometry;
use tytra_transform::{Expr, KernelDef};

/// The Hotspot kernel on a `rows × cols` floorplan grid.
#[derive(Debug, Clone)]
pub struct Hotspot {
    /// Grid rows.
    pub rows: u64,
    /// Grid columns (the row-stencil offset).
    pub cols: u64,
    /// Time-step iterations.
    pub nki: u64,
}

impl Default for Hotspot {
    fn default() -> Hotspot {
        Hotspot { rows: 512, cols: 512, nki: 100 }
    }
}

const TY: ScalarType = ScalarType::UInt(32);

impl EvalKernel for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn kernel_def(&self) -> KernelDef {
        let c = self.cols as i64;
        let term = |coef: &str, off: i64| Expr::mul(Expr::arg(coef), Expr::off("t", off));
        let sum = Expr::add(
            Expr::add(
                Expr::add(term("cN", -c), term("cS", c)),
                Expr::add(term("cE", 1), term("cW", -1)),
            ),
            Expr::add(
                Expr::mul(Expr::arg("cC"), Expr::arg("t")),
                Expr::mul(Expr::arg("cP"), Expr::arg("pwr")),
            ),
        );
        let tnew = Expr::add(Expr::arg("t"), sum);
        KernelDef {
            name: "hotspot".into(),
            elem_ty: TY,
            inputs: vec![
                "t".into(),
                "pwr".into(),
                "cN".into(),
                "cS".into(),
                "cE".into(),
                "cW".into(),
                "cC".into(),
                "cP".into(),
            ],
            outputs: vec![("tnew".into(), tnew)],
            reductions: vec![],
        }
    }

    fn geometry(&self) -> Geometry {
        Geometry { ndrange: vec![self.rows, self.cols], nki: self.nki }
    }

    fn workload(&self) -> HashMap<String, Vec<f64>> {
        let n = (self.rows * self.cols) as usize;
        let mut w = HashMap::new();
        w.insert("t".to_string(), seeded_array(0x74, n, 4096));
        w.insert("pwr".to_string(), seeded_array(0x70, n, 256));
        for (i, c) in ["cN", "cS", "cE", "cW", "cC", "cP"].iter().enumerate() {
            w.insert(c.to_string(), seeded_array(0xC0 + i as u64, n, 8));
        }
        w
    }

    fn reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> (HashMap<String, Vec<f64>>, HashMap<String, f64>) {
        let ops = IntOps::new(TY);
        let t = &inputs["t"];
        let n = (self.rows * self.cols) as usize;
        let c = self.cols as i64;
        let mut tnew = vec![0.0; n];
        for idx in 0..n {
            let i = idx as i64;
            let tn = ops.mul(inputs["cN"][idx], at(t, i - c));
            let ts = ops.mul(inputs["cS"][idx], at(t, i + c));
            let te = ops.mul(inputs["cE"][idx], at(t, i + 1));
            let tw = ops.mul(inputs["cW"][idx], at(t, i - 1));
            let tc = ops.mul(inputs["cC"][idx], t[idx]);
            let tp = ops.mul(inputs["cP"][idx], inputs["pwr"][idx]);
            let sum = ops.add(ops.add(ops.add(tn, ts), ops.add(te, tw)), ops.add(tc, tp));
            tnew[idx] = ops.add(t[idx], sum);
        }
        let mut outs = HashMap::new();
        outs.insert("tnew".to_string(), tnew);
        (outs, HashMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::Opcode;
    use tytra_transform::Variant;

    #[test]
    fn kernel_has_six_variable_multiplies() {
        let hs = Hotspot::default();
        let m = hs.lower_variant(&Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        let muls: Vec<_> = f0.instrs().filter(|i| i.op == Opcode::Mul).collect();
        assert_eq!(muls.len(), 6);
        assert!(muls.iter().all(|i| !i.has_const_operand()), "all variable");
    }

    #[test]
    fn offset_window_matches_table2_bram_row() {
        let hs = Hotspot::default();
        let m = hs.lower_variant(&Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        // ±512 on a ui32 stream: estimator window (1024+1)×32 = 32800.
        assert_eq!(f0.offset_window("t"), 1024);
        assert_eq!((f0.offset_window("t") + 1) * 32, 32_800);
    }

    #[test]
    fn geometry_is_512_square() {
        let hs = Hotspot::default();
        assert_eq!(hs.geometry().size(), 262_144);
    }

    #[test]
    fn reference_interior_cell_hand_check() {
        let hs = Hotspot { rows: 4, cols: 4, nki: 1 };
        let n = 16;
        let mut w: HashMap<String, Vec<f64>> = HashMap::new();
        w.insert("t".into(), (0..n).map(|i| i as f64).collect());
        w.insert("pwr".into(), vec![2.0; n as usize]);
        for c in ["cN", "cS", "cE", "cW", "cC", "cP"] {
            w.insert(c.into(), vec![1.0; n as usize]);
        }
        let (outs, _) = hs.reference(&w);
        // Cell 5: n=1, s=9, e=6, w=4, c=5, p=2 → sum 27, t_new 32.
        assert_eq!(outs["tnew"][5], 32.0);
        // Corner cell 0: n,w out of range (0), s=4, e=1, c=0, p=2 → 7.
        assert_eq!(outs["tnew"][0], 7.0);
    }
}
