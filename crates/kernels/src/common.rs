//! Shared helpers: deterministic workload generation and width-masked
//! integer arithmetic matching the hardware datapath.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tytra_ir::ScalarType;

/// Deterministic array of non-negative integers in `[0, max)`, stored as
/// f64 (the exchange format of the reference evaluators).
pub fn seeded_array(seed: u64, n: usize, max: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x006b_6572_6e65_6c73);
    (0..n).map(|_| rng.random_range(0..max) as f64).collect()
}

/// Width-masked integer arithmetic helper mirroring the hardware
/// semantics (wrap modulo 2^w, sign-extend for signed types).
#[derive(Debug, Clone, Copy)]
pub struct IntOps {
    ty: ScalarType,
}

impl IntOps {
    /// Ops at the given type.
    pub fn new(ty: ScalarType) -> IntOps {
        IntOps { ty }
    }

    /// Mask a raw value into the type's range.
    pub fn mask(&self, v: i128) -> i128 {
        let w = u32::from(self.ty.bits()).min(63);
        let modulus: i128 = 1i128 << w;
        let r = v.rem_euclid(modulus);
        if self.ty.is_signed() && r >= modulus / 2 {
            r - modulus
        } else {
            r
        }
    }

    /// Masked add.
    pub fn add(&self, a: f64, b: f64) -> f64 {
        self.mask(a as i128 + b as i128) as f64
    }

    /// Masked subtract.
    pub fn sub(&self, a: f64, b: f64) -> f64 {
        self.mask(a as i128 - b as i128) as f64
    }

    /// Masked multiply.
    pub fn mul(&self, a: f64, b: f64) -> f64 {
        self.mask(a as i128 * b as i128) as f64
    }

    /// Masked absolute value.
    pub fn abs(&self, a: f64) -> f64 {
        self.mask((a as i128).abs()) as f64
    }
}

/// Read a flat 2-D array with zero outside the range — the stream-offset
/// boundary semantics.
#[inline]
pub fn at(data: &[f64], idx: i64) -> f64 {
    if idx >= 0 && (idx as usize) < data.len() {
        data[idx as usize]
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_arrays_are_deterministic_and_bounded() {
        let a = seeded_array(42, 1000, 100);
        let b = seeded_array(42, 1000, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..100.0).contains(&v)));
        let c = seeded_array(43, 1000, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn masked_ops_wrap_at_width() {
        let ops = IntOps::new(ScalarType::UInt(8));
        assert_eq!(ops.add(200.0, 100.0), 44.0);
        assert_eq!(ops.mul(16.0, 16.0), 0.0);
        assert_eq!(ops.sub(3.0, 5.0), 254.0);
    }

    #[test]
    fn signed_masking() {
        let ops = IntOps::new(ScalarType::Int(8));
        assert_eq!(ops.add(100.0, 100.0), -56.0);
        assert_eq!(ops.abs(-5.0), 5.0);
        assert_eq!(ops.sub(0.0, 128.0), -128.0);
    }

    #[test]
    fn boundary_reads_are_zero() {
        let d = [1.0, 2.0, 3.0];
        assert_eq!(at(&d, -1), 0.0);
        assert_eq!(at(&d, 0), 1.0);
        assert_eq!(at(&d, 2), 3.0);
        assert_eq!(at(&d, 3), 0.0);
    }
}
