//! The STREAM *triad* kernel — the memory-bandwidth benchmark the
//! paper's sustained-bandwidth experiments extend ("we performed a set
//! of experiments by extending the stream benchmark [16] to OpenCL",
//! §V-C; [16] is McCalpin's STREAM).
//!
//! `y[i] = a[i] + s · b[i]` — trivially compute-light and traffic-heavy
//! (12 bytes in, 4 bytes out per item at ui32), which makes it the
//! canonical memory-bound probe for the DSE engine and the roofline
//! view: its arithmetic intensity is far left of every device's ridge.

use crate::common::{seeded_array, IntOps};
use crate::EvalKernel;
use std::collections::HashMap;
use tytra_ir::ScalarType;
use tytra_transform::lower::Geometry;
use tytra_transform::{Expr, KernelDef};

/// The STREAM triad over `n` elements.
#[derive(Debug, Clone)]
pub struct StreamTriad {
    /// Elements per array.
    pub n: u64,
    /// Benchmark repetitions.
    pub nki: u64,
}

impl Default for StreamTriad {
    fn default() -> StreamTriad {
        StreamTriad { n: 1 << 22, nki: 10 }
    }
}

const TY: ScalarType = ScalarType::UInt(32);

impl EvalKernel for StreamTriad {
    fn name(&self) -> &'static str {
        "stream-triad"
    }

    fn kernel_def(&self) -> KernelDef {
        KernelDef {
            name: "triad".into(),
            elem_ty: TY,
            inputs: vec!["a".into(), "b".into(), "s".into()],
            outputs: vec![(
                "y".into(),
                Expr::add(Expr::arg("a"), Expr::mul(Expr::arg("s"), Expr::arg("b"))),
            )],
            reductions: vec![],
        }
    }

    fn geometry(&self) -> Geometry {
        Geometry { ndrange: vec![self.n], nki: self.nki }
    }

    fn workload(&self) -> HashMap<String, Vec<f64>> {
        let n = self.n as usize;
        let mut w = HashMap::new();
        w.insert("a".to_string(), seeded_array(0xA1, n, 1 << 20));
        w.insert("b".to_string(), seeded_array(0xB1, n, 1 << 20));
        w.insert("s".to_string(), seeded_array(0x51, n, 8));
        w
    }

    fn reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> (HashMap<String, Vec<f64>>, HashMap<String, f64>) {
        let ops = IntOps::new(TY);
        let n = self.n as usize;
        let (a, b, s) = (&inputs["a"], &inputs["b"], &inputs["s"]);
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] = ops.add(a[i], ops.mul(s[i], b[i]));
        }
        let mut outs = HashMap::new();
        outs.insert("y".to_string(), y);
        (outs, HashMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_cost::{estimate, Limiter};
    use tytra_device::{stratix_v_gsd8, virtex7_adm7v3};
    use tytra_transform::Variant;

    #[test]
    fn triad_is_memory_bound_on_the_fig10_board() {
        // On the Virtex baseline link the triad's 16 B/item dwarf its
        // two operations — the DRAM wall binds even at one lane.
        let t = StreamTriad { n: 1 << 22, nki: 10 };
        let dev = virtex7_adm7v3();
        let r = estimate(&t.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
        assert_eq!(r.limiter, Limiter::DramBandwidth, "{}", r.render());
        assert!(r.throughput.t_memory > r.throughput.t_compute);
    }

    #[test]
    fn lanes_buy_far_less_than_linear_on_a_memory_bound_kernel() {
        // Replicating a bandwidth-bound kernel helps only as far as the
        // extra concurrent streams raise the *sustained* aggregate (a
        // single stream cannot saturate the Fig 10 link); it stays far
        // from the 8× a compute-bound kernel would enjoy, and the DRAM
        // wall keeps binding.
        let t = StreamTriad { n: 1 << 22, nki: 10 };
        let dev = virtex7_adm7v3();
        let e1 = estimate(&t.lower_variant(&Variant::baseline()).unwrap(), &dev).unwrap();
        let e8 =
            estimate(&t.lower_variant(&Variant { lanes: 8, ..Variant::baseline() }).unwrap(), &dev)
                .unwrap();
        let gain = e8.throughput.ekit / e1.throughput.ekit;
        assert!(gain < 4.0, "8 lanes bought {gain}x on a memory-bound kernel");
        assert_eq!(e8.limiter, Limiter::DramBandwidth);
    }

    #[test]
    fn triad_reference_matches_frontend() {
        let t = StreamTriad { n: 4096, nki: 1 };
        let w = t.workload();
        let (r_out, _) = t.reference(&w);
        let (f_out, _) = t.kernel_def().eval_reference(&w, 4096).unwrap();
        assert_eq!(r_out["y"], f_out["y"]);
    }

    #[test]
    fn triad_roofline_sits_left_of_the_ridge() {
        let t = StreamTriad { n: 1 << 22, nki: 10 };
        let dev = stratix_v_gsd8();
        let m = t.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();
        let r = estimate(&m, &dev).unwrap();
        // ~3 ops over 16 bytes: intensity < 0.25 ops/byte.
        let ni = r.params.sched.ni as f64;
        let intensity = ni / r.params.bytes_per_item as f64;
        assert!(intensity < 0.3, "{intensity}");
    }
}
