//! The Rodinia LavaMD kernel (paper §VI: "calculates particle potential
//! and relocation due to mutual forces between particles within a large
//! 3D space").
//!
//! Streamed integer form: particles are ordered by box; each work-item
//! computes its interaction with the six nearest stream neighbours
//! (offsets ±1, ±2, ±3):
//!
//! ```text
//! for o in {±1, ±2, ±3}:
//!   dx = x[o] − x;  dy = y[o] − y;  dz = z[o] − z
//!   d2 = dx² + dy² + dz²
//!   v += q[o] * d2
//! pot = v * SCALE;  disp = (v − q) * SCALE
//! ```
//!
//! ui18 data; the 6 × 4 distance/charge products plus the two output
//! scalings make 26 genuine 18-bit multiplies — the 26-DSP estimate of
//! Table II, which the toolchain's opportunistic DSP pairing brings down
//! to 23. No row-sized offsets, so BRAM is zero (Table II's LavaMD row).

use crate::common::{at, seeded_array, IntOps};
use crate::EvalKernel;
use std::collections::HashMap;
use tytra_ir::{Opcode, ScalarType};
use tytra_transform::lower::Geometry;
use tytra_transform::{Expr, KernelDef, Reduction};

/// The LavaMD kernel over `n_particles` stream-ordered particles.
#[derive(Debug, Clone)]
pub struct LavaMd {
    /// Particles in the stream.
    pub n_particles: u64,
    /// Force-evaluation iterations.
    pub nki: u64,
}

impl Default for LavaMd {
    fn default() -> LavaMd {
        LavaMd { n_particles: 65_536, nki: 10 }
    }
}

const TY: ScalarType = ScalarType::UInt(18);
/// Output scaling factor (variable in the real code; a stream here).
const NEIGHBOURS: [i64; 6] = [1, -1, 2, -2, 3, -3];

impl EvalKernel for LavaMd {
    fn name(&self) -> &'static str {
        "lavamd"
    }

    fn kernel_def(&self) -> KernelDef {
        // v = Σ_o q[o] · ((x[o]−x)² + (y[o]−y)² + (z[o]−z)²)
        let mut v: Option<Expr> = None;
        for &o in &NEIGHBOURS {
            let sq = |axis: &str| {
                let d = Expr::sub(Expr::off(axis, o), Expr::arg(axis));
                Expr::mul(d.clone(), d)
            };
            let d2 = Expr::add(Expr::add(sq("x"), sq("y")), sq("z"));
            let term = Expr::mul(Expr::off("q", o), d2);
            v = Some(match v {
                None => term,
                Some(acc) => Expr::add(acc, term),
            });
        }
        let v = v.expect("six neighbours");
        let pot = Expr::mul(v.clone(), Expr::arg("s"));
        let disp = Expr::mul(Expr::sub(v.clone(), Expr::arg("q")), Expr::arg("s"));
        KernelDef {
            name: "lavamd".into(),
            elem_ty: TY,
            inputs: vec!["x".into(), "y".into(), "z".into(), "q".into(), "s".into()],
            outputs: vec![("pot".into(), pot), ("disp".into(), disp)],
            reductions: vec![Reduction { acc: "potAcc".into(), op: Opcode::Add, value: v }],
        }
    }

    fn geometry(&self) -> Geometry {
        Geometry { ndrange: vec![self.n_particles], nki: self.nki }
    }

    fn workload(&self) -> HashMap<String, Vec<f64>> {
        let n = self.n_particles as usize;
        let mut w = HashMap::new();
        w.insert("x".to_string(), seeded_array(0x78, n, 64));
        w.insert("y".to_string(), seeded_array(0x79, n, 64));
        w.insert("z".to_string(), seeded_array(0x7A, n, 64));
        w.insert("q".to_string(), seeded_array(0x71, n, 16));
        w.insert("s".to_string(), seeded_array(0x73, n, 4));
        w
    }

    fn reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
    ) -> (HashMap<String, Vec<f64>>, HashMap<String, f64>) {
        let ops = IntOps::new(TY);
        let n = self.n_particles as usize;
        let (x, y, z) = (&inputs["x"], &inputs["y"], &inputs["z"]);
        let (q, s) = (&inputs["q"], &inputs["s"]);
        let mut pot = vec![0.0; n];
        let mut disp = vec![0.0; n];
        let mut pot_acc = 0.0;
        for idx in 0..n {
            let i = idx as i64;
            let mut v = 0.0;
            for &o in &NEIGHBOURS {
                let dx = ops.sub(at(x, i + o), x[idx]);
                let dy = ops.sub(at(y, i + o), y[idx]);
                let dz = ops.sub(at(z, i + o), z[idx]);
                let d2 = ops.add(ops.add(ops.mul(dx, dx), ops.mul(dy, dy)), ops.mul(dz, dz));
                v = ops.add(v, ops.mul(at(q, i + o), d2));
            }
            pot[idx] = ops.mul(v, s[idx]);
            disp[idx] = ops.mul(ops.sub(v, q[idx]), s[idx]);
            pot_acc = ops.add(pot_acc, v);
        }
        let mut outs = HashMap::new();
        outs.insert("pot".to_string(), pot);
        outs.insert("disp".to_string(), disp);
        let mut reds = HashMap::new();
        reds.insert("potAcc".to_string(), pot_acc);
        (outs, reds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_transform::Variant;

    #[test]
    fn twenty_six_variable_multiplies() {
        let md = LavaMd::default();
        let m = md.lower_variant(&Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        let muls = f0.instrs().filter(|i| i.op == Opcode::Mul && !i.has_const_operand()).count();
        assert_eq!(muls, 26, "6 neighbours × (3 squares + 1 charge) + 2 scalings");
    }

    #[test]
    fn no_row_sized_offsets_means_no_bram() {
        let md = LavaMd::default();
        let m = md.lower_variant(&Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        // Largest window is ±3 → 7 elements of 18 bits = 126 bits, below
        // the register-spill threshold.
        for src in f0.offset_sources() {
            assert!(f0.offset_window(src) <= 6, "window for {src}");
        }
    }

    #[test]
    fn reference_hand_check_tiny() {
        let md = LavaMd { n_particles: 4, nki: 1 };
        let mut w: HashMap<String, Vec<f64>> = HashMap::new();
        // All particles on a line, unit spacing in x.
        w.insert("x".into(), vec![0.0, 1.0, 2.0, 3.0]);
        w.insert("y".into(), vec![0.0; 4]);
        w.insert("z".into(), vec![0.0; 4]);
        w.insert("q".into(), vec![1.0; 4]);
        w.insert("s".into(), vec![1.0; 4]);
        let (outs, reds) = md.reference(&w);
        // Particle 1: neighbours at x = 2,0,3,(−1→0),(4→0),(−2→0):
        // d² = 1,1,4,1,1,4 with q = 1,1,1,0,0,0... boundary reads give
        // x=0,q=0 ⇒ terms: o=+1: d²=1 q=1 → 1; o=−1: d²=1 q=1 → 1;
        // o=+2: d²=4 q=1 → 4; o=−2: x=0 ⇒ d=−1 d²=1, q=0 → 0;
        // o=+3: x=0 ⇒ d=−1, d²=1, q=0 → 0; o=−3: same → 0. v = 6.
        assert_eq!(outs["pot"][1], 6.0);
        assert_eq!(outs["disp"][1], 5.0);
        assert!(reds["potAcc"] > 0.0);
    }

    #[test]
    fn workload_shapes() {
        let md = LavaMd::default();
        let w = md.workload();
        assert_eq!(w["x"].len(), 65_536);
        assert_eq!(w.len(), 5);
    }
}
