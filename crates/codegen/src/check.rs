//! A miniature structural Verilog checker.
//!
//! Not a synthesiser — a fast sanity net for the emitter and for user
//! inspection via `tybec hdl --check`: module/endmodule balance, unique
//! module names, identifier declare-before-use within a module, and
//! instance references to defined modules.

use std::collections::HashSet;
use std::fmt;

/// A structural problem found in emitted Verilog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// `endmodule` without `module` or file ends inside a module.
    Unbalanced(String),
    /// The same module name defined twice.
    DuplicateModule(String),
    /// An identifier used before any declaration in its module.
    UndeclaredIdentifier {
        /// Module where the use occurred.
        module: String,
        /// The identifier.
        ident: String,
        /// 1-based line number.
        line: usize,
    },
    /// An instantiated module type that is never defined.
    UnknownModuleType {
        /// Referencing module.
        module: String,
        /// The missing type.
        ty: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Unbalanced(m) => write!(f, "unbalanced module structure near `{m}`"),
            CheckError::DuplicateModule(m) => write!(f, "module `{m}` defined twice"),
            CheckError::UndeclaredIdentifier { module, ident, line } => {
                write!(f, "`{ident}` used before declaration in `{module}` (line {line})")
            }
            CheckError::UnknownModuleType { module, ty } => {
                write!(f, "`{module}` instantiates unknown module `{ty}`")
            }
        }
    }
}

// Note: `clk` and `rst` are ordinary identifiers, not keywords — the
// emitter declares them as ports like any other signal, and listing them
// here would hide genuine undeclared-identifier defects.
const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "assign",
    "always",
    "posedge",
    "negedge",
    "begin",
    "end",
    "if",
    "else",
    "for",
    "integer",
    "parameter",
    "localparam",
    "generate",
    "endgenerate",
];

/// Run the structural check over a Verilog source.
pub fn check(src: &str) -> Result<(), Vec<CheckError>> {
    let mut errors = Vec::new();
    let mut defined_modules: HashSet<String> = HashSet::new();
    let mut instantiated: Vec<(String, String)> = Vec::new();

    let mut current: Option<String> = None;
    let mut declared: HashSet<String> = HashSet::new();
    let mut pending_uses: Vec<(String, usize)> = Vec::new();

    for (ln, raw) in src.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("");
        if line.trim_start().starts_with('.') {
            // Instance port-connection line: `.port(expr), .port(expr)`.
            // Port names belong to the instantiated module; expressions
            // are uses in the current one.
            if current.is_some() {
                for conn in line.split('.').skip(1) {
                    if let Some(inner) = conn.split('(').nth(1) {
                        let expr = inner.split(')').next().unwrap_or("");
                        for ident in tokenize(expr) {
                            if !KEYWORDS.contains(&ident.as_str()) {
                                pending_uses.push((ident, ln + 1));
                            }
                        }
                    }
                }
            }
            continue;
        }
        let tokens = tokenize(line);
        let mut k = 0;
        while k < tokens.len() {
            let t = &tokens[k];
            match t.as_str() {
                "module" => {
                    if current.is_some() {
                        errors.push(CheckError::Unbalanced(t.clone()));
                    }
                    if let Some(name) = tokens.get(k + 1) {
                        if !defined_modules.insert(name.clone()) {
                            errors.push(CheckError::DuplicateModule(name.clone()));
                        }
                        current = Some(name.clone());
                        declared.clear();
                        pending_uses.clear();
                    }
                    // Skip the header tokens (ports are declarations).
                    for t2 in tokens.iter().skip(k + 2) {
                        if !KEYWORDS.contains(&t2.as_str()) {
                            declared.insert(t2.clone());
                        }
                    }
                    k = tokens.len();
                    continue;
                }
                "endmodule" => {
                    if current.is_none() {
                        errors.push(CheckError::Unbalanced("endmodule".into()));
                    }
                    // Resolve pending uses now that the module is closed
                    // (declarations may follow uses textually in
                    // continuation lines of headers, but within bodies we
                    // require declare-before-use; pending covers instance
                    // output wiring).
                    for (ident, line_no) in pending_uses.drain(..) {
                        if !declared.contains(&ident) {
                            errors.push(CheckError::UndeclaredIdentifier {
                                module: current.clone().unwrap_or_default(),
                                ident,
                                line: line_no,
                            });
                        }
                    }
                    current = None;
                }
                "input" | "output" | "inout" | "wire" | "reg" | "integer" | "parameter"
                | "localparam" => {
                    // Everything non-keyword on a declaration line is
                    // declared (covers `wire [7:0] a = b;` — b must
                    // already exist, but we accept it as part of the
                    // declaration line for simplicity and instead catch
                    // wholly-unknown names).
                    for t2 in tokens.iter().skip(k + 1) {
                        if !KEYWORDS.contains(&t2.as_str()) {
                            declared.insert(t2.clone());
                        }
                    }
                    k = tokens.len();
                    continue;
                }
                _ => {
                    if current.is_some()
                        && defined_or_primitive(t)
                        && tokens
                            .get(k + 1)
                            .map(|n| !KEYWORDS.contains(&n.as_str()))
                            .unwrap_or(false)
                        && line.contains('(')
                        && (t.starts_with("tytra_"))
                    {
                        // Instance: `tytra_foo name ( ... )`.
                        instantiated.push((current.clone().unwrap_or_default(), t.clone()));
                        // Instance names and port connections count as
                        // uses/decls handled elsewhere; skip line.
                        k = tokens.len();
                        continue;
                    }
                    if current.is_some() && !KEYWORDS.contains(&t.as_str()) {
                        pending_uses.push((t.clone(), ln + 1));
                    }
                }
            }
            k += 1;
        }
    }
    if current.is_some() {
        errors.push(CheckError::Unbalanced("<eof>".into()));
    }
    for (m, ty) in instantiated {
        if !defined_modules.contains(&ty) {
            errors.push(CheckError::UnknownModuleType { module: m, ty });
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn defined_or_primitive(t: &str) -> bool {
    t.chars().next().map(|c| c.is_ascii_alphabetic() || c == '_').unwrap_or(false)
}

fn tokenize(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_based_literal = false;
    for c in line.chars() {
        if c == '\'' {
            // Verilog sized literal (8'd255, 1'b0): swallow the base+value.
            cur.clear();
            in_based_literal = true;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == '_' {
            if !in_based_literal {
                cur.push(c);
            }
        } else {
            in_based_literal = false;
            if !cur.is_empty() && !cur.chars().next().unwrap().is_ascii_digit() {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !in_based_literal && !cur.is_empty() && !cur.chars().next().unwrap().is_ascii_digit() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
module tytra_a (
  input clk,
  input [7:0] x,
  output [7:0] y
);
  wire [7:0] t = x + 8'd1;
  assign y = t;
endmodule

module tytra_b (
  input clk
);
  wire [7:0] u;
  tytra_a inner (
    .clk(clk), .x(u), .y(u)
  );
endmodule
"#;

    #[test]
    fn accepts_well_formed_source() {
        check(GOOD).unwrap();
    }

    #[test]
    fn rejects_unbalanced_modules() {
        let bad = "module tytra_a (\n input clk\n);\n wire w;\n";
        let errs = check(bad).unwrap_err();
        assert!(errs.iter().any(|e| matches!(e, CheckError::Unbalanced(_))), "{errs:?}");
    }

    #[test]
    fn rejects_duplicate_module_names() {
        let bad = "module m (input clk);\nendmodule\nmodule m (input clk);\nendmodule\n";
        let errs = check(bad).unwrap_err();
        assert!(errs.contains(&CheckError::DuplicateModule("m".into())));
    }

    #[test]
    fn rejects_undeclared_identifier() {
        let bad = "module m (input clk);\n  assign ghost_wire_use = 1;\nendmodule\n";
        let errs = check(bad).unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                CheckError::UndeclaredIdentifier { ident, .. } if ident == "ghost_wire_use"
            )),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_unknown_instance_type() {
        let bad =
            "module tytra_m (input clk);\n  tytra_ghost g (\n    .clk(clk)\n  );\nendmodule\n";
        let errs = check(bad).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            CheckError::UnknownModuleType { ty, .. } if ty == "tytra_ghost"
        )));
    }

    #[test]
    fn undeclared_clk_and_rst_are_reported() {
        // `clk`/`rst` are ordinary identifiers: using them without a port
        // or net declaration is an error like any other.
        let bad = "module m (input x, output y);\n  always @(posedge clk) begin\n    \
                   if (rst) ghost <= x;\n  end\nendmodule\n";
        let errs = check(bad).unwrap_err();
        for ident in ["clk", "rst"] {
            assert!(
                errs.iter().any(|e| matches!(
                    e,
                    CheckError::UndeclaredIdentifier { ident: i, .. } if i == ident
                )),
                "`{ident}` should be reported: {errs:?}"
            );
        }
    }

    #[test]
    fn declared_clk_and_rst_are_accepted() {
        let good = "module m (\n  input clk,\n  input rst,\n  input x,\n  output y\n);\n  \
                    reg y;\n  always @(posedge clk) begin\n    if (rst) y <= 1'b0;\n    \
                    else y <= x;\n  end\nendmodule\n";
        check(good).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn errors_render() {
        for e in [
            CheckError::Unbalanced("x".into()),
            CheckError::DuplicateModule("m".into()),
            CheckError::UndeclaredIdentifier { module: "m".into(), ident: "w".into(), line: 3 },
            CheckError::UnknownModuleType { module: "m".into(), ty: "t".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
