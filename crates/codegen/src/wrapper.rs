//! HLS-framework integration wrapper (paper §VII, Fig 16).
//!
//! "Integrating custom code with Maxeler requires a wrapper kernel
//! written in its kernel language MaxJ for the custom HDL module.
//! Currently, we create the MaxJ wrapper kernel manually for each
//! design, but generating them in our compiler is expected to be a
//! relatively trivial engineering task." — this module is that task: a
//! MaxJ-style wrapper-kernel source naming every stream of the design
//! and instantiating the generated compute unit as custom HDL.

use std::fmt::Write;
use tytra_ir::{IrModule, StreamDir};

/// Emit a MaxJ-style wrapper kernel for the design's compute unit.
pub fn emit_maxj_wrapper(m: &IrModule) -> String {
    let mut s = String::new();
    let class = camel(&m.name);
    let _ = writeln!(s, "// Auto-generated Maxeler wrapper kernel for `{}`", m.name);
    let _ = writeln!(s, "package tytra.generated;");
    let _ = writeln!(s, "import com.maxeler.maxcompiler.v2.kernelcompiler.Kernel;");
    let _ = writeln!(s, "import com.maxeler.maxcompiler.v2.kernelcompiler.KernelParameters;");
    let _ = writeln!(s, "import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEVar;");
    let _ = writeln!(s);
    let _ = writeln!(s, "class {class}Kernel extends Kernel {{");
    let _ = writeln!(s, "    {class}Kernel(KernelParameters parameters) {{");
    let _ = writeln!(s, "        super(parameters);");
    for p in &m.ports {
        let ty = format!("dfeUInt({})", p.ty.bits());
        match p.dir {
            StreamDir::Read => {
                let _ = writeln!(
                    s,
                    "        DFEVar {} = io.input(\"{}\", {ty});",
                    ident(&p.name),
                    p.stream
                );
            }
            StreamDir::Write => {
                let _ = writeln!(
                    s,
                    "        DFEVar {} = {ty}.newInstance(this); // driven by custom HDL",
                    ident(&p.name)
                );
            }
        }
    }
    let _ = writeln!(s, "        // Custom HDL insertion point: tytra_{}_cu", ident(&m.name));
    for p in &m.ports {
        if p.dir == StreamDir::Write {
            let _ = writeln!(
                s,
                "        io.output(\"{}\", {}, dfeUInt({}));",
                p.stream,
                ident(&p.name),
                p.ty.bits()
            );
        }
    }
    let _ = writeln!(s, "    }}");
    let _ = writeln!(s, "}}");
    s
}

fn ident(n: &str) -> String {
    n.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

fn camel(n: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in n.chars() {
        if c.is_ascii_alphanumeric() {
            if upper {
                out.extend(c.to_uppercase());
                upper = false;
            } else {
                out.push(c);
            }
        } else {
            upper = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType};

    fn module() -> IrModule {
        let t = ScalarType::UInt(18);
        let mut b = ModuleBuilder::new("sor_c2");
        b.global_input("p", t, 64);
        b.global_output("pnew", t, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", t);
            f.output("pnew", t);
            let p = f.arg("p");
            let v = f.instr(Opcode::Add, t, vec![p, f.imm(1)]);
            f.write_out("pnew", v);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        b.finish().unwrap()
    }

    #[test]
    fn wrapper_names_every_stream() {
        let w = emit_maxj_wrapper(&module());
        assert!(w.contains("class SorC2Kernel extends Kernel"));
        assert!(w.contains("io.input(\"strobj_p\", dfeUInt(18));"));
        assert!(w.contains("io.output(\"strobj_pnew\""));
        assert!(w.contains("tytra_sor_c2_cu"));
    }

    #[test]
    fn camel_casing() {
        assert_eq!(camel("sor_c2"), "SorC2");
        assert_eq!(camel("hotspot"), "Hotspot");
        assert_eq!(camel("a_b_c"), "ABC");
    }
}
