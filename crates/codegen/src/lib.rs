//! # tytra-codegen — HDL emission
//!
//! The code-generation flow of paper Fig 11 (yellow stages): from a
//! validated TyTra-IR design variant, generate synthesizable Verilog —
//! core-compute pipelines with scheduled SSA instructions and data/control
//! delay lines, offset buffers, stream counters/control, custom
//! combinational blocks, and a top-level compute-unit wrapper — plus the
//! MaxJ-style wrapper-kernel stub used for HLS-framework integration
//! (Fig 16).
//!
//! [`verilog::emit_design`] is deterministic: identical IR yields
//! byte-identical HDL. [`check()`][check::check] is a miniature structural Verilog
//! checker (balanced modules, declare-before-use, unique module names)
//! used by the tests and by `tybec` to sanity-check emitted output.

pub mod check;
pub mod verilog;
pub mod wrapper;

pub use check::{check, CheckError};
pub use verilog::emit_design;
pub use wrapper::emit_maxj_wrapper;
