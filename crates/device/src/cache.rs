//! Session-scoped memoization of calibration-curve lookups.
//!
//! The calibration fits ([`OpCostModel`]) and the empirical bandwidth
//! tables ([`BandwidthModel`]) are evaluated thousands of times per DSE
//! sweep, almost always at a handful of distinct `(opcode, type)` or
//! `(pattern, size)` points. [`CurveCache`] interns those evaluations
//! behind interior mutability so one shared reference can serve every
//! cost pass of an estimator session; the cached value is the *exact*
//! `f64`/[`ResourceVector`] the underlying model produced, so memoized
//! estimates stay bit-identical to fresh ones.
//!
//! The cache is deliberately device-agnostic: each method takes the
//! model to consult on a miss, and the owner (one estimator session per
//! target) guarantees a cache never sees two different devices.

use crate::bandwidth::BandwidthModel;
use crate::calibration::OpCostModel;
use crate::resources::ResourceVector;
use std::cell::RefCell;
use tytra_ir::{AccessPattern, LatencyModel, Opcode, ScalarType};
use tytra_trace::bounded::BoundedMap;
use tytra_trace::metrics::{Counter, Registry};

/// Which link a bandwidth lookup is for (part of the memo key, so the
/// host and DRAM curves of one device never alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Host ↔ device (PCIe DMA).
    Host,
    /// Device DRAM.
    Dram,
}

type OpKey = (Opcode, ScalarType);

/// Entries each memo table may hold before the CLOCK hand starts
/// evicting. The op-keyed tables see a handful of distinct points per
/// device, and the sustained-bandwidth table one point per distinct
/// transfer size — 1024 is far above any real working set while keeping
/// a long-running `tybec serve` deployment's memory bounded.
const CURVE_TABLE_CAPACITY: usize = 1024;

/// Memo tables for per-op calibration fits and sustained-bandwidth
/// interpolations. Cheap to construct; hold one per estimator session.
/// Size-bounded: each table evicts with the CLOCK policy past
/// [`CURVE_TABLE_CAPACITY`] entries (an eviction only ever forces a
/// bit-identical recompute).
#[derive(Debug)]
pub struct CurveCache {
    cost: RefCell<BoundedMap<OpKey, ResourceVector>>,
    latency: RefCell<BoundedMap<OpKey, u32>>,
    stage_delay: RefCell<BoundedMap<OpKey, u64>>,
    sustained: RefCell<BoundedMap<(LinkKind, AccessPattern, u64), u64>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl Default for CurveCache {
    fn default() -> CurveCache {
        CurveCache {
            cost: RefCell::new(BoundedMap::new(CURVE_TABLE_CAPACITY)),
            latency: RefCell::new(BoundedMap::new(CURVE_TABLE_CAPACITY)),
            stage_delay: RefCell::new(BoundedMap::new(CURVE_TABLE_CAPACITY)),
            sustained: RefCell::new(BoundedMap::new(CURVE_TABLE_CAPACITY)),
            hits: Counter::default(),
            misses: Counter::default(),
            evictions: Counter::default(),
        }
    }
}

impl CurveCache {
    /// Fresh, empty cache with free-standing hit/miss counters.
    pub fn new() -> CurveCache {
        CurveCache::default()
    }

    /// Fresh cache whose counters are registered in `metrics` as
    /// `curves.hits` / `curves.misses` / `curves.evictions`, so a
    /// session's metrics snapshot reports curve-cache traffic without
    /// extra bookkeeping.
    pub fn with_registry(metrics: &Registry) -> CurveCache {
        CurveCache {
            hits: metrics.counter("curves.hits"),
            misses: metrics.counter("curves.misses"),
            evictions: metrics.counter("curves.evictions"),
            ..CurveCache::default()
        }
    }

    /// Memoized [`OpCostModel::cost`].
    pub fn cost(&self, ops: &OpCostModel, op: Opcode, ty: ScalarType) -> ResourceVector {
        let mut table = self.cost.borrow_mut();
        match table.get(&(op, ty)) {
            Some(&v) => {
                self.hits.incr();
                v
            }
            None => {
                self.misses.incr();
                let v = ops.cost(op, ty);
                if table.insert((op, ty), v) {
                    self.evictions.incr();
                }
                v
            }
        }
    }

    /// Memoized [`OpCostModel::latency`].
    pub fn latency(&self, ops: &OpCostModel, op: Opcode, ty: ScalarType) -> u32 {
        let mut table = self.latency.borrow_mut();
        match table.get(&(op, ty)) {
            Some(&v) => {
                self.hits.incr();
                v
            }
            None => {
                self.misses.incr();
                let v = ops.latency(op, ty);
                if table.insert((op, ty), v) {
                    self.evictions.incr();
                }
                v
            }
        }
    }

    /// Memoized [`OpCostModel::stage_delay_ns`] (stored as bits, returned
    /// bit-identical).
    pub fn stage_delay_ns(&self, ops: &OpCostModel, op: Opcode, ty: ScalarType) -> f64 {
        let mut table = self.stage_delay.borrow_mut();
        match table.get(&(op, ty)) {
            Some(&v) => {
                self.hits.incr();
                f64::from_bits(v)
            }
            None => {
                self.misses.incr();
                let v = ops.stage_delay_ns(op, ty);
                if table.insert((op, ty), v.to_bits()) {
                    self.evictions.incr();
                }
                v
            }
        }
    }

    /// Memoized [`BandwidthModel::sustained_bytes_per_s`].
    pub fn sustained_bytes_per_s(
        &self,
        link: LinkKind,
        bw: &BandwidthModel,
        pattern: AccessPattern,
        total_elems: u64,
    ) -> f64 {
        let mut table = self.sustained.borrow_mut();
        match table.get(&(link, pattern, total_elems)) {
            Some(&v) => {
                self.hits.incr();
                f64::from_bits(v)
            }
            None => {
                self.misses.incr();
                let v = bw.sustained_bytes_per_s(pattern, total_elems);
                if table.insert((link, pattern, total_elems), v.to_bits()) {
                    self.evictions.incr();
                }
                v
            }
        }
    }

    /// Lookups answered from the tables.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that fell through to the underlying model.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Entries the CLOCK hand has evicted under capacity pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Number of interned entries across all tables.
    pub fn len(&self) -> usize {
        self.cost.borrow().len()
            + self.latency.borrow().len()
            + self.stage_delay.borrow().len()
            + self.sustained.borrow().len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every interned entry (counters keep running); returns how
    /// many entries were evicted.
    pub fn clear(&self) -> usize {
        let n = self.len();
        self.cost.borrow_mut().clear();
        self.latency.borrow_mut().clear();
        self.stage_delay.borrow_mut().clear();
        self.sustained.borrow_mut().clear();
        n
    }
}

/// Adapter plugging a cache-backed latency lookup into
/// [`tytra_ir::Dfg::build`], which wants a [`LatencyModel`].
#[derive(Debug, Clone, Copy)]
pub struct CachedLatency<'a> {
    /// The calibration consulted on a miss.
    pub ops: &'a OpCostModel,
    /// The session cache.
    pub cache: &'a CurveCache,
}

impl LatencyModel for CachedLatency<'_> {
    fn latency(&self, op: Opcode, ty: ScalarType) -> u32 {
        self.cache.latency(self.ops, op, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UI18: ScalarType = ScalarType::UInt(18);

    #[test]
    fn cached_values_are_bit_identical() {
        let ops = OpCostModel::stratix_v();
        let cache = CurveCache::new();
        for _ in 0..3 {
            assert_eq!(cache.cost(&ops, Opcode::Mul, UI18), ops.cost(Opcode::Mul, UI18));
            assert_eq!(cache.latency(&ops, Opcode::Div, UI18), ops.latency(Opcode::Div, UI18));
            assert_eq!(
                cache.stage_delay_ns(&ops, Opcode::Add, UI18).to_bits(),
                ops.stage_delay_ns(Opcode::Add, UI18).to_bits()
            );
        }
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 6);
    }

    #[test]
    fn sustained_lookup_keyed_per_link() {
        let bw = BandwidthModel::fig10_virtex7();
        let cache = CurveCache::new();
        let a =
            cache.sustained_bytes_per_s(LinkKind::Dram, &bw, AccessPattern::Contiguous, 1 << 20);
        let b =
            cache.sustained_bytes_per_s(LinkKind::Dram, &bw, AccessPattern::Contiguous, 1 << 20);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // A different link is a different key even at the same point.
        let _ =
            cache.sustained_bytes_per_s(LinkKind::Host, &bw, AccessPattern::Contiguous, 1 << 20);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn latency_adapter_matches_model() {
        let ops = OpCostModel::stratix_v();
        let cache = CurveCache::new();
        let adapter = CachedLatency { ops: &ops, cache: &cache };
        let lm: &dyn LatencyModel = &adapter;
        assert_eq!(lm.latency(Opcode::Mul, UI18), 2);
        assert_eq!(lm.latency(Opcode::Mul, UI18), 2);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn clear_evicts_but_keeps_counters() {
        let ops = OpCostModel::stratix_v();
        let cache = CurveCache::new();
        let _ = cache.cost(&ops, Opcode::Add, UI18);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.clear(), 1);
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }
}
