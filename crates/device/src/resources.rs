//! The four-axis FPGA resource vector reported throughout the paper
//! (Table II, Fig 15): adaptive LUTs, registers, block-RAM bits and DSP
//! elements.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// A resource bundle. BRAM is accounted in *bits* (the paper's Table II
/// reports the SOR offset buffers as 5418 estimated / 5400 actual — the
/// window bits, see DESIGN.md §6); conversion to physical block counts is
/// a target property ([`crate::TargetDevice::bram_blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ResourceVector {
    /// Adaptive look-up tables (Altera ALUT / Xilinx LUT6 equivalents).
    pub aluts: u64,
    /// Flip-flop registers.
    pub regs: u64,
    /// On-chip block-RAM bits.
    pub bram_bits: u64,
    /// DSP elements (18×18 multiplier slices).
    pub dsps: u64,
}

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector { aluts: 0, regs: 0, bram_bits: 0, dsps: 0 };

    /// Construct from the four axes.
    pub const fn new(aluts: u64, regs: u64, bram_bits: u64, dsps: u64) -> ResourceVector {
        ResourceVector { aluts, regs, bram_bits, dsps }
    }

    /// Component-wise `self ≤ cap` — does the design fit the device?
    pub fn fits_within(&self, cap: &ResourceVector) -> bool {
        self.aluts <= cap.aluts
            && self.regs <= cap.regs
            && self.bram_bits <= cap.bram_bits
            && self.dsps <= cap.dsps
    }

    /// Component-wise utilisation fractions against a capacity vector
    /// (axes with zero capacity report 0 when unused, `inf` when used).
    pub fn utilization(&self, cap: &ResourceVector) -> Utilization {
        fn frac(used: u64, cap: u64) -> f64 {
            if used == 0 {
                0.0
            } else if cap == 0 {
                f64::INFINITY
            } else {
                used as f64 / cap as f64
            }
        }
        Utilization {
            aluts: frac(self.aluts, cap.aluts),
            regs: frac(self.regs, cap.regs),
            bram_bits: frac(self.bram_bits, cap.bram_bits),
            dsps: frac(self.dsps, cap.dsps),
        }
    }

    /// Largest utilisation fraction across the four axes.
    pub fn max_utilization(&self, cap: &ResourceVector) -> f64 {
        let u = self.utilization(cap);
        u.aluts.max(u.regs).max(u.bram_bits).max(u.dsps)
    }

    /// Component-wise saturating subtraction (headroom left on a device).
    pub fn saturating_sub(&self, other: &ResourceVector) -> ResourceVector {
        ResourceVector {
            aluts: self.aluts.saturating_sub(other.aluts),
            regs: self.regs.saturating_sub(other.regs),
            bram_bits: self.bram_bits.saturating_sub(other.bram_bits),
            dsps: self.dsps.saturating_sub(other.dsps),
        }
    }

    /// Signed relative error per axis against a reference (`self` is the
    /// estimate, `other` the actual), as percentages; axes where both are
    /// zero report 0.
    pub fn pct_error_vs(&self, actual: &ResourceVector) -> [f64; 4] {
        fn pct(est: u64, act: u64) -> f64 {
            if act == 0 && est == 0 {
                0.0
            } else if act == 0 {
                100.0
            } else {
                (est as f64 - act as f64) / act as f64 * 100.0
            }
        }
        [
            pct(self.aluts, actual.aluts),
            pct(self.regs, actual.regs),
            pct(self.bram_bits, actual.bram_bits),
            pct(self.dsps, actual.dsps),
        ]
    }
}

/// Utilisation fractions (0.0–1.0+) per resource axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// ALUT fraction.
    pub aluts: f64,
    /// Register fraction.
    pub regs: f64,
    /// BRAM-bit fraction.
    pub bram_bits: f64,
    /// DSP fraction.
    pub dsps: f64,
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(self, rhs: ResourceVector) -> ResourceVector {
        ResourceVector {
            aluts: self.aluts + rhs.aluts,
            regs: self.regs + rhs.regs,
            bram_bits: self.bram_bits + rhs.bram_bits,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for ResourceVector {
    type Output = ResourceVector;
    fn mul(self, k: u64) -> ResourceVector {
        ResourceVector {
            aluts: self.aluts * k,
            regs: self.regs * k,
            bram_bits: self.bram_bits * k,
            dsps: self.dsps * k,
        }
    }
}

impl Sum for ResourceVector {
    fn sum<I: Iterator<Item = ResourceVector>>(iter: I) -> ResourceVector {
        iter.fold(ResourceVector::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ALUT {} / REG {} / BRAM {} bits / DSP {}",
            self.aluts, self.regs, self.bram_bits, self.dsps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ResourceVector = ResourceVector::new(100, 200, 4096, 2);
    const CAP: ResourceVector = ResourceVector::new(1000, 1000, 8192, 4);

    #[test]
    fn arithmetic() {
        let b = ResourceVector::new(1, 2, 3, 4);
        assert_eq!(A + b, ResourceVector::new(101, 202, 4099, 6));
        assert_eq!(b * 3, ResourceVector::new(3, 6, 9, 12));
        let mut c = A;
        c += b;
        assert_eq!(c, A + b);
        let s: ResourceVector = [A, b].into_iter().sum();
        assert_eq!(s, A + b);
    }

    #[test]
    fn fits_and_headroom() {
        assert!(A.fits_within(&CAP));
        assert!(!CAP.fits_within(&A));
        assert_eq!(CAP.saturating_sub(&A), ResourceVector::new(900, 800, 4096, 2));
        assert_eq!(A.saturating_sub(&CAP), ResourceVector::ZERO);
    }

    #[test]
    fn utilization_fractions() {
        let u = A.utilization(&CAP);
        assert!((u.aluts - 0.1).abs() < 1e-12);
        assert!((u.regs - 0.2).abs() < 1e-12);
        assert!((u.bram_bits - 0.5).abs() < 1e-12);
        assert!((u.dsps - 0.5).abs() < 1e-12);
        assert!((A.max_utilization(&CAP) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_axes() {
        let cap0 = ResourceVector::new(10, 10, 10, 0);
        let unused = ResourceVector::new(1, 1, 1, 0);
        assert!(unused.fits_within(&cap0));
        assert_eq!(unused.utilization(&cap0).dsps, 0.0);
        let used = ResourceVector::new(1, 1, 1, 1);
        assert!(!used.fits_within(&cap0));
        assert!(used.utilization(&cap0).dsps.is_infinite());
    }

    #[test]
    fn pct_error_matches_table2_convention() {
        // SOR row of Table II: est 528 vs actual 534 ALUTs → ≈ −1.1 %.
        let est = ResourceVector::new(528, 534, 5418, 0);
        let act = ResourceVector::new(534, 575, 5400, 0);
        let e = est.pct_error_vs(&act);
        assert!((e[0] + 1.123).abs() < 0.01, "{e:?}");
        assert!((e[1] + 7.13).abs() < 0.01, "{e:?}");
        assert!((e[2] - 0.333).abs() < 0.01, "{e:?}");
        assert_eq!(e[3], 0.0);
    }

    #[test]
    fn display_mentions_all_axes() {
        let s = A.to_string();
        for part in ["ALUT 100", "REG 200", "BRAM 4096 bits", "DSP 2"] {
            assert!(s.contains(part), "{s}");
        }
    }
}
