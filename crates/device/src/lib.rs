//! # tytra-device
//!
//! FPGA target descriptions and the empirical calibration data the TyTra
//! cost model consumes (paper Fig 2: "a one-time set of benchmark
//! experiments are carried out for each FPGA target; the cost model
//! requires target description and the IR for the design").
//!
//! The crate provides:
//!
//! * [`ResourceVector`] — the four resource axes the paper reports
//!   (ALUTs, registers, block-RAM bits, DSP elements);
//! * [`interp`] — the fitting machinery of section V-A: least-squares
//!   polynomial fits (the `x² + 3.7x − 10.6` trend line for integer
//!   division) and piece-wise-linear tables (multiplier ALUTs/DSPs);
//! * [`OpCostModel`] — per-instruction resource/latency/stage-delay
//!   curves, fitted at construction from a small set of benchmark points
//!   exactly as the paper derives them from three synthesis runs;
//! * [`BandwidthModel`] — the sustained-bandwidth empirical model of
//!   section V-C (Fig 10): contiguity and stream size → sustained Gbps;
//! * [`PowerModel`] — static + activity-proportional dynamic power, used
//!   by the Fig 18 energy comparison;
//! * [`CurveCache`] — a session-scoped memo table interning calibration
//!   and bandwidth curve evaluations, so a DSE sweep pays each fit once;
//! * [`TargetDevice`] and [`library`] — concrete targets: the Maxeler
//!   Maia DFE's Stratix-V GSD8, the Alpha-Data ADM-PCIE-7V3's Virtex-7,
//!   and a small evaluation target for the Fig 15 lane sweep.

pub mod bandwidth;
pub mod cache;
pub mod calibration;
pub mod interp;
pub mod library;
pub mod power;
pub mod resources;
pub mod target;

pub use bandwidth::BandwidthModel;
pub use cache::{CachedLatency, CurveCache, LinkKind};
pub use calibration::OpCostModel;
pub use interp::{PiecewiseLinear, PolyFit};
pub use library::{eval_small, stratix_v_gsd8, virtex7_adm7v3};
pub use power::PowerModel;
pub use resources::ResourceVector;
pub use target::{LinkSpec, TargetDevice};
