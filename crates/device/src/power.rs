//! Power model used for the Fig 18 energy comparison.
//!
//! The paper measures the *increase over idle* of the host+device node on
//! a power meter. We model the FPGA side as static power plus dynamic
//! power proportional to toggling resources and clock frequency, plus an
//! I/O term proportional to the exercised link bandwidth — the standard
//! first-order FPGA power decomposition.

use crate::resources::ResourceVector;

/// First-order FPGA power model; coefficients are per-device calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Static (configuration + leakage) power above board idle, W.
    pub static_w: f64,
    /// Dynamic µW per ALUT per MHz of clock (at the design's activity).
    pub alut_uw_per_mhz: f64,
    /// Dynamic µW per register per MHz.
    pub reg_uw_per_mhz: f64,
    /// Dynamic µW per DSP element per MHz.
    pub dsp_uw_per_mhz: f64,
    /// Dynamic µW per kilobit of active BRAM per MHz.
    pub bram_uw_per_kbit_mhz: f64,
    /// W per GB/s of exercised memory/host bandwidth.
    pub io_w_per_gbytes: f64,
}

impl PowerModel {
    /// Stratix-V-class 28 nm calibration.
    pub fn stratix_v() -> PowerModel {
        PowerModel {
            static_w: 6.5,
            alut_uw_per_mhz: 0.09,
            reg_uw_per_mhz: 0.03,
            dsp_uw_per_mhz: 4.0,
            bram_uw_per_kbit_mhz: 0.35,
            io_w_per_gbytes: 0.9,
        }
    }

    /// Delta power (W above idle) of a design using `used` resources at
    /// `freq_mhz`, exercising `io_gbytes_per_s` of link bandwidth.
    pub fn delta_watts(&self, used: &ResourceVector, freq_mhz: f64, io_gbytes_per_s: f64) -> f64 {
        let dyn_uw = (used.aluts as f64 * self.alut_uw_per_mhz
            + used.regs as f64 * self.reg_uw_per_mhz
            + used.dsps as f64 * self.dsp_uw_per_mhz
            + used.bram_bits as f64 / 1024.0 * self.bram_uw_per_kbit_mhz)
            * freq_mhz;
        self.static_w + dyn_uw * 1e-6 + self.io_w_per_gbytes * io_gbytes_per_s
    }

    /// Energy above idle in joules for a run of `seconds`.
    pub fn delta_energy_j(
        &self,
        used: &ResourceVector,
        freq_mhz: f64,
        io_gbytes_per_s: f64,
        seconds: f64,
    ) -> f64 {
        self.delta_watts(used, freq_mhz, io_gbytes_per_s) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_floor() {
        let p = PowerModel::stratix_v();
        let w = p.delta_watts(&ResourceVector::ZERO, 0.0, 0.0);
        assert!((w - p.static_w).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_with_frequency_and_resources() {
        let p = PowerModel::stratix_v();
        let r = ResourceVector::new(50_000, 100_000, 1 << 20, 100);
        let w100 = p.delta_watts(&r, 100.0, 0.0);
        let w200 = p.delta_watts(&r, 200.0, 0.0);
        assert!(w200 > w100);
        // Dynamic part doubles exactly.
        assert!(((w200 - p.static_w) - 2.0 * (w100 - p.static_w)).abs() < 1e-9);
        let r2 = r * 2;
        let w2 = p.delta_watts(&r2, 100.0, 0.0);
        assert!(((w2 - p.static_w) - 2.0 * (w100 - p.static_w)).abs() < 1e-9);
    }

    #[test]
    fn io_term_added() {
        let p = PowerModel::stratix_v();
        let base = p.delta_watts(&ResourceVector::ZERO, 0.0, 0.0);
        let io = p.delta_watts(&ResourceVector::ZERO, 0.0, 10.0);
        assert!((io - base - 9.0).abs() < 1e-9);
    }

    #[test]
    fn plausible_magnitude_for_a_full_kernel() {
        // A mid-size design: ~50 K ALUTs at 200 MHz with 5 GB/s of DRAM
        // traffic should land in the 10–40 W envelope the paper's power
        // meter reports for accelerator deltas.
        let p = PowerModel::stratix_v();
        let r = ResourceVector::new(50_000, 80_000, 8 << 20, 200);
        let w = p.delta_watts(&r, 200.0, 5.0);
        assert!(w > 10.0 && w < 40.0, "{w} W");
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerModel::stratix_v();
        let r = ResourceVector::new(1000, 1000, 0, 0);
        let w = p.delta_watts(&r, 150.0, 1.0);
        let e = p.delta_energy_j(&r, 150.0, 1.0, 3.5);
        assert!((e - w * 3.5).abs() < 1e-9);
    }
}
