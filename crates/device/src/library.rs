//! Built-in target devices.

use crate::calibration::OpCostModel;
use crate::power::PowerModel;
use crate::resources::ResourceVector;
use crate::target::{LinkSpec, TargetDevice};

/// The Maxeler Maia DFE's Altera **Stratix-V GS D8** (695 K logic
/// elements ≈ 262 K ALMs ≈ 525 K ALUTs; 2567 M20K blocks; 1963
/// variable-precision DSPs), hosted over PCIe gen2 ×8 — the paper's §VII
/// case-study platform.
pub fn stratix_v_gsd8() -> TargetDevice {
    TargetDevice {
        name: "stratix-v-gsd8 (Maxeler Maia DFE)".into(),
        capacity: ResourceVector::new(524_800, 1_049_600, 2567 * 20_480, 1963),
        bram_block_bits: 20_480,
        fmax_mhz: 250.0,
        // PCIe gen2 ×8: 4 GB/s peak per direction, DMA-engine driven.
        host_link: LinkSpec::dma(4.0e9, 45.0),
        // Maia on-board DDR3: ~38 GB/s aggregate behind Maxeler's
        // optimised streaming controllers.
        dram_link: LinkSpec::dma(38.4e9, 8.0),
        ops: OpCostModel::stratix_v(),
        power: PowerModel::stratix_v(),
        host_call_overhead_us: 60.0,
        util_derate: 0.35,
    }
}

/// The Alpha-Data **ADM-PCIE-7V3**'s Xilinx Virtex-7 690T (433 K LUTs,
/// 866 K FFs, 1470 36-Kb block RAMs, 3600 DSP48s) — the board the Fig 10
/// bandwidth benchmark ran on under SDAccel.
pub fn virtex7_adm7v3() -> TargetDevice {
    TargetDevice {
        name: "virtex-7-690t (Alpha-Data ADM-PCIE-7V3)".into(),
        capacity: ResourceVector::new(433_200, 866_400, 1470 * 36_864, 3600),
        bram_block_bits: 36_864,
        fmax_mhz: 220.0,
        // PCIe gen3 ×8: ~7.9 GB/s peak, DMA-engine driven.
        host_link: LinkSpec::dma(7.9e9, 50.0),
        // Single DDR3-1333 bank: 10.7 GB/s (the Fig 10 baseline).
        dram_link: LinkSpec::with_peak(10.7e9, 9.0),
        ops: OpCostModel::stratix_v(),
        power: PowerModel::stratix_v(),
        host_call_overhead_us: 70.0,
        util_derate: 0.35,
    }
}

/// The evaluation target of the Fig 15 lane sweep. Table II's SOR uses
/// ~534 ALUTs per lane yet Fig 15 hits its computation wall at six lanes,
/// which only fits a device far smaller than a GSD8 once per-lane stream
/// control is replicated (see DESIGN.md §6). This target is sized so the
/// integer SOR lane (datapath + offset buffers + stream control) crosses
/// 100 % ALUTs between lanes 6 and 7 while BRAM and DSPs stay
/// under-utilised, reproducing the wall ordering of the figure.
pub fn eval_small() -> TargetDevice {
    TargetDevice {
        name: "eval-small (fig-15 sweep target)".into(),
        // ~6.4 integer SOR lanes' worth of ALUTs; plentiful registers,
        // BRAM and DSPs so only the ALUT (computation) wall binds.
        capacity: ResourceVector::new(3_400, 26_000, 512 * 20_480, 64),
        bram_block_bits: 20_480,
        // The figure's walls are stated against a 150 MHz build clock.
        fmax_mhz: 150.0,
        // Host link sized so the Form-A communication wall falls at
        // four 9-byte-per-item lanes: 4 × 9 B × 150 MHz = 5.4 GB/s
        // effective.
        host_link: LinkSpec::dma(7.0e9, 45.0),
        // DRAM link sized so the Form-B wall falls at sixteen lanes:
        // 16 × 9 B × 150 MHz = 21.6 GB/s effective.
        dram_link: LinkSpec::dma(22.8e9, 8.0),
        ops: OpCostModel::stratix_v(),
        power: PowerModel::stratix_v(),
        host_call_overhead_us: 60.0,
        util_derate: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsd8_capacities_match_datasheet_scale() {
        let d = stratix_v_gsd8();
        assert_eq!(d.capacity.aluts, 524_800);
        assert_eq!(d.capacity.dsps, 1963);
        assert_eq!(d.bram_block_capacity(), 2567);
        assert!(d.host_link.peak_bytes_per_s < d.dram_link.peak_bytes_per_s);
    }

    #[test]
    fn virtex7_uses_36kb_blocks() {
        let d = virtex7_adm7v3();
        assert_eq!(d.bram_block_bits, 36_864);
        assert_eq!(d.bram_block_capacity(), 1470);
    }

    #[test]
    fn fig10_calibration_attached_to_virtex_dram() {
        let d = virtex7_adm7v3();
        let gbps = d.dram_link.bw.sustained_gbps(tytra_ir::AccessPattern::Contiguous, 6000 * 6000);
        assert!((gbps - 6.3).abs() < 1e-9);
    }

    #[test]
    fn eval_small_is_much_smaller_than_gsd8() {
        let s = eval_small();
        let g = stratix_v_gsd8();
        assert!(s.capacity.aluts * 20 < g.capacity.aluts);
        assert!(s.capacity.fits_within(&g.capacity));
    }
}
