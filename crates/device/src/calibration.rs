//! Per-instruction cost curves fitted from synthesis benchmark points
//! (paper section V-A, Fig 9).
//!
//! For each opcode family the model holds the *benchmark points* a
//! one-time calibration run produced on the target, and fits the
//! appropriate expression at construction:
//!
//! * integer division — a quadratic in bit width (the paper's
//!   `x² + 3.7x − 10.6` trend line fitted from synthesis at 18/32/64
//!   bits);
//! * integer multiplication — piece-wise-linear ALUTs plus a step table
//!   of DSP elements that jumps at the native 18×18 slice boundaries;
//! * adders, logic, shifters, comparators — first-order expressions;
//! * floating-point units — constant tables per precision.
//!
//! Besides resources, the calibration provides per-op pipeline
//! **latency** (cycles) and **stage delay** (ns, limiting the clock a
//! stage containing the unit can close), both consumed by the cost
//! model's scheduler and frequency estimator.

use crate::interp::{PiecewiseLinear, PolyFit};
use crate::resources::ResourceVector;
use tytra_ir::{LatencyModel, Opcode, ScalarType};

/// Calibrated per-instruction cost model for one target fabric.
#[derive(Debug, Clone)]
pub struct OpCostModel {
    /// Quadratic fit for divider/remainder ALUTs vs width.
    div_aluts: PolyFit,
    /// Piece-wise-linear multiplier ALUTs vs width.
    mul_aluts: PiecewiseLinear,
    /// Step table of multiplier DSP elements vs width.
    mul_dsps: PiecewiseLinear,
    /// ns of combinational delay added per bit of adder carry chain.
    carry_ns_per_bit: f64,
    /// Fixed routing + LUT delay per pipeline stage, ns.
    route_ns: f64,
}

impl Default for OpCostModel {
    fn default() -> OpCostModel {
        OpCostModel::stratix_v()
    }
}

impl OpCostModel {
    /// The Stratix-V calibration used throughout the paper (Fig 9's
    /// benchmark points).
    pub fn stratix_v() -> OpCostModel {
        // Divider ALUTs from synthesis at 18/32/64 bits; the quadratic
        // through them is the paper's x² + 3.7x − 10.6.
        let div_curve = |x: f64| x * x + 3.7 * x - 10.6;
        let div_points: Vec<(f64, f64)> =
            [18.0, 32.0, 64.0].iter().map(|&x| (x, div_curve(x))).collect();
        // Multiplier ALUTs: small below one DSP slice, growing piece-wise
        // as correction logic appears around slice boundaries (Fig 9's
        // mul-ALUTs series tops out near 70 at 64 bits).
        let mul_aluts = PiecewiseLinear::new(vec![
            (1.0, 1.0),
            (9.0, 4.0),
            (18.0, 6.0),
            (19.0, 21.0),
            (36.0, 30.0),
            (37.0, 52.0),
            (54.0, 60.0),
            (64.0, 70.0),
        ]);
        // DSP elements: one variable-precision slice handles 18×18; wider
        // products tile (Fig 9's mul-DSP staircase, reaching 8 at 64
        // bits).
        let mul_dsps =
            PiecewiseLinear::new(vec![(1.0, 1.0), (19.0, 2.0), (37.0, 4.0), (55.0, 8.0)]);
        OpCostModel {
            div_aluts: PolyFit::fit(&div_points, 2),
            mul_aluts,
            mul_dsps,
            carry_ns_per_bit: 0.035,
            route_ns: 2.1,
        }
    }

    /// Resource cost of one functional unit implementing `op` at `ty`.
    pub fn cost(&self, op: Opcode, ty: ScalarType) -> ResourceVector {
        if ty.is_float() {
            return self.float_cost(op, ty);
        }
        let w = u64::from(ty.bits());
        let wf = ty.bits() as f64;
        let lat = u64::from(self.latency(op, ty));
        // Every pipelined unit registers its output each cycle of its
        // latency.
        let regs = w * lat;
        match op {
            Opcode::Add | Opcode::Sub => ResourceVector::new(w + 2, regs, 0, 0),
            Opcode::Mul => ResourceVector::new(
                self.mul_aluts.eval_count(wf),
                regs,
                0,
                self.mul_dsps.eval_step(wf) as u64,
            ),
            Opcode::Div | Opcode::Rem => {
                ResourceVector::new(self.div_aluts.eval_count(wf), regs, 0, 0)
            }
            Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Not => {
                ResourceVector::new(w.div_ceil(2), regs, 0, 0)
            }
            Opcode::Shl | Opcode::Shr => {
                // Barrel shifter: log2(w) mux levels of w bits.
                let levels = 64 - u64::from(w.leading_zeros());
                ResourceVector::new(w * levels / 2 + 2, regs, 0, 0)
            }
            Opcode::CmpEq
            | Opcode::CmpNe
            | Opcode::CmpLt
            | Opcode::CmpLe
            | Opcode::CmpGt
            | Opcode::CmpGe => ResourceVector::new(w / 2 + 3, lat, 0, 0),
            Opcode::Select => ResourceVector::new(w, regs, 0, 0),
            Opcode::Min | Opcode::Max => ResourceVector::new(w + w / 2 + 3, regs, 0, 0),
            Opcode::Abs | Opcode::Neg => ResourceVector::new(w + 1, regs, 0, 0),
            Opcode::Sqrt => {
                // Integer isqrt: a restoring network roughly half a
                // divider.
                ResourceVector::new(self.div_aluts.eval_count(wf) / 2 + 8, regs, 0, 0)
            }
        }
    }

    fn float_cost(&self, op: Opcode, ty: ScalarType) -> ResourceVector {
        let double = ty.bits() == 64;
        let lat = u64::from(self.latency(op, ty));
        let w = u64::from(ty.bits());
        let regs = w * lat;
        let scale = if double { 3 } else { 1 };
        match op {
            Opcode::Add | Opcode::Sub => ResourceVector::new(550 * scale, regs, 0, 0),
            Opcode::Mul => ResourceVector::new(130 * scale, regs, 0, if double { 4 } else { 1 }),
            Opcode::Div | Opcode::Rem => ResourceVector::new(900 * scale, regs, 0, 0),
            Opcode::Sqrt => ResourceVector::new(800 * scale, regs, 0, 0),
            Opcode::CmpEq
            | Opcode::CmpNe
            | Opcode::CmpLt
            | Opcode::CmpLe
            | Opcode::CmpGt
            | Opcode::CmpGe => ResourceVector::new(80 * scale, lat, 0, 0),
            Opcode::Min | Opcode::Max => ResourceVector::new(120 * scale, regs, 0, 0),
            Opcode::Abs | Opcode::Neg => ResourceVector::new(2, regs, 0, 0),
            Opcode::Select => ResourceVector::new(w, regs, 0, 0),
            Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Not | Opcode::Shl | Opcode::Shr => {
                // Bit-level ops on float lanes are raw moves.
                ResourceVector::new(w.div_ceil(2), regs, 0, 0)
            }
        }
    }

    /// Pipeline latency of the unit, in cycles (≥ 1).
    pub fn latency(&self, op: Opcode, ty: ScalarType) -> u32 {
        let w = u32::from(ty.bits());
        if ty.is_float() {
            return match op {
                Opcode::Add | Opcode::Sub => 7,
                Opcode::Mul => 5,
                Opcode::Div | Opcode::Rem => 14,
                Opcode::Sqrt => 16,
                Opcode::Min | Opcode::Max => 2,
                _ => 1,
            };
        }
        match op {
            Opcode::Mul => {
                if w <= 18 {
                    2
                } else {
                    3
                }
            }
            Opcode::Div | Opcode::Rem => w / 4 + 3,
            Opcode::Sqrt => w / 2 + 3,
            _ => 1,
        }
    }

    /// Combinational delay of a pipeline stage containing the unit, in
    /// ns, including fixed routing overhead. The frequency estimator uses
    /// the maximum stage delay along the datapath.
    pub fn stage_delay_ns(&self, op: Opcode, ty: ScalarType) -> f64 {
        self.route_ns + self.op_delay_ns(op, ty)
    }

    /// Fixed routing + clock-network delay charged once per pipeline
    /// stage, ns.
    pub fn route_delay_ns(&self) -> f64 {
        self.route_ns
    }

    /// Pure combinational delay of the unit's logic, ns, excluding
    /// routing. `comb` blocks chain several of these inside one stage.
    pub fn op_delay_ns(&self, op: Opcode, ty: ScalarType) -> f64 {
        let w = f64::from(ty.bits());
        if ty.is_float() {
            // FP units are internally pipelined to the fabric's sweet
            // spot.
            return 1.4;
        }
        match op {
            Opcode::Add | Opcode::Sub | Opcode::Min | Opcode::Max | Opcode::Abs | Opcode::Neg => {
                self.carry_ns_per_bit * w
            }
            Opcode::Mul => 0.9 + 0.012 * w,
            Opcode::Div | Opcode::Rem | Opcode::Sqrt => 1.8 + 0.04 * w,
            Opcode::Shl | Opcode::Shr => 0.3 + 0.01 * w,
            Opcode::CmpEq
            | Opcode::CmpNe
            | Opcode::CmpLt
            | Opcode::CmpLe
            | Opcode::CmpGt
            | Opcode::CmpGe => self.carry_ns_per_bit * w * 0.6,
            Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Not | Opcode::Select => 0.2,
        }
    }
}

/// Adapter so the calibration plugs straight into
/// [`tytra_ir::Dfg::build`].
impl LatencyModel for OpCostModel {
    fn latency(&self, op: Opcode, ty: ScalarType) -> u32 {
        OpCostModel::latency(self, op, ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UI18: ScalarType = ScalarType::UInt(18);
    const UI24: ScalarType = ScalarType::UInt(24);
    const UI32: ScalarType = ScalarType::UInt(32);
    const UI64: ScalarType = ScalarType::UInt(64);
    const F32: ScalarType = ScalarType::Float(32);

    #[test]
    fn fig9_divider_interpolation_at_24_bits() {
        let m = OpCostModel::stratix_v();
        // Paper: estimate 654 ALUTs, actual 652.
        assert_eq!(m.cost(Opcode::Div, UI24).aluts, 654);
    }

    #[test]
    fn divider_aluts_grow_quadratically() {
        let m = OpCostModel::stratix_v();
        let a18 = m.cost(Opcode::Div, UI18).aluts;
        let a32 = m.cost(Opcode::Div, UI32).aluts;
        let a64 = m.cost(Opcode::Div, UI64).aluts;
        assert!(a18 < a32 && a32 < a64);
        // Quadratic growth: doubling width more than doubles cost.
        assert!(a64 > 3 * a32, "{a64} vs {a32}");
        assert_eq!(m.cost(Opcode::Div, UI18).dsps, 0);
    }

    #[test]
    fn multiplier_dsp_staircase() {
        let m = OpCostModel::stratix_v();
        assert_eq!(m.cost(Opcode::Mul, UI18).dsps, 1);
        assert_eq!(m.cost(Opcode::Mul, ScalarType::UInt(19)).dsps, 2);
        assert_eq!(m.cost(Opcode::Mul, UI32).dsps, 2);
        assert_eq!(m.cost(Opcode::Mul, ScalarType::UInt(48)).dsps, 4);
        assert_eq!(m.cost(Opcode::Mul, UI64).dsps, 8);
    }

    #[test]
    fn multiplier_aluts_piecewise_and_small() {
        let m = OpCostModel::stratix_v();
        let a18 = m.cost(Opcode::Mul, UI18).aluts;
        let a64 = m.cost(Opcode::Mul, UI64).aluts;
        assert!(a18 <= 6);
        assert_eq!(a64, 70);
        // Two orders of magnitude below a divider of the same width.
        assert!(m.cost(Opcode::Div, UI64).aluts > 40 * a64);
    }

    #[test]
    fn adder_linear_in_width() {
        let m = OpCostModel::stratix_v();
        assert_eq!(m.cost(Opcode::Add, UI18).aluts, 20);
        assert_eq!(m.cost(Opcode::Add, UI32).aluts, 34);
        assert_eq!(m.cost(Opcode::Add, UI18).regs, 18);
    }

    #[test]
    fn latencies_reasonable() {
        let m = OpCostModel::stratix_v();
        assert_eq!(m.latency(Opcode::Add, UI18), 1);
        assert_eq!(m.latency(Opcode::Mul, UI18), 2);
        assert_eq!(m.latency(Opcode::Mul, UI32), 3);
        assert_eq!(m.latency(Opcode::Div, UI32), 11);
        assert_eq!(m.latency(Opcode::Add, F32), 7);
        for op in Opcode::ALL {
            assert!(m.latency(op, UI18) >= 1);
            assert!(m.latency(op, F32) >= 1);
        }
    }

    #[test]
    fn stage_delays_bound_frequency_realistically() {
        let m = OpCostModel::stratix_v();
        for op in Opcode::ALL {
            for ty in [UI18, UI32, UI64, F32] {
                let d = m.stage_delay_ns(op, ty);
                // Every stage closes between 100 MHz and 500 MHz.
                assert!(d > 2.0 && d < 10.0, "{op} {ty}: {d} ns");
            }
        }
        // Wider adders are slower.
        assert!(m.stage_delay_ns(Opcode::Add, UI64) > m.stage_delay_ns(Opcode::Add, UI18));
    }

    #[test]
    fn float_units_cost_more_than_int() {
        let m = OpCostModel::stratix_v();
        assert!(m.cost(Opcode::Add, F32).aluts > 10 * m.cost(Opcode::Add, UI32).aluts);
        assert_eq!(m.cost(Opcode::Mul, F32).dsps, 1);
        let f64t = ScalarType::Float(64);
        assert!(m.cost(Opcode::Add, f64t).aluts > m.cost(Opcode::Add, F32).aluts);
    }

    #[test]
    fn all_ops_have_finite_costs() {
        let m = OpCostModel::stratix_v();
        for op in Opcode::ALL {
            for ty in [UI18, UI32, UI64, F32, ScalarType::Int(16), ScalarType::Float(64)] {
                let c = m.cost(op, ty);
                assert!(c.aluts < 100_000, "{op} {ty}: {c}");
                assert!(c.bram_bits == 0, "FU models use no BRAM: {op}");
            }
        }
    }

    #[test]
    fn latency_model_trait_adapter() {
        let m = OpCostModel::stratix_v();
        let lm: &dyn LatencyModel = &m;
        assert_eq!(lm.latency(Opcode::Mul, UI18), 2);
    }
}
