//! Target-device descriptions (the "target description" input of Fig 2).

use crate::bandwidth::BandwidthModel;
use crate::calibration::OpCostModel;
use crate::power::PowerModel;
use crate::resources::ResourceVector;

/// One off-chip link (host↔device or device-DRAM) with its peak figure
/// and sustained-bandwidth calibration.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Peak (data-sheet) bandwidth, bytes/s — the paper's `HPB`/`GPB`.
    pub peak_bytes_per_s: f64,
    /// Empirical sustained-bandwidth model for streams over this link.
    pub bw: BandwidthModel,
    /// Per-stream setup latency in µs (descriptor programming, DMA
    /// engine arming). Paid once per stream per kernel-instance; this is
    /// what makes many-lane variants lose at small grids (paper §VII:
    /// "the overhead of handling multiple streams per input and output
    /// array dominates").
    pub stream_setup_us: f64,
}

impl LinkSpec {
    /// Link with the Fig 10 efficiency shape scaled to `peak` bytes/s
    /// (the unoptimised kernel-access path).
    pub fn with_peak(peak_bytes_per_s: f64, stream_setup_us: f64) -> LinkSpec {
        LinkSpec {
            peak_bytes_per_s,
            bw: BandwidthModel::scaled_to_peak(peak_bytes_per_s),
            stream_setup_us,
        }
    }

    /// Link behind a DMA engine / optimised streaming controller (see
    /// [`BandwidthModel::dma`]).
    pub fn dma(peak_bytes_per_s: f64, stream_setup_us: f64) -> LinkSpec {
        LinkSpec { peak_bytes_per_s, bw: BandwidthModel::dma(peak_bytes_per_s), stream_setup_us }
    }
}

/// A complete FPGA target: capacities, clocking, links, calibrations.
#[derive(Debug, Clone)]
pub struct TargetDevice {
    /// Human-readable name.
    pub name: String,
    /// Resource capacities.
    pub capacity: ResourceVector,
    /// Bits per physical BRAM block (M20K: 20480; Xilinx 36Kb: 36864).
    /// Used to convert bit footprints into block counts.
    pub bram_block_bits: u64,
    /// Fabric base Fmax in MHz — the clock a well-pipelined design closes
    /// before stage-delay or congestion derating.
    pub fmax_mhz: f64,
    /// Host↔device link (`HPB` and its ρ_H calibration).
    pub host_link: LinkSpec,
    /// Device-DRAM link (`GPB` and its ρ_G calibration).
    pub dram_link: LinkSpec,
    /// Per-instruction cost calibration.
    pub ops: OpCostModel,
    /// Power calibration.
    pub power: PowerModel,
    /// Fixed host overhead per kernel-instance invocation, µs (driver
    /// call, DMA kick-off).
    pub host_call_overhead_us: f64,
    /// Fractional Fmax lost per unit of peak resource utilisation —
    /// models routing congestion on a nearly-full device
    /// (`F = F0 · (1 − derate · util)`).
    pub util_derate: f64,
}

impl TargetDevice {
    /// Convert a BRAM bit footprint into occupied physical blocks
    /// (each buffer rounds up to whole blocks).
    pub fn bram_blocks(&self, bits: u64) -> u64 {
        bits.div_ceil(self.bram_block_bits)
    }

    /// Total physical BRAM blocks on the device.
    pub fn bram_block_capacity(&self) -> u64 {
        self.capacity.bram_bits / self.bram_block_bits
    }

    /// Clock estimate for a design with the given worst stage delay and
    /// peak utilisation fraction, honouring an optional user constraint.
    pub fn clock_mhz(
        &self,
        max_stage_delay_ns: f64,
        peak_util: f64,
        constraint_mhz: Option<f64>,
    ) -> f64 {
        let stage_limit =
            if max_stage_delay_ns > 0.0 { 1000.0 / max_stage_delay_ns } else { f64::INFINITY };
        let derated = self.fmax_mhz * (1.0 - self.util_derate * peak_util.clamp(0.0, 1.0));
        let f = stage_limit.min(derated).max(1.0);
        match constraint_mhz {
            Some(c) => f.min(c),
            None => f,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::library::stratix_v_gsd8;

    #[test]
    fn bram_block_rounding() {
        let d = stratix_v_gsd8();
        assert_eq!(d.bram_block_bits, 20480);
        assert_eq!(d.bram_blocks(1), 1);
        assert_eq!(d.bram_blocks(20480), 1);
        assert_eq!(d.bram_blocks(20481), 2);
        assert_eq!(d.bram_blocks(0), 0);
    }

    #[test]
    fn clock_respects_stage_delay() {
        let d = stratix_v_gsd8();
        // 5 ns worst stage → at most 200 MHz regardless of base Fmax.
        let f = d.clock_mhz(5.0, 0.0, None);
        assert!(f <= 200.0 + 1e-9);
        // Fast stages → base Fmax (no derating at 0 util).
        let f = d.clock_mhz(1.0, 0.0, None);
        assert!((f - d.fmax_mhz).abs() < 1e-9);
    }

    #[test]
    fn clock_derates_with_utilisation() {
        let d = stratix_v_gsd8();
        let f_empty = d.clock_mhz(2.0, 0.0, None);
        let f_full = d.clock_mhz(2.0, 0.95, None);
        assert!(f_full < f_empty);
    }

    #[test]
    fn clock_honours_constraint() {
        let d = stratix_v_gsd8();
        assert_eq!(d.clock_mhz(1.0, 0.0, Some(150.0)), 150.0);
    }

    #[test]
    fn clock_never_zero() {
        let d = stratix_v_gsd8();
        assert!(d.clock_mhz(1e9, 1.0, None) >= 1.0);
    }
}
