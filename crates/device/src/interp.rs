//! Fitting and interpolation over benchmark points (paper section V-A).
//!
//! The paper observes that "the regularity of FPGA fabric allows some very
//! simple first or second order expressions to be built up for most
//! primitive instructions based on a few experiments": a quadratic fitted
//! from three synthesis points predicts the ALUTs of an integer divider
//! within a fraction of a percent (654 predicted vs 652 actual at 24
//! bits), while multiplier resources are piece-wise linear in bit width
//! with clearly identifiable discontinuities at DSP-granularity
//! boundaries.
//!
//! [`PolyFit`] implements least-squares polynomial fitting (normal
//! equations + Gaussian elimination — tiny systems, numerically tame for
//! degree ≤ 3 over bit widths ≤ 128). [`PiecewiseLinear`] implements the
//! breakpoint tables.

/// A least-squares polynomial `c0 + c1·x + c2·x² + …`.
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients, lowest order first.
    pub coeffs: Vec<f64>,
}

impl PolyFit {
    /// Fit a polynomial of the given degree through `points`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `degree + 1` points are supplied or the
    /// normal-equation system is singular (coincident x values).
    pub fn fit(points: &[(f64, f64)], degree: usize) -> PolyFit {
        let n = degree + 1;
        assert!(
            points.len() >= n,
            "need at least {n} points for a degree-{degree} fit, got {}",
            points.len()
        );
        // Normal equations: A^T A c = A^T y with A the Vandermonde matrix.
        let mut ata = vec![vec![0.0f64; n]; n];
        let mut aty = vec![0.0f64; n];
        for &(x, y) in points {
            let mut powers = Vec::with_capacity(2 * n - 1);
            let mut p = 1.0;
            for _ in 0..(2 * n - 1) {
                powers.push(p);
                p *= x;
            }
            for (i, row) in ata.iter_mut().enumerate() {
                for (j, a) in row.iter_mut().enumerate() {
                    *a += powers[i + j];
                }
                aty[i] += powers[i] * y;
            }
        }
        let coeffs = solve(&mut ata, &mut aty);
        PolyFit { coeffs }
    }

    /// Evaluate the polynomial at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // Horner's rule.
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Evaluate, clamp below at zero, and round to the nearest integer —
    /// the form resource estimates take.
    pub fn eval_count(&self, x: f64) -> u64 {
        self.eval(x).max(0.0).round() as u64
    }
}

/// Solve the symmetric positive-definite system in place via Gaussian
/// elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index form mirrors the algebra
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        assert!(a[pivot][col].abs() > 1e-12, "singular fit system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let k = a[row][col] / a[col][col];
            if k == 0.0 {
                continue;
            }
            for c in col..n {
                a[row][c] -= k * a[col][c];
            }
            b[row] -= k * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in (row + 1)..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    x
}

/// A piece-wise-linear table over sorted breakpoints, clamped at both
/// ends.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Build from breakpoints; sorts by x and requires at least one point
    /// and strictly increasing x after sorting.
    ///
    /// # Panics
    ///
    /// Panics on an empty table or duplicate x values.
    pub fn new(mut points: Vec<(f64, f64)>) -> PiecewiseLinear {
        assert!(!points.is_empty(), "piecewise table needs at least one point");
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "duplicate breakpoint x = {}", w[0].0);
        }
        PiecewiseLinear { points }
    }

    /// Interpolate at `x` (clamped to the table's range).
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the enclosing segment.
        let idx = pts.partition_point(|&(px, _)| px < x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Interpolate and round to a count.
    pub fn eval_count(&self, x: f64) -> u64 {
        self.eval(x).max(0.0).round() as u64
    }

    /// A step table: holds each y constant until the next breakpoint
    /// (used for DSP-element counts, which jump at width boundaries).
    pub fn eval_step(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        pts[idx - 1].1
    }

    /// The breakpoints (sorted).
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 9 experiment: fit a quadratic to three synthesis
    /// points for integer division generated by `x² + 3.7x − 10.6`, then
    /// interpolate at 24 bits and compare with the actual 652 ALUTs.
    #[test]
    fn fig9_quadratic_from_three_points() {
        let curve = |x: f64| x * x + 3.7 * x - 10.6;
        let pts: Vec<(f64, f64)> = [18.0, 32.0, 64.0].iter().map(|&x| (x, curve(x))).collect();
        let fit = PolyFit::fit(&pts, 2);
        assert!((fit.coeffs[2] - 1.0).abs() < 1e-9);
        assert!((fit.coeffs[1] - 3.7).abs() < 1e-9);
        assert!((fit.coeffs[0] + 10.6).abs() < 1e-9);
        let at24 = fit.eval_count(24.0);
        assert_eq!(at24, 654);
        // Paper: actual usage 652 ALUTs → error well under 1 %.
        let err = (at24 as f64 - 652.0) / 652.0 * 100.0;
        assert!(err.abs() < 0.5, "error {err}%");
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts = [(1.0, 3.0), (2.0, 5.0), (3.0, 7.0), (10.0, 21.0)];
        let fit = PolyFit::fit(&pts, 1);
        assert!((fit.coeffs[1] - 2.0).abs() < 1e-9);
        assert!((fit.coeffs[0] - 1.0).abs() < 1e-9);
        assert_eq!(fit.eval_count(6.0), 13);
    }

    #[test]
    fn overdetermined_fit_minimises_residual() {
        // Noisy line; least squares should land near slope 2.
        let pts = [(0.0, 0.1), (1.0, 1.9), (2.0, 4.1), (3.0, 5.9), (4.0, 8.1)];
        let fit = PolyFit::fit(&pts, 1);
        assert!((fit.coeffs[1] - 2.0).abs() < 0.05, "{:?}", fit.coeffs);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn underdetermined_fit_panics() {
        PolyFit::fit(&[(1.0, 1.0), (2.0, 2.0)], 2);
    }

    #[test]
    fn eval_count_clamps_negative() {
        // x² + 3.7x − 10.6 is negative at small x; counts clamp at 0.
        let fit = PolyFit { coeffs: vec![-10.6, 3.7, 1.0] };
        assert_eq!(fit.eval_count(1.0), 0);
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let t = PiecewiseLinear::new(vec![(10.0, 100.0), (20.0, 200.0), (40.0, 200.0)]);
        assert_eq!(t.eval(5.0), 100.0);
        assert_eq!(t.eval(15.0), 150.0);
        assert_eq!(t.eval(30.0), 200.0);
        assert_eq!(t.eval(99.0), 200.0);
        assert_eq!(t.eval_count(15.1), 151);
    }

    #[test]
    fn piecewise_sorts_input() {
        let t = PiecewiseLinear::new(vec![(20.0, 2.0), (10.0, 1.0)]);
        assert_eq!(t.breakpoints(), &[(10.0, 1.0), (20.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate breakpoint")]
    fn piecewise_rejects_duplicates() {
        PiecewiseLinear::new(vec![(1.0, 1.0), (1.0, 2.0)]);
    }

    #[test]
    fn step_table_for_dsp_counts() {
        // DSP elements for a multiplier on a Stratix-V-like fabric: jumps
        // at the 18/36/54-bit boundaries.
        let t = PiecewiseLinear::new(vec![(1.0, 1.0), (19.0, 2.0), (37.0, 4.0), (55.0, 8.0)]);
        assert_eq!(t.eval_step(18.0), 1.0);
        assert_eq!(t.eval_step(19.0), 2.0);
        assert_eq!(t.eval_step(36.0), 2.0);
        assert_eq!(t.eval_step(40.0), 4.0);
        assert_eq!(t.eval_step(64.0), 8.0);
        assert_eq!(t.eval_step(0.5), 1.0);
    }
}
