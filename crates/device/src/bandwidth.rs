//! Sustained-bandwidth empirical model (paper section V-C, Fig 10).
//!
//! The peak DRAM/host bandwidths can be read off the data sheets, but the
//! *sustained* bandwidth a stream achieves varies with access pattern and
//! size. The paper extends the STREAM benchmark to OpenCL-on-FPGA
//! (SDAccel on an Alpha-Data ADM-PCIE-7V3) and measures:
//!
//! * contiguous access sustaining 0.3 → 6.3 Gbps as the square 2-D array
//!   side grows from ~100 to 6000 elements, plateauing around 1000×1000;
//! * strided access flat at ~0.04–0.07 Gbps — up to two orders of
//!   magnitude below contiguous, with fixed-stride ≈ true random.
//!
//! [`BandwidthModel`] embeds that calibration table and interpolates the
//! sustained figure (and the scaling factor ρ against peak) for a stream
//! of a given pattern and size. The mechanistic DRAM model in `tytra-sim`
//! regenerates the same curve from first principles.

use crate::interp::PiecewiseLinear;
use tytra_ir::AccessPattern;

/// Gigabits per second → bytes per second.
pub const GBPS_TO_BYTES: f64 = 1.0e9 / 8.0;

/// Empirical sustained-bandwidth model for one memory link.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    /// Peak (data-sheet) bandwidth, bytes/s.
    pub peak_bytes_per_s: f64,
    /// Contiguous-access sustained bandwidth vs array side (elements of a
    /// square 2-D array, the benchmark's `Global-Size-0`), Gbps.
    contiguous_gbps: PiecewiseLinear,
    /// Strided-access sustained bandwidth vs stride, Gbps.
    strided_gbps: PiecewiseLinear,
}

impl BandwidthModel {
    /// The Fig 10 calibration (Alpha-Data ADM-PCIE-7V3, Virtex-7,
    /// baseline — no vendor-recommended optimisations). The twelve
    /// contiguous and seven strided labels of the figure are embedded
    /// verbatim.
    pub fn fig10_virtex7() -> BandwidthModel {
        BandwidthModel {
            // PCIe board DDR3: 1333 MT/s × 64 bit ≈ 10.7 GB/s per bank.
            peak_bytes_per_s: 10.7e9,
            contiguous_gbps: PiecewiseLinear::new(vec![
                (100.0, 0.3),
                (500.0, 1.2),
                (800.0, 1.7),
                (1000.0, 2.4),
                (1500.0, 4.1),
                (2000.0, 5.2),
                (2500.0, 5.6),
                (3000.0, 5.8),
                (4000.0, 6.1),
                (4500.0, 6.2),
                (5000.0, 6.2),
                (6000.0, 6.3),
            ]),
            strided_gbps: PiecewiseLinear::new(vec![
                (100.0, 0.04),
                (1000.0, 0.07),
                (2000.0, 0.07),
                (3000.0, 0.07),
                (4000.0, 0.07),
                (5000.0, 0.07),
                (6000.0, 0.07),
            ]),
        }
    }

    /// A DRAM model scaled to an arbitrary peak, keeping the Fig 10
    /// efficiency *shape*. Used for the Stratix-V Maia target whose
    /// absolute peak differs but whose burst behaviour is alike.
    pub fn scaled_to_peak(peak_bytes_per_s: f64) -> BandwidthModel {
        let base = BandwidthModel::fig10_virtex7();
        let k = peak_bytes_per_s / base.peak_bytes_per_s;
        let scale = |t: &PiecewiseLinear| {
            PiecewiseLinear::new(t.breakpoints().iter().map(|&(x, y)| (x, y * k)).collect())
        };
        BandwidthModel {
            peak_bytes_per_s,
            contiguous_gbps: scale(&base.contiguous_gbps),
            strided_gbps: scale(&base.strided_gbps),
        }
    }

    /// A DMA-engine link model: large linear transfers reach ~78 % of
    /// peak with a size-dependent ramp (descriptor overheads dominate
    /// small transfers); the engine linearises accesses, so the strided
    /// penalty is the ramp, not the two-orders-of-magnitude collapse of
    /// the unoptimised kernel-access path. Used for host PCIe DMA and
    /// for vendor-optimised memory controllers (the Maxeler Maia's
    /// streaming DRAM interface), in contrast to the Fig 10 baseline.
    pub fn dma(peak_bytes_per_s: f64) -> BandwidthModel {
        let peak_gbps = peak_bytes_per_s * 8.0 / 1e9;
        let eff = [
            (100.0, 0.15),
            (300.0, 0.35),
            (600.0, 0.50),
            (1000.0, 0.62),
            (1500.0, 0.70),
            (2000.0, 0.74),
            (3000.0, 0.77),
            (4000.0, 0.78),
            (6000.0, 0.78),
        ];
        let table: Vec<(f64, f64)> = eff.iter().map(|&(x, e)| (x, e * peak_gbps)).collect();
        // Strided kernel access is latency-bound (one request per
        // element), so it does not scale with pin bandwidth: keep the
        // measured absolute figures.
        let strided = BandwidthModel::fig10_virtex7().strided_gbps;
        BandwidthModel {
            peak_bytes_per_s,
            contiguous_gbps: PiecewiseLinear::new(table),
            strided_gbps: strided,
        }
    }

    /// Sustained bandwidth in Gbps for a stream over `total_elems`
    /// elements with the given access pattern. The benchmark's x-axis is
    /// the side of a square array, so `side = sqrt(total_elems)`; for
    /// strided access the x-axis is the stride itself.
    pub fn sustained_gbps(&self, pattern: AccessPattern, total_elems: u64) -> f64 {
        match pattern {
            AccessPattern::Contiguous => {
                let side = (total_elems as f64).sqrt();
                self.contiguous_gbps.eval(side)
            }
            AccessPattern::Strided { stride } => self.strided_gbps.eval(stride as f64),
        }
    }

    /// Sustained bandwidth in bytes/s.
    pub fn sustained_bytes_per_s(&self, pattern: AccessPattern, total_elems: u64) -> f64 {
        self.sustained_gbps(pattern, total_elems) * GBPS_TO_BYTES
    }

    /// The paper's scaling factor ρ (sustained ÷ peak) for this stream.
    pub fn rho(&self, pattern: AccessPattern, total_elems: u64) -> f64 {
        self.sustained_bytes_per_s(pattern, total_elems) / self.peak_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONT: AccessPattern = AccessPattern::Contiguous;

    #[test]
    fn fig10_contiguous_curve_rises_and_plateaus() {
        let m = BandwidthModel::fig10_virtex7();
        let small = m.sustained_gbps(CONT, 100 * 100);
        let knee = m.sustained_gbps(CONT, 1000 * 1000);
        let large = m.sustained_gbps(CONT, 5000 * 5000);
        assert!((small - 0.3).abs() < 1e-9);
        assert!((knee - 2.4).abs() < 1e-9);
        assert!((large - 6.2).abs() < 1e-9);
        assert!(small < knee && knee < large);
        // Plateau: beyond ~4000 the curve is nearly flat.
        let p1 = m.sustained_gbps(CONT, 4000 * 4000);
        let p2 = m.sustained_gbps(CONT, 6000 * 6000);
        assert!((p2 - p1) / p1 < 0.05);
    }

    #[test]
    fn fig10_contiguity_gap_is_two_orders_of_magnitude() {
        let m = BandwidthModel::fig10_virtex7();
        let cont = m.sustained_gbps(CONT, 5000 * 5000);
        let strided = m.sustained_gbps(AccessPattern::Strided { stride: 5000 }, 5000 * 5000);
        assert!(cont / strided > 80.0, "gap only {}×", cont / strided);
    }

    #[test]
    fn strided_is_flat_in_size() {
        let m = BandwidthModel::fig10_virtex7();
        let a = m.sustained_gbps(AccessPattern::Strided { stride: 2000 }, 1 << 20);
        let b = m.sustained_gbps(AccessPattern::Strided { stride: 6000 }, 1 << 26);
        assert!((a - b).abs() < 1e-9);
        assert!((a - 0.07).abs() < 1e-9);
    }

    #[test]
    fn interpolation_between_calibration_points() {
        let m = BandwidthModel::fig10_virtex7();
        // Side 1250 lies between the 1000 (2.4) and 1500 (4.1) points.
        let mid = m.sustained_gbps(CONT, 1250 * 1250);
        assert!(mid > 2.4 && mid < 4.1);
        assert!((mid - 3.25).abs() < 0.01);
    }

    #[test]
    fn rho_is_sustained_over_peak() {
        let m = BandwidthModel::fig10_virtex7();
        let rho = m.rho(CONT, 6000 * 6000);
        let expect = 6.3 * GBPS_TO_BYTES / 10.7e9;
        assert!((rho - expect).abs() < 1e-12);
        assert!(rho < 1.0);
    }

    #[test]
    fn scaled_model_keeps_shape() {
        let m = BandwidthModel::scaled_to_peak(38.4e9);
        let base = BandwidthModel::fig10_virtex7();
        let r1 = m.rho(CONT, 2000 * 2000);
        let r2 = base.rho(CONT, 2000 * 2000);
        assert!((r1 - r2).abs() < 1e-12, "ρ preserved under scaling");
        assert!(
            m.sustained_bytes_per_s(CONT, 2000 * 2000)
                > base.sustained_bytes_per_s(CONT, 2000 * 2000)
        );
    }

    #[test]
    fn clamping_outside_measured_range() {
        let m = BandwidthModel::fig10_virtex7();
        assert!((m.sustained_gbps(CONT, 4) - 0.3).abs() < 1e-9);
        assert!((m.sustained_gbps(CONT, 10_000u64.pow(2)) - 6.3).abs() < 1e-9);
    }
}
