//! Property tests over the calibration machinery: fits are faithful,
//! cost curves behave physically (monotone in width, non-negative), and
//! the bandwidth tables respect their defining invariants.

use proptest::prelude::*;
use tytra_device::{BandwidthModel, OpCostModel, PiecewiseLinear, PolyFit};
use tytra_ir::{AccessPattern, Opcode, ScalarType};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn polyfit_recovers_exact_quadratics(
        a in -5.0f64..5.0,
        b in -50.0f64..50.0,
        c in -200.0f64..200.0,
    ) {
        let f = |x: f64| a * x * x + b * x + c;
        let pts: Vec<(f64, f64)> = [4.0, 18.0, 32.0, 64.0].iter().map(|&x| (x, f(x))).collect();
        let fit = PolyFit::fit(&pts, 2);
        for x in [8.0, 24.0, 48.0, 100.0] {
            let err = (fit.eval(x) - f(x)).abs();
            prop_assert!(err < 1e-5 * (1.0 + f(x).abs()), "at {x}: {err}");
        }
    }

    #[test]
    fn polyfit_interpolation_bounded_by_noise(
        noise in proptest::collection::vec(-3.0f64..3.0, 5),
    ) {
        // A noisy line fitted with degree 1: predictions stay within the
        // noise envelope around the true line.
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        let pts: Vec<(f64, f64)> =
            xs.iter().zip(&noise).map(|(&x, &n)| (x, 2.0 * x + 5.0 + n)).collect();
        let fit = PolyFit::fit(&pts, 1);
        let pred = fit.eval(25.0);
        prop_assert!((pred - 55.0).abs() < 4.0, "{pred}");
    }

    #[test]
    fn piecewise_interpolation_stays_within_hull(
        ys in proptest::collection::vec(0.0f64..100.0, 4),
        x in 0.0f64..40.0,
    ) {
        let pts: Vec<(f64, f64)> =
            ys.iter().enumerate().map(|(i, &y)| (10.0 * i as f64, y)).collect();
        let t = PiecewiseLinear::new(pts);
        let v = t.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(0.0, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn integer_op_costs_monotone_in_width(w in 2u16..64) {
        let m = OpCostModel::stratix_v();
        for op in [Opcode::Add, Opcode::Div, Opcode::And, Opcode::CmpLt, Opcode::Shl] {
            let narrow = m.cost(op, ScalarType::UInt(w));
            let wide = m.cost(op, ScalarType::UInt(w + 8));
            prop_assert!(
                wide.aluts >= narrow.aluts,
                "{op} ALUTs shrank from {w} to {} bits",
                w + 8
            );
            prop_assert!(wide.regs >= narrow.regs);
        }
    }

    #[test]
    fn latency_and_delay_positive_for_all_ops(w in 1u16..128) {
        let m = OpCostModel::stratix_v();
        for op in Opcode::ALL {
            let ty = ScalarType::UInt(w);
            prop_assert!(m.latency(op, ty) >= 1);
            prop_assert!(m.stage_delay_ns(op, ty) > 0.0);
            prop_assert!(m.op_delay_ns(op, ty) >= 0.0);
            prop_assert!(
                (m.stage_delay_ns(op, ty) - m.route_delay_ns() - m.op_delay_ns(op, ty)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn bandwidth_monotone_in_size_for_contiguous(e1 in 10u64..3000, e2 in 10u64..3000) {
        let m = BandwidthModel::fig10_virtex7();
        let (small, large) = (e1.min(e2), e1.max(e2));
        let b_small = m.sustained_gbps(AccessPattern::Contiguous, small * small);
        let b_large = m.sustained_gbps(AccessPattern::Contiguous, large * large);
        prop_assert!(b_large >= b_small - 1e-12);
    }

    #[test]
    fn rho_is_always_a_fraction(elems in 1u64..100_000_000, stride in 1u64..8192) {
        for m in [
            BandwidthModel::fig10_virtex7(),
            BandwidthModel::dma(4.0e9),
            BandwidthModel::scaled_to_peak(38.4e9),
        ] {
            for pat in [AccessPattern::Contiguous, AccessPattern::Strided { stride }] {
                let rho = m.rho(pat, elems);
                prop_assert!(rho > 0.0 && rho <= 1.0, "rho {rho} for {pat:?}");
            }
        }
    }

    #[test]
    fn strided_never_beats_contiguous(elems in 100u64..10_000_000, stride in 100u64..8192) {
        for m in [BandwidthModel::fig10_virtex7(), BandwidthModel::dma(38.4e9)] {
            let c = m.sustained_gbps(AccessPattern::Contiguous, elems);
            let s = m.sustained_gbps(AccessPattern::Strided { stride }, elems);
            prop_assert!(s <= c + 1e-9, "strided {s} > contiguous {c}");
        }
    }
}
