//! Integration tests driving the `tybec` binary end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tybec(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tybec"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("tybec runs")
}

fn tybec_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut c = Command::new(env!("CARGO_BIN_EXE_tybec"));
    c.args(args).current_dir(workspace_root());
    for (k, v) in envs {
        c.env(k, v);
    }
    c.output().expect("tybec runs")
}

fn workspace_root() -> PathBuf {
    // crates/cli → workspace root two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

#[test]
fn no_args_prints_usage_and_fails() {
    let o = tybec(&[]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("usage: tybec"));
}

#[test]
fn help_succeeds() {
    let o = tybec(&["help"]);
    assert!(o.status.success());
    assert!(stdout(&o).contains("cost"));
    assert!(stdout(&o).contains("eval-small"));
}

#[test]
fn cost_reports_on_the_shipped_asset() {
    let o = tybec(&["cost", "assets/sor_c2.tirl"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    for needle in ["design", "resources", "EKIT", "limiter", "clock"] {
        assert!(out.contains(needle), "missing `{needle}` in:\n{out}");
    }
}

#[test]
fn cost_accepts_target_flag() {
    let o = tybec(&["cost", "assets/sor_c2.tirl", "--target", "eval-small"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("eval-small"));
    let bad = tybec(&["cost", "assets/sor_c2.tirl", "--target", "nonsense"]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("unknown target"));
}

#[test]
fn actual_compares_estimate_and_simulation() {
    let o = tybec(&["actual", "assets/sor_c2.tirl"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("estimated:"));
    assert!(out.contains("actual   :"));
    assert!(out.contains("CPKI"));
    assert!(out.contains("error %"));
}

#[test]
fn tree_shows_the_four_lane_structure() {
    let o = tybec(&["tree", "assets/sor_c1_4lane.tirl"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("C1ParallelPipes"));
    assert_eq!(out.matches("pipe f0").count(), 4);
}

#[test]
fn hdl_emits_checked_verilog_to_a_file() {
    let dir = std::env::temp_dir().join("tytra_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("sor.v");
    let out_str = out_path.to_str().unwrap();
    let o = tybec(&["hdl", "assets/sor_c2.tirl", "--check", "-o", out_str]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stderr(&o).contains("structural check: ok"));
    let hdl = std::fs::read_to_string(&out_path).unwrap();
    assert!(hdl.contains("module tytra_f0"));
    assert!(hdl.contains("endmodule"));
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn hdl_wrapper_prints_maxj() {
    let o = tybec(&["hdl", "assets/sor_c2.tirl", "--wrapper"]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stdout(&o).contains("extends Kernel"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let o = tybec(&["cost", "assets/ghost.tirl"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("ghost.tirl"));
}

#[test]
fn parse_errors_carry_positions() {
    let dir = std::env::temp_dir().join("tytra_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.tirl");
    std::fs::write(&bad, "define void @f0(ui18 %p) pipe {\n ui18 %x = frob ui18 %p, %p\n}\n")
        .unwrap();
    let o = tybec(&["cost", bad.to_str().unwrap()]);
    assert!(!o.status.success());
    let err = stderr(&o);
    assert!(err.contains("unknown opcode"), "{err}");
    assert!(err.contains("2:"), "position missing: {err}");
    std::fs::remove_file(&bad).ok();
}

#[test]
fn exit_codes_distinguish_error_categories() {
    let dir = std::env::temp_dir().join("tytra_cli_test");
    std::fs::create_dir_all(&dir).unwrap();

    // Usage mistakes keep the traditional exit 1.
    assert_eq!(tybec(&["frobnicate"]).status.code(), Some(1));
    assert_eq!(tybec(&["dse", "fft"]).status.code(), Some(1));

    // Parse errors exit 2.
    let bad = dir.join("exit_parse.tirl");
    std::fs::write(&bad, "define void @f0(ui18 %p) pipe {\n ui18 %x = frob ui18 %p, %p\n}\n")
        .unwrap();
    assert_eq!(tybec(&["cost", bad.to_str().unwrap()]).status.code(), Some(2));
    std::fs::remove_file(&bad).ok();

    // Validation errors exit 3 (parses, but declares a duplicate name).
    let invalid = dir.join("exit_validate.tirl");
    std::fs::write(
        &invalid,
        "!module = !\"dup\"\n!ndrange = !{8}\n!nki = !1\n!form = !\"B\"\n\
         %mem_p = memobj addrSpace(1) ui18, !size, !8\n\
         %mem_p = memobj addrSpace(1) ui18, !size, !8\n",
    )
    .unwrap();
    let o = tybec(&["cost", invalid.to_str().unwrap()]);
    assert_eq!(o.status.code(), Some(3), "{}", stderr(&o));
    std::fs::remove_file(&invalid).ok();

    // Filesystem errors exit 8.
    assert_eq!(tybec(&["cost", "assets/ghost.tirl"]).status.code(), Some(8));
}

#[test]
fn dse_runs_a_small_sweep() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--lanes", "1,2,4"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("lane sweep"));
    assert!(out.contains("full exploration"));
    assert!(out.contains("guided tuning"));
    assert!(out.contains("EWGT/s"));
}

#[test]
fn roofline_places_variants() {
    let o = tybec(&["roofline", "hotspot", "--lanes", "1,8"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("compute roof"));
    assert!(out.contains("memory"), "8 hotspot lanes should be memory-bound:\n{out}");
    assert_eq!(out.lines().count(), 3);
}

#[test]
fn exec_runs_the_datapath_deterministically() {
    let a = tybec(&["exec", "assets/sor_c2.tirl", "--items", "256", "--seed", "7"]);
    assert!(a.status.success(), "{}", stderr(&a));
    let b = tybec(&["exec", "assets/sor_c2.tirl", "--items", "256", "--seed", "7"]);
    assert_eq!(stdout(&a), stdout(&b), "same seed, same checksums");
    assert!(stdout(&a).contains("checksum"));
    assert!(stdout(&a).contains("@sorErrAcc"));
    let c = tybec(&["exec", "assets/sor_c2.tirl", "--items", "256", "--seed", "8"]);
    assert_ne!(stdout(&a), stdout(&c), "different seed, different data");
}

#[test]
fn dse_rejects_unknown_kernel() {
    let o = tybec(&["dse", "fft"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("unknown kernel"));
}

#[test]
fn dse_stats_reports_high_hit_rate() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--stats"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("estimator session stats"), "{out}");
    let total = out
        .lines()
        .find(|l| l.trim_start().starts_with("total"))
        .unwrap_or_else(|| panic!("no total stats line:\n{out}"));
    // "  total       1234 hits    56 misses  hit rate  84.7%      0 evicted"
    let pct: f64 = total
        .split("hit rate")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.trim_end_matches('%').parse().ok())
        .unwrap_or_else(|| panic!("unparseable stats line: {total}"));
    assert!(pct > 50.0, "memo hit rate should exceed 50%: {total}");
}

#[test]
fn dse_workers_flag_is_deterministic() {
    let base = &["dse", "sor", "--target", "eval-small", "--lanes", "1,2,4"];
    let default = tybec(base);
    assert!(default.status.success(), "{}", stderr(&default));
    for n in ["1", "4"] {
        let args: Vec<&str> = base.iter().copied().chain(["--workers", n]).collect();
        let o = tybec(&args);
        assert!(o.status.success(), "--workers {n}: {}", stderr(&o));
        assert_eq!(stdout(&o), stdout(&default), "--workers {n} changed the output");
    }
}

#[test]
fn dse_exhaustive_flag_does_not_change_the_output() {
    // The branch-and-bound default and the --exhaustive escape hatch
    // must print byte-identical reports (the admissibility contract);
    // only the --stats counters may differ, so compare without them.
    let pruned = tybec(&["dse", "sor", "--target", "eval-small"]);
    let exhaustive = tybec(&["dse", "sor", "--target", "eval-small", "--exhaustive"]);
    assert!(pruned.status.success(), "{}", stderr(&pruned));
    assert!(exhaustive.status.success(), "{}", stderr(&exhaustive));
    assert_eq!(stdout(&pruned), stdout(&exhaustive), "--exhaustive changed the report");
}

#[test]
fn dse_stats_shows_pruning_counters() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--stats"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    let line = out
        .lines()
        .find(|l| l.trim_start().starts_with("search"))
        .unwrap_or_else(|| panic!("no search stats line:\n{out}"));
    assert!(line.contains("generated"), "{line}");
    assert!(line.contains("pruned"), "{line}");
    // The default eval-small sweep includes lane counts that cannot fit,
    // so the bound pass must have pruned something.
    let pruned: u64 = line
        .split_whitespace()
        .zip(line.split_whitespace().skip(1))
        .find(|(_, label)| *label == "pruned")
        .and_then(|(n, _)| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable search line: {line}"));
    assert!(pruned > 0, "expected pruning on eval-small: {line}");

    let exhaustive = tybec(&["dse", "sor", "--target", "eval-small", "--stats", "--exhaustive"]);
    let ex_out = stdout(&exhaustive);
    let ex_line = ex_out
        .lines()
        .find(|l| l.trim_start().starts_with("search"))
        .unwrap_or_else(|| panic!("no search stats line:\n{ex_out}"));
    assert!(ex_line.contains(" 0 pruned"), "exhaustive mode must not prune: {ex_line}");
    // The faulted column is byte-stable and reads 0 on a healthy sweep,
    // in both modes.
    assert!(line.ends_with("    0 faulted"), "pruned line: {line}");
    assert!(ex_line.ends_with("    0 faulted"), "exhaustive line: {ex_line}");
}

#[test]
fn dse_rejects_bad_workers_value() {
    let o = tybec(&["dse", "sor", "--workers", "zero"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--workers"), "{}", stderr(&o));
}

#[test]
fn lint_runs_all_passes_over_every_asset() {
    for asset in [
        "assets/sor_c2.tirl",
        "assets/sor_c1_4lane.tirl",
        "assets/hotspot_c2.tirl",
        "assets/lavamd_c2.tirl",
    ] {
        let o = tybec(&["lint", asset]);
        assert!(o.status.success(), "{asset}: {}", stderr(&o));
        let out = stdout(&o);
        assert!(out.contains("0 errors") || out.contains("clean"), "{asset}:\n{out}");
    }
}

#[test]
fn lint_reports_validation_and_exits_nonzero_on_errors() {
    let o = tybec(&["lint", "crates/lint/tests/fixtures/tl1003.tirl"]);
    assert!(!o.status.success(), "out-of-range offset is an error");
    let out = stdout(&o);
    assert!(out.contains("error[TL1003]"), "{out}");
    assert!(out.contains("--> crates/lint/tests/fixtures/tl1003.tirl:21:"), "{out}");
    assert!(out.contains("= help:"), "{out}");
}

#[test]
fn lint_deny_warnings_flips_the_exit_code() {
    let fixture = "crates/lint/tests/fixtures/tl1001.tirl";
    let ok = tybec(&["lint", fixture]);
    assert!(ok.status.success(), "warnings alone must not fail: {}", stderr(&ok));
    assert!(stdout(&ok).contains("warning[TL1001]"));
    let deny = tybec(&["lint", fixture, "--deny-warnings"]);
    assert!(!deny.status.success(), "--deny-warnings must fail on warnings");
    assert!(stderr(&deny).contains("denied by --deny-warnings"));
}

#[test]
fn lint_json_is_machine_readable() {
    let o = tybec(&["lint", "crates/lint/tests/fixtures/tl1004.tirl", "--json"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.trim_start().starts_with('{'), "{out}");
    assert!(out.contains("\"code\": \"TL1004\""), "{out}");
    assert!(out.contains("\"module\": \"fix_tl1004\""), "{out}");
    assert!(out.contains("\"line\": 17"), "{out}");
}

fn trace_tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tybec_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn tracing_leaves_cost_stdout_bit_identical() {
    let path = trace_tmp("cost_equiv.json");
    let plain = tybec(&["cost", "assets/sor_c2.tirl"]);
    let traced = tybec(&["cost", "assets/sor_c2.tirl", "--trace", path.to_str().unwrap()]);
    assert!(plain.status.success(), "{}", stderr(&plain));
    assert!(traced.status.success(), "{}", stderr(&traced));
    assert_eq!(plain.stdout, traced.stdout, "--trace must not perturb the report");
    assert!(stderr(&traced).contains("span(s) written"), "{}", stderr(&traced));
    std::fs::remove_file(&path).ok();
}

#[test]
fn tracing_leaves_dse_stdout_bit_identical() {
    let path = trace_tmp("dse_equiv.jsonl");
    let base = &["dse", "sor", "--target", "eval-small", "--lanes", "1,2,4", "--workers", "2"];
    let plain = tybec(base);
    let args: Vec<&str> = base
        .iter()
        .copied()
        .chain(["--trace", path.to_str().unwrap(), "--trace-format", "jsonl"])
        .collect();
    let traced = tybec(&args);
    assert!(plain.status.success(), "{}", stderr(&plain));
    assert!(traced.status.success(), "{}", stderr(&traced));
    assert_eq!(plain.stdout, traced.stdout, "--trace must not perturb the sweep");
    std::fs::remove_file(&path).ok();
}

#[test]
fn chrome_trace_has_all_pass_spans_and_worker_lanes() {
    let path = trace_tmp("dse_lanes.json");
    let o = tybec(&[
        "dse",
        "sor",
        "--target",
        "eval-small",
        "--lanes",
        "1,2,4",
        "--workers",
        "4",
        // Exhaustive: every seeded worker must fully estimate at least
        // one variant (steals never take a queue's last task), so the
        // multi-lane assertion below is deterministic, not a timing bet.
        "--exhaustive",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    let doc = tytra_trace::json::parse(&body).expect("chrome trace parses as JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    let complete: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
    for pass in [
        "estimator.validate",
        "estimator.configure",
        "estimator.schedule",
        "estimator.parameters",
        "estimator.resources",
        "estimator.clock",
        "estimator.bandwidth",
        "estimator.throughput",
        "tybec.dse",
        "dse.variant",
    ] {
        assert!(
            complete.iter().any(|e| e.get("name").and_then(|n| n.as_str()) == Some(pass)),
            "span `{pass}` missing from trace"
        );
    }
    let mut lanes: Vec<u64> = complete
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("dse.variant"))
        .filter_map(|e| e.get("tid").and_then(|t| t.as_num()))
        .map(|t| t as u64)
        .collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(lanes.len() >= 2, "expected ≥2 worker lanes, got {lanes:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn pruned_search_trace_has_bound_spans() {
    // The default (branch-and-bound) dse run must show its bound pass in
    // the trace: a dse.bound span per bounded variant, alongside the
    // dse.variant spans of the survivors that paid the full estimate.
    let path = trace_tmp("dse_bound.json");
    let o = tybec(&[
        "dse",
        "sor",
        "--target",
        "eval-small",
        "--workers",
        "4",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    let doc = tytra_trace::json::parse(&body).expect("chrome trace parses as JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
            .count()
    };
    let bounds = count("dse.bound");
    let estimates = count("dse.variant");
    assert!(bounds > 0, "pruned search must trace its bound pass");
    assert!(estimates > 0, "survivors must still be fully estimated");
    assert!(
        estimates < bounds,
        "the default eval-small sweep has unfittable lane counts, so some \
         variants must be pruned: {bounds} bounds vs {estimates} estimates"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn jsonl_trace_lines_all_parse() {
    let path = trace_tmp("cost_lines.jsonl");
    let o = tybec(&[
        "cost",
        "assets/sor_c2.tirl",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "jsonl",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(!body.trim().is_empty());
    let mut names = Vec::new();
    for line in body.lines() {
        let v = tytra_trace::json::parse(line)
            .unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
        names.push(v.get("name").and_then(|n| n.as_str()).expect("name field").to_string());
    }
    assert!(names.iter().any(|n| n == "estimator.estimate"), "{names:?}");
    assert!(names.iter().any(|n| n == "tybec.cost"), "{names:?}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn tree_trace_format_renders_span_tree() {
    let path = trace_tmp("cost_tree.txt");
    let o = tybec(&[
        "cost",
        "assets/sor_c2.tirl",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "tree",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("tybec.cost"), "{body}");
    assert!(body.contains("estimator.estimate"), "{body}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn dse_metrics_prints_the_registry_table() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--lanes", "1,2", "--metrics"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("== metrics =="), "{out}");
    for metric in
        ["session.memo.hits", "session.memo.misses", "curves.hits", "estimator.estimate_ns"]
    {
        assert!(out.contains(metric), "missing `{metric}`:\n{out}");
    }
}

#[test]
fn folded_trace_format_renders_collapsed_stacks() {
    let path = trace_tmp("cost_folded.txt");
    let o = tybec(&[
        "cost",
        "assets/sor_c2.tirl",
        "--trace",
        path.to_str().unwrap(),
        "--trace-format",
        "folded",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(!body.trim().is_empty());
    // Every line is `root;child;leaf self_ns` — flamegraph.pl input.
    for line in body.lines() {
        let (stack, count) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(!stack.is_empty(), "{line}");
        count.parse::<u64>().unwrap_or_else(|e| panic!("bad self-time in `{line}`: {e}"));
    }
    assert!(
        body.lines().any(|l| l.starts_with("tybec.cost;estimator.estimate;")),
        "estimator passes should fold under the root span:\n{body}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn flight_recorder_env_switch_keeps_stdout_identical() {
    // The recorder is on by default and must never show in stdout, so a
    // run with it disabled is byte-identical on every CLI path.
    // (No --stats here: its latency quantiles are wall-clock readings,
    // the one part of the CLI that is deliberately not byte-stable.)
    for args in [
        vec!["cost", "assets/sor_c2.tirl"],
        vec!["dse", "sor", "--target", "eval-small", "--lanes", "1,2,4"],
    ] {
        let on = tybec(&args);
        let off = tybec_env(&args, &[("TYTRA_FLIGHT_RECORDER", "0")]);
        assert!(on.status.success(), "{}", stderr(&on));
        assert!(off.status.success(), "{}", stderr(&off));
        assert_eq!(on.stdout, off.stdout, "recorder state leaked into {args:?} stdout");
    }
}

#[test]
fn profile_subcommand_ranks_estimator_passes() {
    let o = tybec(&["profile", "assets/sor_c2.tirl", "--target", "eval-small"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    assert!(out.contains("== profile:"), "{out}");
    assert!(out.contains("self%"), "attribution table header missing:\n{out}");
    assert!(out.contains("estimator.estimate"), "{out}");
    assert!(out.contains("memo: cold"), "{out}");
    assert!(out.contains("allocs:"), "{out}");
    // The warm estimate replays from the memo tables.
    let memo = out.lines().find(|l| l.trim_start().starts_with("memo:")).unwrap();
    assert!(memo.contains("% warm hit rate"), "{memo}");
}

#[test]
fn dse_metrics_out_writes_prometheus_exposition() {
    let path = trace_tmp("dse_metrics.prom");
    let o = tybec(&[
        "dse",
        "sor",
        "--target",
        "eval-small",
        "--lanes",
        "1,2",
        "--metrics-out",
        path.to_str().unwrap(),
        "--metrics-format",
        "prometheus",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stderr(&o).contains("snapshot written"), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    assert!(body.contains("# TYPE"), "{body}");
    assert!(body.contains("dse_points"), "{body}");
    assert!(body.contains("le=\"+Inf\""), "histograms need an +Inf bucket:\n{body}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn dse_metrics_stream_emits_interval_tagged_jsonl() {
    let path = trace_tmp("dse_stream.jsonl");
    let o = tybec(&[
        "dse",
        "sor",
        "--target",
        "eval-small",
        "--lanes",
        "1,2,4",
        "--metrics-stream",
        path.to_str().unwrap(),
        "--metrics-interval-ms",
        "20",
    ]);
    assert!(o.status.success(), "{}", stderr(&o));
    assert!(stderr(&o).contains("metrics stream:"), "{}", stderr(&o));
    let body = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "the stop-time flush guarantees at least one sample");
    for (i, line) in lines.iter().enumerate() {
        let v = tytra_trace::json::parse(line)
            .unwrap_or_else(|e| panic!("bad stream line `{line}`: {e}"));
        assert_eq!(v.get("seq").and_then(|s| s.as_num()), Some(i as f64), "{line}");
        assert!(v.get("interval_ms").is_some(), "{line}");
        assert!(v.get("metrics").is_some(), "{line}");
    }
    // By the final (stop-time) sample the workers have published.
    assert!(lines.last().unwrap().contains("dse.points"), "{body}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_metrics_format_is_rejected() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--metrics-format", "xml"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--metrics-format"), "{}", stderr(&o));
}

#[test]
fn dse_stats_shows_latency_quantiles() {
    let o = tybec(&["dse", "sor", "--target", "eval-small", "--stats"]);
    assert!(o.status.success(), "{}", stderr(&o));
    let out = stdout(&o);
    let line = out
        .lines()
        .find(|l| l.trim_start().starts_with("latency (ns)"))
        .unwrap_or_else(|| panic!("no latency stats line:\n{out}"));
    assert!(line.contains("bound p50"), "{line}");
    assert!(line.contains("estimate p50"), "{line}");
    assert!(line.contains('≤'), "a real sweep must populate the histograms: {line}");
    assert!(!line.contains("n/a"), "{line}");
}

#[test]
fn bad_trace_format_is_rejected() {
    let o =
        tybec(&["cost", "assets/sor_c2.tirl", "--trace", "/tmp/x.json", "--trace-format", "xml"]);
    assert!(!o.status.success());
    assert!(stderr(&o).contains("--trace-format"), "{}", stderr(&o));
}

#[test]
fn lint_surfaces_validator_codes_with_spans() {
    // A structurally invalid design: lint must report the TL00xx codes
    // (with anchors) and fail, with TL1xxx passes suppressed.
    let dir = std::env::temp_dir().join("tybec_lint_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("invalid.tirl");
    std::fs::write(
        &path,
        "!module = !\"bad\"\n!ndrange = !{4}\n!nki = !1\n!form = !\"B\"\n\n\
         define void @f0(ui18 %a, out ui18 %o) pipe {\n  ui18 %t1 = add ui18 %zzz, 1\n  \
         ui18 %o__out = or ui18 %t1, 0\n}\n\ndefine void @main() {\n  call @f0(%a, %o) pipe\n}\n",
    )
    .unwrap();
    let o = tybec(&["lint", path.to_str().unwrap()]);
    assert!(!o.status.success());
    let out = stdout(&o);
    assert!(out.contains("error[TL0010]"), "{out}");
    assert!(out.contains(":7:"), "span should anchor line 7:\n{out}");
    assert!(!out.contains("TL10"), "lint passes must be suppressed:\n{out}");
}
