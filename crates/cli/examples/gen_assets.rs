//! Regenerates the shipped .tirl assets from the kernel library.
use tytra_kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra_transform::Variant;

fn main() {
    let sor = Sor::default();
    let base = sor.lower_variant(&Variant::baseline()).unwrap();
    std::fs::write(
        "assets/sor_c2.tirl",
        format!(
            "; SOR kernel, single pipeline lane (paper Fig 12 shape)\n{}",
            tytra_ir::print(&base)
        ),
    )
    .unwrap();
    let four = sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();
    std::fs::write(
        "assets/sor_c1_4lane.tirl",
        format!(
            "; SOR kernel, four data-parallel pipeline lanes (paper Fig 14 shape)\n{}",
            tytra_ir::print(&four)
        ),
    )
    .unwrap();
    for (name, m) in [
        ("hotspot", Hotspot::default().lower_variant(&Variant::baseline()).unwrap()),
        ("lavamd", LavaMd::default().lower_variant(&Variant::baseline()).unwrap()),
    ] {
        std::fs::write(
            format!("assets/{name}_c2.tirl"),
            format!("; {name} kernel, single pipeline lane\n{}", tytra_ir::print(&m)),
        )
        .unwrap();
    }
    eprintln!("assets regenerated");
}
