//! `tybec` — the TyTra Back-End Compiler command-line front end.
//!
//! The tool described in paper section VI ("we have developed a back-end
//! compiler that accepts a design variant in TyTra-IR, costs it and, if
//! needed, generates the HDL code for it"):
//!
//! ```text
//! tybec cost   <design.tirl> [--target <name>]      cost-model report
//! tybec actual <design.tirl> [--target <name>]      virtual synthesis + simulation, est-vs-actual
//! tybec hdl    <design.tirl> [--target <name>] [-o out.v] [--wrapper] [--check]
//! tybec tree   <design.tirl>                        configuration tree (Fig 8)
//! tybec dse    <sor|hotspot|lavamd> [--target <name>] [--lanes N,N,...] [--workers N] [--stats] [--metrics]
//! tybec roofline <sor|hotspot|lavamd> [--target <name>] [--lanes N,N,...]
//! tybec exec   <design.tirl> [--items N] [--seed S]   run the datapath functionally
//! tybec lint   <design.tirl> [--target <name>] [--json] [--deny-warnings]
//! tybec analyze <design.tirl> [--json]              dataflow analysis report
//! tybec profile <design.tirl> [--target <name>]     per-pass self-time attribution
//! tybec serve  [--tcp <addr>|--unix <path>] [--workers N] [--cache-capacity N] [--batch N]
//! ```
//!
//! Every subcommand also accepts the global profiling flags
//! `--trace <out>` and `--trace-format chrome|jsonl|tree|folded` (see
//! `docs/observability.md`). Tracing observes the run without changing
//! it: stdout stays byte-identical, the trace file and its one-line
//! status go elsewhere (the file and stderr respectively).
//!
//! The flight recorder (always-on crash breadcrumbs) is live for every
//! invocation; a panic dumps the per-thread event rings to stderr (and
//! to `$TYTRA_FLIGHT_DUMP` when set). `TYTRA_FLIGHT_RECORDER=0` turns
//! it off.
//!
//! Targets: `stratix-v-gsd8` (default), `virtex7-adm7v3`, `eval-small`.

use std::process::ExitCode;
use std::sync::Arc;
use tytra_codegen::{check, emit_design, emit_maxj_wrapper};
use tytra_cost::{estimate, EstimatorSession};
use tytra_device::TargetDevice;
use tytra_dse::{lane_sweep_session, search, tune_session, ExplorationConfig, SearchConfig};
use tytra_ir::{ErrorCategory, IrError, TybecError};
use tytra_kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra_sim::{run_application, synthesize};
use tytra_trace::metrics::Registry;
use tytra_trace::prometheus::render_prometheus;
use tytra_trace::sampler::Sampler;
use tytra_trace::{profile, recorder, sink};
use tytra_transform::Variant;

/// Counting shim over the system allocator (feature `alloc-count`):
/// `tybec profile` reports heap allocations per estimate with it on.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counter has no effect on
    // the returned pointers or layouts.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;
}

/// Allocation counter reading, `None` without the `alloc-count` feature.
fn alloc_count() -> Option<u64> {
    #[cfg(feature = "alloc-count")]
    {
        Some(counting_alloc::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

const USAGE: &str = "usage: tybec <cost|actual|hdl|tree|dse|roofline|exec|lint|analyze|profile|serve> <input> [options]
  cost   <design.tirl> [--target <name>]
  actual <design.tirl> [--target <name>]
  hdl    <design.tirl> [--target <name>] [-o <out.v>] [--wrapper] [--check]
  tree   <design.tirl>
  dse    <sor|hotspot|lavamd> [--target <name>] [--lanes 1,2,4,...] [--workers N] [--exhaustive] [--stats] [--metrics]
         [--metrics-format table|prometheus] [--metrics-out <file>]
         [--metrics-stream <file.jsonl>] [--metrics-interval-ms N]
  roofline <sor|hotspot|lavamd> [--target <name>] [--lanes 1,2,4,...]
  exec   <design.tirl> [--items N] [--seed S]
  lint   <design.tirl> [--target <name>] [--json] [--deny-warnings]
  analyze <design.tirl> [--json]
  profile <design.tirl> [--target <name>]
  serve  [--tcp <addr>|--unix <path>] [--workers N] [--cache-capacity N] [--batch N]
         cost-model daemon: JSONL requests over TCP (default 127.0.0.1:7737) or a Unix socket;
         see docs/serve.md for the wire protocol
global: --trace <out> [--trace-format chrome|jsonl|tree|folded]   write a span trace of the run
env: TYTRA_FLIGHT_RECORDER=0 disables crash breadcrumbs; TYTRA_FLIGHT_DUMP=<path> writes panic dumps there
targets: stratix-v-gsd8 (default) | virtex7-adm7v3 | eval-small";

fn main() -> ExitCode {
    // The flight recorder is on by default; the env switch exists for
    // measuring its (tiny) overhead and for paranoid reproductions.
    if std::env::var("TYTRA_FLIGHT_RECORDER").as_deref() == Ok("0") {
        recorder::set_enabled(false);
    }
    recorder::install_panic_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tybec: {e}");
            e.exit_code()
        }
    }
}

/// What a failed `tybec` invocation exits with.
///
/// Usage mistakes (bad flags, unknown commands) and lint policy
/// failures keep the traditional exit 1; structured pipeline failures
/// exit with their [`ErrorCategory`]'s code (parse 2, validate 3,
/// config 4, estimate 5, sim 6, search 7, io 8, internal 10), so
/// scripts can tell "your input is broken" from "the tool is broken"
/// without scraping stderr.
#[derive(Debug)]
enum CliError {
    /// Bad invocation or a lint policy failure: generic exit 1.
    Usage(String),
    /// A categorized pipeline error.
    Tybec(TybecError),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::FAILURE,
            CliError::Tybec(e) => ExitCode::from(e.category.exit_code()),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => f.write_str(m),
            CliError::Tybec(e) => write!(f, "{e}"),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

impl From<TybecError> for CliError {
    fn from(e: TybecError) -> CliError {
        CliError::Tybec(e)
    }
}

impl From<IrError> for CliError {
    fn from(e: IrError) -> CliError {
        CliError::Tybec(e.into())
    }
}

/// How `--trace` writes the collected spans out.
#[derive(Debug, Clone, Copy)]
enum TraceFormat {
    /// Chrome trace-event JSON (load in Perfetto / `chrome://tracing`).
    Chrome,
    /// One JSON object per span per line.
    Jsonl,
    /// Human-readable span tree.
    Tree,
    /// Collapsed stacks (`root;child;leaf self_ns`), one line per
    /// unique stack — feed to inferno/flamegraph.pl or speedscope.
    Folded,
}

/// The non-trace args plus the requested trace output, if any.
type SplitArgs = (Vec<String>, Option<(String, TraceFormat)>);

/// Split the global `--trace` / `--trace-format` flags off the argument
/// list (so subcommand parsers never see them) and return the remaining
/// args plus the requested trace output, if any.
fn split_trace_flags(args: &[String]) -> Result<SplitArgs, String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut path = None;
    let mut format = TraceFormat::Chrome;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => {
                path = Some(it.next().ok_or("--trace expects an output path")?.clone());
            }
            "--trace-format" => {
                let v = it.next().ok_or("--trace-format expects chrome|jsonl|tree|folded")?;
                format = match v.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "jsonl" => TraceFormat::Jsonl,
                    "tree" => TraceFormat::Tree,
                    "folded" => TraceFormat::Folded,
                    other => {
                        return Err(format!(
                            "unknown --trace-format `{other}` (expected chrome|jsonl|tree|folded)"
                        ))
                    }
                };
            }
            _ => rest.push(a.clone()),
        }
    }
    Ok((rest, path.map(|p| (p, format))))
}

/// Drain the collected spans and write them to `path` in `format`. The
/// status line goes to stderr so stdout stays identical to an untraced
/// run.
fn write_trace(path: &str, format: TraceFormat) -> Result<(), String> {
    let records = tytra_trace::take_records();
    let labels = tytra_trace::thread_labels();
    let body = match format {
        TraceFormat::Chrome => sink::render_chrome(&records, &labels),
        TraceFormat::Jsonl => sink::render_jsonl(&records),
        TraceFormat::Tree => sink::render_tree(&records, &labels),
        TraceFormat::Folded => profile::render_folded(&records),
    };
    std::fs::write(path, body).map_err(|e| format!("writing trace {path}: {e}"))?;
    eprintln!("trace: {} span(s) written to {path}", records.len());
    Ok(())
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (args, trace_out) = split_trace_flags(args)?;
    let Some(cmd) = args.first() else {
        return Err(USAGE.to_string().into());
    };
    if trace_out.is_some() {
        tytra_trace::set_enabled(true);
        tytra_trace::set_thread_label("main");
    }
    let rest = &args[1..];
    let result = {
        // Root span covering the whole subcommand (`tybec.cost`, …).
        let _root = tytra_trace::enabled().then(|| tytra_trace::span(&format!("tybec.{cmd}")));
        match cmd.as_str() {
            "cost" => cmd_cost(rest),
            "actual" => cmd_actual(rest),
            "hdl" => cmd_hdl(rest),
            "tree" => cmd_tree(rest),
            "dse" => cmd_dse(rest),
            "roofline" => cmd_roofline(rest),
            "exec" => cmd_exec(rest),
            "lint" => cmd_lint(rest),
            "analyze" => cmd_analyze(rest),
            "profile" => cmd_profile(rest),
            "serve" => cmd_serve(rest),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
        }
    };
    if let Some((path, format)) = &trace_out {
        // Write the trace even when the command failed — a trace of a
        // failing run is exactly what you want to look at — but let the
        // command's own error win the exit status.
        let wrote = write_trace(path, *format).map_err(CliError::from);
        result.and(wrote)
    } else {
        result
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn target_of(args: &[String]) -> Result<TargetDevice, String> {
    match flag_value(args, "--target").unwrap_or("stratix-v-gsd8") {
        "stratix-v-gsd8" | "stratix" => Ok(tytra_device::stratix_v_gsd8()),
        "virtex7-adm7v3" | "virtex7" => Ok(tytra_device::virtex7_adm7v3()),
        "eval-small" => Ok(tytra_device::eval_small()),
        other => Err(format!("unknown target `{other}`")),
    }
}

fn load_module(args: &[String]) -> Result<tytra_ir::IrModule, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".tirl"))
        .ok_or("expected a .tirl input file")?;
    let src = std::fs::read_to_string(path)
        .map_err(|e| TybecError::new(ErrorCategory::Io, format!("reading {path}: {e}")))?;
    tytra_ir::parse(&src).map_err(|e| {
        let mut t = TybecError::from(e);
        t.message = format!("{path}: {}", t.message);
        CliError::Tybec(t)
    })
}

/// `tybec lint`: parse *without* validating, then run validation and the
/// six `tirlint` passes through one diagnostic sink. Exit policy: any
/// error-severity diagnostic fails; warnings fail only under
/// `--deny-warnings`.
fn cmd_lint(args: &[String]) -> Result<(), CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && a.ends_with(".tirl"))
        .ok_or("expected a .tirl input file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let m = tytra_ir::parse_unvalidated(&src).map_err(|e| {
        let mut t = TybecError::from(e);
        t.message = format!("{path}: {}", t.message);
        CliError::Tybec(t)
    })?;
    let dev = target_of(args)?;
    let report = tytra_lint::lint(&m, &dev);
    if has_flag(args, "--json") {
        print!("{}", tytra_lint::render_json(&report, path));
    } else {
        print!("{}", tytra_lint::render_text(&report, path));
    }
    let errors = report.errors();
    let warnings = report.warnings();
    if errors > 0 {
        return Err(format!("{path}: {errors} lint error(s)").into());
    }
    if has_flag(args, "--deny-warnings") && warnings > 0 {
        return Err(format!("{path}: {warnings} warning(s) denied by --deny-warnings").into());
    }
    Ok(())
}

/// `tybec analyze`: run the dataflow-analysis catalogue (value ranges,
/// stream-deadlock, cost-congruence) over a validated design and print
/// the aggregated report — strict JSON under `--json`.
fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let report = tytra_analyze::analyze_module(&m);
    if has_flag(args, "--json") {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(())
}

/// `tybec profile`: run a cold and a warm estimate of the design under
/// full span tracing, then print per-pass self-time attribution — which
/// passes dominate, what the memo tables buy on the warm run, and (with
/// the `alloc-count` feature) heap allocations per run.
fn cmd_profile(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let dev = target_of(args)?;
    let mut session = EstimatorSession::new(dev);

    // Attribution needs span records: collect for the two measured runs
    // only, and snapshot (never drain) so a simultaneous `--trace` still
    // writes every span it saw.
    let was_on = tytra_trace::enabled();
    tytra_trace::set_enabled(true);
    let before = tytra_trace::snapshot_records().len();
    let alloc_start = alloc_count();
    session.estimate(&m)?;
    let cold = session.stats();
    let alloc_cold = alloc_count();
    session.estimate(&m)?;
    let warm = session.stats();
    let alloc_warm = alloc_count();
    let records: Vec<_> = tytra_trace::snapshot_records().into_iter().skip(before).collect();
    tytra_trace::set_enabled(was_on);

    // Drop the CLI's own wrapper span; the table is about estimator
    // passes, not the harness around them.
    let rows: Vec<_> = profile::attribution(&records)
        .into_iter()
        .filter(|r| !r.name.starts_with("tybec."))
        .collect();
    println!("== profile: {} (cold + warm estimate) ==", m.name);
    print!("{}", profile::render_attribution_table(&rows));
    let warm_hits = warm.hits - cold.hits;
    let warm_lookups = warm.lookups() - cold.lookups();
    println!(
        "  memo: cold {}/{} hit(s), warm {}/{} hit(s) ({:.0}% warm hit rate)",
        cold.hits,
        cold.lookups(),
        warm_hits,
        warm_lookups,
        if warm_lookups == 0 { 0.0 } else { warm_hits as f64 / warm_lookups as f64 * 100.0 }
    );
    match (alloc_start, alloc_cold, alloc_warm) {
        (Some(s), Some(c), Some(w)) => {
            println!("  allocs: cold {} warm {}", c - s, w - c);
        }
        _ => println!("  allocs: n/a (rebuild with --features alloc-count)"),
    }
    Ok(())
}

/// `tybec serve`: run the cost model as a long-lived JSONL daemon with
/// warm estimator sessions, request batching, and a bounded
/// cross-request cache. Blocks until a `shutdown` request is served.
/// Wire protocol and deployment notes: `docs/serve.md`.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use tytra_serve::{serve_tcp, ServeConfig};
    let mut cfg = ServeConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v.parse().map_err(|e| format!("bad --workers: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--cache-capacity") {
        cfg.cache_capacity = v.parse().map_err(|e| format!("bad --cache-capacity: {e}"))?;
    }
    if let Some(v) = flag_value(args, "--batch") {
        cfg.batch_max = v.parse().map_err(|e| format!("bad --batch: {e}"))?;
    }
    let tcp = flag_value(args, "--tcp");
    let unix = flag_value(args, "--unix");
    if tcp.is_some() && unix.is_some() {
        return Err("--tcp and --unix are mutually exclusive".into());
    }
    if let Some(path) = unix {
        #[cfg(unix)]
        {
            let handle = tytra_serve::serve_unix(std::path::Path::new(path), cfg)
                .map_err(|e| TybecError::new(ErrorCategory::Io, format!("binding {path}: {e}")))?;
            eprintln!("tybec serve: listening on unix socket {path}");
            handle.wait();
            return Ok(());
        }
        #[cfg(not(unix))]
        {
            return Err(
                format!("--unix {path}: unix sockets are unavailable on this platform").into()
            );
        }
    }
    let addr = tcp.unwrap_or("127.0.0.1:7737");
    let handle = serve_tcp(addr, cfg)
        .map_err(|e| TybecError::new(ErrorCategory::Io, format!("binding {addr}: {e}")))?;
    eprintln!("tybec serve: listening on {}", handle.addr());
    handle.wait();
    Ok(())
}

fn cmd_cost(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let dev = target_of(args)?;
    let report = estimate(&m, &dev)?;
    print!("{report}");
    Ok(())
}

fn cmd_actual(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let dev = target_of(args)?;
    let est = estimate(&m, &dev)?;
    let synth = synthesize(&m, &dev)?;
    let run = run_application(&m, &dev)?;
    println!("estimated: {}", est.resources.total);
    println!("actual   : {}", synth.resources);
    let err = est.resources.total.pct_error_vs(&synth.resources);
    println!(
        "error %  : ALUT {:+.1} REG {:+.1} BRAM {:+.1} DSP {:+.1}",
        err[0], err[1], err[2], err[3]
    );
    println!("clock    : est {:.1} MHz, achieved {:.1} MHz", est.clock.freq_mhz, synth.fmax_mhz);
    println!(
        "CPKI     : est {:.0}, simulated {} ({:+.2} %)",
        est.throughput.cpki,
        run.cpki(),
        (est.throughput.cpki - run.cpki() as f64) / run.cpki() as f64 * 100.0
    );
    println!(
        "runtime  : {:.3} ms/instance, {:.3} s total; {:.1} W, {:.1} J",
        run.t_instance_s * 1e3,
        run.t_total_s,
        run.power.delta_watts,
        run.power.delta_energy_j
    );
    Ok(())
}

fn cmd_hdl(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let dev = target_of(args)?;
    let hdl = emit_design(&m, &dev)?;
    if has_flag(args, "--check") {
        check(&hdl)
            .map_err(|errs| errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n"))?;
        eprintln!("structural check: ok");
    }
    match flag_value(args, "-o") {
        Some(path) => {
            std::fs::write(path, &hdl).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{hdl}"),
    }
    if has_flag(args, "--wrapper") {
        print!("{}", emit_maxj_wrapper(&m));
    }
    Ok(())
}

fn cmd_tree(args: &[String]) -> Result<(), CliError> {
    let m = load_module(args)?;
    let tree = tytra_ir::config_tree::extract(&m)?;
    println!("class: {:?}, lanes: {}", tree.class, tree.lanes);
    print!("{}", tree.root.outline());
    Ok(())
}

fn kernel_by_name(args: &[String]) -> Result<Box<dyn EvalKernel>, String> {
    match args.first().map(String::as_str) {
        Some("sor") => Ok(Box::new(Sor::default())),
        Some("hotspot") => Ok(Box::new(Hotspot::default())),
        Some("lavamd") => Ok(Box::new(LavaMd::default())),
        other => Err(format!("unknown kernel {other:?}; expected sor|hotspot|lavamd")),
    }
}

fn lanes_flag(args: &[String]) -> Result<Vec<u64>, String> {
    match flag_value(args, "--lanes") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse::<u64>().map_err(|e| format!("bad lane `{s}`: {e}")))
            .collect(),
        None => Ok(vec![1, 2, 4, 8, 16, 32]),
    }
}

fn cmd_roofline(args: &[String]) -> Result<(), CliError> {
    let kernel = kernel_by_name(args)?;
    let dev = target_of(args)?;
    let mut points = Vec::new();
    for lanes in lanes_flag(args)? {
        let v = Variant { lanes, ..Variant::baseline() };
        let Ok(m) = kernel.lower_variant(&v) else { continue };
        points.push(tytra_dse::roofline::roofline(&m, &dev)?);
    }
    print!("{}", tytra_dse::roofline::render(&points));
    Ok(())
}

fn cmd_exec(args: &[String]) -> Result<(), CliError> {
    use tytra_sim::{execute_module, ExecInputs};
    let m = load_module(args)?;
    let items: usize = match flag_value(args, "--items") {
        Some(v) => v.parse().map_err(|e| format!("bad --items: {e}"))?,
        None => (m.meta.global_size() as usize).min(4096),
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(v) => v.parse().map_err(|e| format!("bad --seed: {e}"))?,
        None => 42,
    };
    // Seed every input port of the lane function with a deterministic
    // pseudo-random array (splitmix-style mix over the index).
    let tree = tytra_ir::config_tree::extract(&m)?;
    let mut node = &tree.root;
    while node.kind == tytra_ir::ParKind::Par {
        node = node.children.first().ok_or("empty par")?;
    }
    let lane = m.function(&node.function).ok_or("missing lane function")?;
    let mut inputs = ExecInputs::default();
    for p in lane.params.iter().filter(|p| p.dir == tytra_ir::PortDir::In) {
        let data: Vec<f64> = (0..items as u64)
            .map(|i| {
                let mut x = i.wrapping_add(seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 27;
                (x % 1024) as f64
            })
            .collect();
        inputs.set(p.name.clone(), data);
    }
    let out = execute_module(&m, &inputs, items)?;
    println!("executed {items} work-items of `{}`", m.name);
    let mut names: Vec<&String> = out.arrays.keys().collect();
    names.sort();
    for name in names {
        let arr = &out.arrays[name];
        let sum: f64 = arr.iter().sum();
        let head: Vec<String> = arr.iter().take(6).map(|v| format!("{v}")).collect();
        println!("  {name}: checksum {sum}, head [{}]", head.join(", "));
    }
    let mut reds: Vec<(&String, &f64)> = out.reductions.iter().collect();
    reds.sort_by(|a, b| a.0.cmp(b.0));
    for (acc, v) in reds {
        println!("  @{acc} = {v}");
    }
    Ok(())
}

/// How `--metrics` / `--metrics-out` render the merged snapshot.
#[derive(Debug, Clone, Copy)]
enum MetricsFormat {
    /// The aligned human-readable table.
    Table,
    /// Prometheus text exposition format (scrape-ready).
    Prometheus,
}

fn cmd_dse(args: &[String]) -> Result<(), CliError> {
    let kernel = kernel_by_name(args)?;
    let dev = target_of(args)?;
    let lanes = lanes_flag(args)?;
    let workers: usize = match flag_value(args, "--workers") {
        Some(v) => v.parse().map_err(|e| format!("bad --workers: {e}"))?,
        None => 0,
    };
    let exhaustive = has_flag(args, "--exhaustive");
    let show_stats = has_flag(args, "--stats");
    let show_metrics = has_flag(args, "--metrics");
    let metrics_format = match flag_value(args, "--metrics-format").unwrap_or("table") {
        "table" => MetricsFormat::Table,
        "prometheus" => MetricsFormat::Prometheus,
        other => {
            return Err(
                format!("unknown --metrics-format `{other}` (expected table|prometheus)").into()
            )
        }
    };
    let metrics_out = flag_value(args, "--metrics-out");
    let stream_path = flag_value(args, "--metrics-stream");
    let interval_ms: u64 = match flag_value(args, "--metrics-interval-ms") {
        Some(v) => v.parse().map_err(|e| format!("bad --metrics-interval-ms: {e}"))?,
        None => 500,
    };

    // `--metrics-stream` turns on live exposition: the search workers
    // publish into one shared registry while the sweep runs, and a
    // sampler thread appends interval-tagged JSONL snapshots to the
    // stream file. Without it, workers keep private registries that are
    // merged after the fact (zero contention on the hot path).
    let live: Option<Arc<Registry>> = stream_path.map(|_| Arc::new(Registry::default()));
    let sampler = match (stream_path, &live) {
        (Some(path), Some(reg)) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("creating metrics stream {path}: {e}"))?;
            let source = Arc::clone(reg);
            Some(Sampler::start(
                std::time::Duration::from_millis(interval_ms.max(1)),
                move || source.snapshot(),
                file,
            ))
        }
        _ => None,
    };

    // One estimator session serves the sweep and the later tuning run,
    // so tuning starts with the sweep's memo tables already warm.
    let mut session = EstimatorSession::new(dev.clone());

    println!("== lane sweep (Fig 15 style) ==");
    let rows = lane_sweep_session(kernel.as_ref(), &mut session, &lanes, &Variant::baseline());
    print!("{}", tytra_dse::report::render_table(&rows));

    println!("\n== full exploration ==");
    // Branch-and-bound by default; `--exhaustive` estimates every point.
    // Both produce byte-identical leaderboards (see docs/dse-search.md),
    // so this choice changes wall-time and counters, never the output.
    let space = ExplorationConfig { lanes, workers, ..ExplorationConfig::default() };
    let cfg =
        if exhaustive { SearchConfig::exhaustive(space) } else { SearchConfig::pruned(space) };
    let cfg = SearchConfig { live: live.clone(), ..cfg };
    let outcome = search(kernel.as_ref(), &dev, &cfg);
    if let Some(s) = sampler {
        let lines = s.stop();
        // stream_path is Some whenever sampler is.
        let path = stream_path.unwrap_or_default();
        eprintln!("metrics stream: {lines} sample(s) written to {path}");
    }
    print!("{}", tytra_dse::render_search_leaderboard(&outcome, 10));

    println!("\n== guided tuning from baseline ==");
    for step in tune_session(kernel.as_ref(), &mut session, Variant::baseline(), 12) {
        println!(
            "  {:<18} EKIT {:>12.1}  {} {}",
            step.variant.tag(),
            step.ekit,
            step.limiter,
            step.action.map(|a| format!("→ {a}")).unwrap_or_default()
        );
    }

    // The CLI session (sweep + tuning) and every search worker session
    // feed registries with the same metric names; the merge sums
    // counters and merges histograms bucket-wise.
    let merged = || {
        let mut snap = session.metrics_snapshot();
        snap.merge(&outcome.metrics);
        snap
    };
    if show_stats {
        let sweep_stats = session.stats();
        let mut total = sweep_stats;
        total += outcome.session;
        println!("\n== estimator session stats ==");
        println!("{}", tytra_dse::render_stats_line("sweep+tuning", &sweep_stats));
        println!("{}", tytra_dse::render_stats_line("exploration", &outcome.session));
        println!("{}", tytra_dse::render_stats_line("total", &total));
        println!("{}", tytra_dse::render_search_stats_line(&outcome.stats));
        if !exhaustive {
            println!("{}", tytra_dse::render_prefilter_stats_line(&outcome.stats));
        }
        println!("{}", tytra_dse::render_latency_stats_line(&merged()));
    }
    let render_metrics = |snap: &tytra_trace::metrics::Snapshot| match metrics_format {
        MetricsFormat::Table => snap.render_table(),
        MetricsFormat::Prometheus => render_prometheus(snap),
    };
    if show_metrics {
        println!("\n== metrics ==");
        print!("{}", render_metrics(&merged()));
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, render_metrics(&merged()))
            .map_err(|e| format!("writing metrics {path}: {e}"))?;
        eprintln!("metrics: snapshot written to {path}");
    }
    Ok(())
}
