//! Executable statements of the type-transformation laws.
//!
//! The paper relies on dependent types (Idris) to prove that `reshapeTo`
//! is order- and size-preserving and that the inferred program
//! transformation computes the same function (the paper's ref. \[14\]). Here the same laws
//! are stated as checkable properties:
//!
//! 1. `reshape` preserves size and flat order;
//! 2. `map f` commutes with `reshape`;
//! 3. splitting into lanes and processing each lane equals processing
//!    the flat vector (for element-wise `f`);
//! 4. lowering a kernel under any legal variant and interpreting the
//!    datapath yields the reference semantics (checked in the
//!    integration tests with `tytra-sim`).
//!
//! Property tests in this module exercise 1–3 over random shapes.

use crate::vect::Vect;

/// Law 1: reshape preserves the flat element sequence.
pub fn reshape_preserves_order<T: Clone + PartialEq>(v: &Vect<T>, dims: &[u64]) -> bool {
    match v.clone().reshape_to(dims) {
        Ok(r) => r.flat() == v.flat(),
        // An illegal reshape is *rejected*, never mangled.
        Err(_) => dims.iter().product::<u64>() != v.shape().size(),
    }
}

/// Law 2: `map f ∘ reshape = reshape ∘ map f`.
pub fn map_commutes_with_reshape<T, U>(v: Vect<T>, dims: &[u64], f: impl Fn(T) -> U + Copy) -> bool
where
    T: Clone,
    U: PartialEq,
{
    let lhs = v.clone().reshape_to(dims).map(|r| r.map(f));
    let rhs = v.map(f).reshape_to(dims);
    match (lhs, rhs) {
        (Ok(a), Ok(b)) => a.flat() == b.flat(),
        (Err(_), Err(_)) => true,
        _ => false,
    }
}

/// Law 3: processing per lane equals processing flat, for element-wise
/// `f` (the `mappar (mappipe f)` ≡ `map f` guarantee).
pub fn lane_split_is_sound<T, U>(v: Vect<T>, lanes: u64, f: impl Fn(T) -> U + Copy) -> bool
where
    T: Clone,
    U: PartialEq + Clone,
{
    let flat: Vec<U> = v.flat().iter().cloned().map(f).collect();
    match v.split_lanes(lanes) {
        Ok(split) => {
            let mut out: Vec<U> = Vec::new();
            for l in 0..lanes {
                let lane = split.lane(l).expect("lane in range");
                out.extend(lane.iter().cloned().map(f));
            }
            out == flat
        }
        Err(_) => v_len_not_divisible(flat.len() as u64, lanes),
    }
}

fn v_len_not_divisible(n: u64, lanes: u64) -> bool {
    lanes == 0 || !n.is_multiple_of(lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_reshape_preserves_order(
            data in proptest::collection::vec(any::<i32>(), 0..256),
            a in 1u64..16,
            b in 1u64..16,
        ) {
            let v = Vect::from_flat(data);
            prop_assert!(reshape_preserves_order(&v, &[a, b]));
        }

        #[test]
        fn prop_legal_reshape_always_round_trips(
            data in proptest::collection::vec(any::<i16>(), 1..256),
            a in 1u64..16,
        ) {
            let n = data.len() as u64;
            if n % a == 0 {
                let v = Vect::from_flat(data.clone());
                let r = v.reshape_to(&[a, n / a]).unwrap();
                prop_assert_eq!(r.flat(), &data[..]);
                let back = r.reshape_to(&[n]).unwrap();
                prop_assert_eq!(back.into_flat(), data);
            }
        }

        #[test]
        fn prop_map_commutes(
            data in proptest::collection::vec(any::<i32>(), 0..128),
            a in 1u64..8,
            b in 1u64..8,
        ) {
            let v = Vect::from_flat(data);
            prop_assert!(map_commutes_with_reshape(v, &[a, b], |x: i32| x.wrapping_mul(3)));
        }

        #[test]
        fn prop_lane_split_sound(
            data in proptest::collection::vec(any::<i32>(), 0..256),
            lanes in 1u64..9,
        ) {
            let v = Vect::from_flat(data);
            prop_assert!(lane_split_is_sound(v, lanes, |x: i32| x.wrapping_add(7)));
        }
    }

    #[test]
    fn zero_lanes_is_rejected_not_mangled() {
        let v = Vect::from_flat(vec![1, 2, 3, 4]);
        assert!(lane_split_is_sound(v, 0, |x: i32| x));
    }
}
