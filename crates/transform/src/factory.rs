//! Copy-on-write variant materialization for DSE sweeps.
//!
//! Lowering ([`crate::lower`]) builds a fresh tree module per variant —
//! Manage-IR arrays, the lane function, the `par` dispatcher — yet
//! variants in a sweep differ structurally only along three axes: the
//! lane count, the inner map kind, and whether Form C swaps the global
//! arrays for local ones. Everything else (`A` vs `B` vs `Tiled`, the
//! vectorization degree, the module name) is a metadata patch.
//!
//! A [`VariantFactory`] therefore lowers **one base module per
//! structural class** `(lanes, inner, is_form_c)`, flattens it into a
//! shared [`ArenaModule`], and hands out each variant as a
//! [`VariantDesign`] — an owned name plus the three patched cells over
//! the `Arc`-shared base. The estimator's `estimate_design`/
//! `bound_design` passes cost the patch without materializing a tree;
//! [`PatchedModule::materialize`] reproduces the lowered tree exactly
//! (same fingerprint) for the few memo-miss paths that still need one.
//!
//! The factory is `Sync`: DSE workers request designs concurrently and
//! the first worker to touch a structural class lowers it for everyone.

use crate::expr::KernelDef;
use crate::lower::{lower, Geometry};
use crate::typetrans::{InnerKind, Variant};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tytra_ir::{ArenaModule, IrError, MemForm, PatchedModule};

/// One design variant as a copy-on-write delta over a shared arena base:
/// the owned module name plus the patched form/DV cells.
#[derive(Debug, Clone)]
pub struct VariantDesign {
    base: Arc<ArenaModule>,
    name: String,
    form: MemForm,
    vect: u32,
}

impl VariantDesign {
    /// The shared arena base (one per structural class).
    pub fn arena(&self) -> &ArenaModule {
        &self.base
    }

    /// The variant's module name (`{kernel}_{tag}`, as `lower` names it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The patched memory-execution form.
    pub fn form(&self) -> MemForm {
        self.form
    }

    /// The patched degree of vectorization.
    pub fn vect(&self) -> u32 {
        self.vect
    }

    /// The patch, borrowed — what the estimator's design passes consume.
    pub fn patched(&self) -> PatchedModule<'_> {
        self.base.patched(&self.name, self.form, self.vect)
    }
}

/// Lowers each *structural class* of a kernel's design space once and
/// serves every variant as a [`VariantDesign`] over the shared base. See
/// the module docs.
pub struct VariantFactory {
    kernel: KernelDef,
    geom: Geometry,
    bases: Mutex<HashMap<(u64, InnerKind, bool), Arc<ArenaModule>>>,
}

impl VariantFactory {
    /// A factory for one kernel + workload geometry.
    pub fn new(kernel: KernelDef, geom: Geometry) -> VariantFactory {
        VariantFactory { kernel, geom, bases: Mutex::new(HashMap::new()) }
    }

    /// The kernel definition the factory lowers.
    pub fn kernel(&self) -> &KernelDef {
        &self.kernel
    }

    /// The workload geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// Number of structural classes lowered so far.
    pub fn bases_built(&self) -> usize {
        self.bases.lock().map(|b| b.len()).unwrap_or(0)
    }

    /// The design for `variant`: lowers the variant's structural class on
    /// first sight, then patches the shared base. Errors exactly as
    /// [`lower`] does on an illegal reshape.
    pub fn design(&self, variant: &Variant) -> Result<VariantDesign, IrError> {
        if !variant.is_legal(self.geom.size()) {
            // Same error text as `lower` for the same illegal variant.
            return Err(IrError::Validate(format!(
                "variant {} is not an order-preserving reshape of {} work-items",
                variant.tag(),
                self.geom.size()
            )));
        }
        let key = (variant.lanes, variant.inner, matches!(variant.form, MemForm::C));
        let base = {
            let mut bases = self.bases.lock().expect("factory lock");
            match bases.get(&key) {
                Some(b) => Arc::clone(b),
                None => {
                    let m = lower(&self.kernel, &self.geom, variant)?;
                    let a = Arc::new(ArenaModule::build(m));
                    bases.insert(key, Arc::clone(&a));
                    a
                }
            }
        };
        let mut name = String::with_capacity(self.kernel.name.len() + 1 + 24);
        name.push_str(&self.kernel.name);
        name.push('_');
        variant.write_tag(&mut name);
        Ok(VariantDesign { base, name, form: variant.form, vect: variant.vect })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::typetrans::enumerate_variants;
    use tytra_ir::{fingerprint_module, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn stencil_kernel() -> KernelDef {
        let e = Expr::mul(Expr::add(Expr::off("p", -1), Expr::off("p", 1)), Expr::ConstI(3));
        KernelDef {
            name: "st".into(),
            elem_ty: T,
            inputs: vec!["p".into()],
            outputs: vec![("q".into(), e)],
            reductions: vec![],
        }
    }

    #[test]
    fn designs_fingerprint_like_direct_lowering() {
        // The decisive equivalence: for every variant in a realistic
        // sweep, the factory's patched design has the same module
        // fingerprint as lowering that variant from scratch — and the
        // materialized patch *is* the lowered module, field for field.
        let geom = Geometry::flat(1 << 10, 10);
        let factory = VariantFactory::new(stencil_kernel(), geom.clone());
        let variants = enumerate_variants(
            geom.size(),
            &[1, 2, 4],
            &[1, 2],
            &[MemForm::A, MemForm::B, MemForm::C, MemForm::Tiled { tiles: 4 }],
        );
        assert!(!variants.is_empty());
        for v in &variants {
            let direct = lower(&stencil_kernel(), &geom, v).unwrap();
            let design = factory.design(v).unwrap();
            assert_eq!(design.name(), direct.name, "{}", v.tag());
            assert_eq!(design.patched().fingerprint(), fingerprint_module(&direct), "{}", v.tag());
            assert_eq!(design.patched().materialize(), direct, "{}", v.tag());
        }
    }

    #[test]
    fn bases_are_shared_per_structural_class() {
        let geom = Geometry::flat(1 << 10, 10);
        let factory = VariantFactory::new(stencil_kernel(), geom);
        let b = Variant::baseline();
        let d1 = factory.design(&b).unwrap();
        // A/B/Tiled at any DV share the baseline's structure…
        let d2 =
            factory.design(&Variant { vect: 4, form: MemForm::Tiled { tiles: 2 }, ..b }).unwrap();
        assert!(std::ptr::eq(d1.arena(), d2.arena()));
        assert_eq!(factory.bases_built(), 1);
        // …Form C and other lane counts do not.
        factory.design(&Variant { form: MemForm::C, ..b }).unwrap();
        factory.design(&Variant { lanes: 4, ..b }).unwrap();
        assert_eq!(factory.bases_built(), 3);
    }

    #[test]
    fn illegal_variants_error_like_lower() {
        let geom = Geometry::flat(1000, 1);
        let factory = VariantFactory::new(stencil_kernel(), geom.clone());
        let v = Variant { lanes: 3, ..Variant::baseline() };
        let from_factory = factory.design(&v).unwrap_err();
        let from_lower = lower(&stencil_kernel(), &geom, &v).unwrap_err();
        assert_eq!(format!("{from_factory}"), format!("{from_lower}"));
        assert_eq!(factory.bases_built(), 0, "illegal variants lower nothing");
    }
}
