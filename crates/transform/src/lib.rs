//! # tytra-transform — the functional front end
//!
//! The paper's design entry is a pure functional program over shaped
//! vectors (written in Idris); *type transformations* — chiefly
//! `reshapeTo` — reshape the data in an order- and size-preserving way,
//! and the corresponding program transformation (e.g. `map f` →
//! `mappar (mappipe f)`) is inferred, yielding correct-by-construction
//! design variants (paper §II).
//!
//! This crate provides the Rust equivalent:
//!
//! * [`vect`] — shaped vectors with checked, order-preserving
//!   [`Vect::reshape_to`];
//! * [`expr`] — a small element-wise functional language (`map` over an
//!   NDRange of tuples, with neighbour offsets and stream reductions) in
//!   which the evaluation kernels are written, plus a reference
//!   evaluator;
//! * [`typetrans`] — variant generation: the decorated-map combinations
//!   (`par`/`pipe`/`seq`), lane counts, vectorization degrees and
//!   memory-execution forms that span the paper's design space (Fig 5);
//! * [`variant_iter`] — the same sequence generated lazily, with dense
//!   indices, for the branch-and-bound DSE search;
//! * [`lower()`][lower::lower] — lowering a kernel + variant to a TyTra-IR module (the
//!   Fig 12 / Fig 14 shapes);
//! * [`factory`] — copy-on-write variant materialization: one lowered
//!   arena base per structural class, each variant a three-cell patch
//!   over it (the DSE engine's zero-alloc path);
//! * [`proofs`] — executable statements of the transformation laws
//!   (order/size preservation, map–reshape commutation), property-tested;
//! * [`cexpr`] — a C/Fortran-flavoured surface syntax for kernel
//!   expressions (the paper's legacy-code future-work item, in
//!   miniature).

pub mod cexpr;
pub mod expr;
pub mod factory;
pub mod lower;
pub mod proofs;
pub mod typetrans;
pub mod variant_iter;
pub mod vect;

pub use cexpr::parse_expr;
pub use expr::{Expr, KernelDef, Reduction};
pub use factory::{VariantDesign, VariantFactory};
pub use lower::lower;
pub use typetrans::{enumerate_variants, InnerKind, Variant};
pub use variant_iter::{IndexedVariant, VariantIter};
pub use vect::{Shape, Vect};
