//! Lazy variant generation for branch-and-bound exploration.
//!
//! [`enumerate_variants`][crate::typetrans::enumerate_variants]
//! materialises the whole legal cross-product up front; a pruned search
//! never looks at most of it. [`VariantIter`] streams the same sequence
//! — identical variants, identical order — one element at a time, so the
//! DSE scheduler can hand out chunks on demand and stop generating the
//! moment the search terminates.
//!
//! Each yielded [`IndexedVariant`] carries the variant's position in the
//! legal sequence. That index is the deterministic tie-breaker of the
//! search leaderboard: two variants with bit-equal EKIT rank by
//! generation order, never by which worker thread costed them first.

use crate::typetrans::{InnerKind, Variant};
use tytra_ir::MemForm;

/// A variant plus its position in the legal enumeration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexedVariant {
    /// Zero-based position among the *legal* variants (illegal reshapes
    /// are filtered before numbering, so indices are dense).
    pub index: u64,
    /// The variant itself.
    pub variant: Variant,
}

/// Streaming equivalent of
/// [`enumerate_variants`][crate::typetrans::enumerate_variants]: yields
/// the same variants in the same order without collecting them.
///
/// The raw cross-product is walked lanes-outermost (lanes → vect → form
/// → inner), filtering illegal reshapes as it goes; `include_seq: false`
/// additionally drops `seq` inner maps (the DSE default).
#[derive(Debug, Clone)]
pub struct VariantIter {
    ngs: u64,
    lanes: Vec<u64>,
    vects: Vec<u32>,
    forms: Vec<MemForm>,
    inners: Vec<InnerKind>,
    /// Raw cursor into the unfiltered cross-product.
    cursor: u64,
    /// Index the next legal variant will receive.
    next_index: u64,
}

impl VariantIter {
    /// A lazy generator over the legal variants for an NDRange of `ngs`
    /// work-items.
    pub fn new(
        ngs: u64,
        lanes: &[u64],
        vects: &[u32],
        forms: &[MemForm],
        include_seq: bool,
    ) -> VariantIter {
        let inners =
            if include_seq { vec![InnerKind::Pipe, InnerKind::Seq] } else { vec![InnerKind::Pipe] };
        VariantIter {
            ngs,
            lanes: lanes.to_vec(),
            vects: vects.to_vec(),
            forms: forms.to_vec(),
            inners,
            cursor: 0,
            next_index: 0,
        }
    }

    /// Size of the raw cross-product — an upper bound on how many legal
    /// variants the iterator can yield (legality filtering only
    /// removes). Used to clamp worker counts before generation starts.
    pub fn space_size(&self) -> u64 {
        self.lanes.len() as u64
            * self.vects.len() as u64
            * self.forms.len() as u64
            * self.inners.len() as u64
    }

    /// Decode a raw cross-product position into its candidate variant.
    fn decode(&self, raw: u64) -> Variant {
        let ni = self.inners.len() as u64;
        let nf = self.forms.len() as u64;
        let nv = self.vects.len() as u64;
        let inner = self.inners[(raw % ni) as usize];
        let form = self.forms[((raw / ni) % nf) as usize];
        let vect = self.vects[((raw / (ni * nf)) % nv) as usize];
        let lanes = self.lanes[(raw / (ni * nf * nv)) as usize];
        Variant { lanes, vect, inner, form }
    }
}

impl Iterator for VariantIter {
    type Item = IndexedVariant;

    fn next(&mut self) -> Option<IndexedVariant> {
        let total = self.space_size();
        while self.cursor < total {
            let v = self.decode(self.cursor);
            self.cursor += 1;
            if v.is_legal(self.ngs) {
                let index = self.next_index;
                self.next_index += 1;
                return Some(IndexedVariant { index, variant: v });
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.space_size().saturating_sub(self.cursor) as usize;
        (0, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typetrans::enumerate_variants;

    #[test]
    fn streams_exactly_the_enumerated_sequence() {
        let lanes = [1u64, 2, 3, 4, 8];
        let vects = [1u32, 2, 3];
        let forms = [MemForm::A, MemForm::B, MemForm::C];
        let eager = enumerate_variants(1000, &lanes, &vects, &forms);
        let lazy: Vec<Variant> =
            VariantIter::new(1000, &lanes, &vects, &forms, true).map(|iv| iv.variant).collect();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        let it = VariantIter::new(1 << 12, &[1, 2, 4], &[1, 2], &[MemForm::A, MemForm::B], false);
        let idx: Vec<u64> = it.map(|iv| iv.index).collect();
        assert_eq!(idx, (0..idx.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn pipe_only_filter_matches_the_eager_retain() {
        let lanes = [1u64, 2, 4];
        let vects = [1u32, 2];
        let forms = [MemForm::A, MemForm::B];
        let mut eager = enumerate_variants(4096, &lanes, &vects, &forms);
        eager.retain(|v| v.inner == InnerKind::Pipe);
        let lazy: Vec<Variant> =
            VariantIter::new(4096, &lanes, &vects, &forms, false).map(|iv| iv.variant).collect();
        assert_eq!(lazy, eager);
    }

    #[test]
    fn illegal_space_yields_nothing() {
        // 3 does not divide 4096 and vect 5 divides nothing it pairs with.
        let mut it = VariantIter::new(4096, &[3], &[5], &[MemForm::B], true);
        assert_eq!(it.next(), None);
        assert_eq!(it.space_size(), 2);
    }

    #[test]
    fn space_size_bounds_the_yield_count() {
        let it = VariantIter::new(1000, &[1, 2, 3, 4], &[1, 3], &[MemForm::A, MemForm::B], true);
        let cap = it.space_size();
        assert_eq!(cap, 32);
        assert!(it.count() as u64 <= cap);
    }
}
