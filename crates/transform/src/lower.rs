//! Lowering a functional kernel + variant to TyTra-IR.
//!
//! The baseline `map kernel` lowers to the Fig 12 shape (one `pipe`
//! function fed by offset streams); a `mappar (mappipe kernel)` variant
//! lowers to the Fig 14 shape (per-lane port sets and a `par` dispatcher
//! with one call per lane). Common subexpressions are shared, so the
//! datapath matches the hand-drawn pipeline of Fig 13 rather than a tree
//! with duplicated multipliers.

use crate::expr::{Expr, KernelDef};
use crate::typetrans::{InnerKind, Variant};
use std::collections::HashMap;
use tytra_ir::{
    FunctionBuilder, IrError, IrModule, MemForm, ModuleBuilder, Opcode, Operand, ParKind,
    ScalarType, StreamDir,
};

/// NDRange + iteration count for the lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    /// Global size per dimension.
    pub ndrange: Vec<u64>,
    /// `NKI`: kernel-instance repetitions.
    pub nki: u64,
}

impl Geometry {
    /// 1-D geometry.
    pub fn flat(n: u64, nki: u64) -> Geometry {
        Geometry { ndrange: vec![n], nki }
    }

    /// Total work-items.
    pub fn size(&self) -> u64 {
        self.ndrange.iter().product::<u64>().max(1)
    }
}

/// Lower `kernel` under `variant` to a validated TyTra-IR module.
pub fn lower(kernel: &KernelDef, geom: &Geometry, variant: &Variant) -> Result<IrModule, IrError> {
    let ngs = geom.size();
    if !variant.is_legal(ngs) {
        return Err(IrError::Validate(format!(
            "variant {} is not an order-preserving reshape of {ngs} work-items",
            variant.tag()
        )));
    }
    let lanes = variant.lanes;
    let per_lane = ngs / lanes;
    let ty = kernel.elem_ty;

    let mut b = ModuleBuilder::new(format!("{}_{}", kernel.name, variant.tag()));

    // Manage-IR: one array set per lane (Fig 14's p0..p3), or a single
    // set for the baseline.
    let lane_suffix = |l: u64| if lanes > 1 { l.to_string() } else { String::new() };
    for l in 0..lanes {
        let sfx = lane_suffix(l);
        for name in &kernel.inputs {
            declare_array(&mut b, &format!("{name}{sfx}"), ty, per_lane, StreamDir::Read, variant);
        }
        for (name, _) in &kernel.outputs {
            declare_array(&mut b, &format!("{name}{sfx}"), ty, per_lane, StreamDir::Write, variant);
        }
    }

    // Compute-IR: the lane function.
    let kind = match variant.inner {
        InnerKind::Pipe => ParKind::Pipe,
        InnerKind::Seq => ParKind::Seq,
    };
    {
        let f = b.function("f0", kind);
        for name in &kernel.inputs {
            f.input(name.clone(), ty);
        }
        for (name, _) in &kernel.outputs {
            f.output(name.clone(), ty);
        }
        // Offset streams first (Fig 12 lines 6–9).
        let mut offset_ops: HashMap<(String, i64), Operand> = HashMap::new();
        for (src, off) in kernel.offsets() {
            let op = f.offset(&src, ty, off);
            offset_ops.insert((src, off), op);
        }
        // Datapath with structural CSE.
        let mut memo: HashMap<String, Operand> = HashMap::new();
        let mut emitted: Vec<(String, Operand)> = Vec::new();
        for (name, e) in &kernel.outputs {
            let v = emit(f, e, ty, &offset_ops, &mut memo);
            emitted.push((name.clone(), v));
        }
        for r in &kernel.reductions {
            let v = emit(f, &r.value, ty, &offset_ops, &mut memo);
            f.reduce(&r.acc, r.op, ty, v);
        }
        for (name, v) in emitted {
            f.write_out(&name, v);
        }
    }

    if lanes > 1 {
        let f = b.function("f1", ParKind::Par);
        for _ in 0..lanes {
            f.call("f0", vec![], kind);
        }
        b.main_calls("f1");
    } else {
        b.main_calls("f0");
    }

    b.ndrange(&geom.ndrange).nki(geom.nki).form(variant.form).vect(variant.vect);
    b.finish()
}

fn declare_array(
    b: &mut ModuleBuilder,
    name: &str,
    ty: ScalarType,
    len: u64,
    dir: StreamDir,
    variant: &Variant,
) {
    match variant.form {
        MemForm::C => {
            b.local_array(name, ty, len, dir);
        }
        _ => match dir {
            StreamDir::Read => {
                b.global_input(name, ty, len);
            }
            StreamDir::Write => {
                b.global_output(name, ty, len);
            }
        },
    }
}

/// Emit `e` into the function, sharing structurally identical
/// subexpressions.
fn emit(
    f: &mut FunctionBuilder,
    e: &Expr,
    ty: ScalarType,
    offsets: &HashMap<(String, i64), Operand>,
    memo: &mut HashMap<String, Operand>,
) -> Operand {
    match e {
        Expr::Arg(n) => Operand::Local(n.clone()),
        Expr::OffsetArg(n, 0) => Operand::Local(n.clone()),
        Expr::OffsetArg(n, off) => {
            offsets.get(&(n.clone(), *off)).cloned().unwrap_or_else(|| Operand::Local(n.clone()))
        }
        Expr::ConstI(v) => Operand::Imm(*v),
        Expr::ConstF(v) => Operand::ImmF(*v),
        Expr::Bin(..) | Expr::Un(..) | Expr::Sel(..) => {
            let key = format!("{e:?}");
            if let Some(v) = memo.get(&key) {
                return v.clone();
            }
            let v = match e {
                Expr::Bin(op, a, bx) => {
                    let va = emit(f, a, ty, offsets, memo);
                    let vb = emit(f, bx, ty, offsets, memo);
                    f.instr(*op, ty, vec![va, vb])
                }
                Expr::Un(op, a) => {
                    let va = emit(f, a, ty, offsets, memo);
                    f.instr(*op, ty, vec![va])
                }
                Expr::Sel(c, a, bx) => {
                    let vc = emit(f, c, ty, offsets, memo);
                    let va = emit(f, a, ty, offsets, memo);
                    let vb = emit(f, bx, ty, offsets, memo);
                    f.instr(Opcode::Select, ty, vec![vc, va, vb])
                }
                _ => unreachable!("leaf handled above"),
            };
            memo.insert(key, v.clone());
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Reduction;
    use tytra_ir::{config_tree, ConfigClass};

    const T: ScalarType = ScalarType::UInt(18);

    fn stencil_kernel() -> KernelDef {
        let e = Expr::mul(Expr::add(Expr::off("p", -1), Expr::off("p", 1)), Expr::ConstI(3));
        KernelDef {
            name: "st".into(),
            elem_ty: T,
            inputs: vec!["p".into()],
            outputs: vec![("q".into(), e.clone())],
            reductions: vec![Reduction {
                acc: "errAcc".into(),
                op: Opcode::Add,
                value: Expr::sub(e, Expr::arg("p")),
            }],
        }
    }

    #[test]
    fn baseline_lowers_to_fig12_shape() {
        let m = lower(&stencil_kernel(), &Geometry::flat(1024, 10), &Variant::baseline()).unwrap();
        assert_eq!(m.kernel_lanes(), 1);
        let f0 = m.function("f0").unwrap();
        assert_eq!(f0.kind, ParKind::Pipe);
        assert_eq!(f0.offsets().count(), 2);
        assert!(f0.instrs().any(|i| i.is_reduction()));
        let tree = config_tree::extract(&m).unwrap();
        assert_eq!(tree.class, ConfigClass::C2SinglePipe);
        // Ports: p in, q out.
        assert_eq!(m.ports.len(), 2);
    }

    #[test]
    fn four_lane_variant_lowers_to_fig14_shape() {
        let v = Variant { lanes: 4, ..Variant::baseline() };
        let m = lower(&stencil_kernel(), &Geometry::flat(1024, 10), &v).unwrap();
        assert_eq!(m.kernel_lanes(), 4);
        assert_eq!(m.ports.len(), 8, "per-lane port sets p0..p3, q0..q3");
        assert!(m.port("main.p0").is_some());
        assert!(m.port("main.q3").is_some());
        assert_eq!(m.mems.iter().map(|x| x.len).sum::<u64>(), 2 * 1024);
        let tree = config_tree::extract(&m).unwrap();
        assert_eq!(tree.class, ConfigClass::C1ParallelPipes);
    }

    #[test]
    fn cse_shares_common_subexpressions() {
        // q and the reduction share the whole weighted sum: the add and
        // mul must be emitted once.
        let m = lower(&stencil_kernel(), &Geometry::flat(64, 1), &Variant::baseline()).unwrap();
        let f0 = m.function("f0").unwrap();
        let muls = f0.instrs().filter(|i| i.op == Opcode::Mul).count();
        let adds = f0.instrs().filter(|i| i.op == Opcode::Add && !i.is_reduction()).count();
        assert_eq!(muls, 1);
        assert_eq!(adds, 1);
    }

    #[test]
    fn seq_variant_lowers_to_seq_kind() {
        let v = Variant { inner: InnerKind::Seq, ..Variant::baseline() };
        let m = lower(&stencil_kernel(), &Geometry::flat(64, 1), &v).unwrap();
        assert_eq!(m.function("f0").unwrap().kind, ParKind::Seq);
    }

    #[test]
    fn form_c_uses_local_memories() {
        let v = Variant { form: MemForm::C, ..Variant::baseline() };
        let m = lower(&stencil_kernel(), &Geometry::flat(64, 1), &v).unwrap();
        assert!(m.mems.iter().all(|mem| !mem.space.is_offchip()));
        assert_eq!(m.meta.form, MemForm::C);
    }

    #[test]
    fn illegal_variant_rejected() {
        let v = Variant { lanes: 3, ..Variant::baseline() };
        assert!(lower(&stencil_kernel(), &Geometry::flat(1024, 1), &v).is_err());
    }

    #[test]
    fn vect_metadata_propagates() {
        let v = Variant { vect: 4, ..Variant::baseline() };
        let m = lower(&stencil_kernel(), &Geometry::flat(1024, 1), &v).unwrap();
        assert_eq!(m.meta.vect, 4);
    }

    #[test]
    fn lowered_module_round_trips_through_text() {
        let m = lower(&stencil_kernel(), &Geometry::flat(1024, 10), &Variant::baseline()).unwrap();
        let text = tytra_ir::print(&m);
        let m2 = tytra_ir::parse(&text).unwrap();
        assert_eq!(m, m2);
    }
}
