//! Variant generation by type transformation.
//!
//! Applying `reshapeTo` along different dimensions and decorating the
//! resulting nested maps with `par`/`pipe`/`seq` spans the design space
//! of Fig 5 "very quickly even on the basis of a single basic reshape
//! transformation" (§II). A [`Variant`] is one such decorated reshape;
//! [`enumerate_variants`] produces the legal set for a given NDRange.

use std::fmt::Write as _;
use tytra_ir::MemForm;

/// How the inner map (one lane's work) executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerKind {
    /// `mappipe` — a streaming pipeline (C2 of Fig 5).
    Pipe,
    /// `mapseq` — a sequential PE sharing functional units (C4-ish).
    Seq,
}

/// One design variant produced by type transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    /// `KNL`: number of parallel lanes (`mappar` width; 1 = no outer
    /// reshape).
    pub lanes: u64,
    /// `DV`: vectorization within a lane.
    pub vect: u32,
    /// Inner map execution style.
    pub inner: InnerKind,
    /// Memory-execution form.
    pub form: MemForm,
}

impl Variant {
    /// The baseline program: a single pipeline over the whole NDRange,
    /// data staged in device DRAM.
    pub fn baseline() -> Variant {
        Variant { lanes: 1, vect: 1, inner: InnerKind::Pipe, form: MemForm::B }
    }

    /// Short tag used in design names: `l4_v1_pipe_B`.
    pub fn tag(&self) -> String {
        self.tag_buf().as_str().to_string()
    }

    /// The tag formatted into a stack buffer — no heap allocation. The
    /// DSE hot path (per-variant trace fields, leaderboard tie-break
    /// comparisons) goes through this instead of [`tag`][Variant::tag].
    pub fn tag_buf(&self) -> TagBuf {
        let inner = match self.inner {
            InnerKind::Pipe => "pipe",
            InnerKind::Seq => "seq",
        };
        let mut b = TagBuf::default();
        // `MemForm`'s `Display` writes the letter forms without
        // allocating; a TagBuf never overflows (see its docs), so the
        // write cannot fail.
        let _ = write!(b, "l{}_v{}_{}_{}", self.lanes, self.vect, inner, self.form);
        b
    }

    /// Append the tag to an existing string (one buffer reserve at
    /// most, no intermediate allocation).
    pub fn write_tag(&self, out: &mut String) {
        out.push_str(self.tag_buf().as_str());
    }

    /// Compare two variants by their tag strings (byte order, exactly
    /// as comparing [`tag`][Variant::tag] results) without allocating.
    pub fn tag_cmp(&self, other: &Variant) -> std::cmp::Ordering {
        self.tag_buf().as_str().cmp(other.tag_buf().as_str())
    }

    /// Is the reshape legal for this NDRange (order/size preservation
    /// requires the lane count to divide the global size, and the
    /// vector width to divide the per-lane count)?
    pub fn is_legal(&self, ngs: u64) -> bool {
        self.lanes > 0
            && self.vect > 0
            && ngs.is_multiple_of(self.lanes)
            && (ngs / self.lanes).is_multiple_of(u64::from(self.vect))
    }
}

/// A variant tag on the stack: `l{lanes}_v{vect}_{inner}_{form}` peaks
/// at 50 bytes (20-digit lane count, 10-digit vector degree, `pipe`,
/// 11-byte tiled form), so the 64-byte buffer always suffices.
#[derive(Debug, Clone, Copy)]
pub struct TagBuf {
    buf: [u8; 64],
    len: u8,
}

impl Default for TagBuf {
    fn default() -> TagBuf {
        TagBuf { buf: [0; 64], len: 0 }
    }
}

impl TagBuf {
    /// The formatted tag.
    pub fn as_str(&self) -> &str {
        // Only `write_str` fills the buffer, so it holds valid UTF-8.
        std::str::from_utf8(&self.buf[..usize::from(self.len)]).unwrap_or("")
    }
}

impl std::fmt::Write for TagBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let start = usize::from(self.len);
        let end = start + s.len();
        if end > self.buf.len() {
            return Err(std::fmt::Error);
        }
        self.buf[start..end].copy_from_slice(s.as_bytes());
        self.len = end as u8;
        Ok(())
    }
}

/// Enumerate the legal variants for an NDRange of `ngs` work-items:
/// lane counts in `lanes` (filtered for divisibility), vector degrees in
/// `vects`, both inner kinds, forms in `forms`.
pub fn enumerate_variants(
    ngs: u64,
    lanes: &[u64],
    vects: &[u32],
    forms: &[MemForm],
) -> Vec<Variant> {
    let mut out = Vec::new();
    for &l in lanes {
        for &v in vects {
            for &form in forms {
                for inner in [InnerKind::Pipe, InnerKind::Seq] {
                    let var = Variant { lanes: l, vect: v, inner, form };
                    if var.is_legal(ngs) {
                        out.push(var);
                    }
                }
            }
        }
    }
    out
}

/// The default sweep the DSE engine explores: power-of-two lanes to 32,
/// scalar and 2/4-wide vectors, pipelined inner maps, Forms A and B.
pub fn default_sweep(ngs: u64) -> Vec<Variant> {
    let lanes: Vec<u64> = (0..=5).map(|i| 1u64 << i).collect();
    let variants = enumerate_variants(ngs, &lanes, &[1, 2, 4], &[MemForm::A, MemForm::B]);
    variants.into_iter().filter(|v| v.inner == InnerKind::Pipe).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_single_pipe_form_b() {
        let b = Variant::baseline();
        assert_eq!(b.lanes, 1);
        assert_eq!(b.vect, 1);
        assert_eq!(b.inner, InnerKind::Pipe);
        assert_eq!(b.form, MemForm::B);
        assert!(b.is_legal(1000));
    }

    #[test]
    fn legality_requires_divisibility() {
        let v = Variant { lanes: 4, vect: 1, inner: InnerKind::Pipe, form: MemForm::B };
        assert!(v.is_legal(1000));
        assert!(!v.is_legal(1001));
        let v2 = Variant { lanes: 4, vect: 3, inner: InnerKind::Pipe, form: MemForm::B };
        assert!(!v2.is_legal(1000), "250 per lane not divisible by 3");
        assert!(v2.is_legal(1200));
    }

    #[test]
    fn enumeration_filters_illegal() {
        let vs = enumerate_variants(1000, &[1, 3, 4], &[1, 2], &[MemForm::B]);
        assert!(vs.iter().all(|v| v.is_legal(1000)));
        assert!(!vs.iter().any(|v| v.lanes == 3), "3 does not divide 1000");
        // lanes {1,4} × vect {1,2} × inner {pipe,seq} = 16 minus vect-2
        // illegal cases (both legal here: 1000 and 250 divisible by 2).
        assert_eq!(vs.len(), 8);
    }

    #[test]
    fn growth_of_design_space() {
        // §II: "the design-space grows very quickly even on the basis of
        // a single basic reshape transformation".
        let small = enumerate_variants(1 << 12, &[1, 2], &[1], &[MemForm::B]).len();
        let large = enumerate_variants(
            1 << 12,
            &[1, 2, 4, 8, 16, 32],
            &[1, 2, 4],
            &[MemForm::A, MemForm::B, MemForm::C],
        )
        .len();
        assert!(large > 10 * small);
    }

    #[test]
    fn tag_buf_matches_tag_and_orders_identically() {
        let vs = enumerate_variants(
            1 << 12,
            &[1, 2, 4, 8, 16, 32],
            &[1, 2, 4],
            &[MemForm::A, MemForm::B, MemForm::C, MemForm::Tiled { tiles: 12 }],
        );
        for a in &vs {
            assert_eq!(a.tag_buf().as_str(), a.tag());
            let mut s = String::from("sor_");
            a.write_tag(&mut s);
            assert_eq!(s, format!("sor_{}", a.tag()));
            for b in &vs {
                // The explore tie-break sorts by tag *string*; tag_cmp
                // must preserve that byte order exactly (note "l16..."
                // sorts before "l2...").
                assert_eq!(a.tag_cmp(b), a.tag().cmp(&b.tag()));
            }
        }
        let l16 = Variant { lanes: 16, vect: 1, inner: InnerKind::Pipe, form: MemForm::B };
        let l2 = Variant { lanes: 2, vect: 1, inner: InnerKind::Pipe, form: MemForm::B };
        assert_eq!(l16.tag_cmp(&l2), std::cmp::Ordering::Less, "string order, not numeric");
    }

    #[test]
    fn tags_are_unique_within_a_sweep() {
        let vs = default_sweep(1 << 12);
        let mut tags: Vec<String> = vs.iter().map(Variant::tag).collect();
        let n = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), n);
        assert!(vs.contains(&Variant::baseline()));
    }
}
