//! Variant generation by type transformation.
//!
//! Applying `reshapeTo` along different dimensions and decorating the
//! resulting nested maps with `par`/`pipe`/`seq` spans the design space
//! of Fig 5 "very quickly even on the basis of a single basic reshape
//! transformation" (§II). A [`Variant`] is one such decorated reshape;
//! [`enumerate_variants`] produces the legal set for a given NDRange.

use tytra_ir::MemForm;

/// How the inner map (one lane's work) executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerKind {
    /// `mappipe` — a streaming pipeline (C2 of Fig 5).
    Pipe,
    /// `mapseq` — a sequential PE sharing functional units (C4-ish).
    Seq,
}

/// One design variant produced by type transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Variant {
    /// `KNL`: number of parallel lanes (`mappar` width; 1 = no outer
    /// reshape).
    pub lanes: u64,
    /// `DV`: vectorization within a lane.
    pub vect: u32,
    /// Inner map execution style.
    pub inner: InnerKind,
    /// Memory-execution form.
    pub form: MemForm,
}

impl Variant {
    /// The baseline program: a single pipeline over the whole NDRange,
    /// data staged in device DRAM.
    pub fn baseline() -> Variant {
        Variant { lanes: 1, vect: 1, inner: InnerKind::Pipe, form: MemForm::B }
    }

    /// Short tag used in design names: `l4_v1_pipe_B`.
    pub fn tag(&self) -> String {
        let inner = match self.inner {
            InnerKind::Pipe => "pipe",
            InnerKind::Seq => "seq",
        };
        format!("l{}_v{}_{}_{}", self.lanes, self.vect, inner, self.form.tag())
    }

    /// Is the reshape legal for this NDRange (order/size preservation
    /// requires the lane count to divide the global size, and the
    /// vector width to divide the per-lane count)?
    pub fn is_legal(&self, ngs: u64) -> bool {
        self.lanes > 0
            && self.vect > 0
            && ngs.is_multiple_of(self.lanes)
            && (ngs / self.lanes).is_multiple_of(u64::from(self.vect))
    }
}

/// Enumerate the legal variants for an NDRange of `ngs` work-items:
/// lane counts in `lanes` (filtered for divisibility), vector degrees in
/// `vects`, both inner kinds, forms in `forms`.
pub fn enumerate_variants(
    ngs: u64,
    lanes: &[u64],
    vects: &[u32],
    forms: &[MemForm],
) -> Vec<Variant> {
    let mut out = Vec::new();
    for &l in lanes {
        for &v in vects {
            for &form in forms {
                for inner in [InnerKind::Pipe, InnerKind::Seq] {
                    let var = Variant { lanes: l, vect: v, inner, form };
                    if var.is_legal(ngs) {
                        out.push(var);
                    }
                }
            }
        }
    }
    out
}

/// The default sweep the DSE engine explores: power-of-two lanes to 32,
/// scalar and 2/4-wide vectors, pipelined inner maps, Forms A and B.
pub fn default_sweep(ngs: u64) -> Vec<Variant> {
    let lanes: Vec<u64> = (0..=5).map(|i| 1u64 << i).collect();
    let variants = enumerate_variants(ngs, &lanes, &[1, 2, 4], &[MemForm::A, MemForm::B]);
    variants.into_iter().filter(|v| v.inner == InnerKind::Pipe).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_single_pipe_form_b() {
        let b = Variant::baseline();
        assert_eq!(b.lanes, 1);
        assert_eq!(b.vect, 1);
        assert_eq!(b.inner, InnerKind::Pipe);
        assert_eq!(b.form, MemForm::B);
        assert!(b.is_legal(1000));
    }

    #[test]
    fn legality_requires_divisibility() {
        let v = Variant { lanes: 4, vect: 1, inner: InnerKind::Pipe, form: MemForm::B };
        assert!(v.is_legal(1000));
        assert!(!v.is_legal(1001));
        let v2 = Variant { lanes: 4, vect: 3, inner: InnerKind::Pipe, form: MemForm::B };
        assert!(!v2.is_legal(1000), "250 per lane not divisible by 3");
        assert!(v2.is_legal(1200));
    }

    #[test]
    fn enumeration_filters_illegal() {
        let vs = enumerate_variants(1000, &[1, 3, 4], &[1, 2], &[MemForm::B]);
        assert!(vs.iter().all(|v| v.is_legal(1000)));
        assert!(!vs.iter().any(|v| v.lanes == 3), "3 does not divide 1000");
        // lanes {1,4} × vect {1,2} × inner {pipe,seq} = 16 minus vect-2
        // illegal cases (both legal here: 1000 and 250 divisible by 2).
        assert_eq!(vs.len(), 8);
    }

    #[test]
    fn growth_of_design_space() {
        // §II: "the design-space grows very quickly even on the basis of
        // a single basic reshape transformation".
        let small = enumerate_variants(1 << 12, &[1, 2], &[1], &[MemForm::B]).len();
        let large = enumerate_variants(
            1 << 12,
            &[1, 2, 4, 8, 16, 32],
            &[1, 2, 4],
            &[MemForm::A, MemForm::B, MemForm::C],
        )
        .len();
        assert!(large > 10 * small);
    }

    #[test]
    fn tags_are_unique_within_a_sweep() {
        let vs = default_sweep(1 << 12);
        let mut tags: Vec<String> = vs.iter().map(Variant::tag).collect();
        let n = tags.len();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), n);
        assert!(vs.contains(&Variant::baseline()));
    }
}
