//! Shaped vectors and the order-preserving `reshapeTo` transformation.
//!
//! In the paper, `pps : Vect (im*jm*km) t` is reshaped to
//! `Vect km (Vect (im*jm) t)`; dependent types prove the reshape is
//! order- and size-preserving. Here the same invariants are enforced at
//! construction (`reshape_to` fails unless the new shape's product
//! equals the old) and checked by property tests in [`crate::proofs`].

use std::fmt;

/// The shape of a vector: dimension sizes, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<u64>);

impl Shape {
    /// 1-D shape of the given length.
    pub fn flat(n: u64) -> Shape {
        Shape(vec![n])
    }

    /// Total element count (product of dimensions).
    pub fn size(&self) -> u64 {
        self.0.iter().product()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The outermost dimension — the lane count after a
    /// `reshapeTo lanes` transformation.
    pub fn outer(&self) -> u64 {
        self.0.first().copied().unwrap_or(1)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.0.iter().map(u64::to_string).collect();
        write!(f, "[{}]", dims.join("×"))
    }
}

/// A shaped vector: flat storage (row-major) + a [`Shape`] view over it.
/// Reshaping never copies or reorders — it only changes the view, which
/// is exactly why the transformation is correct by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Vect<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T> Vect<T> {
    /// Build from flat data.
    pub fn from_flat(data: Vec<T>) -> Vect<T> {
        let n = data.len() as u64;
        Vect { shape: Shape::flat(n), data }
    }

    /// Build with an explicit shape.
    ///
    /// # Errors
    ///
    /// Fails when the shape's product does not match the data length.
    pub fn with_shape(data: Vec<T>, shape: Shape) -> Result<Vect<T>, String> {
        if shape.size() != data.len() as u64 {
            return Err(format!("shape {shape} does not cover {} elements", data.len()));
        }
        Ok(Vect { shape, data })
    }

    /// The paper's `reshapeTo`: view the same elements with a new shape.
    /// Order and size preserving by construction.
    ///
    /// # Errors
    ///
    /// Fails if the new shape's product differs from the current size.
    pub fn reshape_to(self, dims: &[u64]) -> Result<Vect<T>, String> {
        let new = Shape(dims.to_vec());
        if new.size() != self.shape.size() {
            return Err(format!(
                "reshape {} -> {} changes size ({} vs {})",
                self.shape,
                new,
                self.shape.size(),
                new.size()
            ));
        }
        Ok(Vect { shape: new, data: self.data })
    }

    /// Split the outermost dimension into `lanes` equal chunks — the
    /// `reshapeTo L` used to create parallel lanes. Requires divisibility
    /// (the order-preserving condition of the paper's ref. \[14\]).
    pub fn split_lanes(self, lanes: u64) -> Result<Vect<T>, String> {
        let n = self.shape.size();
        if lanes == 0 || !n.is_multiple_of(lanes) {
            return Err(format!("{lanes} lanes do not divide {n} elements"));
        }
        self.reshape_to(&[lanes, n / lanes])
    }

    /// Current shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Flat element view, in order.
    pub fn flat(&self) -> &[T] {
        &self.data
    }

    /// Consume into flat data.
    pub fn into_flat(self) -> Vec<T> {
        self.data
    }

    /// The `l`-th lane's slice after a 2-D reshape.
    pub fn lane(&self, l: u64) -> Option<&[T]> {
        if self.shape.rank() != 2 {
            return None;
        }
        let lanes = self.shape.0[0];
        let per = self.shape.0[1] as usize;
        if l >= lanes {
            return None;
        }
        let start = l as usize * per;
        Some(&self.data[start..start + per])
    }

    /// Map elementwise, preserving shape (the functional `map`).
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> Vect<U> {
        let shape = self.shape.clone();
        Vect { shape, data: self.data.into_iter().map(f).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_preserves_order_and_size() {
        let v = Vect::from_flat((0..24).collect::<Vec<i32>>());
        let v2 = v.clone().reshape_to(&[4, 6]).unwrap();
        assert_eq!(v2.shape(), &Shape(vec![4, 6]));
        assert_eq!(v2.flat(), v.flat());
        let v3 = v2.reshape_to(&[2, 3, 4]).unwrap();
        assert_eq!(v3.flat(), v.flat());
    }

    #[test]
    fn reshape_rejects_size_change() {
        let v = Vect::from_flat((0..10).collect::<Vec<i32>>());
        assert!(v.reshape_to(&[3, 3]).is_err());
    }

    #[test]
    fn split_lanes_requires_divisibility() {
        let v = Vect::from_flat((0..12).collect::<Vec<i32>>());
        assert!(v.clone().split_lanes(5).is_err());
        assert!(v.clone().split_lanes(0).is_err());
        let l = v.split_lanes(4).unwrap();
        assert_eq!(l.shape(), &Shape(vec![4, 3]));
        assert_eq!(l.lane(0).unwrap(), &[0, 1, 2]);
        assert_eq!(l.lane(3).unwrap(), &[9, 10, 11]);
        assert!(l.lane(4).is_none());
    }

    #[test]
    fn lane_requires_rank_two() {
        let v = Vect::from_flat((0..12).collect::<Vec<i32>>());
        assert!(v.lane(0).is_none());
    }

    #[test]
    fn map_preserves_shape() {
        let v = Vect::from_flat((0..6).collect::<Vec<i32>>()).reshape_to(&[2, 3]).unwrap();
        let m = v.map(|x| x * 2);
        assert_eq!(m.shape(), &Shape(vec![2, 3]));
        assert_eq!(m.flat(), &[0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn with_shape_checks_product() {
        assert!(Vect::with_shape(vec![1, 2, 3], Shape(vec![2, 2])).is_err());
        assert!(Vect::with_shape(vec![1, 2, 3, 4], Shape(vec![2, 2])).is_ok());
    }

    #[test]
    fn shape_helpers() {
        let s = Shape(vec![3, 4, 5]);
        assert_eq!(s.size(), 60);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.outer(), 3);
        assert_eq!(s.to_string(), "[3×4×5]");
        assert_eq!(Shape(vec![]).outer(), 1);
    }
}
