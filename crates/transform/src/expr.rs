//! The element-wise functional kernel language.
//!
//! A [`KernelDef`] is the Rust rendering of the paper's `p_sor`-style
//! functions: a pure function from a tuple of input-stream elements (with
//! constant-offset neighbour access — the stencil pattern) to one or more
//! output elements, plus optional stream [`Reduction`]s (the
//! `sorErrAcc`). `map kernel inputs` over the NDRange is the whole
//! program; the parallel decorations live in
//! [`crate::typetrans::Variant`], not here.
//!
//! The [`KernelDef::eval_reference`] evaluator defines the semantics the
//! lowered hardware must reproduce; `tytra-sim`'s interpreter is checked
//! against it in the integration tests.

use std::collections::HashMap;
use tytra_ir::{Opcode, ScalarType};

/// A pure element-wise expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The current element of input stream `name`.
    Arg(String),
    /// The element of input `name` at constant offset `off` (0 outside
    /// the range).
    OffsetArg(String, i64),
    /// Integer constant.
    ConstI(i64),
    /// Float constant.
    ConstF(f64),
    /// Binary operation.
    Bin(Opcode, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(Opcode, Box<Expr>),
    /// Three-way select: `cond ? a : b`.
    Sel(Box<Expr>, Box<Expr>, Box<Expr>),
}

// The `add`/`sub`/`mul` constructors intentionally mirror the opcode
// mnemonics; they are associated functions, not methods, so no confusion
// with the operator traits arises at call sites.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `Arg` helper.
    pub fn arg(name: &str) -> Expr {
        Expr::Arg(name.to_string())
    }

    /// `OffsetArg` helper.
    pub fn off(name: &str, off: i64) -> Expr {
        Expr::OffsetArg(name.to_string(), off)
    }

    /// Binary helper.
    pub fn bin(op: Opcode, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(Opcode::Add, a, b)
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(Opcode::Sub, a, b)
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(Opcode::Mul, a, b)
    }

    /// Number of operation nodes (instructions after lowering).
    pub fn n_ops(&self) -> u64 {
        match self {
            Expr::Arg(_) | Expr::OffsetArg(..) | Expr::ConstI(_) | Expr::ConstF(_) => 0,
            Expr::Bin(_, a, b) => 1 + a.n_ops() + b.n_ops(),
            Expr::Un(_, a) => 1 + a.n_ops(),
            Expr::Sel(c, a, b) => 1 + c.n_ops() + a.n_ops() + b.n_ops(),
        }
    }

    /// All distinct (input, offset) pairs with offset ≠ 0.
    pub fn offsets(&self, acc: &mut Vec<(String, i64)>) {
        match self {
            Expr::OffsetArg(n, o) if *o != 0 && !acc.contains(&(n.clone(), *o)) => {
                acc.push((n.clone(), *o));
            }
            Expr::Bin(_, a, b) => {
                a.offsets(acc);
                b.offsets(acc);
            }
            Expr::Un(_, a) => a.offsets(acc),
            Expr::Sel(c, a, b) => {
                c.offsets(acc);
                a.offsets(acc);
                b.offsets(acc);
            }
            _ => {}
        }
    }
}

/// A stream reduction: `acc = fold op over expr(work-items)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// Accumulator name.
    pub acc: String,
    /// Fold operation (Add, Max, ...).
    pub op: Opcode,
    /// The per-item value folded in.
    pub value: Expr,
}

/// Result of a reference evaluation: output arrays and final reduction
/// values.
pub type EvalResult = (HashMap<String, Vec<f64>>, HashMap<String, f64>);

/// A complete kernel definition.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Element type of every stream (the paper's kernels are
    /// monomorphic; ui18 for the integer SOR).
    pub elem_ty: ScalarType,
    /// Input stream names, in tuple order.
    pub inputs: Vec<String>,
    /// Output streams: name and defining expression.
    pub outputs: Vec<(String, Expr)>,
    /// Stream reductions.
    pub reductions: Vec<Reduction>,
}

impl KernelDef {
    /// Total operation count (`NI` after lowering, minus the output
    /// routing `or`s).
    pub fn n_ops(&self) -> u64 {
        self.outputs.iter().map(|(_, e)| e.n_ops()).sum::<u64>()
            + self.reductions.iter().map(|r| r.value.n_ops() + 1).sum::<u64>()
    }

    /// All distinct neighbour offsets used, per input.
    pub fn offsets(&self) -> Vec<(String, i64)> {
        let mut v = Vec::new();
        for (_, e) in &self.outputs {
            e.offsets(&mut v);
        }
        for r in &self.reductions {
            r.value.offsets(&mut v);
        }
        v
    }

    /// Evaluate the kernel over `n` work-items with the reference
    /// (software) semantics: f64 arithmetic for float kernels, exact
    /// width-masked integer arithmetic for integer kernels. Returns
    /// output arrays and final reduction values.
    pub fn eval_reference(
        &self,
        inputs: &HashMap<String, Vec<f64>>,
        n: usize,
    ) -> Result<EvalResult, String> {
        for name in &self.inputs {
            let arr = inputs.get(name).ok_or_else(|| format!("missing input `{name}`"))?;
            if arr.len() < n {
                return Err(format!("input `{name}` shorter than NDRange"));
            }
        }
        let mut outs: HashMap<String, Vec<f64>> =
            self.outputs.iter().map(|(o, _)| (o.clone(), vec![0.0; n])).collect();
        let mut reds: HashMap<String, f64> =
            self.reductions.iter().map(|r| (r.acc.clone(), 0.0)).collect();
        for i in 0..n {
            for (o, e) in &self.outputs {
                let v = eval_expr(e, inputs, i, self.elem_ty);
                outs.get_mut(o).expect("pre-inserted")[i] = v;
            }
            for r in &self.reductions {
                let v = eval_expr(&r.value, inputs, i, self.elem_ty);
                let acc = reds.get_mut(&r.acc).expect("pre-inserted");
                *acc = fold(r.op, *acc, v, self.elem_ty);
            }
        }
        Ok((outs, reds))
    }
}

fn mask_int(v: f64, ty: ScalarType) -> f64 {
    if ty.is_float() {
        return v;
    }
    let w = u32::from(ty.bits()).min(63);
    let modulus = (1i128 << w) as f64;
    let mut r = (v as i128).rem_euclid(1i128 << w) as f64;
    if ty.is_signed() && r >= modulus / 2.0 {
        r -= modulus;
    }
    r
}

fn eval_expr(e: &Expr, inputs: &HashMap<String, Vec<f64>>, i: usize, ty: ScalarType) -> f64 {
    let v = match e {
        Expr::Arg(n) => inputs.get(n).and_then(|a| a.get(i)).copied().unwrap_or(0.0),
        Expr::OffsetArg(n, off) => {
            let j = i as i64 + off;
            inputs
                .get(n)
                .and_then(|a| if j >= 0 { a.get(j as usize) } else { None })
                .copied()
                .unwrap_or(0.0)
        }
        Expr::ConstI(c) => *c as f64,
        Expr::ConstF(c) => *c,
        Expr::Bin(op, a, b) => {
            let x = eval_expr(a, inputs, i, ty);
            let y = eval_expr(b, inputs, i, ty);
            apply_bin(*op, x, y, ty)
        }
        Expr::Un(op, a) => {
            let x = eval_expr(a, inputs, i, ty);
            match op {
                Opcode::Abs => x.abs(),
                Opcode::Neg => -x,
                Opcode::Not => mask_int(-(x + 1.0), ty),
                Opcode::Sqrt => {
                    if ty.is_float() {
                        x.sqrt()
                    } else {
                        (x.max(0.0).sqrt()).floor()
                    }
                }
                _ => x,
            }
        }
        Expr::Sel(c, a, b) => {
            if eval_expr(c, inputs, i, ty) != 0.0 {
                eval_expr(a, inputs, i, ty)
            } else {
                eval_expr(b, inputs, i, ty)
            }
        }
    };
    mask_int(v, ty)
}

fn apply_bin(op: Opcode, x: f64, y: f64, ty: ScalarType) -> f64 {
    let int = ty.is_int();
    match op {
        Opcode::Add => x + y,
        Opcode::Sub => x - y,
        Opcode::Mul => x * y,
        Opcode::Div => {
            if int {
                if y == 0.0 {
                    ((1u64 << ty.bits().min(62)) - 1) as f64
                } else {
                    (x / y).trunc()
                }
            } else {
                x / y
            }
        }
        Opcode::Rem => {
            if y == 0.0 {
                0.0
            } else if int {
                (x % y).trunc()
            } else {
                x % y
            }
        }
        Opcode::And => ((x as i64) & (y as i64)) as f64,
        Opcode::Or => ((x as i64) | (y as i64)) as f64,
        Opcode::Xor => ((x as i64) ^ (y as i64)) as f64,
        Opcode::Shl => ((x as i64) << (y as i64).clamp(0, 63)) as f64,
        Opcode::Shr => ((x as i64) >> (y as i64).clamp(0, 63)) as f64,
        Opcode::CmpEq => f64::from(x == y),
        Opcode::CmpNe => f64::from(x != y),
        Opcode::CmpLt => f64::from(x < y),
        Opcode::CmpLe => f64::from(x <= y),
        Opcode::CmpGt => f64::from(x > y),
        Opcode::CmpGe => f64::from(x >= y),
        Opcode::Min => x.min(y),
        Opcode::Max => x.max(y),
        _ => x,
    }
}

fn fold(op: Opcode, acc: f64, v: f64, ty: ScalarType) -> f64 {
    mask_int(apply_bin(op, v, acc, ty), ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: ScalarType = ScalarType::UInt(18);

    fn simple_kernel() -> KernelDef {
        // q[i] = (p[i-1] + p[i+1]) * 3; errAcc += q[i] - p[i]
        let e = Expr::mul(Expr::add(Expr::off("p", -1), Expr::off("p", 1)), Expr::ConstI(3));
        KernelDef {
            name: "simple".into(),
            elem_ty: T,
            inputs: vec!["p".into()],
            outputs: vec![("q".into(), e.clone())],
            reductions: vec![Reduction {
                acc: "errAcc".into(),
                op: Opcode::Add,
                value: Expr::sub(e, Expr::arg("p")),
            }],
        }
    }

    #[test]
    fn op_and_offset_census() {
        let k = simple_kernel();
        assert_eq!(k.n_ops(), 6, "add+mul outputs; sub+add+mul+fold reduction");
        let offs = k.offsets();
        assert_eq!(offs.len(), 2);
        assert!(offs.contains(&("p".into(), -1)));
        assert!(offs.contains(&("p".into(), 1)));
    }

    #[test]
    fn reference_eval_matches_hand_computation() {
        let k = simple_kernel();
        let mut inputs = HashMap::new();
        inputs.insert("p".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        let (outs, reds) = k.eval_reference(&inputs, 4).unwrap();
        let q = &outs["q"];
        assert_eq!(q[0], 6.0, "(0 + 2) * 3");
        assert_eq!(q[1], 12.0, "(1 + 3) * 3");
        assert_eq!(q[2], 18.0);
        assert_eq!(q[3], 9.0, "(3 + 0) * 3");
        assert_eq!(reds["errAcc"], (6.0 - 1.0) + (12.0 - 2.0) + (18.0 - 3.0) + (9.0 - 4.0));
    }

    #[test]
    fn integer_masking_in_reference() {
        let k = KernelDef {
            name: "wrap".into(),
            elem_ty: ScalarType::UInt(8),
            inputs: vec!["x".into()],
            outputs: vec![("y".into(), Expr::mul(Expr::arg("x"), Expr::ConstI(2)))],
            reductions: vec![],
        };
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![200.0]);
        let (outs, _) = k.eval_reference(&inputs, 1).unwrap();
        assert_eq!(outs["y"][0], (400 % 256) as f64);
    }

    #[test]
    fn missing_input_reported() {
        let k = simple_kernel();
        assert!(k.eval_reference(&HashMap::new(), 4).is_err());
        let mut short = HashMap::new();
        short.insert("p".to_string(), vec![1.0]);
        assert!(k.eval_reference(&short, 4).is_err());
    }

    #[test]
    fn select_and_compare() {
        let k = KernelDef {
            name: "clip".into(),
            elem_ty: T,
            inputs: vec!["x".into()],
            outputs: vec![(
                "y".into(),
                Expr::Sel(
                    Box::new(Expr::bin(Opcode::CmpGt, Expr::arg("x"), Expr::ConstI(10))),
                    Box::new(Expr::ConstI(10)),
                    Box::new(Expr::arg("x")),
                ),
            )],
            reductions: vec![],
        };
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![5.0, 15.0]);
        let (outs, _) = k.eval_reference(&inputs, 2).unwrap();
        assert_eq!(outs["y"], vec![5.0, 10.0]);
    }

    #[test]
    fn max_reduction() {
        let k = KernelDef {
            name: "maxred".into(),
            elem_ty: T,
            inputs: vec!["x".into()],
            outputs: vec![("y".into(), Expr::arg("x"))],
            reductions: vec![Reduction { acc: "m".into(), op: Opcode::Max, value: Expr::arg("x") }],
        };
        let mut inputs = HashMap::new();
        inputs.insert("x".to_string(), vec![3.0, 9.0, 4.0]);
        let (_, reds) = k.eval_reference(&inputs, 3).unwrap();
        assert_eq!(reds["m"], 9.0);
    }
}
