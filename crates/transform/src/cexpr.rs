//! A C/Fortran-flavoured surface syntax for kernel expressions — the
//! paper's closing future-work item ("eventually, we plan to evolve our
//! flow to include legacy code written in languages typically used for
//! scientific computing like Fortran or C"), in miniature: the
//! *expression* sublanguage those kernels are written in, parsed into
//! [`Expr`].
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! expr    := ternary
//! ternary := or ('?' expr ':' expr)?
//! or      := and ('|' and)*
//! and     := cmp ('&' cmp)*
//! cmp     := shift (('=='|'!='|'<'|'<='|'>'|'>=') shift)?
//! shift   := sum (('<<'|'>>') sum)*
//! sum     := term (('+'|'-') term)*
//! term    := unary (('*'|'/'|'%') unary)*
//! unary   := ('-'|'!') unary | atom
//! atom    := number | ident | ident '[' 'i' (('+'|'-') number)? ']'
//!          | ident '(' expr (',' expr)* ')' | '(' expr ')'
//! ```
//!
//! `name` is the current element of stream `name`; `name[i+3]` is a
//! stencil neighbour; `min/max/abs/sqrt` are intrinsic calls. Floats
//! contain a `.`.
//!
//! ```
//! use tytra_transform::cexpr::parse_expr;
//! let e = parse_expr("cn1*(p[i+1] + p[i-1]) - rhs").unwrap();
//! assert_eq!(e.n_ops(), 3);
//! ```

use crate::expr::Expr;
use tytra_ir::Opcode;

/// Parse a C-flavoured expression into an [`Expr`].
pub fn parse_expr(src: &str) -> Result<Expr, String> {
    let mut p = P { src: src.as_bytes(), pos: 0 };
    let e = p.ternary()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(format!("trailing input at byte {}: `{}`", p.pos, &src[p.pos..]));
    }
    Ok(e)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            // Do not let `<` eat the front of `<<` or `<=`.
            if (s == "<" || s == ">")
                && self.src.get(self.pos + 1).is_some_and(|&c| c == b'=' || c == self.src[self.pos])
            {
                return false;
            }
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ternary(&mut self) -> Result<Expr, String> {
        let cond = self.or()?;
        if self.eat("?") {
            let a = self.ternary()?;
            if !self.eat(":") {
                return Err("expected `:` in ternary".into());
            }
            let b = self.ternary()?;
            return Ok(Expr::Sel(Box::new(cond), Box::new(a), Box::new(b)));
        }
        Ok(cond)
    }

    fn or(&mut self) -> Result<Expr, String> {
        let mut e = self.and()?;
        loop {
            if self.eat("^") {
                e = Expr::bin(Opcode::Xor, e, self.and()?);
            } else if self.eat("|") {
                e = Expr::bin(Opcode::Or, e, self.and()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn and(&mut self) -> Result<Expr, String> {
        let mut e = self.cmp()?;
        while self.eat("&") {
            e = Expr::bin(Opcode::And, e, self.cmp()?);
        }
        Ok(e)
    }

    fn cmp(&mut self) -> Result<Expr, String> {
        let e = self.shift()?;
        for (tok, op) in [
            ("==", Opcode::CmpEq),
            ("!=", Opcode::CmpNe),
            ("<=", Opcode::CmpLe),
            (">=", Opcode::CmpGe),
            ("<", Opcode::CmpLt),
            (">", Opcode::CmpGt),
        ] {
            if self.eat(tok) {
                return Ok(Expr::bin(op, e, self.shift()?));
            }
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, String> {
        let mut e = self.sum()?;
        loop {
            if self.eat("<<") {
                e = Expr::bin(Opcode::Shl, e, self.sum()?);
            } else if self.eat(">>") {
                e = Expr::bin(Opcode::Shr, e, self.sum()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn sum(&mut self) -> Result<Expr, String> {
        let mut e = self.term()?;
        loop {
            if self.eat("+") {
                e = Expr::add(e, self.term()?);
            } else if self.eat("-") {
                e = Expr::sub(e, self.term()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut e = self.unary()?;
        loop {
            if self.eat("*") {
                e = Expr::mul(e, self.unary()?);
            } else if self.eat("/") {
                e = Expr::bin(Opcode::Div, e, self.unary()?);
            } else if self.eat("%") {
                e = Expr::bin(Opcode::Rem, e, self.unary()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, String> {
        if self.eat("-") {
            return Ok(Expr::Un(Opcode::Neg, Box::new(self.unary()?)));
        }
        if self.eat("!") {
            return Ok(Expr::Un(Opcode::Not, Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, String> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let e = self.ternary()?;
                if !self.eat(")") {
                    return Err("expected `)`".into());
                }
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.ident_or_call(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(char::from), self.pos)),
        }
    }

    fn number(&mut self) -> Result<Expr, String> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&c) = self.src.get(self.pos) {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == b'.' && !is_float {
                is_float = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>().map(Expr::ConstF).map_err(|e| e.to_string())
        } else {
            text.parse::<i64>().map(Expr::ConstI).map_err(|e| e.to_string())
        }
    }

    fn ident_or_call(&mut self) -> Result<Expr, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.src.get(self.pos) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        // Intrinsic call?
        if self.peek() == Some(b'(') {
            let op = match name {
                "min" => Opcode::Min,
                "max" => Opcode::Max,
                "abs" => Opcode::Abs,
                "sqrt" => Opcode::Sqrt,
                other => return Err(format!("unknown intrinsic `{other}`")),
            };
            self.pos += 1; // '('
            let first = self.ternary()?;
            let e = if op.arity() == 2 {
                if !self.eat(",") {
                    return Err(format!("`{name}` takes two arguments"));
                }
                let second = self.ternary()?;
                Expr::bin(op, first, second)
            } else {
                Expr::Un(op, Box::new(first))
            };
            if !self.eat(")") {
                return Err("expected `)` after intrinsic arguments".into());
            }
            return Ok(e);
        }
        // Stencil subscript?
        if self.peek() == Some(b'[') {
            self.pos += 1; // '['
            if !self.eat("i") {
                return Err("subscripts must be of the form [i±k]".into());
            }
            let mut off: i64 = 0;
            if self.eat("+") {
                off = self.int()?;
            } else if self.eat("-") {
                off = -self.int()?;
            }
            if !self.eat("]") {
                return Err("expected `]`".into());
            }
            return Ok(if off == 0 { Expr::arg(name) } else { Expr::off(name, off) });
        }
        Ok(Expr::arg(name))
    }

    fn int(&mut self) -> Result<i64, String> {
        match self.number()? {
            Expr::ConstI(v) => Ok(v),
            _ => Err("expected an integer".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tytra_ir::ScalarType;

    fn eval(src: &str, p: &[f64], rhs: &[f64], at: usize) -> f64 {
        let e = parse_expr(src).unwrap();
        let k = crate::expr::KernelDef {
            name: "t".into(),
            elem_ty: ScalarType::UInt(18),
            inputs: vec!["p".into(), "rhs".into(), "cn1".into()],
            outputs: vec![("y".into(), e)],
            reductions: vec![],
        };
        let mut w = HashMap::new();
        w.insert("p".to_string(), p.to_vec());
        w.insert("rhs".to_string(), rhs.to_vec());
        w.insert("cn1".to_string(), vec![3.0; p.len()]);
        let (outs, _) = k.eval_reference(&w, p.len()).unwrap();
        outs["y"][at]
    }

    #[test]
    fn parses_the_sor_update() {
        let e = parse_expr("cn1*(p[i+1] + p[i-1]) - rhs").unwrap();
        assert_eq!(e.n_ops(), 3);
        let offs = {
            let mut v = Vec::new();
            e.offsets(&mut v);
            v
        };
        assert!(offs.contains(&("p".to_string(), 1)));
        assert!(offs.contains(&("p".to_string(), -1)));
    }

    #[test]
    fn precedence_and_parentheses() {
        let p = [2.0, 3.0, 5.0, 7.0];
        let r = [1.0; 4];
        assert_eq!(eval("p + 2 * 3", &p, &r, 1), 9.0);
        assert_eq!(eval("(p + 2) * 3", &p, &r, 1), 15.0);
        assert_eq!(eval("p - 1 - 1", &p, &r, 2), 3.0, "left associative");
        assert_eq!(eval("2 << 2", &p, &r, 0), 8.0);
        assert_eq!(eval("p < 4 ? 100 : 200", &p, &r, 1), 100.0);
        assert_eq!(eval("p < 4 ? 100 : 200", &p, &r, 2), 200.0);
    }

    #[test]
    fn subscripts_and_intrinsics() {
        let p = [10.0, 20.0, 30.0, 40.0];
        let r = [0.0; 4];
        assert_eq!(eval("p[i+1] - p[i-1]", &p, &r, 1), 20.0);
        assert_eq!(eval("p[i]", &p, &r, 3), 40.0);
        assert_eq!(eval("max(p, 25)", &p, &r, 1), 25.0);
        assert_eq!(eval("min(p, 25)", &p, &r, 3), 25.0);
        // ui18 semantics: keep the operand positive (unsigned abs is
        // the identity on wrapped values).
        assert_eq!(eval("abs(100 - p)", &p, &r, 0), 90.0);
        assert_eq!(eval("sqrt(p[i+2])", &p, &r, 1), 6.0, "integer isqrt of 40");
    }

    #[test]
    fn float_literals() {
        let e = parse_expr("p * 0.5 + 1.25").unwrap();
        match e {
            Expr::Bin(Opcode::Add, _, b) => assert_eq!(*b, Expr::ConstF(1.25)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("p +").is_err());
        assert!(parse_expr("(p").is_err());
        assert!(parse_expr("p[j]").is_err());
        assert!(parse_expr("foo(p)").is_err());
        assert!(parse_expr("min(p)").is_err());
        assert!(parse_expr("p ? 1").is_err());
        assert!(parse_expr("p 5").is_err());
    }

    #[test]
    fn full_sor_kernel_from_legacy_syntax() {
        // The paper's SOR update transcribed from its Fortran form.
        let src = "2*(3*p[i+1] + 3*p[i-1] + 5*p[i+30] + 5*p[i-30] \
                   + 9*p[i+900] + 9*p[i-900]) - rhs - p";
        let e = parse_expr(src).unwrap();
        assert_eq!(e.n_ops(), 14, "7 muls + 5 adds + 2 subs");
        let mut offs = Vec::new();
        e.offsets(&mut offs);
        assert_eq!(offs.len(), 6);
    }
}
