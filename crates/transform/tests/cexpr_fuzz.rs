//! Robustness and round-trip properties of the C-flavoured expression
//! front end.

use proptest::prelude::*;
use tytra_ir::Opcode;
use tytra_transform::cexpr::parse_expr;
use tytra_transform::Expr;

/// Render an [`Expr`] back into surface syntax (fully parenthesised).
fn render(e: &Expr) -> String {
    match e {
        Expr::Arg(n) => n.clone(),
        Expr::OffsetArg(n, o) if *o >= 0 => format!("{n}[i+{o}]"),
        Expr::OffsetArg(n, o) => format!("{n}[i-{}]", -o),
        Expr::ConstI(v) if *v < 0 => format!("(0 - {})", -v),
        Expr::ConstI(v) => v.to_string(),
        Expr::ConstF(v) => format!("{v:?}"),
        Expr::Un(Opcode::Neg, a) => format!("(-{})", render(a)),
        Expr::Un(Opcode::Not, a) => format!("(!{})", render(a)),
        Expr::Un(Opcode::Abs, a) => format!("abs({})", render(a)),
        Expr::Un(Opcode::Sqrt, a) => format!("sqrt({})", render(a)),
        Expr::Un(_, a) => render(a),
        Expr::Sel(c, a, b) => {
            format!("(({}) ? ({}) : ({}))", render(c), render(a), render(b))
        }
        Expr::Bin(op, a, b) => {
            let sym = match op {
                Opcode::Add => "+",
                Opcode::Sub => "-",
                Opcode::Mul => "*",
                Opcode::Div => "/",
                Opcode::Rem => "%",
                Opcode::And => "&",
                Opcode::Or => "|",
                Opcode::Xor => "^",
                Opcode::Shl => "<<",
                Opcode::Shr => ">>",
                Opcode::CmpEq => "==",
                Opcode::CmpNe => "!=",
                Opcode::CmpLt => "<",
                Opcode::CmpLe => "<=",
                Opcode::CmpGt => ">",
                Opcode::CmpGe => ">=",
                Opcode::Min => return format!("min({}, {})", render(a), render(b)),
                Opcode::Max => return format!("max({}, {})", render(a), render(b)),
                _ => "+",
            };
            format!("({} {} {})", render(a), sym, render(b))
        }
    }
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(Expr::arg("p")),
        Just(Expr::arg("rhs")),
        (-8i64..=8).prop_filter("non-zero", |o| *o != 0).prop_map(|o| Expr::off("p", o)),
        (0i64..1000).prop_map(Expr::ConstI),
    ];
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), 0usize..12).prop_map(|(a, b, k)| {
                let op = [
                    Opcode::Add,
                    Opcode::Sub,
                    Opcode::Mul,
                    Opcode::Div,
                    Opcode::And,
                    Opcode::Or,
                    Opcode::Xor,
                    Opcode::Shl,
                    Opcode::CmpLt,
                    Opcode::CmpGe,
                    Opcode::Min,
                    Opcode::Max,
                ][k];
                Expr::bin(op, a, b)
            }),
            (inner.clone(), 0usize..3).prop_map(|(a, k)| {
                let op = [Opcode::Neg, Opcode::Not, Opcode::Abs][k];
                Expr::Un(op, Box::new(a))
            }),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| Expr::Sel(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_never_panics_on_noise(s in ".{0,120}") {
        let _ = parse_expr(&s);
    }

    #[test]
    fn parser_never_panics_on_expression_alphabet(
        s in "[a-z0-9+*/()\\[\\]<>=?:!&|^ .%-]{0,120}"
    ) {
        let _ = parse_expr(&s);
    }

    #[test]
    fn rendered_expressions_parse_back_equal(e in arb_expr(3)) {
        let text = render(&e);
        let back = parse_expr(&text)
            .unwrap_or_else(|err| panic!("`{text}` failed to re-parse: {err}"));
        prop_assert_eq!(back, e, "surface: {}", text);
    }
}
