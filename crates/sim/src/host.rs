//! Whole-application orchestration: what the host does around the
//! kernel-instance loop for each memory-execution form (paper Fig 6),
//! producing end-to-end runtime and energy comparable against the cost
//! model's EKIT-derived figures — and against the paper's §VII case
//! study.

use crate::cycle::{simulate_with_params, CycleStats};
use crate::memory::DramModel;
use crate::power::{meter, PowerReading};
use crate::synth::{synthesize, SynthesisResult};
use tytra_cost::CostParams;
use tytra_device::TargetDevice;
use tytra_ir::{AccessPattern, IrModule, MemForm, TybecError};

/// Result of running a full application (NKI kernel instances).
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Design name.
    pub design: String,
    /// Achieved clock, MHz.
    pub freq_mhz: f64,
    /// Virtual-toolchain output ("actual" resources).
    pub synth: SynthesisResult,
    /// Per-instance device-cycle breakdown ("actual" CPKI in `.total`).
    pub cycles: CycleStats,
    /// Host-side seconds per kernel instance (transfers + invocation).
    pub t_host_per_instance_s: f64,
    /// One-off host seconds (Form B/C staging).
    pub t_host_once_s: f64,
    /// End-to-end seconds per kernel instance.
    pub t_instance_s: f64,
    /// End-to-end runtime for all NKI instances.
    pub t_total_s: f64,
    /// Power-meter observation over the run.
    pub power: PowerReading,
}

impl RunResult {
    /// "Actual" cycles per kernel instance (Table II's CPKI).
    pub fn cpki(&self) -> u64 {
        self.cycles.total
    }
}

/// Synthesize, simulate and orchestrate a validated module end to end.
pub fn run_application(m: &IrModule, dev: &TargetDevice) -> Result<RunResult, TybecError> {
    let synth = synthesize(m, dev)?;
    let (params, _tree) = CostParams::extract(m, dev)?;
    let cycles = simulate_with_params(m, dev, &params, synth.fmax_mhz)?;

    let f_hz = synth.fmax_mhz * 1e6;
    let t_device = cycles.total as f64 / f_hz;

    // Host DMA engine over the host link, mechanistic.
    let host_dma = DramModel {
        peak_bytes_per_s: dev.host_link.peak_bytes_per_s,
        transfer_setup_s: dev.host_link.stream_setup_us * 1e-6,
        // PCIe DMA moves 4 KiB TLP trains, far coarser than DRAM bursts.
        burst_bytes: 4096.0,
        ..DramModel::fig10_baseline()
    };
    let total_bytes = params.total_bytes();
    // Host DMA is always contiguous (whole arrays), one transfer per
    // stream, each paying its own setup — the effect that penalises
    // many-lane variants at small grids (paper §VII).
    let one_full_transfer = if params.n_streams > 0 {
        let per_stream_bytes = total_bytes / params.n_streams as f64;
        params.n_streams as f64
            * host_dma.transfer_time_s(AccessPattern::Contiguous, per_stream_bytes, 4.0)
    } else {
        0.0
    };

    let invoke = dev.host_call_overhead_us * 1e-6;
    let (t_host_per_instance, t_host_once) = match params.form {
        MemForm::A => (one_full_transfer + invoke, 0.0),
        MemForm::B | MemForm::C | MemForm::Tiled { .. } => (invoke, one_full_transfer),
    };

    let t_instance = t_host_per_instance + t_device;
    let t_total = t_host_once + params.nki as f64 * t_instance;
    let power = meter(dev, &synth, &cycles, t_total);

    Ok(RunResult {
        design: m.name.clone(),
        freq_mhz: synth.fmax_mhz,
        synth,
        cycles,
        t_host_per_instance_s: t_host_per_instance,
        t_host_once_s: t_host_once,
        t_instance_s: t_instance,
        t_total_s: t_total,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn kernel(form: MemForm, n: u64, nki: u64) -> IrModule {
        let mut b = ModuleBuilder::new(format!("app_{}", form.tag()));
        b.global_input("p", T, n);
        b.global_output("q", T, n);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 16);
            let c = f.offset("p", T, -16);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[n]).nki(nki).form(form);
        b.finish().unwrap()
    }

    #[test]
    fn form_a_pays_transfer_per_instance() {
        let dev = stratix_v_gsd8();
        let a = run_application(&kernel(MemForm::A, 1 << 16, 100), &dev).unwrap();
        let b = run_application(&kernel(MemForm::B, 1 << 16, 100), &dev).unwrap();
        assert!(a.t_host_per_instance_s > b.t_host_per_instance_s);
        assert_eq!(a.t_host_once_s, 0.0);
        assert!(b.t_host_once_s > 0.0);
        assert!(a.t_total_s > b.t_total_s);
    }

    #[test]
    fn runtime_scales_with_nki() {
        let dev = stratix_v_gsd8();
        let r100 = run_application(&kernel(MemForm::B, 1 << 14, 100), &dev).unwrap();
        let r1000 = run_application(&kernel(MemForm::B, 1 << 14, 1000), &dev).unwrap();
        let ratio = r1000.t_total_s / r100.t_total_s;
        assert!(ratio > 8.0 && ratio < 11.0, "ratio {ratio}");
    }

    #[test]
    fn energy_and_cpki_populated() {
        let dev = stratix_v_gsd8();
        let r = run_application(&kernel(MemForm::B, 1 << 14, 10), &dev).unwrap();
        assert!(r.cpki() > (1 << 14));
        assert!(r.power.delta_watts > 0.0);
        assert!(r.power.delta_energy_j > 0.0);
        assert!(r.freq_mhz > 50.0);
    }

    #[test]
    fn deterministic_end_to_end() {
        let dev = stratix_v_gsd8();
        let m = kernel(MemForm::B, 1 << 14, 10);
        let a = run_application(&m, &dev).unwrap();
        let b = run_application(&m, &dev).unwrap();
        assert_eq!(a, b);
    }
}
