//! Deterministic seeding helpers.
//!
//! Every stochastic element of the substrate (place-and-route variance,
//! DRAM refresh phase) is seeded from a stable hash of the design plus a
//! fixed session seed, so all experiments and tests are reproducible
//! (DESIGN.md §6).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed session seed mixed into every design hash.
pub const SESSION_SEED: u64 = 0x7974_7261_5f73_696d;

/// FNV-1a hash of a byte string (stable across platforms and runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A reproducible RNG derived from a design identity string.
pub fn rng_for(design: &str, salt: u64) -> StdRng {
    StdRng::seed_from_u64(fnv1a(design.as_bytes()) ^ salt ^ 0x7974_7261_5f73_696d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b"tytra"), fnv1a(b"tytra"));
        assert_ne!(fnv1a(b"tytra"), fnv1a(b"tytrb"));
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn rng_is_deterministic_per_design() {
        let mut a = rng_for("sor_c2", 1);
        let mut b = rng_for("sor_c2", 1);
        let va: u64 = a.random();
        let vb: u64 = b.random();
        assert_eq!(va, vb);
        let mut c = rng_for("sor_c2", 2);
        let vc: u64 = c.random();
        assert_ne!(va, vc);
    }
}
