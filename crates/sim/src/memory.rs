//! Mechanistic DRAM / DMA-link model.
//!
//! The device crate embeds the paper's *measured* Fig 10 curve as the
//! cost model's calibration input. This module models the same link from
//! first principles — per-transfer setup, burst pipelining, row activates
//! on non-contiguous access, periodic refresh — and is what the
//! cycle-level simulator charges for traffic. Re-running the STREAM-style
//! benchmark against it regenerates a Fig 10-shaped curve, closing the
//! loop between the empirical and mechanistic views.

use tytra_ir::AccessPattern;

/// A DDR3-class memory channel behind a streaming DMA engine.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Peak (pin) bandwidth, bytes/s.
    pub peak_bytes_per_s: f64,
    /// Fixed per-kernel-transfer setup charge, seconds (descriptor
    /// programming, OpenCL runtime dispatch — the baseline SDAccel path
    /// the paper benchmarks carries a hefty one).
    pub transfer_setup_s: f64,
    /// Per-request controller overhead for non-burst (strided/random)
    /// accesses, seconds — dominated by the runtime's single-beat
    /// request path.
    pub request_overhead_s: f64,
    /// Burst length in bytes for contiguous streaming.
    pub burst_bytes: f64,
    /// Dead time between bursts (bank turnaround, arbitration), seconds.
    pub burst_gap_s: f64,
    /// Fraction of time lost to refresh.
    pub refresh_loss: f64,
}

impl DramModel {
    /// Parameters reproducing the Fig 10 baseline (unoptimised SDAccel
    /// path on DDR3-1333).
    pub fn fig10_baseline() -> DramModel {
        DramModel {
            peak_bytes_per_s: 10.7e9,
            // The unoptimised SDAccel path pays an OpenCL kernel-launch
            // plus buffer-map round-trip per transfer — the effect that
            // pins the measured curve at 0.3 Gbps for 100×100 arrays.
            transfer_setup_s: 1.0e-3,
            request_overhead_s: 450.0e-9,
            burst_bytes: 512.0,
            // The baseline path re-arbitrates through the runtime between
            // bursts; the dead time caps a lone stream at ~0.79 GB/s —
            // the measured 6.3 Gbps plateau.
            burst_gap_s: 600.0e-9,
            refresh_loss: 0.031,
        }
    }

    /// A vendor-optimised streaming controller (Maxeler-style): same
    /// DRAM, but bursts chain back-to-back with only bank-turnaround
    /// dead time. This is what the cycle simulator charges for kernel
    /// streams on DMA-class links.
    pub fn streaming(peak_bytes_per_s: f64) -> DramModel {
        DramModel {
            peak_bytes_per_s,
            transfer_setup_s: 8.0e-6,
            burst_gap_s: 120.0e-9,
            ..DramModel::fig10_baseline()
        }
    }

    /// Scale the *unoptimised* baseline to a different pin bandwidth,
    /// keeping controller behaviour.
    pub fn scaled_to_peak(peak_bytes_per_s: f64) -> DramModel {
        DramModel { peak_bytes_per_s, ..DramModel::fig10_baseline() }
    }

    /// Time to move `total_bytes` with the given access pattern
    /// (`elem_bytes` sized elements), seconds.
    pub fn transfer_time_s(
        &self,
        pattern: AccessPattern,
        total_bytes: f64,
        elem_bytes: f64,
    ) -> f64 {
        if total_bytes <= 0.0 {
            return 0.0;
        }
        let busy = match pattern {
            AccessPattern::Contiguous => {
                let bursts = (total_bytes / self.burst_bytes).ceil();
                total_bytes / self.peak_bytes_per_s + bursts * self.burst_gap_s
            }
            AccessPattern::Strided { .. } => {
                // Every element is its own request: controller overhead
                // plus a full row cycle dominates.
                let n = (total_bytes / elem_bytes).ceil();
                n * (self.request_overhead_s + elem_bytes / self.peak_bytes_per_s)
            }
        };
        (self.transfer_setup_s + busy) / (1.0 - self.refresh_loss)
    }

    /// Sustained bandwidth in Gbps for the STREAM-style benchmark over a
    /// square array of `side × side` elements of `elem_bytes` each.
    pub fn sustained_gbps(&self, pattern: AccessPattern, side: u64, elem_bytes: f64) -> f64 {
        let total = (side * side) as f64 * elem_bytes;
        let t = self.transfer_time_s(pattern, total, elem_bytes);
        total / t * 8.0 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CONT: AccessPattern = AccessPattern::Contiguous;
    const STRIDED: AccessPattern = AccessPattern::Strided { stride: 2000 };

    #[test]
    fn contiguous_curve_rises_then_plateaus() {
        let m = DramModel::fig10_baseline();
        let small = m.sustained_gbps(CONT, 100, 4.0);
        let mid = m.sustained_gbps(CONT, 1000, 4.0);
        let large = m.sustained_gbps(CONT, 5000, 4.0);
        assert!(small < mid && mid < large, "{small} {mid} {large}");
        // Plateau: 5000 → 6000 gains little.
        let larger = m.sustained_gbps(CONT, 6000, 4.0);
        assert!((larger - large) / large < 0.05);
    }

    #[test]
    fn qualitative_match_to_fig10_magnitudes() {
        // The mechanistic model should land in the same decade as the
        // measured calibration: small contiguous transfers well under
        // 1 Gbps-scale efficiency... (the measured 0.3 Gbps at side 100),
        // large ones within a factor ~3 of the 6.3 Gbps plateau.
        let m = DramModel::fig10_baseline();
        let small = m.sustained_gbps(CONT, 100, 4.0);
        assert!(small < 10.0, "small transfers are setup-dominated: {small}");
        let large = m.sustained_gbps(CONT, 6000, 4.0);
        assert!(large > 2.0 && large < 30.0, "{large}");
    }

    #[test]
    fn contiguity_gap_is_two_orders_of_magnitude() {
        let m = DramModel::fig10_baseline();
        let cont = m.sustained_gbps(CONT, 4000, 4.0);
        let strided = m.sustained_gbps(STRIDED, 4000, 4.0);
        assert!(cont / strided > 50.0, "gap {}×", cont / strided);
        // Strided lands near the measured 0.07 Gbps decade.
        assert!(strided > 0.005 && strided < 0.5, "{strided}");
    }

    #[test]
    fn strided_is_size_insensitive() {
        let m = DramModel::fig10_baseline();
        let a = m.sustained_gbps(STRIDED, 2000, 4.0);
        let b = m.sustained_gbps(STRIDED, 6000, 4.0);
        assert!((a - b).abs() / a < 0.05);
    }

    #[test]
    fn zero_transfer_takes_no_time() {
        let m = DramModel::fig10_baseline();
        assert_eq!(m.transfer_time_s(CONT, 0.0, 4.0), 0.0);
    }

    #[test]
    fn refresh_loss_inflates_time() {
        let mut m = DramModel::fig10_baseline();
        let t0 = m.transfer_time_s(CONT, 1e6, 4.0);
        m.refresh_loss = 0.0;
        let t1 = m.transfer_time_s(CONT, 1e6, 4.0);
        assert!(t0 > t1);
    }
}
