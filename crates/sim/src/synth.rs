//! The synthesis emulator — our stand-in for the vendor toolchain
//! (Quartus / Vivado) that produced the paper's "actual" resource counts
//! and achieved clocks.
//!
//! It prices the elaborated [`Netlist`] with a **component-level model
//! parameterised independently from the cost model's fitted curves**, so
//! estimate-vs-actual comparisons (Table II) exercise a genuine gap:
//!
//! * **carry-chain packing** — adders/subtractors occupy ALM pairs:
//!   `ceil(w/2)·2 + 4` ALUTs rather than the model's smooth `w + 2`;
//! * **strength reduction** — a multiply by a compile-time constant
//!   becomes a shift-add network (`popcount(c) − 1` adders), freeing the
//!   DSP the cost model booked;
//! * **DSP pairing** — variable-precision DSP blocks host two
//!   half-width products; synthesis pairs eligible multipliers,
//!   occasionally beating the estimate (the LavaMD −13 % DSP error);
//! * **shift-register extraction** — delay lines above 16 stages retire
//!   into LUT-based shift registers (fewer flip-flops, a few more
//!   ALUTs);
//! * **offset FIFOs** allocate the bare window (the cost model books one
//!   extra in-flight element — the 5418 vs 5400 Table II discrepancy);
//! * **control-set overhead** — a fixed percentage of registers gains
//!   enable/reset logic;
//! * **place-and-route variance** — a deterministic, design-seeded ±1.5 %
//!   perturbation of ALUTs/registers and ±3 % of achieved clock.

use crate::netlist::{ComponentKind, Netlist};
use crate::rng::rng_for;
use rand::RngExt;
use tytra_device::{ResourceVector, TargetDevice};
use tytra_ir::{IrModule, Opcode, ScalarType, TybecError};

/// Output of the virtual toolchain run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// "Actual" resource usage after synthesis, packing and P&R.
    pub resources: ResourceVector,
    /// Achieved clock after place-and-route, MHz.
    pub fmax_mhz: f64,
    /// DSPs saved by pairing + strength reduction (reporting aid).
    pub dsps_saved: u64,
    /// Registers retired into shift-register LUTs.
    pub regs_packed: u64,
}

/// Run the virtual toolchain over a design.
pub fn synthesize(m: &IrModule, dev: &TargetDevice) -> Result<SynthesisResult, TybecError> {
    let netlist = Netlist::elaborate(m, dev)?;
    Ok(synthesize_netlist(&netlist, m, dev))
}

/// Price an already-elaborated netlist.
pub fn synthesize_netlist(netlist: &Netlist, m: &IrModule, dev: &TargetDevice) -> SynthesisResult {
    let mut r = ResourceVector::ZERO;
    let mut dsps_saved = 0u64;
    let mut regs_packed = 0u64;
    let mut pairable_dsp_muls = 0u64;

    for c in &netlist.components {
        match &c.kind {
            ComponentKind::FunctionalUnit { op, ty, const_operand, latency } => {
                let (fu, saved_dsp) = fu_cost(dev, *op, *ty, *const_operand, *latency);
                dsps_saved += saved_dsp;
                if *op == Opcode::Mul && const_operand.is_none() && ty.is_int() && ty.bits() <= 18 {
                    pairable_dsp_muls += 1;
                }
                r += fu;
            }
            ComponentKind::DelayLine { bits } => {
                // Shift-register extraction: chains deeper than 16 bits'
                // worth per tap retire into MLAB-based SRLs at roughly a
                // quarter of the flip-flops plus pointer logic.
                if *bits > 256 {
                    let packed = bits * 3 / 4;
                    regs_packed += packed;
                    r += ResourceVector::new(bits / 8 + 4, bits - packed, 0, 0);
                } else {
                    r += ResourceVector::new(0, *bits, 0, 0);
                }
            }
            ComponentKind::OffsetBuffer { window, width } => {
                let bits = window * u64::from(*width);
                if bits <= 128 {
                    r += ResourceVector::new(6, bits, 0, 0);
                } else {
                    // Bare window in BRAM + pointer/valid logic.
                    r += ResourceVector::new(14, 24, bits, 0);
                }
            }
            ComponentKind::StreamController => {
                // Address counter, burst splitter, response tracker.
                r += ResourceVector::new(38, 52, 0, 0);
            }
            ComponentKind::LaneGlue => {
                r += ResourceVector::new(27, 8, 0, 0);
            }
            ComponentKind::Sequencer { n_instrs } => {
                r += ResourceVector::new(66, 44, n_instrs * 32, 0);
            }
            ComponentKind::CombOutputReg { width } => {
                r += ResourceVector::new(0, u64::from(*width), 0, 0);
            }
            ComponentKind::LocalMemory { bits } => {
                r += ResourceVector::new(2, 0, *bits, 0);
            }
        }
    }

    // DSP pairing: two 18-bit products can share one variable-precision
    // block when their operands land in the same timing window;
    // empirically the packer manages roughly one pairing per eight
    // eligible products (the LavaMD 26 → 23 DSP effect of Table II).
    let paired = pairable_dsp_muls / 8;
    r.dsps = r.dsps.saturating_sub(paired);
    dsps_saved += paired;

    // Control-set overhead: ~2 % of registers gain dedicated
    // enable/reset ALUTs.
    r.aluts += r.regs / 50;

    // Deterministic P&R variance.
    let mut rng = rng_for(&netlist.design, 0xA11A);
    let jitter = |v: u64, rng: &mut rand::rngs::StdRng| -> u64 {
        let f: f64 = rng.random_range(-0.015..0.015);
        ((v as f64) * (1.0 + f)).round().max(0.0) as u64
    };
    r.aluts = jitter(r.aluts, &mut rng);
    r.regs = jitter(r.regs, &mut rng);

    // Achieved clock: stage-delay-limited like the estimate, but with
    // its own congestion curve and P&R jitter.
    let mut worst_ns: f64 = 0.0;
    for c in &netlist.components {
        if let ComponentKind::FunctionalUnit { op, ty, latency, .. } = &c.kind {
            let d = if *latency == 0 {
                // comb FU: chained delay handled approximately by pricing
                // each op fully (pessimistic by the chain's routing
                // share).
                dev.ops.stage_delay_ns(*op, *ty)
            } else {
                dev.ops.stage_delay_ns(*op, *ty)
            };
            worst_ns = worst_ns.max(d);
        }
    }
    let util = r.max_utilization(&dev.capacity).min(1.0);
    // Quadratic congestion: gentler than the model at mid-utilisation,
    // harsher near full.
    let congestion = 1.0 - 0.45 * util * util;
    let base = if worst_ns > 0.0 { (1000.0 / worst_ns).min(dev.fmax_mhz) } else { dev.fmax_mhz };
    let fjit: f64 = rng.random_range(-0.03..0.03);
    let fmax = (base * congestion * (1.0 + fjit)).max(1.0);
    let fmax = match m.meta.freq_mhz {
        Some(c) => fmax.min(c),
        None => fmax,
    };

    SynthesisResult { resources: r, fmax_mhz: fmax, dsps_saved, regs_packed }
}

/// Price a lone functional unit with the toolchain's component model —
/// the virtual equivalent of the paper's one-off synthesis benchmark
/// runs that produced the Fig 9 calibration points.
pub fn synth_fu_probe(dev: &TargetDevice, op: Opcode, ty: ScalarType) -> ResourceVector {
    fu_cost(dev, op, ty, None, dev.ops.latency(op, ty)).0
}

/// Component-level functional-unit pricing (independent of
/// `OpCostModel`'s fitted curves).
fn fu_cost(
    dev: &TargetDevice,
    op: Opcode,
    ty: ScalarType,
    const_operand: Option<i64>,
    latency: u32,
) -> (ResourceVector, u64) {
    let w = u64::from(ty.bits());
    let lat = u64::from(latency.max(1));
    if ty.is_float() {
        // FP cores come from the vendor IP library; the calibration
        // curves *are* the library data, so synthesis matches them
        // (plus pipeline registers).
        return (dev.ops.cost(op, ty), 0);
    }
    let regs = if latency == 0 { 0 } else { w * lat };
    let packed_adder = |w: u64| w.div_ceil(2) * 2 + 4;
    match op {
        Opcode::Add | Opcode::Sub => (ResourceVector::new(packed_adder(w), regs, 0, 0), 0),
        Opcode::Mul => {
            if let Some(c) = const_operand {
                // Strength reduction: shift-add network over the set bits
                // of the constant.
                let ones = c.unsigned_abs().count_ones() as u64;
                let adders = ones.saturating_sub(1);
                let aluts = adders * packed_adder(w) + 2;
                // Booked DSP freed.
                (ResourceVector::new(aluts, regs, 0, 0), estimate_mul_dsps(dev, ty))
            } else {
                (dev.ops.cost(op, ty) + ResourceVector::new(3, 0, 0, 0), 0)
            }
        }
        Opcode::Div | Opcode::Rem => {
            // Radix-2 restoring array: w stages of packed add/sub plus
            // quotient selection — close to (but not exactly) the fitted
            // quadratic: 652 ALUTs at 24 bits against the model's 654,
            // the paper's Fig 9 anecdote.
            let aluts = w * w + 7 * w / 2 - 8;
            (ResourceVector::new(aluts, regs, 0, 0), 0)
        }
        Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Not => {
            // Packs two bits per ALUT, plus const folding: an op with a
            // constant folds to wires when the constant is 0/identity.
            let aluts = match const_operand {
                Some(0) => 0,
                _ => w.div_ceil(2),
            };
            (ResourceVector::new(aluts, regs, 0, 0), 0)
        }
        Opcode::Shl | Opcode::Shr => {
            let aluts = match const_operand {
                // Constant shift is wiring.
                Some(_) => 0,
                None => {
                    let levels = 64 - w.leading_zeros() as u64;
                    w * levels / 2 + 4
                }
            };
            (ResourceVector::new(aluts, regs, 0, 0), 0)
        }
        Opcode::CmpEq
        | Opcode::CmpNe
        | Opcode::CmpLt
        | Opcode::CmpLe
        | Opcode::CmpGt
        | Opcode::CmpGe => (ResourceVector::new(w / 2 + 4, lat, 0, 0), 0),
        Opcode::Select => (ResourceVector::new(w.div_ceil(2) + 2, regs, 0, 0), 0),
        Opcode::Min | Opcode::Max => {
            (ResourceVector::new(packed_adder(w) / 2 + w + 2, regs, 0, 0), 0)
        }
        Opcode::Abs | Opcode::Neg => (ResourceVector::new(packed_adder(w), regs, 0, 0), 0),
        Opcode::Sqrt => {
            let aluts = w * (w + 2) / 2 + 12;
            (ResourceVector::new(aluts, regs, 0, 0), 0)
        }
    }
}

fn estimate_mul_dsps(dev: &TargetDevice, ty: ScalarType) -> u64 {
    dev.ops.cost(Opcode::Mul, ty).dsps
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_cost::estimate;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{ModuleBuilder, ParKind};

    const T: ScalarType = ScalarType::UInt(18);

    fn stencil(mul_by_const: bool) -> IrModule {
        let mut b = ModuleBuilder::new(if mul_by_const { "sc" } else { "sv" });
        b.global_input("p", T, 27_000);
        b.global_input("w", T, 27_000);
        b.global_output("q", T, 27_000);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.input("w", T);
            f.output("q", T);
            let a = f.offset("p", T, 150);
            let c = f.offset("p", T, -150);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            let wgt = if mul_by_const {
                f.instr(Opcode::Mul, T, vec![s, f.imm(5)])
            } else {
                let warg = f.arg("w");
                f.instr(Opcode::Mul, T, vec![s, warg])
            };
            f.write_out("q", wgt);
        }
        b.main_calls("f0");
        b.ndrange(&[27_000]).nki(100);
        b.finish().unwrap()
    }

    #[test]
    fn actuals_are_close_to_estimates_but_not_equal() {
        let m = stencil(false);
        let dev = stratix_v_gsd8();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        let err = est.resources.total.pct_error_vs(&act.resources);
        // Table II regime: single-digit errors, not identity.
        assert!(err[0].abs() < 15.0, "ALUT error {err:?}");
        assert!(err[1].abs() < 15.0, "REG error {err:?}");
        assert!(err[2].abs() < 2.0, "BRAM error {err:?}");
        assert_ne!(est.resources.total.aluts, act.resources.aluts);
    }

    #[test]
    fn offset_window_discrepancy_matches_table2() {
        let m = stencil(false);
        let dev = stratix_v_gsd8();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        assert_eq!(est.resources.breakdown.offset_buffers.bram_bits, 301 * 18);
        assert_eq!(act.resources.bram_bits, 300 * 18);
    }

    #[test]
    fn strength_reduction_frees_dsp() {
        let dev = stratix_v_gsd8();
        let var = synthesize(&stencil(false), &dev).unwrap();
        let cst = synthesize(&stencil(true), &dev).unwrap();
        assert_eq!(var.resources.dsps, 1);
        assert_eq!(cst.resources.dsps, 0, "const multiply strength-reduced");
        assert!(cst.dsps_saved >= 1);
    }

    #[test]
    fn synthesis_is_deterministic() {
        let m = stencil(false);
        let dev = stratix_v_gsd8();
        let a = synthesize(&m, &dev).unwrap();
        let b = synthesize(&m, &dev).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fmax_is_plausible_and_jittered() {
        let m = stencil(false);
        let dev = stratix_v_gsd8();
        let act = synthesize(&m, &dev).unwrap();
        assert!(act.fmax_mhz > 100.0 && act.fmax_mhz <= dev.fmax_mhz * 1.03);
    }

    #[test]
    fn deep_delay_lines_get_packed() {
        let mut b = ModuleBuilder::new("deep");
        b.global_input("x", ScalarType::UInt(32), 4096);
        b.global_output("y", ScalarType::UInt(32), 4096);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", ScalarType::UInt(32));
            f.output("y", ScalarType::UInt(32));
            let x = f.arg("x");
            // A divide makes a long chain, forcing x to be delayed many
            // cycles for the final add.
            let d = f.instr(Opcode::Div, ScalarType::UInt(32), vec![x.clone(), x.clone()]);
            let s = f.instr(Opcode::Add, ScalarType::UInt(32), vec![d, x]);
            f.write_out("y", s);
        }
        b.main_calls("f0");
        b.ndrange(&[4096]);
        let m = b.finish().unwrap();
        let dev = stratix_v_gsd8();
        let act = synthesize(&m, &dev).unwrap();
        assert!(act.regs_packed > 0, "long delay line should retire into SRLs");
    }
}
