//! Functional interpretation of a design's datapath over real data.
//!
//! Executes the lane pipeline of a validated module against input
//! arrays, producing output arrays and reduction-accumulator values.
//! This validates that a design variant is *semantically* the kernel the
//! front end lowered — the transform crate's correct-by-construction
//! claim is checked against the reference CPU implementations in
//! `tytra-kernels`.
//!
//! Semantics:
//!
//! * integers compute modulo 2^w (as the hardware datapath would),
//!   signed ops sign-extend from w bits;
//! * stream offsets read the input array at `index + offset`, yielding 0
//!   outside the range (boundary cells are expected to be handled by the
//!   host, as in the LES code);
//! * reductions fold over all work-items in stream order;
//! * multi-lane designs split the index space into `KNL` contiguous
//!   chunks, one per lane (the order-preserving `reshapeTo` split).

use std::collections::HashMap;
use tytra_ir::{
    config_tree, Dest, IrError, IrFunction, IrModule, Opcode, Operand, ParKind, PortDir,
    ScalarType, Stmt, TybecError,
};

/// A runtime value: integers carry their width for masking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer payload (stored sign-extended in i128).
    Int(i128),
    /// Float payload.
    Float(f64),
}

impl Value {
    /// Interpret as f64 (for float ops / comparisons with mixed imms).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// Interpret as integer, truncating floats.
    pub fn as_int(self) -> i128 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i128,
        }
    }
}

/// Input arrays keyed by *kernel argument name* (the lane function's
/// parameter names). Each array holds one element per work-item.
#[derive(Debug, Clone, Default)]
pub struct ExecInputs {
    /// name → data.
    pub arrays: HashMap<String, Vec<f64>>,
}

impl ExecInputs {
    /// Insert an input array.
    pub fn set(&mut self, name: impl Into<String>, data: Vec<f64>) -> &mut Self {
        self.arrays.insert(name.into(), data);
        self
    }
}

/// Execution results.
#[derive(Debug, Clone, Default)]
pub struct ExecOutputs {
    /// Output arrays keyed by argument name.
    pub arrays: HashMap<String, Vec<f64>>,
    /// Final values of reduction accumulators keyed by global name.
    pub reductions: HashMap<String, f64>,
}

/// Execute the module's lane pipeline over `n` work-items.
///
/// `inputs` supplies one array per input parameter of the lane function;
/// all arrays must have length ≥ `n`.
pub fn execute_module(
    m: &IrModule,
    inputs: &ExecInputs,
    n: usize,
) -> Result<ExecOutputs, TybecError> {
    let tree = config_tree::extract(m)?;
    // The lane function: descend par → first child; coarse pipes execute
    // child pipes in sequence (each stage feeding the next is not yet
    // modelled — coarse pipes execute their own body then children over
    // the same index space, which matches stages that are element-wise).
    let lane = {
        let mut node = &tree.root;
        while node.kind == ParKind::Par {
            node = node
                .children
                .first()
                .ok_or_else(|| IrError::Validate("par node with no lanes at execution".into()))?;
        }
        node
    };
    let funcs = collect_pipeline(m, &lane.function)?;

    let mut out = ExecOutputs::default();
    // Working arrays: start from the inputs; each pipeline stage may add
    // outputs that later stages read.
    let mut env_arrays: HashMap<String, Vec<f64>> = inputs.arrays.clone();

    for f in funcs {
        exec_function(m, f, &mut env_arrays, &mut out, n)?;
    }

    // Outputs: any array bound to an output param of any executed
    // function.
    Ok(out)
}

/// Execute a (possibly multi-lane) module over the whole index space the
/// way the host runtime would: split every input array into `KNL`
/// contiguous chunks extended by `halo` elements on both sides (the
/// stencil ghost cells the LES host code exchanges), run each lane, and
/// reassemble outputs in order. With `halo` at least the design's
/// largest absolute offset, the result equals the flat single-lane run —
/// the executable form of the `mappar (mappipe f) ∘ reshapeTo ≡ map f`
/// law.
pub fn execute_application(
    m: &IrModule,
    inputs: &ExecInputs,
    n: usize,
    halo: usize,
) -> Result<ExecOutputs, TybecError> {
    let lanes = m.kernel_lanes().max(1) as usize;
    if lanes == 1 {
        return execute_module(m, inputs, n);
    }
    if !n.is_multiple_of(lanes) {
        return Err(IrError::Validate(format!("{lanes} lanes do not divide {n} work-items")).into());
    }
    let per = n / lanes;
    let mut combined = ExecOutputs::default();
    for l in 0..lanes {
        let lo = l * per;
        let hi = lo + per;
        let ext_lo = lo.saturating_sub(halo);
        let ext_hi = (hi + halo).min(n);
        let lead = lo - ext_lo;
        let mut lane_inputs = ExecInputs::default();
        for (name, data) in &inputs.arrays {
            lane_inputs.set(name.clone(), data[ext_lo..ext_hi.min(data.len())].to_vec());
        }
        let lane_out = execute_module(m, &lane_inputs, ext_hi - ext_lo)?;
        for (name, arr) in &lane_out.arrays {
            let slot = combined.arrays.entry(name.clone()).or_insert_with(|| vec![0.0; n]);
            slot[lo..hi].copy_from_slice(&arr[lead..lead + per]);
        }
        for (acc, v) in &lane_out.reductions {
            // Halo items contribute to per-lane accumulators; the host
            // combines interior-only reductions, which we approximate by
            // summing lane values (exact when halo items see zero
            // padding symmetric across lanes is not guaranteed — callers
            // validating reductions should use halo = 0 or single-lane
            // runs).
            *combined.reductions.entry(acc.clone()).or_insert(0.0) += v;
        }
    }
    Ok(combined)
}

/// The pipe functions of a (possibly coarse) pipeline, in dataflow
/// order.
fn collect_pipeline<'m>(m: &'m IrModule, root: &str) -> Result<Vec<&'m IrFunction>, IrError> {
    let f = m
        .function(root)
        .ok_or_else(|| IrError::Unknown { kind: "function", name: root.to_string() })?;
    let mut v = vec![f];
    for c in f.calls() {
        if let Some(cf) = m.function(&c.callee) {
            if cf.kind == ParKind::Pipe {
                v.extend(collect_pipeline(m, &c.callee)?);
            }
        }
    }
    Ok(v)
}

fn exec_function(
    m: &IrModule,
    f: &IrFunction,
    arrays: &mut HashMap<String, Vec<f64>>,
    out: &mut ExecOutputs,
    n: usize,
) -> Result<(), IrError> {
    let funcs_by_name: HashMap<&str, &IrFunction> =
        m.functions.iter().map(|g| (g.name.as_str(), g)).collect();
    // comb functions inline into their parent; callers execute them via
    // collect_pipeline only for pipes. Execute instructions per
    // work-item.
    let mut outputs: HashMap<&str, Vec<f64>> = f
        .params
        .iter()
        .filter(|p| p.dir == PortDir::Out)
        .map(|p| (p.name.as_str(), vec![0.0f64; n]))
        .collect();
    let mut reductions: HashMap<String, f64> = HashMap::new();

    // Inline comb callees' statements after the parent's (they are
    // element-wise single-cycle blocks).
    for idx in 0..n {
        let mut locals: HashMap<&str, Value> = HashMap::new();
        // Bind input params.
        for p in &f.params {
            if p.dir == PortDir::In {
                let data = arrays.get(p.name.as_str()).ok_or_else(|| IrError::Unknown {
                    kind: "input array",
                    name: p.name.clone(),
                })?;
                let raw = data.get(idx).copied().unwrap_or(0.0);
                locals.insert(p.name.as_str(), to_value(raw, p.ty));
            }
        }
        for s in &f.body {
            match s {
                Stmt::Offset(o) => {
                    let src_data = arrays.get(o.src.as_str()).ok_or_else(|| IrError::Unknown {
                        kind: "offset source array",
                        name: o.src.clone(),
                    })?;
                    let j = idx as i64 + o.offset;
                    let raw = if j >= 0 && (j as usize) < src_data.len() {
                        src_data[j as usize]
                    } else {
                        0.0
                    };
                    locals.insert(o.dest.as_str(), to_value(raw, o.ty));
                }
                Stmt::Instr(i) => {
                    let args: Vec<Value> = i
                        .operands
                        .iter()
                        .map(|op| operand_value(op, &locals, &reductions, i.ty))
                        .collect();
                    let v = apply(i.op, i.ty, &args);
                    match &i.dest {
                        Dest::Local(nm) => {
                            locals.insert(nm.as_str(), v);
                        }
                        Dest::Global(g) => {
                            reductions.insert(g.clone(), v.as_f64());
                        }
                    }
                }
                Stmt::Call(c) => {
                    // Child pipes run as their own stage (collected by
                    // `collect_pipeline`); `comb` children inline into
                    // this work-item: bind their params positionally to
                    // the call's operands, run the block, and copy each
                    // output param's `__out` value back to the caller's
                    // argument name.
                    if let Some(callee) = funcs_by_name.get(c.callee.as_str()) {
                        if callee.kind == ParKind::Comb {
                            exec_comb_inline(callee, c, &mut locals)?;
                        }
                    }
                }
            }
        }
        // Route `<port>__out` values to output arrays.
        for p in f.params.iter().filter(|p| p.dir == PortDir::Out) {
            let key = format!("{}__out", p.name);
            if let Some(v) = locals.get(key.as_str()) {
                if let Some(arr) = outputs.get_mut(p.name.as_str()) {
                    arr[idx] = from_value(*v, p.ty);
                }
            }
        }
    }

    for (name, data) in outputs {
        arrays.insert(name.to_string(), data.clone());
        out.arrays.insert(name.to_string(), data);
    }
    out.reductions.extend(reductions);
    Ok(())
}

/// Inline a `comb` callee for one work-item: positional param binding,
/// straight-line execution, outputs copied back to the caller's
/// argument names.
fn exec_comb_inline<'m>(
    callee: &'m IrFunction,
    call: &'m tytra_ir::Call,
    locals: &mut HashMap<&'m str, Value>,
) -> Result<(), IrError> {
    if !call.args.is_empty() && call.args.len() != callee.params.len() {
        return Err(IrError::Validate(format!(
            "call to `{}` binds {} args to {} params",
            callee.name,
            call.args.len(),
            callee.params.len()
        )));
    }
    // Bind inputs positionally.
    let mut inner: HashMap<&str, Value> = HashMap::new();
    for (p, a) in callee.params.iter().zip(&call.args) {
        if p.dir == PortDir::In {
            let v = match a {
                Operand::Local(n) => locals.get(n.as_str()).copied().unwrap_or(Value::Int(0)),
                Operand::Imm(v) => Value::Int(i128::from(*v)),
                Operand::ImmF(v) => Value::Float(*v),
                Operand::Global(_) => Value::Int(0),
            };
            inner.insert(p.name.as_str(), v);
        }
    }
    let no_reductions: HashMap<String, f64> = HashMap::new();
    for st in &callee.body {
        if let Stmt::Instr(i) = st {
            let args: Vec<Value> = i
                .operands
                .iter()
                .map(|op| operand_value(op, &inner, &no_reductions, i.ty))
                .collect();
            let v = apply(i.op, i.ty, &args);
            if let Dest::Local(nm) = &i.dest {
                inner.insert(nm.as_str(), v);
            }
        }
    }
    // Copy outputs back: the caller's operand in each output position
    // receives the callee's `<param>__out` value.
    for (p, a) in callee.params.iter().zip(&call.args) {
        if p.dir == PortDir::Out {
            let key = format!("{}__out", p.name);
            if let (Some(v), Operand::Local(caller_name)) = (inner.get(key.as_str()), a) {
                locals.insert(caller_name.as_str(), *v);
            }
        }
    }
    Ok(())
}

fn to_value(raw: f64, ty: ScalarType) -> Value {
    if ty.is_float() {
        Value::Float(raw)
    } else {
        Value::Int(mask(raw as i128, ty))
    }
}

fn from_value(v: Value, ty: ScalarType) -> f64 {
    match v {
        Value::Float(f) => f,
        Value::Int(i) => mask(i, ty) as f64,
    }
}

/// Reduce an integer to the type's width: unsigned wraps into [0, 2^w);
/// signed sign-extends from bit w−1.
fn mask(v: i128, ty: ScalarType) -> i128 {
    let w = u32::from(ty.bits()).min(127);
    let modulus: i128 = 1i128 << w;
    let r = v.rem_euclid(modulus);
    if ty.is_signed() && r >= modulus / 2 {
        r - modulus
    } else {
        r
    }
}

fn operand_value(
    op: &Operand,
    locals: &HashMap<&str, Value>,
    reductions: &HashMap<String, f64>,
    ty: ScalarType,
) -> Value {
    match op {
        Operand::Local(n) => locals.get(n.as_str()).copied().unwrap_or(Value::Int(0)),
        Operand::Global(n) => {
            let raw = reductions.get(n.as_str()).copied().unwrap_or(0.0);
            to_value(raw, ty)
        }
        Operand::Imm(v) => Value::Int(i128::from(*v)),
        Operand::ImmF(v) => Value::Float(*v),
    }
}

fn apply(op: Opcode, ty: ScalarType, args: &[Value]) -> Value {
    if ty.is_float() {
        let a = args[0].as_f64();
        let b = args.get(1).map(|v| v.as_f64()).unwrap_or(0.0);
        let c = args.get(2).map(|v| v.as_f64()).unwrap_or(0.0);
        let r = match op {
            Opcode::Add => a + b,
            Opcode::Sub => a - b,
            Opcode::Mul => a * b,
            Opcode::Div => a / b,
            Opcode::Rem => a % b,
            Opcode::Min => a.min(b),
            Opcode::Max => a.max(b),
            Opcode::Abs => a.abs(),
            Opcode::Neg => -a,
            Opcode::Sqrt => a.sqrt(),
            Opcode::Select => {
                if a != 0.0 {
                    b
                } else {
                    c
                }
            }
            Opcode::CmpEq => f64::from(a == b),
            Opcode::CmpNe => f64::from(a != b),
            Opcode::CmpLt => f64::from(a < b),
            Opcode::CmpLe => f64::from(a <= b),
            Opcode::CmpGt => f64::from(a > b),
            Opcode::CmpGe => f64::from(a >= b),
            // Bit ops on float lanes are moves of the first operand.
            Opcode::And | Opcode::Or | Opcode::Xor | Opcode::Not | Opcode::Shl | Opcode::Shr => a,
        };
        return Value::Float(r);
    }
    let a = mask(args[0].as_int(), ty);
    let b = args.get(1).map(|v| mask(v.as_int(), ty)).unwrap_or(0);
    let c = args.get(2).map(|v| mask(v.as_int(), ty)).unwrap_or(0);
    let r: i128 = match op {
        Opcode::Add => a + b,
        Opcode::Sub => a - b,
        Opcode::Mul => a * b,
        Opcode::Div => {
            if b == 0 {
                // Hardware dividers saturate on divide-by-zero.
                (1i128 << ty.bits().min(126)) - 1
            } else {
                a / b
            }
        }
        Opcode::Rem => {
            if b == 0 {
                0
            } else {
                a % b
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Not => !a,
        Opcode::Shl => a << (b.clamp(0, 127)),
        Opcode::Shr => a >> (b.clamp(0, 127)),
        Opcode::CmpEq => i128::from(a == b),
        Opcode::CmpNe => i128::from(a != b),
        Opcode::CmpLt => i128::from(a < b),
        Opcode::CmpLe => i128::from(a <= b),
        Opcode::CmpGt => i128::from(a > b),
        Opcode::CmpGe => i128::from(a >= b),
        Opcode::Select => {
            if a != 0 {
                b
            } else {
                c
            }
        }
        Opcode::Min => a.min(b),
        Opcode::Max => a.max(b),
        Opcode::Abs => a.abs(),
        Opcode::Neg => -a,
        Opcode::Sqrt => (a.max(0) as f64).sqrt() as i128,
    };
    Value::Int(mask(r, ty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{ModuleBuilder, ParKind};

    const T: ScalarType = ScalarType::UInt(18);

    fn double_module() -> IrModule {
        let mut b = ModuleBuilder::new("dbl");
        b.global_input("x", T, 16);
        b.global_output("y", T, 16);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let d = f.instr(Opcode::Mul, T, vec![x, f.imm(2)]);
            f.write_out("y", d);
        }
        b.main_calls("f0");
        b.ndrange(&[16]);
        b.finish().unwrap()
    }

    #[test]
    fn doubles_every_element() {
        let m = double_module();
        let mut inp = ExecInputs::default();
        inp.set("x", (0..16).map(f64::from).collect());
        let out = execute_module(&m, &inp, 16).unwrap();
        let y = &out.arrays["y"];
        for i in 0..16 {
            assert_eq!(y[i], (2 * i) as f64);
        }
    }

    #[test]
    fn integer_wraparound_at_width() {
        let m = double_module();
        let mut inp = ExecInputs::default();
        // 2^17 doubles to 2^18 ≡ 0 (mod 2^18).
        inp.set("x", vec![131_072.0; 16]);
        let out = execute_module(&m, &inp, 16).unwrap();
        assert_eq!(out.arrays["y"][0], 0.0);
    }

    #[test]
    fn offsets_read_neighbours_and_clamp() {
        let mut b = ModuleBuilder::new("st");
        b.global_input("p", T, 8);
        b.global_output("q", T, 8);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 1);
            let c = f.offset("p", T, -1);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[8]);
        let m = b.finish().unwrap();
        let mut inp = ExecInputs::default();
        inp.set("p", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0]);
        let out = execute_module(&m, &inp, 8).unwrap();
        let q = &out.arrays["q"];
        assert_eq!(q[0], 20.0, "left edge: 0 (clamped) + 20");
        assert_eq!(q[3], 30.0 + 50.0);
        assert_eq!(q[7], 70.0, "right edge: 70 + 0 (clamped)");
    }

    #[test]
    fn reductions_accumulate_over_stream() {
        let mut b = ModuleBuilder::new("red");
        b.global_input("x", T, 8);
        b.global_output("y", T, 8);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            f.reduce("acc", Opcode::Add, T, x.clone());
            f.write_out("y", x);
        }
        b.main_calls("f0");
        b.ndrange(&[8]);
        let m = b.finish().unwrap();
        let mut inp = ExecInputs::default();
        inp.set("x", (1..=8).map(f64::from).collect());
        let out = execute_module(&m, &inp, 8).unwrap();
        assert_eq!(out.reductions["acc"], 36.0);
    }

    #[test]
    fn signed_semantics() {
        let st = ScalarType::Int(8);
        let mut b = ModuleBuilder::new("sg");
        b.global_input("x", st, 4);
        b.global_output("y", st, 4);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", st);
            f.output("y", st);
            let x = f.arg("x");
            let d = f.instr(Opcode::Sub, st, vec![f.imm(0), x]);
            f.write_out("y", d);
        }
        b.main_calls("f0");
        b.ndrange(&[4]);
        let m = b.finish().unwrap();
        let mut inp = ExecInputs::default();
        inp.set("x", vec![5.0, -7.0, 127.0, -128.0]);
        let out = execute_module(&m, &inp, 4).unwrap();
        let y = &out.arrays["y"];
        assert_eq!(y[0], -5.0);
        assert_eq!(y[1], 7.0);
        assert_eq!(y[2], -127.0);
        assert_eq!(y[3], -128.0, "−(−128) wraps to −128 in 8 bits");
    }

    #[test]
    fn float_pipeline() {
        let ft = ScalarType::Float(32);
        let mut b = ModuleBuilder::new("fp");
        b.global_input("x", ft, 4);
        b.global_output("y", ft, 4);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", ft);
            f.output("y", ft);
            let x = f.arg("x");
            let h = f.instr(Opcode::Mul, ft, vec![x.clone(), f.imm_f(0.5)]);
            let s = f.instr(Opcode::Sqrt, ft, vec![h]);
            f.write_out("y", s);
        }
        b.main_calls("f0");
        b.ndrange(&[4]);
        let m = b.finish().unwrap();
        let mut inp = ExecInputs::default();
        inp.set("x", vec![2.0, 8.0, 18.0, 32.0]);
        let out = execute_module(&m, &inp, 4).unwrap();
        let y = &out.arrays["y"];
        assert_eq!(y[0], 1.0);
        assert_eq!(y[1], 2.0);
        assert_eq!(y[2], 3.0);
        assert_eq!(y[3], 4.0);
    }

    #[test]
    fn missing_input_is_reported() {
        let m = double_module();
        let inp = ExecInputs::default();
        let e = execute_module(&m, &inp, 4).unwrap_err();
        assert_eq!(e, TybecError::from(IrError::Unknown { kind: "input array", name: "x".into() }));
        assert_eq!(e.category, tytra_ir::ErrorCategory::Config);
    }
}
