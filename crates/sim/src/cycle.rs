//! Cycle-level simulation of one kernel instance.
//!
//! The simulator advances device time in refresh-bounded chunks,
//! tracking offset-buffer priming, pipeline fill, the stream FIFO fed by
//! the mechanistic DRAM model ([`crate::memory::DramModel`]), stalls when
//! the datapath outruns the link, discrete refresh windows, and drain.
//! Its cycle count is the "actual" CPKI of Table II; deviations from the
//! analytic estimate come from burst quantisation, refresh and drain —
//! the same effect classes that separate the paper's estimates from its
//! measurements.

use crate::memory::DramModel;
use tytra_cost::CostParams;
use tytra_device::TargetDevice;
use tytra_ir::{AccessPattern, IrModule, MemForm, TybecError};

/// DDR3 refresh cadence: tREFI ≈ 7.8 µs, tRFC ≈ 260 ns.
const T_REFI_S: f64 = 7.8e-6;
const T_RFC_S: f64 = 260.0e-9;

/// Breakdown of one simulated kernel instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleStats {
    /// Cycles priming offset buffers before the first work-item.
    pub prime_cycles: u64,
    /// Cycles filling the pipeline.
    pub fill_cycles: u64,
    /// Cycles streaming work-items (including memory stalls).
    pub stream_cycles: u64,
    /// Of which: cycles the datapath stalled waiting for the link.
    pub stall_cycles: u64,
    /// Cycles lost to DRAM refresh windows.
    pub refresh_cycles: u64,
    /// Cycles draining the pipeline after the last work-item entered.
    pub drain_cycles: u64,
    /// Total cycles per kernel instance ("actual" CPKI).
    pub total: u64,
    /// Achieved effective DRAM bandwidth over the instance, bytes/s.
    pub achieved_bytes_per_s: f64,
}

/// Simulate one kernel instance of a validated module at `freq_mhz`.
pub fn simulate_instance(
    m: &IrModule,
    dev: &TargetDevice,
    freq_mhz: f64,
) -> Result<CycleStats, TybecError> {
    let (p, _tree) = CostParams::extract(m, dev)?;
    simulate_with_params(m, dev, &p, freq_mhz)
}

/// Simulate with pre-extracted parameters (the DSE engine reuses them).
pub fn simulate_with_params(
    m: &IrModule,
    dev: &TargetDevice,
    p: &CostParams,
    freq_mhz: f64,
) -> Result<CycleStats, TybecError> {
    if !(freq_mhz.is_finite() && freq_mhz > 0.0) {
        return Err(TybecError::sim(format!(
            "cannot simulate at a non-positive or non-finite clock ({freq_mhz} MHz)"
        )));
    }
    let f_hz = freq_mhz * 1e6;
    let dram = DramModel::streaming(dev.dram_link.peak_bytes_per_s);

    // Mechanistic steady per-stream rates (refresh handled discretely in
    // the loop, so exclude the model's refresh derating here). Streams
    // are co-required: the slowest per-element stream gates the item
    // rate (see tytra-cost's bandwidth module).
    let mut aggregate = 0.0f64;
    let mut min_item_rate = f64::INFINITY;
    let mut bytes_per_item_all_lanes = 0.0f64;
    for s in &m.streams {
        let Some(mem) = m.mem(&s.mem) else { continue };
        if !mem.space.is_offchip() {
            continue;
        }
        let eb = f64::from(mem.elem_ty.bytes());
        let rate = match s.pattern {
            AccessPattern::Contiguous => {
                dram.burst_bytes / (dram.burst_bytes / dram.peak_bytes_per_s + dram.burst_gap_s)
            }
            AccessPattern::Strided { .. } => {
                eb / (dram.request_overhead_s + eb / dram.peak_bytes_per_s)
            }
        };
        aggregate += rate;
        min_item_rate = min_item_rate.min(rate / eb);
        bytes_per_item_all_lanes += eb;
    }
    let lanes_f = p.knl.max(1) as f64;
    if min_item_rate.is_finite() {
        let gated = lanes_f * min_item_rate * (bytes_per_item_all_lanes / lanes_f);
        aggregate = aggregate.min(gated);
    }
    let aggregate = aggregate.min(dram.peak_bytes_per_s * 0.85);

    let offchip = !matches!(p.form, MemForm::C) && p.bytes_per_item > 0;
    let supply = if offchip { aggregate / f_hz } else { f64::INFINITY }; // bytes/cycle
    if supply.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        // Off-chip streams over a zero-bandwidth (or numerically
        // degenerate) link — NaN supply lands here too, hence the
        // `partial_cmp`: the streaming loop below would spin without
        // ever advancing a work-item. Refuse the configuration instead,
        // mirroring the `exercised_gbytes` clamp in tytra-cost.
        return Err(TybecError::sim(
            "off-chip streams with zero effective link bandwidth: instance would never complete",
        ));
    }
    // Bytes one "group item" moves (all lanes × vector slots consume and
    // produce together), and the byte rate the full-speed datapath
    // demands per cycle.
    let group_bytes = (p.knl.max(1) * u64::from(p.dv.max(1)) * p.bytes_per_item) as f64;
    let demand_rate = group_bytes / p.sched.ii.max(1.0);

    let refi_cycles = (T_REFI_S * f_hz).round().max(1.0) as u64;
    let rfc_cycles = (T_RFC_S * f_hz).ceil() as u64;

    // Phase 1: priming.
    let prime_cycles = if p.noff == 0 {
        0
    } else if offchip {
        // The priming elements arrive over the link; include the burst
        // quantisation of at least one burst per stream.
        let t = (p.noff_bytes as f64 / supply).ceil() as u64;
        t + rfc_cycles.min(t / refi_cycles.max(1) * rfc_cycles)
    } else {
        p.noff // one element per cycle from BRAM
    };

    // Phase 2: fill.
    let fill_cycles = u64::from(p.sched.kpd);

    // Phase 3: streaming, chunked on refresh boundaries.
    let items_total = p.items_per_lane().ceil().max(0.0);
    let mut items_done = 0.0f64;
    let mut cycles: u64 = 0;
    let mut stall_cycles: u64 = 0;
    let mut refresh_cycles: u64 = 0;
    let mut fifo = 0.0f64; // bytes buffered ahead of the datapath
    let fifo_cap = 4.0 * dram.burst_bytes * p.n_streams.max(1) as f64;
    // Phase offset of the refresh timer when streaming starts.
    let mut to_refresh = refi_cycles.saturating_sub(prime_cycles % refi_cycles.max(1)).max(1);

    let rate_per_cycle = p.sched.ii.max(1.0).recip(); // group items per cycle at full speed

    while items_done < items_total {
        // Next event: refresh or completion.
        let items_left = items_total - items_done;
        let compute_bound = !offchip || supply >= demand_rate;
        let chunk_by_items = if compute_bound {
            (items_left / rate_per_cycle).ceil() as u64
        } else {
            // Memory-bound: items trickle at the link's byte rate.
            let eff = (supply / group_bytes).max(1e-12);
            (items_left / eff).ceil() as u64
        };
        let chunk = chunk_by_items.clamp(1, to_refresh);

        if compute_bound {
            // Fabric-rate progress; fifo tops up to cap.
            let progressed = (chunk as f64 * rate_per_cycle).min(items_left);
            items_done += progressed;
            if offchip {
                fifo = (fifo + chunk as f64 * (supply - demand_rate)).clamp(0.0, fifo_cap);
            }
        } else {
            // Memory-bound: drain the fifo, then advance at link rate.
            let delivered = chunk as f64 * supply + fifo;
            let consumable_items = delivered / group_bytes;
            let progressed = consumable_items.min(items_left).min(chunk as f64 * rate_per_cycle);
            items_done += progressed;
            fifo = (delivered - progressed * group_bytes).clamp(0.0, fifo_cap);
            let ideal = chunk as f64 * rate_per_cycle;
            stall_cycles += ((ideal - progressed) * p.sched.ii).round().max(0.0) as u64;
        }
        cycles += chunk;
        to_refresh = to_refresh.saturating_sub(chunk);
        if to_refresh == 0 {
            if offchip {
                cycles += rfc_cycles;
                refresh_cycles += rfc_cycles;
            }
            to_refresh = refi_cycles;
        }
    }

    // Phase 4: drain.
    let drain_cycles = u64::from(p.sched.kpd);

    let stream_cycles = cycles;
    let total = prime_cycles + fill_cycles + stream_cycles + drain_cycles;
    let achieved = if total > 0 && offchip { p.total_bytes() / (total as f64 / f_hz) } else { 0.0 };

    Ok(CycleStats {
        prime_cycles,
        fill_cycles,
        stream_cycles,
        stall_cycles,
        refresh_cycles,
        drain_cycles,
        total,
        achieved_bytes_per_s: achieved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_cost::estimate;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn kernel(lanes: usize, n: u64, nwpt_heavy: bool, form: MemForm) -> IrModule {
        let mut b = ModuleBuilder::new(format!("k{lanes}_{nwpt_heavy}"));
        let mk_ports = |b: &mut ModuleBuilder, suffix: &str, len: u64| {
            b.global_input(&format!("p{suffix}"), T, len);
            if nwpt_heavy {
                for i in 0..8 {
                    b.global_input(&format!("w{i}{suffix}"), T, len);
                }
            }
            b.global_output(&format!("q{suffix}"), T, len);
        };
        if lanes > 1 {
            for l in 0..lanes {
                mk_ports(&mut b, &l.to_string(), n / lanes as u64);
            }
        } else {
            mk_ports(&mut b, "", n);
        }
        {
            let suffix = if lanes > 1 { "0" } else { "" };
            let _ = suffix;
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            if nwpt_heavy {
                for i in 0..8 {
                    f.input(format!("w{i}"), T);
                }
            }
            f.output("q", T);
            let a = f.offset("p", T, 30);
            let c = f.offset("p", T, -30);
            let mut s = f.instr(Opcode::Add, T, vec![a, c]);
            if nwpt_heavy {
                for i in 0..8 {
                    let w = f.arg(&format!("w{i}"));
                    s = f.instr(Opcode::Add, T, vec![s, w]);
                }
            }
            f.write_out("q", s);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[n]).nki(10).form(form);
        b.finish_unchecked()
    }

    #[test]
    fn zero_bandwidth_device_is_rejected_not_hung() {
        // An off-chip design on a zero-bandwidth link can never finish a
        // kernel instance; before the guard this spun the streaming loop
        // forever. It must come back as a Sim-category error instead.
        let m = kernel(1, 1 << 12, false, MemForm::B);
        let mut dev = stratix_v_gsd8();
        dev.dram_link.peak_bytes_per_s = 0.0;
        let e = simulate_instance(&m, &dev, 200.0).unwrap_err();
        assert_eq!(e.category, tytra_ir::ErrorCategory::Sim);
        assert!(e.message.contains("bandwidth"), "{e}");
    }

    #[test]
    fn degenerate_clock_is_rejected() {
        let m = kernel(1, 1 << 12, false, MemForm::B);
        let dev = stratix_v_gsd8();
        for f in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let e = simulate_instance(&m, &dev, f).unwrap_err();
            assert_eq!(e.category, tytra_ir::ErrorCategory::Sim, "freq {f}");
        }
    }

    #[test]
    fn zero_trip_count_instance_terminates() {
        // A degenerate NDRange of zero work-items streams nothing but
        // still pays prime/fill/drain; it must terminate, not loop.
        let m = kernel(1, 0, false, MemForm::B);
        let dev = stratix_v_gsd8();
        let s = simulate_instance(&m, &dev, 200.0).unwrap();
        assert_eq!(s.stall_cycles, 0);
        assert_eq!(s.total, s.prime_cycles + s.fill_cycles + s.stream_cycles + s.drain_cycles);
        assert!(s.achieved_bytes_per_s.is_finite());
    }

    #[test]
    fn compute_bound_cpki_close_to_estimate() {
        let m = kernel(1, 1 << 16, false, MemForm::B);
        let dev = stratix_v_gsd8();
        let est = estimate(&m, &dev).unwrap();
        let sim = simulate_instance(&m, &dev, est.clock.freq_mhz).unwrap();
        let err = (est.throughput.cpki - sim.total as f64) / sim.total as f64 * 100.0;
        assert!(
            err.abs() < 6.0,
            "CPKI error {err}% (est {} vs sim {})",
            est.throughput.cpki,
            sim.total
        );
        assert_ne!(est.throughput.cpki as u64, sim.total, "simulation adds drain/refresh detail");
    }

    #[test]
    fn phases_compose() {
        let m = kernel(1, 4096, false, MemForm::B);
        let dev = stratix_v_gsd8();
        let s = simulate_instance(&m, &dev, 200.0).unwrap();
        assert_eq!(s.total, s.prime_cycles + s.fill_cycles + s.stream_cycles + s.drain_cycles);
        assert!(s.prime_cycles > 0, "stencil must prime");
        assert!(s.fill_cycles > 0);
        assert_eq!(s.fill_cycles, s.drain_cycles);
    }

    #[test]
    fn memory_heavy_designs_stall() {
        let dev = stratix_v_gsd8();
        // 10 words/item × 8 lanes overwhelms the link.
        let m = kernel(8, 1 << 16, true, MemForm::B);
        let s = simulate_instance(&m, &dev, 250.0).unwrap();
        assert!(s.stall_cycles > 0, "expected link stalls: {s:?}");
        // A light design at the same geometry does not stall.
        let light = kernel(1, 1 << 16, false, MemForm::B);
        let sl = simulate_instance(&light, &dev, 250.0).unwrap();
        assert_eq!(sl.stall_cycles, 0, "{sl:?}");
    }

    #[test]
    fn form_c_never_touches_dram() {
        let dev = stratix_v_gsd8();
        let m = kernel(1, 1 << 14, false, MemForm::C);
        let s = simulate_instance(&m, &dev, 200.0).unwrap();
        assert_eq!(s.stall_cycles, 0);
        assert_eq!(s.refresh_cycles, 0);
        assert_eq!(s.achieved_bytes_per_s, 0.0);
    }

    #[test]
    fn lanes_divide_stream_cycles() {
        let dev = stratix_v_gsd8();
        let s1 = simulate_instance(&kernel(1, 1 << 18, false, MemForm::B), &dev, 200.0).unwrap();
        let s4 = simulate_instance(&kernel(4, 1 << 18, false, MemForm::B), &dev, 200.0).unwrap();
        let ratio = s1.stream_cycles as f64 / s4.stream_cycles as f64;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn refresh_costs_cycles_on_offchip_runs() {
        let dev = stratix_v_gsd8();
        let s = simulate_instance(&kernel(1, 1 << 20, false, MemForm::B), &dev, 200.0).unwrap();
        assert!(s.refresh_cycles > 0);
        assert!(s.refresh_cycles < s.total / 20, "refresh is a small tax");
    }

    #[test]
    fn simulation_is_deterministic() {
        let dev = stratix_v_gsd8();
        let m = kernel(2, 1 << 16, false, MemForm::B);
        let a = simulate_instance(&m, &dev, 200.0).unwrap();
        let b = simulate_instance(&m, &dev, 200.0).unwrap();
        assert_eq!(a, b);
    }
}
