//! Elaboration of a TyTra-IR design variant into a netlist of physical
//! components — the structure the synthesis emulator prices and the
//! Verilog emitter mirrors (paper Fig 11, "Generate Core(s)" onwards).

use tytra_device::TargetDevice;
use tytra_ir::{
    config_tree, ConfigNode, Dfg, IrError, IrModule, Opcode, ParKind, ScalarType, TybecError,
};

/// What a component physically is.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentKind {
    /// A pipelined functional unit implementing one SSA instruction.
    FunctionalUnit {
        /// Operation implemented.
        op: Opcode,
        /// Element type.
        ty: ScalarType,
        /// A constant operand, if the instruction has one (synthesis
        /// strength-reduces around it).
        const_operand: Option<i64>,
        /// Pipeline latency in cycles.
        latency: u32,
    },
    /// The pass-through delay lines of one pipe body (aggregate bits).
    DelayLine {
        /// Total shift-register bits.
        bits: u64,
    },
    /// An offset FIFO over a stream: `window` elements of `width` bits.
    OffsetBuffer {
        /// Elements held (synthesis allocates the bare window; the cost
        /// model books one extra in-flight element — see DESIGN.md §6).
        window: u64,
        /// Element width in bits.
        width: u16,
    },
    /// Per-stream address/burst controller.
    StreamController,
    /// Lane-distribution glue in a `par` composition.
    LaneGlue,
    /// Sequencer FSM + instruction store for a `seq` PE.
    Sequencer {
        /// Instructions stored.
        n_instrs: u64,
    },
    /// Output register layer of an inlined `comb` block.
    CombOutputReg {
        /// Register width.
        width: u16,
    },
    /// An on-chip `local` memory object.
    LocalMemory {
        /// Bits stored.
        bits: u64,
    },
}

/// One netlist component with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Which function it elaborated from.
    pub function: String,
    /// Physical kind.
    pub kind: ComponentKind,
    /// Lane index (0 for single-lane designs; components shared across
    /// lanes use 0).
    pub lane: u32,
}

/// The elaborated design.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// Design name.
    pub design: String,
    /// All components.
    pub components: Vec<Component>,
    /// Lanes elaborated.
    pub lanes: u64,
}

impl Netlist {
    /// Elaborate a validated module against a target (the target supplies
    /// latencies for FU instantiation).
    pub fn elaborate(m: &IrModule, dev: &TargetDevice) -> Result<Netlist, TybecError> {
        let tree = config_tree::extract(m)?;
        let mut components = Vec::new();
        let mut lane_counter = 0u32;
        elaborate_node(m, dev, &tree.root, &mut lane_counter, 0, &mut components)?;

        // Module-level stream controllers (one per off-chip stream) and
        // local memories.
        for p in &m.ports {
            let offchip = m
                .stream(&p.stream)
                .and_then(|s| m.mem(&s.mem))
                .map(|mem| mem.space.is_offchip())
                .unwrap_or(true);
            if offchip {
                components.push(Component {
                    function: "main".into(),
                    kind: ComponentKind::StreamController,
                    lane: 0,
                });
            }
        }
        for mem in &m.mems {
            if !mem.space.is_offchip() {
                components.push(Component {
                    function: "main".into(),
                    kind: ComponentKind::LocalMemory { bits: mem.bits() },
                    lane: 0,
                });
            }
        }
        Ok(Netlist { design: m.name.clone(), components, lanes: tree.lanes })
    }

    /// Count components of a given predicate.
    pub fn count(&self, pred: impl Fn(&ComponentKind) -> bool) -> usize {
        self.components.iter().filter(|c| pred(&c.kind)).count()
    }
}

fn elaborate_node(
    m: &IrModule,
    dev: &TargetDevice,
    node: &ConfigNode,
    lane_counter: &mut u32,
    lane: u32,
    out: &mut Vec<Component>,
) -> Result<(), IrError> {
    let f = m
        .function(&node.function)
        .ok_or_else(|| IrError::Unknown { kind: "function", name: node.function.clone() })?;
    let dv = u64::from(m.meta.vect.max(1));
    match node.kind {
        ParKind::Pipe => {
            let dfg = Dfg::build(f, &dev.ops);
            for _slot in 0..dv {
                for n in &dfg.nodes {
                    let i = &n.instr;
                    let const_operand = i.operands.iter().find_map(|o| match o {
                        tytra_ir::Operand::Imm(v) => Some(*v),
                        _ => None,
                    });
                    out.push(Component {
                        function: f.name.clone(),
                        kind: ComponentKind::FunctionalUnit {
                            op: i.op,
                            ty: i.ty,
                            const_operand,
                            latency: dev.ops.latency(i.op, i.ty),
                        },
                        lane,
                    });
                }
                if dfg.delay_line_bits > 0 {
                    out.push(Component {
                        function: f.name.clone(),
                        kind: ComponentKind::DelayLine { bits: dfg.delay_line_bits },
                        lane,
                    });
                }
                for src in f.offset_sources() {
                    let window = f.offset_window(src);
                    let width =
                        f.offsets().find(|o| o.src == src).map(|o| o.ty.bits()).unwrap_or(18);
                    out.push(Component {
                        function: f.name.clone(),
                        kind: ComponentKind::OffsetBuffer { window, width },
                        lane,
                    });
                }
            }
            for c in &node.children {
                elaborate_node(m, dev, c, lane_counter, lane, out)?;
            }
        }
        ParKind::Comb => {
            let mut out_width = 0u16;
            for i in f.instrs() {
                let const_operand = i.operands.iter().find_map(|o| match o {
                    tytra_ir::Operand::Imm(v) => Some(*v),
                    _ => None,
                });
                out.push(Component {
                    function: f.name.clone(),
                    kind: ComponentKind::FunctionalUnit {
                        op: i.op,
                        ty: i.ty,
                        const_operand,
                        latency: 0, // combinatorial
                    },
                    lane,
                });
                out_width = out_width.max(i.ty.bits());
            }
            out.push(Component {
                function: f.name.clone(),
                kind: ComponentKind::CombOutputReg { width: out_width },
                lane,
            });
        }
        ParKind::Seq => {
            out.push(Component {
                function: f.name.clone(),
                kind: ComponentKind::Sequencer { n_instrs: f.n_instructions() },
                lane,
            });
            // Shared functional units, one per opcode family.
            let mut families: Vec<(Opcode, ScalarType)> = Vec::new();
            for i in f.instrs() {
                match families.iter_mut().find(|(op, _)| *op == i.op) {
                    Some((_, ty)) => {
                        if i.ty.bits() > ty.bits() {
                            *ty = i.ty;
                        }
                    }
                    None => families.push((i.op, i.ty)),
                }
            }
            for (op, ty) in families {
                out.push(Component {
                    function: f.name.clone(),
                    kind: ComponentKind::FunctionalUnit {
                        op,
                        ty,
                        const_operand: None,
                        latency: dev.ops.latency(op, ty),
                    },
                    lane,
                });
            }
            for c in &node.children {
                elaborate_node(m, dev, c, lane_counter, lane, out)?;
            }
        }
        ParKind::Par => {
            for c in &node.children {
                *lane_counter += 1;
                let this_lane = *lane_counter;
                out.push(Component {
                    function: f.name.clone(),
                    kind: ComponentKind::LaneGlue,
                    lane: this_lane,
                });
                elaborate_node(m, dev, c, lane_counter, this_lane, out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{ModuleBuilder, ParKind};

    const T: ScalarType = ScalarType::UInt(18);

    fn stencil(lanes: usize) -> IrModule {
        let mut b = ModuleBuilder::new("nl");
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, 1024);
                b.global_output(&format!("q{l}"), T, 1024);
            }
        } else {
            b.global_input("p", T, 1024);
            b.global_output("q", T, 1024);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 32);
            let c = f.offset("p", T, -32);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            let w = f.instr(Opcode::Mul, T, vec![s, f.imm(5)]);
            f.write_out("q", w);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[1024]);
        b.finish().unwrap()
    }

    #[test]
    fn single_lane_component_census() {
        let m = stencil(1);
        let nl = Netlist::elaborate(&m, &stratix_v_gsd8()).unwrap();
        assert_eq!(nl.lanes, 1);
        assert_eq!(
            nl.count(|k| matches!(k, ComponentKind::FunctionalUnit { .. })),
            3,
            "add, mul, or"
        );
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::OffsetBuffer { .. })), 1);
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::StreamController)), 2);
        // The constant multiply is recorded for strength reduction.
        let has_const_mul = nl.components.iter().any(|c| {
            matches!(
                c.kind,
                ComponentKind::FunctionalUnit { op: Opcode::Mul, const_operand: Some(5), .. }
            )
        });
        assert!(has_const_mul);
    }

    #[test]
    fn lanes_replicate_and_are_labelled() {
        let m = stencil(4);
        let nl = Netlist::elaborate(&m, &stratix_v_gsd8()).unwrap();
        assert_eq!(nl.lanes, 4);
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::FunctionalUnit { .. })), 12);
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::OffsetBuffer { .. })), 4);
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::LaneGlue)), 4);
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::StreamController)), 8);
        let max_lane = nl.components.iter().map(|c| c.lane).max().unwrap();
        assert_eq!(max_lane, 4);
    }

    #[test]
    fn offset_buffer_window_is_bare_window() {
        // Synthesis allocates max_pos − min_neg = 64 elements (the cost
        // model books 65 — the deliberate Table II discrepancy).
        let m = stencil(1);
        let nl = Netlist::elaborate(&m, &stratix_v_gsd8()).unwrap();
        let window = nl
            .components
            .iter()
            .find_map(|c| match c.kind {
                ComponentKind::OffsetBuffer { window, .. } => Some(window),
                _ => None,
            })
            .unwrap();
        assert_eq!(window, 64);
    }

    #[test]
    fn vectorization_replicates_fus() {
        let mut m = stencil(1);
        m.meta.vect = 2;
        let nl = Netlist::elaborate(&m, &stratix_v_gsd8()).unwrap();
        assert_eq!(nl.count(|k| matches!(k, ComponentKind::FunctionalUnit { .. })), 6);
    }
}
