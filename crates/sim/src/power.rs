//! Power-meter emulation (paper §VII, Fig 18).
//!
//! The paper notes the increase in node power over idle for CPU-only and
//! CPU+FPGA solutions on a physical power meter. We reconstruct that
//! reading from the device power model, the synthesized resources, the
//! achieved clock and the exercised link bandwidth.

use crate::cycle::CycleStats;
use crate::synth::SynthesisResult;
use tytra_device::TargetDevice;

/// One power-meter observation for an FPGA run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReading {
    /// Watts above idle attributed to the accelerator.
    pub delta_watts: f64,
    /// Joules above idle for the whole run.
    pub delta_energy_j: f64,
}

/// Meter a run: `runtime_s` of execution with the design's resources at
/// the achieved clock, moving data at the simulator's achieved rate.
pub fn meter(
    dev: &TargetDevice,
    synth: &SynthesisResult,
    cycles: &CycleStats,
    runtime_s: f64,
) -> PowerReading {
    // Clamp degenerate link rates (NaN/inf from a zero-time run,
    // negative from a miscalibrated model) so the meter never propagates
    // non-finite power — same policy as tytra-cost's `exercised_gbytes`.
    let io_gbytes = cycles.achieved_bytes_per_s / 1e9;
    let io_gbytes = if io_gbytes.is_finite() && io_gbytes > 0.0 { io_gbytes } else { 0.0 };
    let runtime_s = if runtime_s.is_finite() && runtime_s > 0.0 { runtime_s } else { 0.0 };
    let w = dev.power.delta_watts(&synth.resources, synth.fmax_mhz, io_gbytes);
    PowerReading { delta_watts: w, delta_energy_j: w * runtime_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{stratix_v_gsd8, ResourceVector};

    fn fake_synth(aluts: u64) -> SynthesisResult {
        SynthesisResult {
            resources: ResourceVector::new(aluts, aluts * 2, 1 << 16, 8),
            fmax_mhz: 200.0,
            dsps_saved: 0,
            regs_packed: 0,
        }
    }

    fn fake_cycles(bw: f64) -> CycleStats {
        CycleStats {
            prime_cycles: 0,
            fill_cycles: 10,
            stream_cycles: 1000,
            stall_cycles: 0,
            refresh_cycles: 0,
            drain_cycles: 10,
            total: 1020,
            achieved_bytes_per_s: bw,
        }
    }

    #[test]
    fn bigger_designs_draw_more() {
        let dev = stratix_v_gsd8();
        let small = meter(&dev, &fake_synth(1_000), &fake_cycles(0.0), 1.0);
        let large = meter(&dev, &fake_synth(100_000), &fake_cycles(0.0), 1.0);
        assert!(large.delta_watts > small.delta_watts);
    }

    #[test]
    fn energy_scales_with_runtime() {
        let dev = stratix_v_gsd8();
        let a = meter(&dev, &fake_synth(10_000), &fake_cycles(1e9), 1.0);
        let b = meter(&dev, &fake_synth(10_000), &fake_cycles(1e9), 2.0);
        assert!((b.delta_energy_j - 2.0 * a.delta_energy_j).abs() < 1e-9);
        assert_eq!(a.delta_watts, b.delta_watts);
    }

    #[test]
    fn non_finite_link_rate_is_clamped() {
        // A degenerate simulation (zero-time run, miscalibrated model)
        // must not propagate NaN/inf into the meter reading.
        let dev = stratix_v_gsd8();
        for bw in [f64::NAN, f64::INFINITY, -3.0e9] {
            let r = meter(&dev, &fake_synth(10_000), &fake_cycles(bw), 1.0);
            assert!(r.delta_watts.is_finite(), "bw {bw}");
            assert!(r.delta_energy_j.is_finite(), "bw {bw}");
        }
        let r = meter(&dev, &fake_synth(10_000), &fake_cycles(1e9), f64::NAN);
        assert!(r.delta_energy_j.is_finite());
        assert_eq!(r.delta_energy_j, 0.0);
    }

    #[test]
    fn io_traffic_costs_power() {
        let dev = stratix_v_gsd8();
        let idle_link = meter(&dev, &fake_synth(10_000), &fake_cycles(0.0), 1.0);
        let busy_link = meter(&dev, &fake_synth(10_000), &fake_cycles(10e9), 1.0);
        assert!(busy_link.delta_watts > idle_link.delta_watts + 5.0);
    }
}
