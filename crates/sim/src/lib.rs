//! # tytra-sim — the virtual FPGA substrate
//!
//! This crate stands in for the hardware and vendor toolchain the paper's
//! "actual" numbers came from (Quartus synthesis of the generated HDL on a
//! Stratix-V Maia DFE, and on-board execution). See DESIGN.md §2 for the
//! substitution argument. It provides:
//!
//! * [`netlist`] — elaboration of a TyTra-IR design into a netlist of
//!   physical components (functional units, offset FIFOs, delay lines,
//!   stream controllers, sequencer FSMs);
//! * [`synth`] — the **synthesis emulator**: a component-level resource
//!   and timing model, deliberately more detailed than — and parameterised
//!   independently from — the cost model's fitted curves (strength
//!   reduction of constant multiplies, DSP pairing, shift-register
//!   packing of delay lines, control-set overhead, seeded place-and-route
//!   variance). Its output is the "actual" column of Table II;
//! * [`cycle`] — the **cycle-level simulator**: pipeline fill/drain,
//!   offset priming, DRAM burst arbitration and refresh — the "actual"
//!   cycles-per-kernel-instance and runtime;
//! * [`memory`] — a mechanistic DRAM/host-DMA model that *re-measures*
//!   the Fig 10 sustained-bandwidth curve from first principles;
//! * [`exec`] — a functional interpreter executing the datapath over real
//!   data, validating that a design variant computes what the reference
//!   kernel computes;
//! * [`power`] — the power-meter emulation behind the Fig 18 energy
//!   comparison;
//! * [`host`] — whole-application orchestration (Forms A/B/C), producing
//!   a [`RunResult`] comparable against [`tytra_cost::CostReport`].

pub mod cycle;
pub mod exec;
pub mod host;
pub mod memory;
pub mod netlist;
pub mod power;
pub mod rng;
pub mod synth;

pub use cycle::{simulate_instance, CycleStats};
pub use exec::{execute_application, execute_module, ExecInputs, ExecOutputs, Value};
pub use host::{run_application, RunResult};
pub use memory::DramModel;
pub use netlist::{Component, ComponentKind, Netlist};
pub use synth::{synthesize, SynthesisResult};
