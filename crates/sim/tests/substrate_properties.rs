//! Properties of the virtual substrate: the simulator's cycle count is
//! bounded below by the work, the toolchain's jitter is bounded, and
//! estimate-vs-actual stays in a sane band over randomised designs.

use proptest::prelude::*;
use tytra_cost::estimate;
use tytra_device::stratix_v_gsd8;
use tytra_ir::{IrModule, MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};
use tytra_sim::{run_application, simulate_instance, synthesize};

fn module(width: u16, n_ops: usize, lanes: u64, ngs: u64, window: i64) -> IrModule {
    let t = ScalarType::UInt(width);
    let mut b = ModuleBuilder::new(format!("s_w{width}_n{n_ops}_l{lanes}_o{window}"));
    if lanes > 1 {
        for l in 0..lanes {
            b.global_input(&format!("x{l}"), t, ngs / lanes);
            b.global_output(&format!("y{l}"), t, ngs / lanes);
        }
    } else {
        b.global_input("x", t, ngs);
        b.global_output("y", t, ngs);
    }
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let mut cur = if window > 0 { f.offset("x", t, window) } else { f.arg("x") };
        for k in 0..n_ops {
            let op = [Opcode::Add, Opcode::Mul, Opcode::Xor][k % 3];
            let x = f.arg("x");
            cur = f.instr(op, t, vec![cur, x]);
        }
        f.write_out("y", cur);
    }
    if lanes > 1 {
        let f = b.function("f1", ParKind::Par);
        for _ in 0..lanes {
            f.call("f0", vec![], ParKind::Pipe);
        }
        b.main_calls("f1");
    } else {
        b.main_calls("f0");
    }
    b.ndrange(&[ngs]).nki(3).form(MemForm::B);
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn simulated_cycles_bounded_below_by_the_work(
        n_ops in 1usize..6,
        lanes_pow in 0u32..3,
        npow in 10u32..16,
        window in 0i64..64,
    ) {
        let lanes = 1u64 << lanes_pow;
        let m = module(18, n_ops, lanes, 1 << npow, window);
        let dev = stratix_v_gsd8();
        let s = simulate_instance(&m, &dev, 200.0).unwrap();
        // At best one item per lane per cycle (priming can overlap the
        // link and go faster than one element per cycle).
        let floor = (1u64 << npow) / lanes;
        prop_assert!(s.total >= floor, "{} < {floor}", s.total);
        // And within 2× of the floor when nothing stalls hard.
        if s.stall_cycles == 0 {
            prop_assert!(s.total < floor * 2 + 4096, "{} vs {floor}", s.total);
        }
    }

    #[test]
    fn synthesis_jitter_is_bounded(
        n_ops in 1usize..8,
        width in 8u16..40,
    ) {
        // Window 48 keeps the offset buffer decisively above the
        // register-spill threshold on both the estimator's and the
        // toolchain's accounting (a straddle at the boundary is a real
        // but uninteresting divergence).
        let m = module(width, n_ops, 1, 4096, 48);
        let dev = stratix_v_gsd8();
        let est = estimate(&m, &dev).unwrap();
        let act = synthesize(&m, &dev).unwrap();
        let e = est.resources.total.pct_error_vs(&act.resources);
        prop_assert!(e[0].abs() < 40.0, "ALUT {e:?}");
        prop_assert!(e[1].abs() < 40.0, "REG {e:?}");
        // BRAM differs by exactly the one in-flight element: ≤ 1/window.
        prop_assert!(e[2].abs() <= 100.0 / 48.0 + 0.01, "BRAM {e:?}");
        prop_assert!(act.fmax_mhz > 50.0 && act.fmax_mhz < dev.fmax_mhz * 1.05);
    }

    #[test]
    fn cpki_estimate_tracks_simulation(
        n_ops in 1usize..6,
        npow in 12u32..17,
    ) {
        let m = module(18, n_ops, 1, 1 << npow, 16);
        let dev = stratix_v_gsd8();
        let est = estimate(&m, &dev).unwrap();
        let run = run_application(&m, &dev).unwrap();
        let err = (est.throughput.cpki - run.cpki() as f64).abs() / run.cpki() as f64;
        prop_assert!(err < 0.10, "CPKI err {err} (est {} vs {})", est.throughput.cpki, run.cpki());
    }

    #[test]
    fn determinism_under_repetition(
        n_ops in 1usize..5,
        width in 8u16..33,
    ) {
        let m = module(width, n_ops, 2, 1 << 12, 4);
        let dev = stratix_v_gsd8();
        let a = run_application(&m, &dev).unwrap();
        let b = run_application(&m, &dev).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn more_lanes_never_slow_the_device_side(
        n_ops in 1usize..5,
        npow in 12u32..16,
    ) {
        let dev = stratix_v_gsd8();
        let m1 = module(18, n_ops, 1, 1 << npow, 0);
        let m4 = module(18, n_ops, 4, 1 << npow, 0);
        let s1 = simulate_instance(&m1, &dev, 200.0).unwrap();
        let s4 = simulate_instance(&m4, &dev, 200.0).unwrap();
        prop_assert!(s4.total <= s1.total, "{} > {}", s4.total, s1.total);
    }
}
