//! `tybec serve` — the cost model as a long-running service.
//!
//! Every offline `tybec` invocation pays cold-start parsing, session
//! warm-up, and process spawn before the first estimate. This crate
//! keeps all of that alive across requests: a zero-dependency JSONL
//! daemon (TCP or Unix socket) whose workers hold warm
//! [`EstimatorSession`](tytra_cost::EstimatorSession)s, fronted by a
//! micro-batching dispatcher that coalesces concurrent same-class
//! requests, and a cross-request response cache bounded by the same
//! CLOCK policy ([`tytra_trace::bounded`]) as the session memos.
//!
//! Guarantees, pinned by the loopback suite and the `serve-equivalence`
//! fuzz oracle:
//!
//! - **Byte-identity**: an `estimate` payload is byte-identical to
//!   `tybec cost` stdout for the same design and target; a `dse`
//!   payload to the offline leaderboard — whatever worker, batch, or
//!   cache state produced it, in any concurrency interleaving.
//! - **Fault isolation**: a panicking request answers with a
//!   categorized internal error plus a flight-recorder dump; the daemon
//!   and its other requests are unaffected.
//! - **Bounded memory**: the response cache and every session memo
//!   table evict under capacity pressure, with `evictions` counters in
//!   the live registry.
//!
//! Protocol spec, error payloads, and deployment notes: `docs/serve.md`.

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{prepare, target_device, Engine, Shared, Work};
pub use protocol::{
    parse_request, render_err, render_ok, MetricsFormat, Request, RequestError, RequestKind,
};
pub use server::{serve_tcp, ServeConfig, ServerHandle};

#[cfg(unix)]
pub use server::serve_unix;
