//! `serve_smoke` — the CI load generator and gatekeeper for
//! `tybec serve` (see `.github/workflows/ci.yml` and `docs/serve.md`).
//!
//! It runs three measured passes against an in-process daemon:
//!
//! 1. **Mixed replay**: C client threads replay a mixed workload of
//!    estimate/bound/analyze requests over K distinct designs — the
//!    throughput number and the cache-hit-rate gate come from here.
//! 2. **Warm probe**: one client sends single-design estimates
//!    one-at-a-time and records exact client-side latencies — the
//!    p50/p99 gates come from here.
//! 3. **Spawn baseline**: the same estimate request served the
//!    pre-daemon way, one `tybec cost` process per request — the
//!    speedup gate compares its requests/sec against pass 1.
//!
//! Results land in `BENCH_serve.json`; any failed gate exits nonzero.
//!
//! ```text
//! serve_smoke [--requests N] [--clients C] [--warm-probes N]
//!             [--baseline-requests N] [--tybec <path>] [--out <file>]
//! ```
//!
//! The `tybec` binary is found via `--tybec`, then `$TYBEC_BIN`, then
//! next to this executable, then `target/release/tybec`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;
use tytra_kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra_serve::{serve_tcp, ServeConfig};
use tytra_trace::json::{self, Json};
use tytra_transform::Variant;

/// Warm p50 ceiling from the issue brief: a warm single-design estimate
/// answers in under a millisecond.
const GATE_WARM_P50_MS: f64 = 1.0;
/// Tail ceiling for the same probe — generous, but catches a daemon
/// that stalls requests behind the dispatcher or a lock.
const GATE_WARM_P99_MS: f64 = 25.0;
/// Mixed replay must hit the cross-request cache more often than not.
const GATE_HIT_RATE: f64 = 0.5;
/// Served throughput over the spawn-per-request baseline.
const GATE_SPEEDUP: f64 = 10.0;

struct Args {
    requests: usize,
    clients: usize,
    warm_probes: usize,
    baseline_requests: usize,
    tybec: Option<PathBuf>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        requests: 2400,
        clients: 8,
        warm_probes: 200,
        baseline_requests: 20,
        tybec: None,
        out: PathBuf::from("BENCH_serve.json"),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| die(&format!("{name} expects a value"))).clone()
        };
        match a.as_str() {
            "--requests" => args.requests = parse_num(&value("--requests"), "--requests"),
            "--clients" => args.clients = parse_num(&value("--clients"), "--clients").max(1),
            "--warm-probes" => {
                args.warm_probes = parse_num(&value("--warm-probes"), "--warm-probes").max(1)
            }
            "--baseline-requests" => {
                args.baseline_requests =
                    parse_num(&value("--baseline-requests"), "--baseline-requests").max(1)
            }
            "--tybec" => args.tybec = Some(PathBuf::from(value("--tybec"))),
            "--out" => args.out = PathBuf::from(value("--out")),
            other => die(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn parse_num(v: &str, name: &str) -> usize {
    v.parse().unwrap_or_else(|e| die(&format!("bad {name} `{v}`: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("serve_smoke: {msg}");
    std::process::exit(2);
}

/// The K distinct designs the mixed workload cycles through.
fn designs() -> Vec<String> {
    let kernels: Vec<(Box<dyn EvalKernel>, &[u64])> = vec![
        (Box::new(Sor::default()), &[1, 2, 4][..]),
        (Box::new(Hotspot::default()), &[1, 2][..]),
        (Box::new(LavaMd::default()), &[1][..]),
    ];
    let mut out = Vec::new();
    for (k, lanes) in kernels {
        for &l in lanes {
            let v = Variant { lanes: l, ..Variant::baseline() };
            if let Ok(m) = k.lower_variant(&v) {
                out.push(tytra_ir::print(&m));
            }
        }
    }
    out
}

fn request(id: u64, kind: &str, src: &str) -> String {
    format!(
        "{{\"id\":{id},\"kind\":\"{kind}\",\"design\":\"{}\",\"target\":\"eval-small\"}}\n",
        json::escape(src)
    )
}

/// Pipeline `lines` over one connection; die on any `ok:false`.
fn drive(addr: SocketAddr, lines: &[String]) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("send");
    }
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    for _ in 0..lines.len() {
        resp.clear();
        reader.read_line(&mut resp).expect("response");
        let v = json::parse(resp.trim_end()).expect("valid response JSON");
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            die(&format!("request failed: {}", resp.trim_end()));
        }
    }
}

/// Exact quantile of a sorted sample set.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn find_tybec(cli: Option<PathBuf>) -> Option<PathBuf> {
    let mut candidates = Vec::new();
    candidates.extend(cli);
    candidates.extend(std::env::var_os("TYBEC_BIN").map(PathBuf::from));
    if let Ok(me) = std::env::current_exe() {
        candidates.extend(me.parent().map(|d| d.join("tybec")));
    }
    candidates.push(PathBuf::from("target/release/tybec"));
    candidates.into_iter().find(|p| p.is_file())
}

fn main() {
    let args = parse_args();
    let designs = designs();
    assert!(designs.len() >= 3, "need several structural classes for a mixed workload");

    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    // Pass 1: mixed replay. Every client cycles kinds and designs from
    // its own offset, so the daemon sees interleaved repeats of each
    // structural class — the shape the cross-request cache exists for.
    let kinds = ["estimate", "estimate", "bound", "analyze"];
    let per_client = args.requests.div_ceil(args.clients);
    let total_requests = per_client * args.clients;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..args.clients {
            let designs = &designs;
            scope.spawn(move || {
                let lines: Vec<String> = (0..per_client)
                    .map(|i| {
                        let n = c * per_client + i;
                        let kind = kinds[n % kinds.len()];
                        let src = &designs[n % designs.len()];
                        request(n as u64, kind, src)
                    })
                    .collect();
                drive(addr, &lines);
            });
        }
    });
    let mixed_elapsed = t0.elapsed().as_secs_f64();
    let served_rps = total_requests as f64 / mixed_elapsed;

    // Pass 2: warm probe. One connection, strict request/response
    // lock-step, exact client-side latency per request.
    let probe = request(0, "estimate", &designs[0]);
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut latencies_ms = Vec::with_capacity(args.warm_probes);
    let mut resp = String::new();
    for _ in 0..args.warm_probes {
        let t = Instant::now();
        stream.write_all(probe.as_bytes()).expect("send probe");
        resp.clear();
        reader.read_line(&mut resp).expect("probe response");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    drop((stream, reader));
    latencies_ms.sort_by(f64::total_cmp);
    let warm_p50_ms = quantile(&latencies_ms, 0.5);
    let warm_p99_ms = quantile(&latencies_ms, 0.99);

    let snap = handle.shared().snapshot();
    handle.stop();
    let hits = snap.counter("serve.cache.hits");
    let misses = snap.counter("serve.cache.misses");
    let hit_rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
    let batch = match snap.get("serve.batch_size") {
        Some(tytra_trace::metrics::MetricValue::Histogram(h)) => h.clone(),
        _ => die("daemon exposed no serve.batch_size histogram"),
    };

    // Pass 3: spawn baseline — the pre-daemon workflow, one `tybec cost`
    // process per request over the same design and target.
    let tybec = find_tybec(args.tybec).unwrap_or_else(|| {
        die("no tybec binary (try --tybec, $TYBEC_BIN, or `cargo build --release -p tytra-cli`)")
    });
    let tirl = std::env::temp_dir().join(format!("serve_smoke_{}.tirl", std::process::id()));
    std::fs::write(&tirl, &designs[0]).expect("write baseline design");
    let t0 = Instant::now();
    for _ in 0..args.baseline_requests {
        let out = std::process::Command::new(&tybec)
            .arg("cost")
            .arg(&tirl)
            .args(["--target", "eval-small"])
            .output()
            .unwrap_or_else(|e| die(&format!("spawning {}: {e}", tybec.display())));
        if !out.status.success() {
            die(&format!("baseline tybec cost failed: {}", String::from_utf8_lossy(&out.stderr)));
        }
    }
    let baseline_elapsed = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&tirl);
    let baseline_rps = args.baseline_requests as f64 / baseline_elapsed;
    let speedup = served_rps / baseline_rps;

    let mut gates: HashMap<&str, bool> = HashMap::new();
    gates.insert("warm_p50_under_1ms", warm_p50_ms < GATE_WARM_P50_MS);
    gates.insert("warm_p99_under_ceiling", warm_p99_ms < GATE_WARM_P99_MS);
    gates.insert("cache_hit_rate_over_50pct", hit_rate > GATE_HIT_RATE);
    gates.insert("nonzero_cache_hits", hits > 0);
    gates.insert("speedup_10x_over_spawn", speedup >= GATE_SPEEDUP);
    let pass = gates.values().all(|&ok| ok);

    let mut gate_lines: Vec<String> =
        gates.iter().map(|(name, ok)| format!("    \"{name}\": {ok}")).collect();
    gate_lines.sort();
    let body = format!(
        "{{\n  \"requests\": {total_requests},\n  \"clients\": {clients},\n  \
         \"elapsed_s\": {mixed_elapsed:.4},\n  \"requests_per_sec\": {served_rps:.1},\n  \
         \"warm_probes\": {warm_probes},\n  \"warm_p50_ms\": {warm_p50_ms:.4},\n  \
         \"warm_p99_ms\": {warm_p99_ms:.4},\n  \"cache_hits\": {hits},\n  \
         \"cache_misses\": {misses},\n  \"cache_hit_rate\": {hit_rate:.4},\n  \
         \"batches\": {batches},\n  \"batch_size_mean\": {batch_mean:.2},\n  \
         \"batch_size_max\": {batch_max},\n  \"baseline_requests\": {baseline_requests},\n  \
         \"baseline_elapsed_s\": {baseline_elapsed:.4},\n  \
         \"baseline_requests_per_sec\": {baseline_rps:.1},\n  \"speedup\": {speedup:.1},\n  \
         \"gates\": {{\n{gate_body}\n  }},\n  \"pass\": {pass}\n}}\n",
        clients = args.clients,
        warm_probes = args.warm_probes,
        batches = snap.counter("serve.batches"),
        batch_mean = batch.mean(),
        batch_max = if batch.count == 0 { 0 } else { batch.max },
        baseline_requests = args.baseline_requests,
        gate_body = gate_lines.join(",\n"),
    );
    std::fs::write(&args.out, &body)
        .unwrap_or_else(|e| die(&format!("writing {}: {e}", args.out.display())));
    print!("{body}");

    if !pass {
        eprintln!("serve_smoke: gate failure (see {})", args.out.display());
        std::process::exit(1);
    }
}
