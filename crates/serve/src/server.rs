//! The daemon: listener, per-connection readers, the micro-batching
//! dispatcher, and the worker pool.
//!
//! ```text
//! accept loop ──▶ reader thread per connection  (serve.conn.N lanes)
//!                   │ parse JSONL + TIRL, fingerprint
//!                   ▼
//!               dispatcher thread               (micro-batching)
//!                   │ recv(), then drain try_recv() up to batch_max;
//!                   │ group same-class estimate/bound/analyze requests
//!                   ▼
//!               worker pool                     (serve.worker.N lanes)
//!                   │ cache probe → guarded compute → fan out
//!                   ▼
//!               per-connection writer (mutexed; responses carry ids)
//! ```
//!
//! Grouping means N concurrent clients asking for the same structural
//! class pay for one computation: the group leader computes (or hits
//! the cross-request cache) and every member gets the same payload
//! rendered under its own request id. Responses may leave a connection
//! out of order; ids correlate.

use crate::engine::{fast_key, prepare, CacheKey, Engine, Shared, Work};
use crate::protocol::{parse_request, render_err, render_ok, Request, RequestError};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use tytra_trace::recorder;

/// Daemon tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads; 0 means the machine's available parallelism.
    pub workers: usize,
    /// Cross-request cache capacity (entries; CLOCK-evicted past it).
    pub cache_capacity: usize,
    /// Most requests one dispatcher wake-up will coalesce.
    pub batch_max: usize,
    /// Test hook: requests this predicate matches panic inside the
    /// worker's guarded region (the `SearchConfig::fault_inject` idiom),
    /// exercising per-request fault isolation.
    pub fault_inject: Option<fn(&Request) -> bool>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { workers: 0, cache_capacity: 4096, batch_max: 32, fault_inject: None }
    }
}

/// Where the daemon listens; also how `stop()` pokes the accept loop
/// out of its blocking `accept`.
#[derive(Clone)]
enum Endpoint {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    fn poke(&self) {
        match self {
            Endpoint::Tcp(addr) => {
                let _ = TcpStream::connect(addr);
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

type ClientWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// One prepared request in flight.
struct Job {
    id: u64,
    req: Request,
    work: Work,
    key: Option<CacheKey>,
    writer: ClientWriter,
    t0: Instant,
}

/// A batch group: every job shares one structural class, so the leader's
/// payload answers them all.
struct Group {
    jobs: Vec<Job>,
    fault: bool,
}

/// A running daemon. Dropping the handle does NOT stop the server; call
/// [`stop`][ServerHandle::stop].
pub struct ServerHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The TCP address the daemon is listening on (panics for a
    /// Unix-socket daemon).
    pub fn addr(&self) -> SocketAddr {
        match &self.endpoint {
            Endpoint::Tcp(a) => *a,
            #[cfg(unix)]
            Endpoint::Unix(_) => panic!("unix-socket server has no TCP address"),
        }
    }

    /// The daemon-wide shared state (cache + metrics registry).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Block until the daemon exits on its own — i.e. until a `shutdown`
    /// request is served. This is what `tybec serve` does after binding.
    pub fn wait(mut self) {
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Stop accepting connections and join the daemon once in-flight
    /// connections have drained.
    pub fn stop(mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.endpoint.poke();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Serve on a TCP address (use port 0 to let the OS pick).
pub fn serve_tcp(addr: &str, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let endpoint = Endpoint::Tcp(listener.local_addr()?);
    Ok(spawn_server(Listener::Tcp(listener), endpoint, cfg))
}

/// Serve on a Unix-domain socket path (removed first if it exists).
#[cfg(unix)]
pub fn serve_unix(path: &Path, cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let endpoint = Endpoint::Unix(path.to_path_buf());
    Ok(spawn_server(Listener::Unix(listener), endpoint, cfg))
}

fn spawn_server(listener: Listener, endpoint: Endpoint, cfg: ServeConfig) -> ServerHandle {
    let shared = Arc::new(Shared::new(cfg.cache_capacity));
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2)
    } else {
        cfg.workers
    };

    let (job_tx, job_rx) = unbounded::<Job>();
    let (group_tx, group_rx) = unbounded::<Group>();

    // Dispatcher: block for one job, drain whatever else is queued (up
    // to batch_max), group by structural class, hand groups to workers.
    let dispatcher = {
        let shared = Arc::clone(&shared);
        let batch_max = cfg.batch_max.max(1);
        let fault_inject = cfg.fault_inject;
        std::thread::spawn(move || {
            tytra_trace::set_thread_label("serve.dispatch");
            dispatch_loop(&job_rx, &group_tx, &shared, batch_max, fault_inject);
        })
    };

    // Worker pool: each worker owns an engine with warm sessions.
    let mut worker_joins = Vec::with_capacity(workers);
    for i in 0..workers {
        let group_rx = group_rx.clone();
        let shared = Arc::clone(&shared);
        let endpoint = endpoint.clone();
        worker_joins.push(std::thread::spawn(move || {
            tytra_trace::set_thread_label(&format!("serve.worker.{i}"));
            let mut engine = Engine::new();
            while let Ok(group) = group_rx.recv() {
                run_group(&mut engine, group, &shared, &endpoint);
            }
        }));
    }
    drop(group_rx);

    // Accept loop. Reader threads are detached: each exits when its
    // client hangs up, dropping its job sender; the dispatcher exits
    // once the accept loop and every reader are gone.
    //
    // With fault injection armed, readers skip the exact-text fast path
    // so every matched request actually reaches a worker and panics.
    let fast_path = cfg.fault_inject.is_none();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            tytra_trace::set_thread_label("serve.accept");
            let mut conn_id = 0u64;
            loop {
                let stream: Option<(Box<dyn BufRead + Send>, ClientWriter)> = match &listener {
                    Listener::Tcp(l) => match l.accept() {
                        Ok((s, _)) => split_tcp(s),
                        Err(_) => None,
                    },
                    #[cfg(unix)]
                    Listener::Unix(l) => match l.accept() {
                        Ok((s, _)) => split_unix(s),
                        Err(_) => None,
                    },
                };
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Some((reader, writer)) = stream else { continue };
                conn_id += 1;
                let job_tx = job_tx.clone();
                let shared = Arc::clone(&shared);
                let label = format!("serve.conn.{conn_id}");
                std::thread::spawn(move || {
                    tytra_trace::set_thread_label(&label);
                    read_loop(reader, writer, &job_tx, &shared, fast_path);
                });
            }
            drop(job_tx);
            let _ = dispatcher.join();
            for j in worker_joins {
                let _ = j.join();
            }
        })
    };

    ServerHandle { endpoint, shared, join: Some(accept) }
}

fn split_tcp(s: TcpStream) -> Option<(Box<dyn BufRead + Send>, ClientWriter)> {
    let r = s.try_clone().ok()?;
    Some((Box::new(BufReader::new(r)), Arc::new(Mutex::new(Box::new(s) as Box<dyn Write + Send>))))
}

#[cfg(unix)]
fn split_unix(s: UnixStream) -> Option<(Box<dyn BufRead + Send>, ClientWriter)> {
    let r = s.try_clone().ok()?;
    Some((Box::new(BufReader::new(r)), Arc::new(Mutex::new(Box::new(s) as Box<dyn Write + Send>))))
}

fn write_line(writer: &ClientWriter, line: &str) {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

/// Per-connection reader: parse each JSONL line and its TIRL design,
/// answer malformed requests immediately, enqueue the rest.
fn read_loop(
    reader: Box<dyn BufRead + Send>,
    writer: ClientWriter,
    job_tx: &Sender<Job>,
    shared: &Shared,
    fast_path: bool,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let t0 = Instant::now();
        shared.requests.incr();
        recorder::mark("serve.request", 1);
        let req = match parse_request(&line) {
            Ok(r) => r,
            Err(RequestError { id, error }) => {
                shared.errors.incr();
                shared.request_ns.record(t0.elapsed().as_nanos() as u64);
                write_line(&writer, &render_err(id, &error, None));
                continue;
            }
        };
        // Exact-text fast path: a repeat of request bytes the daemon has
        // already answered skips parsing, fingerprinting, and the
        // dispatcher — the reader serves the cached payload directly.
        if fast_path {
            if let Some(hit) = fast_key(&req.kind).and_then(|k| shared.fast_get(&k)) {
                shared.cache_hits.incr();
                write_line(&writer, &render_ok(req.id, &hit));
                shared.request_ns.record(t0.elapsed().as_nanos() as u64);
                continue;
            }
        }
        match prepare(&req.kind) {
            Ok((work, key)) => {
                if let (Some(fk), Some(key)) = (fast_key(&req.kind), &key) {
                    shared.fast_put(fk, key.clone());
                }
                shared.enqueued();
                let job = Job { id: req.id, req, work, key, writer: Arc::clone(&writer), t0 };
                if job_tx.send(job).is_err() {
                    return;
                }
            }
            Err(e) => {
                shared.errors.incr();
                shared.request_ns.record(t0.elapsed().as_nanos() as u64);
                write_line(&writer, &render_err(req.id, &e, None));
            }
        }
    }
}

fn dispatch_loop(
    job_rx: &Receiver<Job>,
    group_tx: &Sender<Group>,
    shared: &Shared,
    batch_max: usize,
    fault_inject: Option<fn(&Request) -> bool>,
) {
    while let Ok(first) = job_rx.recv() {
        let mut batch = vec![first];
        while batch.len() < batch_max {
            match job_rx.try_recv() {
                Ok(j) => batch.push(j),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        shared.dequeued(batch.len() as u64);
        shared.batches.incr();
        shared.batch_size.record(batch.len() as u64);

        // Group same-class cacheable jobs; faulted and uncacheable jobs
        // stay singletons. Arrival order is preserved group-wise, so a
        // quiet daemon (batches of one) behaves exactly like no batching.
        let mut groups: Vec<Group> = Vec::new();
        for job in batch {
            let fault = fault_inject.map(|pred| pred(&job.req)).unwrap_or(false);
            let slot = (!fault).then_some(job.key.as_ref()).flatten().and_then(|key| {
                groups
                    .iter_mut()
                    .find(|g| !g.fault && g.jobs.first().and_then(|j| j.key.as_ref()) == Some(key))
            });
            match slot {
                Some(g) => g.jobs.push(job),
                None => groups.push(Group { jobs: vec![job], fault }),
            }
        }
        for g in groups {
            if group_tx.send(g).is_err() {
                return;
            }
        }
    }
}

/// Execute one group on this worker: cache probe, guarded compute by the
/// leader, fan the payload out to every member under its own id.
fn run_group(engine: &mut Engine, group: Group, shared: &Shared, endpoint: &Endpoint) {
    let Group { jobs, fault } = group;
    let leader = jobs.first().expect("groups are non-empty");
    let key = leader.key.clone();

    // Cross-request cache probe (skipped for injected faults so the
    // fault actually fires).
    let cached = match (&key, fault) {
        (Some(k), false) => shared.cache_get(k),
        _ => None,
    };

    let (payload, was_shutdown) = match cached {
        Some(hit) => {
            shared.cache_hits.add(jobs.len() as u64);
            (Ok(hit), false)
        }
        None => {
            let was_shutdown = matches!(leader.work, Work::Shutdown);
            let computed = engine.compute_guarded(&leader.work, shared, fault);
            if let (Some(k), Ok(payload)) = (&key, &computed) {
                shared.cache_misses.incr();
                if jobs.len() > 1 {
                    // Coalesced members were served without their own
                    // computation — cache-equivalent hits.
                    shared.cache_hits.add(jobs.len() as u64 - 1);
                }
                shared.cache_put(k.clone(), payload.clone());
            }
            (computed, was_shutdown)
        }
    };

    match &payload {
        Ok(text) => {
            for job in &jobs {
                write_line(&job.writer, &render_ok(job.id, text));
                shared.request_ns.record(job.t0.elapsed().as_nanos() as u64);
            }
        }
        Err((e, dump)) => {
            for job in &jobs {
                shared.errors.incr();
                write_line(&job.writer, &render_err(job.id, e, dump.as_deref()));
                shared.request_ns.record(job.t0.elapsed().as_nanos() as u64);
            }
        }
    }

    if was_shutdown {
        // `compute` set the flag; unblock the accept loop.
        endpoint.poke();
    }
}
