//! Request execution: warm estimator sessions, the cross-request cache,
//! and per-request fault isolation.
//!
//! An [`Engine`] is one worker's private state — estimator sessions
//! keyed by target device, each with warm memo tables. [`Shared`] is the
//! daemon-wide state every worker sees: the bounded cross-request
//! response cache and the live metrics registry. The split keeps the
//! hot path lock-light: a warm estimate touches the shared cache mutex
//! once and its own session the rest of the way.
//!
//! Responses are rendered from the same code paths the offline CLI
//! prints from (`session.estimate` is pinned bit-identical to
//! `tytra_cost::estimate`), so a served `estimate` payload is
//! byte-identical to `tybec cost` stdout for the same design and
//! target, whatever worker, batch, or cache state produced it.

use crate::protocol::{
    parse_request, render_err, render_ok, MetricsFormat, RequestError, RequestKind,
};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use tytra_cost::EstimatorSession;
use tytra_device::TargetDevice;
use tytra_dse::{render_search_leaderboard, search, ExplorationConfig, SearchConfig};
use tytra_ir::{fingerprint_module, ErrorCategory, IrModule, TybecError};
use tytra_kernels::{EvalKernel, Hotspot, LavaMd, Sor};
use tytra_trace::bounded::BoundedMap;
use tytra_trace::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
use tytra_trace::prometheus::render_prometheus;
use tytra_trace::recorder;

/// Cross-request cache key: request flavour tag, canonical device name
/// (empty for device-independent requests), structural fingerprint of
/// the parsed design.
pub type CacheKey = (u8, String, u64);

const TAG_ESTIMATE: u8 = 1;
const TAG_BOUND: u8 = 2;
const TAG_ANALYZE_TEXT: u8 = 3;
const TAG_ANALYZE_JSON: u8 = 4;

/// Parsed, ready-to-run request body. Produced by [`prepare`] on the
/// connection reader thread, so TIRL parsing and fingerprinting happen
/// per-client while the worker pool stays busy costing.
#[derive(Debug)]
pub enum Work {
    /// `session.estimate` and render the report.
    Estimate { m: Box<IrModule>, dev: String },
    /// `session.bound` and render the verdict.
    Bound { m: Box<IrModule>, dev: String },
    /// Dataflow analysis; `json` selects the strict-JSON rendering.
    Analyze { m: Box<IrModule>, json: bool },
    /// Full-space search over a named kernel.
    Dse {
        kernel: String,
        dev: String,
        lanes: Vec<u64>,
        workers: usize,
        top: usize,
        exhaustive: bool,
    },
    /// Snapshot of the daemon's metrics registry.
    Metrics { format: MetricsFormat },
    /// Stop accepting connections.
    Shutdown,
}

/// Resolve a target name exactly as the CLI's `--target` flag does.
pub fn target_device(name: &str) -> Result<TargetDevice, TybecError> {
    match name {
        "stratix-v-gsd8" | "stratix" => Ok(tytra_device::stratix_v_gsd8()),
        "virtex7-adm7v3" | "virtex7" => Ok(tytra_device::virtex7_adm7v3()),
        "eval-small" => Ok(tytra_device::eval_small()),
        other => Err(TybecError::new(ErrorCategory::Config, format!("unknown target `{other}`"))),
    }
}

/// The canonical spelling of a target name, so aliases like `stratix`
/// share a cache class and a warm session with `stratix-v-gsd8`.
fn canonical_target(name: &str) -> Result<&'static str, TybecError> {
    match name {
        "stratix-v-gsd8" | "stratix" => Ok("stratix-v-gsd8"),
        "virtex7-adm7v3" | "virtex7" => Ok("virtex7-adm7v3"),
        "eval-small" => Ok("eval-small"),
        other => Err(TybecError::new(ErrorCategory::Config, format!("unknown target `{other}`"))),
    }
}

fn kernel_by_name(name: &str) -> Result<Box<dyn EvalKernel>, TybecError> {
    match name {
        "sor" => Ok(Box::new(Sor::default())),
        "hotspot" => Ok(Box::new(Hotspot::default())),
        "lavamd" => Ok(Box::new(LavaMd::default())),
        other => Err(TybecError::new(
            ErrorCategory::Config,
            format!("unknown kernel `{other}`; expected sor|hotspot|lavamd"),
        )),
    }
}

/// Turn a decoded request into runnable [`Work`] plus its cache key (if
/// the flavour is cacheable): parse the TIRL design, resolve the target,
/// fingerprint. Runs on the reader thread.
pub fn prepare(kind: &RequestKind) -> Result<(Work, Option<CacheKey>), TybecError> {
    let parse_design = |design: &str| -> Result<(Box<IrModule>, u64), TybecError> {
        let m = tytra_ir::parse(design).map_err(TybecError::from)?;
        let fp = fingerprint_module(&m);
        Ok((Box::new(m), fp))
    };
    Ok(match kind {
        RequestKind::Estimate { design, target } => {
            let dev = canonical_target(target)?.to_string();
            let (m, fp) = parse_design(design)?;
            let key = (TAG_ESTIMATE, dev.clone(), fp);
            (Work::Estimate { m, dev }, Some(key))
        }
        RequestKind::Bound { design, target } => {
            let dev = canonical_target(target)?.to_string();
            let (m, fp) = parse_design(design)?;
            let key = (TAG_BOUND, dev.clone(), fp);
            (Work::Bound { m, dev }, Some(key))
        }
        RequestKind::Analyze { design, json } => {
            let (m, fp) = parse_design(design)?;
            let tag = if *json { TAG_ANALYZE_JSON } else { TAG_ANALYZE_TEXT };
            (Work::Analyze { m, json: *json }, Some((tag, String::new(), fp)))
        }
        RequestKind::Dse { kernel, target, lanes, workers, top, exhaustive } => {
            kernel_by_name(kernel)?;
            let dev = canonical_target(target)?.to_string();
            (
                Work::Dse {
                    kernel: kernel.clone(),
                    dev,
                    lanes: lanes.clone(),
                    workers: *workers,
                    top: *top,
                    exhaustive: *exhaustive,
                },
                None,
            )
        }
        RequestKind::Metrics { format } => (Work::Metrics { format: *format }, None),
        RequestKind::Shutdown => (Work::Shutdown, None),
    })
}

/// Source-level fast-path key: request flavour tag, raw target string,
/// raw design text. Identical source bytes parse to the identical
/// module, so this maps straight to a [`CacheKey`] without re-parsing.
pub type FastKey = (u8, String, String);

/// The fast-path key for a request, if its flavour has one.
pub fn fast_key(kind: &RequestKind) -> Option<FastKey> {
    match kind {
        RequestKind::Estimate { design, target } => {
            Some((TAG_ESTIMATE, target.clone(), design.clone()))
        }
        RequestKind::Bound { design, target } => Some((TAG_BOUND, target.clone(), design.clone())),
        RequestKind::Analyze { design, json } => {
            let tag = if *json { TAG_ANALYZE_JSON } else { TAG_ANALYZE_TEXT };
            Some((tag, String::new(), design.clone()))
        }
        _ => None,
    }
}

/// Daemon-wide state: the bounded cross-request response cache, the
/// shutdown flag, and the live metrics registry (`serve.*` names; see
/// `docs/serve.md` for the catalogue).
pub struct Shared {
    cache: Mutex<BoundedMap<CacheKey, String>>,
    /// Raw request text → structural cache key, so a repeat of the exact
    /// same request bytes skips TIRL parsing and fingerprinting
    /// entirely: the reader thread answers from [`Shared::cache`]
    /// without touching the dispatcher. Bounded by the same CLOCK
    /// policy and capacity as the response cache.
    fast: Mutex<BoundedMap<FastKey, CacheKey>>,
    /// Set by a `shutdown` request or [`ServerHandle::stop`]
    /// [`crate::server::ServerHandle::stop`]; the accept loop checks it
    /// per connection.
    pub shutdown: AtomicBool,
    registry: Registry,
    /// Requests read off connections (including ones rejected at parse).
    pub requests: Counter,
    /// Requests answered with `ok:false`.
    pub errors: Counter,
    /// Requests answered from the cross-request cache or coalesced onto
    /// a same-class computation in the same batch.
    pub cache_hits: Counter,
    /// Cacheable computations actually performed.
    pub cache_misses: Counter,
    /// Cache entries the CLOCK hand dropped under capacity pressure.
    pub cache_evictions: Counter,
    /// Dispatcher wake-ups (each drains one micro-batch).
    pub batches: Counter,
    /// Requests coalesced per dispatcher wake-up.
    pub batch_size: Histogram,
    /// Wall time from request read to response write, nanoseconds.
    pub request_ns: Histogram,
    /// Requests queued between reader and workers right now.
    pub queue_depth: Gauge,
    pending: AtomicU64,
}

impl Shared {
    /// Fresh daemon state with a response cache bounded to
    /// `cache_capacity` entries.
    pub fn new(cache_capacity: usize) -> Shared {
        let registry = Registry::new();
        Shared {
            cache: Mutex::new(BoundedMap::new(cache_capacity)),
            fast: Mutex::new(BoundedMap::new(cache_capacity)),
            shutdown: AtomicBool::new(false),
            requests: registry.counter("serve.requests"),
            errors: registry.counter("serve.errors"),
            cache_hits: registry.counter("serve.cache.hits"),
            cache_misses: registry.counter("serve.cache.misses"),
            cache_evictions: registry.counter("serve.cache.evictions"),
            batches: registry.counter("serve.batches"),
            batch_size: registry.histogram("serve.batch_size"),
            request_ns: registry.histogram("serve.request_ns"),
            queue_depth: registry.gauge("serve.queue_depth"),
            pending: AtomicU64::new(0),
            registry,
        }
    }

    /// Point-in-time snapshot of the daemon's metrics registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// A request entered the dispatch queue.
    pub fn enqueued(&self) {
        let d = self.pending.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth.set(d as f64);
    }

    /// `n` requests left the dispatch queue.
    pub fn dequeued(&self, n: u64) {
        let d = self.pending.fetch_sub(n, Ordering::SeqCst).saturating_sub(n);
        self.queue_depth.set(d as f64);
    }

    /// Cached payload for `key`, marking it recently used.
    pub fn cache_get(&self, key: &CacheKey) -> Option<String> {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).get(key).cloned()
    }

    /// Store a computed payload under `key`.
    pub fn cache_put(&self, key: CacheKey, payload: String) {
        if self.cache.lock().unwrap_or_else(|e| e.into_inner()).insert(key, payload) {
            self.cache_evictions.incr();
        }
    }

    /// Fast-path probe: the cached payload for this exact request text,
    /// if both the source memo and the response cache hold it. No TIRL
    /// parsing happens on this path.
    pub fn fast_get(&self, key: &FastKey) -> Option<String> {
        let cache_key = self.fast.lock().unwrap_or_else(|e| e.into_inner()).get(key).cloned()?;
        self.cache_get(&cache_key)
    }

    /// Remember which structural class this exact request text maps to.
    pub fn fast_put(&self, key: FastKey, cache_key: CacheKey) {
        // Evictions here are bookkeeping-only (the memo is re-derivable
        // by parsing), so they don't count toward `cache_evictions`.
        self.fast.lock().unwrap_or_else(|e| e.into_inner()).insert(key, cache_key);
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One worker's private execution state: an estimator session per
/// target device, kept warm across requests.
#[derive(Default)]
pub struct Engine {
    sessions: HashMap<String, EstimatorSession>,
}

impl Engine {
    /// An engine with no warm sessions yet.
    pub fn new() -> Engine {
        Engine::default()
    }

    fn session(&mut self, dev: &str) -> Result<&mut EstimatorSession, TybecError> {
        if !self.sessions.contains_key(dev) {
            let device = target_device(dev)?;
            self.sessions.insert(dev.to_string(), EstimatorSession::new(device));
        }
        Ok(self.sessions.get_mut(dev).expect("session just ensured"))
    }

    /// Aggregate memo statistics across this engine's sessions.
    pub fn session_stats(&self) -> tytra_cost::SessionStats {
        let mut total = tytra_cost::SessionStats::default();
        for s in self.sessions.values() {
            total += s.stats();
        }
        total
    }

    /// Run one prepared request body to its response payload. Payloads
    /// reproduce the offline CLI's stdout for the same input (see module
    /// docs); errors carry the same category the CLI would exit with.
    pub fn compute(&mut self, work: &Work, shared: &Shared) -> Result<String, TybecError> {
        match work {
            Work::Estimate { m, dev } => {
                let report = self.session(dev)?.estimate(m)?;
                Ok(format!("{report}"))
            }
            Work::Bound { m, dev } => {
                let b = self.session(dev)?.bound(m)?;
                Ok(format!("{b:?}"))
            }
            Work::Analyze { m, json } => {
                let report = tytra_analyze::analyze_module(m);
                if *json {
                    // `tybec analyze --json` prints with println!.
                    Ok(format!("{}\n", report.render_json()))
                } else {
                    Ok(report.render_text())
                }
            }
            Work::Dse { kernel, dev, lanes, workers, top, exhaustive } => {
                let kernel = kernel_by_name(kernel)?;
                let device = target_device(dev)?;
                let space = ExplorationConfig {
                    lanes: lanes.clone(),
                    workers: *workers,
                    ..ExplorationConfig::default()
                };
                let cfg = if *exhaustive {
                    SearchConfig::exhaustive(space)
                } else {
                    SearchConfig::pruned(space)
                };
                let outcome = search(kernel.as_ref(), &device, &cfg);
                Ok(render_search_leaderboard(&outcome, *top))
            }
            Work::Metrics { format } => {
                let snap = shared.snapshot();
                Ok(match format {
                    MetricsFormat::Table => snap.render_table(),
                    MetricsFormat::Prometheus => render_prometheus(&snap),
                })
            }
            Work::Shutdown => {
                shared.shutdown.store(true, Ordering::SeqCst);
                Ok("shutting down".to_string())
            }
        }
    }

    /// [`compute`][Engine::compute] behind a panic fence. A panicking
    /// request — injected via `fault` or a genuine bug — becomes a
    /// categorized internal error plus this thread's flight-recorder
    /// breadcrumbs; the worker (and the daemon) live on.
    pub fn compute_guarded(
        &mut self,
        work: &Work,
        shared: &Shared,
        fault: bool,
    ) -> Result<String, (TybecError, Option<String>)> {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if fault {
                recorder::mark("serve.fault_inject", 1);
                panic!("injected fault");
            }
            self.compute(work, shared)
        }));
        match outcome {
            Ok(r) => r.map_err(|e| (e, None)),
            Err(p) => {
                let dump =
                    recorder::dump_current_thread().map(|lane| recorder::render_dump(&[lane]));
                let err = TybecError::new(
                    ErrorCategory::Internal,
                    format!("request panicked: {}", panic_message(p.as_ref())),
                );
                Err((err, dump))
            }
        }
    }

    /// Full in-process round-trip for one request line: parse → prepare
    /// → cache probe → guarded compute → render. This is exactly the
    /// path a daemon worker runs per request (minus the socket and the
    /// batching dispatcher); the fuzz `serve-equivalence` oracle and the
    /// unit tests drive it directly.
    pub fn respond(&mut self, line: &str, shared: &Shared) -> String {
        let t0 = std::time::Instant::now();
        shared.requests.incr();
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(RequestError { id, error }) => {
                shared.errors.incr();
                return render_err(id, &error, None);
            }
        };
        let (work, key) = match prepare(&req.kind) {
            Ok(p) => p,
            Err(e) => {
                shared.errors.incr();
                return render_err(req.id, &e, None);
            }
        };
        if let Some(key) = &key {
            if let Some(hit) = shared.cache_get(key) {
                shared.cache_hits.incr();
                shared.request_ns.record(t0.elapsed().as_nanos() as u64);
                return render_ok(req.id, &hit);
            }
        }
        let out = match self.compute_guarded(&work, shared, false) {
            Ok(payload) => {
                if let Some(key) = key {
                    shared.cache_misses.incr();
                    shared.cache_put(key, payload.clone());
                }
                render_ok(req.id, &payload)
            }
            Err((e, dump)) => {
                shared.errors.incr();
                render_err(req.id, &e, dump.as_deref())
            }
        };
        shared.request_ns.record(t0.elapsed().as_nanos() as u64);
        out
    }
}
