//! The `tybec serve` wire protocol: JSONL requests and responses.
//!
//! One request per line, one response per line, in either direction of
//! a TCP or Unix-domain stream. Requests are strict JSON objects (the
//! hardened parser in [`tytra_trace::json`] rejects nesting bombs and
//! trailing garbage); responses carry the request's `id` so clients may
//! pipeline — the daemon is free to answer out of order.
//!
//! See `docs/serve.md` for the full schema. In short:
//!
//! ```text
//! → {"id":1,"kind":"estimate","design":"<tirl>","target":"eval-small"}
//! ← {"id":1,"ok":true,"report":"== cost report: ..."}
//! → {"id":2,"kind":"estimate","design":"]broken"}
//! ← {"id":2,"ok":false,"error":{"category":"parse","exit_code":2,...}}
//! ```
//!
//! Error payloads reuse the pipeline's [`TybecError`] vocabulary: the
//! `category` label and `exit_code` are exactly what the offline CLI
//! would print and exit with for the same input.

use tytra_ir::{ErrorCategory, Span, TybecError};
use tytra_trace::json::{self, Json};

/// How a `metrics` request wants the registry rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The aligned human-readable table.
    Table,
    /// Prometheus text exposition format (scrape-ready).
    Prometheus,
}

/// A decoded request body.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Full cost report for a TIRL design — the payload is byte-identical
    /// to `tybec cost` stdout for the same design and target.
    Estimate { design: String, target: String },
    /// Branch-and-bound verdict for a TIRL design.
    Bound { design: String, target: String },
    /// Dataflow-analysis report (`tybec analyze`); `json` selects the
    /// strict-JSON rendering.
    Analyze { design: String, json: bool },
    /// Full-space search leaderboard for a named kernel — the payload is
    /// byte-identical to the `== full exploration ==` section of
    /// `tybec dse`.
    Dse {
        kernel: String,
        target: String,
        lanes: Vec<u64>,
        workers: usize,
        top: usize,
        exhaustive: bool,
    },
    /// Snapshot of the daemon's live metrics registry.
    Metrics { format: MetricsFormat },
    /// Ask the daemon to stop accepting connections.
    Shutdown,
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The request body.
    pub kind: RequestKind,
}

/// A rejected request line: the error plus the best-effort `id` (0 when
/// the line was too broken to extract one) so the client can still
/// correlate the failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    /// Correlation id, 0 if unrecoverable.
    pub id: u64,
    /// What was wrong with the line.
    pub error: TybecError,
}

impl RequestError {
    fn new(id: u64, error: TybecError) -> RequestError {
        RequestError { id, error }
    }
}

fn parse_error(id: u64, message: impl Into<String>) -> RequestError {
    RequestError::new(id, TybecError::new(ErrorCategory::Parse, message))
}

/// Decode one JSONL request line.
///
/// JSON-level failures carry a span pointing at the offending byte
/// (requests are single lines, so `line` is always 1 and `col` is the
/// byte offset plus one).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let v = json::parse_spanned(line).map_err(|e| {
        let span = Span { line: 1, col: u32::try_from(e.offset).unwrap_or(u32::MAX - 1) + 1 };
        RequestError::new(
            0,
            TybecError::new(ErrorCategory::Parse, format!("request JSON: {}", e.message))
                .with_span(span),
        )
    })?;
    let obj = v.as_obj().ok_or_else(|| parse_error(0, "request must be a JSON object"))?;
    let id = match obj.get("id") {
        Some(j) => {
            let n = j.as_num().ok_or_else(|| parse_error(0, "`id` must be a number"))?;
            if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0) {
                return Err(parse_error(0, "`id` must be a non-negative integer"));
            }
            n as u64
        }
        None => 0,
    };
    let kind_name = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| parse_error(id, "missing `kind` (expected a string)"))?;

    let str_field = |name: &str| -> Result<String, RequestError> {
        obj.get(name)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| parse_error(id, format!("`{kind_name}` needs a string `{name}` field")))
    };
    let target = || -> Result<String, RequestError> {
        match obj.get("target") {
            Some(j) => j
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| parse_error(id, "`target` must be a string")),
            None => Ok("stratix-v-gsd8".to_string()),
        }
    };
    let bool_field = |name: &str, default: bool| -> Result<bool, RequestError> {
        match obj.get(name) {
            Some(j) => {
                j.as_bool().ok_or_else(|| parse_error(id, format!("`{name}` must be a boolean")))
            }
            None => Ok(default),
        }
    };
    let uint_field = |name: &str, default: u64| -> Result<u64, RequestError> {
        match obj.get(name) {
            Some(j) => match j.as_num() {
                Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 => Ok(n as u64),
                _ => Err(parse_error(id, format!("`{name}` must be a non-negative integer"))),
            },
            None => Ok(default),
        }
    };

    let kind = match kind_name {
        "estimate" => RequestKind::Estimate { design: str_field("design")?, target: target()? },
        "bound" => RequestKind::Bound { design: str_field("design")?, target: target()? },
        "analyze" => {
            RequestKind::Analyze { design: str_field("design")?, json: bool_field("json", false)? }
        }
        "dse" => {
            let lanes = match obj.get("lanes") {
                Some(j) => {
                    let arr = j
                        .as_arr()
                        .ok_or_else(|| parse_error(id, "`lanes` must be an array of integers"))?;
                    let mut lanes = Vec::with_capacity(arr.len());
                    for l in arr {
                        match l.as_num() {
                            Some(n) if n.is_finite() && n >= 1.0 && n.fract() == 0.0 => {
                                lanes.push(n as u64)
                            }
                            _ => {
                                return Err(parse_error(
                                    id,
                                    "`lanes` must be an array of positive integers",
                                ))
                            }
                        }
                    }
                    lanes
                }
                None => vec![1, 2, 4, 8, 16, 32],
            };
            RequestKind::Dse {
                kernel: str_field("kernel")?,
                target: target()?,
                lanes,
                workers: uint_field("workers", 0)? as usize,
                top: uint_field("top", 10)? as usize,
                exhaustive: bool_field("exhaustive", false)?,
            }
        }
        "metrics" => {
            let format = match obj.get("format").and_then(Json::as_str).unwrap_or("table") {
                "table" => MetricsFormat::Table,
                "prometheus" => MetricsFormat::Prometheus,
                other => {
                    return Err(parse_error(
                        id,
                        format!("unknown metrics format `{other}` (expected table|prometheus)"),
                    ))
                }
            };
            RequestKind::Metrics { format }
        }
        "shutdown" => RequestKind::Shutdown,
        other => {
            return Err(parse_error(
                id,
                format!(
                    "unknown kind `{other}` \
                     (expected estimate|bound|analyze|dse|metrics|shutdown)"
                ),
            ))
        }
    };
    Ok(Request { id, kind })
}

/// Render a success response line (trailing newline included).
pub fn render_ok(id: u64, payload: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"report\":\"{}\"}}\n", json::escape(payload))
}

/// Render a failure response line (trailing newline included). The
/// error object mirrors the CLI's behaviour for the same failure: the
/// category label it prints and the code it exits with. `flight_dump`
/// carries the worker's flight-recorder breadcrumbs when the request
/// died in a panic.
pub fn render_err(id: u64, err: &TybecError, flight_dump: Option<&str>) -> String {
    let mut s = format!(
        "{{\"id\":{id},\"ok\":false,\"error\":{{\"category\":\"{}\",\"exit_code\":{},\"message\":\"{}\"",
        err.category.label(),
        err.category.exit_code(),
        json::escape(&err.message),
    );
    if let Some(span) = err.span {
        s.push_str(&format!(",\"line\":{},\"col\":{}", span.line, span.col));
    }
    s.push('}');
    if let Some(dump) = flight_dump {
        s.push_str(&format!(",\"flight_dump\":\"{}\"", json::escape(dump)));
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_request_round_trips() {
        let r = parse_request(r#"{"id":7,"kind":"estimate","design":"x","target":"eval-small"}"#)
            .unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(
            r.kind,
            RequestKind::Estimate { design: "x".into(), target: "eval-small".into() }
        );
    }

    #[test]
    fn target_defaults_to_the_cli_default() {
        let r = parse_request(r#"{"id":1,"kind":"bound","design":"x"}"#).unwrap();
        assert_eq!(
            r.kind,
            RequestKind::Bound { design: "x".into(), target: "stratix-v-gsd8".into() }
        );
    }

    #[test]
    fn dse_request_defaults_match_the_cli() {
        let r = parse_request(r#"{"id":1,"kind":"dse","kernel":"sor"}"#).unwrap();
        assert_eq!(
            r.kind,
            RequestKind::Dse {
                kernel: "sor".into(),
                target: "stratix-v-gsd8".into(),
                lanes: vec![1, 2, 4, 8, 16, 32],
                workers: 0,
                top: 10,
                exhaustive: false,
            }
        );
    }

    #[test]
    fn broken_json_yields_a_spanned_parse_error() {
        let e = parse_request(r#"{"id":1,"#).unwrap_err();
        assert_eq!(e.id, 0, "id unrecoverable from broken JSON");
        assert_eq!(e.error.category, ErrorCategory::Parse);
        let span = e.error.span.expect("span");
        assert_eq!(span.line, 1);
        assert!(span.col >= 1);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse_request(r#"{"id":1,"kind":"shutdown"} {"#).is_err());
    }

    #[test]
    fn bad_fields_keep_the_request_id() {
        let e = parse_request(r#"{"id":9,"kind":"estimate"}"#).unwrap_err();
        assert_eq!(e.id, 9);
        assert_eq!(e.error.category, ErrorCategory::Parse);
        let e = parse_request(r#"{"id":9,"kind":"teapot"}"#).unwrap_err();
        assert_eq!(e.id, 9);
    }

    #[test]
    fn responses_escape_payloads_and_echo_ids() {
        let line = render_ok(3, "a \"quoted\"\nreport");
        assert_eq!(line, "{\"id\":3,\"ok\":true,\"report\":\"a \\\"quoted\\\"\\nreport\"}\n");
        let parsed = json::parse(line.trim_end()).unwrap();
        assert_eq!(parsed.get("report").and_then(Json::as_str), Some("a \"quoted\"\nreport"));
    }

    #[test]
    fn error_responses_carry_category_code_and_span() {
        let err = TybecError::new(ErrorCategory::Validate, "bad design")
            .with_span(Span { line: 4, col: 2 });
        let line = render_err(5, &err, Some("lane dump"));
        let parsed = json::parse(line.trim_end()).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        let e = parsed.get("error").unwrap();
        assert_eq!(e.get("category").and_then(Json::as_str), Some("validate"));
        assert_eq!(e.get("exit_code").and_then(Json::as_num), Some(3.0));
        assert_eq!(e.get("line").and_then(Json::as_num), Some(4.0));
        assert_eq!(e.get("col").and_then(Json::as_num), Some(2.0));
        assert_eq!(parsed.get("flight_dump").and_then(Json::as_str), Some("lane dump"));
    }
}
