//! Loopback suite: real sockets, concurrent clients, and the pinned
//! service guarantees — byte-identity with the offline CLI renderings,
//! warm-equals-cold replay, and per-request fault isolation.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tytra_kernels::{EvalKernel, Hotspot, Sor};
use tytra_serve::{serve_tcp, target_device, ServeConfig};
use tytra_trace::json::{self, Json};
use tytra_transform::Variant;

/// TIRL source for a kernel variant — what a client would send.
fn design(kernel: &str, lanes: u64) -> String {
    let k: Box<dyn EvalKernel> = match kernel {
        "sor" => Box::new(Sor::default()),
        "hotspot" => Box::new(Hotspot::default()),
        other => panic!("unknown kernel {other}"),
    };
    let v = Variant { lanes, ..Variant::baseline() };
    tytra_ir::print(&k.lower_variant(&v).expect("lowerable variant"))
}

fn request(id: u64, kind: &str, src: &str, target: &str) -> String {
    format!(
        "{{\"id\":{id},\"kind\":\"{kind}\",\"design\":\"{}\",\"target\":\"{target}\"}}\n",
        json::escape(src)
    )
}

/// What the offline CLI prints for the same input: `tybec cost` stdout
/// for estimate, the session bound debug rendering, the analyze report.
fn offline(kind: &str, src: &str, target: &str) -> String {
    let dev = target_device(target).expect("known target");
    let m = tytra_ir::parse(src).expect("server-accepted design parses offline");
    match kind {
        "estimate" => format!("{}", tytra_cost::estimate(&m, &dev).expect("estimable")),
        "bound" => {
            let mut s = tytra_cost::EstimatorSession::new(dev);
            format!("{:?}", s.bound(&m).expect("boundable"))
        }
        "analyze" => tytra_analyze::analyze_module(&m).render_text(),
        other => panic!("unknown kind {other}"),
    }
}

/// Send `lines` over one connection and collect the responses by id.
/// Responses may arrive out of order; ids correlate.
fn roundtrip(addr: std::net::SocketAddr, lines: &[String]) -> HashMap<u64, Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("send");
    }
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut by_id = HashMap::new();
    for _ in 0..lines.len() {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        let v = json::parse(resp.trim_end()).expect("response is valid JSON");
        let id = v.get("id").and_then(Json::as_num).expect("response id") as u64;
        by_id.insert(id, v);
    }
    by_id
}

fn report_of(v: &Json) -> &str {
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "expected ok response: {v:?}");
    v.get("report").and_then(Json::as_str).expect("report payload")
}

#[test]
fn concurrent_clients_get_byte_identical_offline_payloads() {
    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = handle.addr();

    // Three structural classes × three request flavours, each with its
    // offline-CLI expected payload computed up front.
    let cases: Vec<(String, String, String)> = {
        let designs = [("sor", 1), ("sor", 4), ("hotspot", 2)].map(|(k, l)| design(k, l)).to_vec();
        let mut cases = Vec::new();
        for src in &designs {
            for kind in ["estimate", "bound", "analyze"] {
                cases.push((kind.to_string(), src.clone(), offline(kind, src, "eval-small")));
            }
        }
        cases
    };

    const CLIENTS: u64 = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let cases = &cases;
            scope.spawn(move || {
                // Each client walks the cases from a different offset, so
                // the daemon sees interleaved mixes of structural classes.
                let lines: Vec<String> = cases
                    .iter()
                    .cycle()
                    .skip(c as usize)
                    .take(cases.len())
                    .enumerate()
                    .map(|(i, (kind, src, _))| {
                        request(c * 1000 + i as u64, kind, src, "eval-small")
                    })
                    .collect();
                let responses = roundtrip(addr, &lines);
                for (i, (kind, _, expected)) in
                    cases.iter().cycle().skip(c as usize).take(cases.len()).enumerate()
                {
                    let resp = &responses[&(c * 1000 + i as u64)];
                    assert_eq!(
                        report_of(resp),
                        expected,
                        "client {c} request {i} ({kind}) diverged from the offline CLI"
                    );
                }
            });
        }
    });

    let snap = handle.shared().snapshot();
    let hits = snap.counter("serve.cache.hits");
    let misses = snap.counter("serve.cache.misses");
    assert!(hits > 0, "replayed classes must hit the cross-request cache");
    assert!(misses >= 9, "each distinct (kind, design) class computes at least once");
    handle.stop();
}

#[test]
fn warm_replay_is_bit_identical_to_cold() {
    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let src = design("sor", 2);
    let lines: Vec<String> = (0..4).map(|i| request(i, "estimate", &src, "eval-small")).collect();
    let responses = roundtrip(handle.addr(), &lines);

    // First answer is computed cold; the rest come from warm sessions
    // and the cross-request cache. All must be the same bytes, and the
    // same bytes `tybec cost` prints.
    let expected = offline("estimate", &src, "eval-small");
    for i in 0..4 {
        assert_eq!(report_of(&responses[&i]), expected, "replay {i} diverged");
    }
    let snap = handle.shared().snapshot();
    assert_eq!(snap.counter("serve.cache.misses"), 1, "one cold computation");
    assert!(snap.counter("serve.cache.hits") >= 3, "replays served warm");
    handle.stop();
}

#[test]
fn injected_fault_is_answered_and_isolated() {
    let cfg = ServeConfig { fault_inject: Some(|req| req.id == 666), ..ServeConfig::default() };
    let handle = serve_tcp("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr();
    let src = design("sor", 1);

    let lines = vec![
        request(666, "estimate", &src, "eval-small"),
        request(1, "estimate", &src, "eval-small"),
    ];
    let responses = roundtrip(addr, &lines);

    // The faulted request gets a categorized internal error with the
    // worker's flight-recorder breadcrumbs attached.
    let faulted = &responses[&666];
    assert_eq!(faulted.get("ok").and_then(Json::as_bool), Some(false));
    let err = faulted.get("error").expect("error object");
    assert_eq!(err.get("category").and_then(Json::as_str), Some("internal"));
    assert_eq!(err.get("exit_code").and_then(Json::as_num), Some(10.0));
    let msg = err.get("message").and_then(Json::as_str).unwrap_or_default();
    assert!(msg.contains("injected fault"), "message names the panic: {msg}");
    let dump = faulted.get("flight_dump").and_then(Json::as_str).unwrap_or_default();
    assert!(dump.contains("serve.fault_inject"), "dump has the breadcrumb: {dump}");

    // The healthy request in the same batch window is unaffected, and
    // the daemon keeps serving new connections afterwards.
    assert_eq!(report_of(&responses[&1]), offline("estimate", &src, "eval-small"));
    let after = roundtrip(addr, &[request(2, "estimate", &src, "eval-small")]);
    assert_eq!(report_of(&after[&2]), offline("estimate", &src, "eval-small"));
    handle.stop();
}

#[test]
fn malformed_lines_are_rejected_without_killing_the_connection() {
    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let src = design("sor", 1);
    let lines = vec![
        "]not json at all\n".to_string(),
        format!("{{\"id\":7,\"kind\":\"estimate\",\"design\":\"st1 broken\"}}\n"),
        request(8, "estimate", &src, "eval-small"),
    ];
    let responses = roundtrip(handle.addr(), &lines);

    let bad_json = &responses[&0];
    assert_eq!(bad_json.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        bad_json.get("error").and_then(|e| e.get("category")).and_then(Json::as_str),
        Some("parse")
    );
    let bad_design = &responses[&7];
    assert_eq!(bad_design.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(report_of(&responses[&8]), offline("estimate", &src, "eval-small"));
    handle.stop();
}

#[test]
fn metrics_and_shutdown_round_trip() {
    let handle = serve_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = handle.addr();
    let src = design("sor", 1);
    let responses = roundtrip(addr, &[request(1, "estimate", &src, "eval-small")]);
    assert!(responses[&1].get("ok").and_then(Json::as_bool) == Some(true));

    let responses = roundtrip(
        addr,
        &[
            "{\"id\":2,\"kind\":\"metrics\",\"format\":\"prometheus\"}\n".to_string(),
            "{\"id\":3,\"kind\":\"shutdown\"}\n".to_string(),
        ],
    );
    let metrics = report_of(&responses[&2]);
    assert!(metrics.contains("serve_requests"), "prometheus exposition has serve metrics");
    assert_eq!(report_of(&responses[&3]), "shutting down");
    // The daemon exits on its own once the shutdown response is out and
    // the clients hang up — exactly what `tybec serve` blocks on.
    handle.wait();
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_bytes() {
    use std::os::unix::net::UnixStream;
    let path = std::env::temp_dir().join(format!("tybec-serve-test-{}.sock", std::process::id()));
    let handle = tytra_serve::serve_unix(&path, ServeConfig::default()).expect("bind unix");
    let src = design("hotspot", 1);

    let mut stream = UnixStream::connect(&path).expect("connect unix");
    stream.write_all(request(5, "estimate", &src, "eval-small").as_bytes()).expect("send");
    let mut resp = String::new();
    BufReader::new(stream.try_clone().expect("clone")).read_line(&mut resp).expect("read");
    drop(stream);

    let v = json::parse(resp.trim_end()).expect("valid response");
    assert_eq!(report_of(&v), offline("estimate", &src, "eval-small"));
    handle.stop();
    let _ = std::fs::remove_file(&path);
}
