//! Offline stand-in for `crossbeam`, providing the MPMC [`channel`]
//! module the DSE worker pool uses. Implemented over a mutex-guarded
//! deque with a condvar — not lock-free, but correct, and the DSE work
//! items are coarse enough (one cost-model evaluation each) that channel
//! overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (Our subset never reports this — queues are unbounded and
    /// receivers outlive senders in every call site — but the type keeps
    /// the API shape.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they
                // can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking until one is available or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn workers_drain_everything() {
        let (tx, rx) = channel::unbounded::<u64>();
        for v in 0..100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum::<u64>());
    }
}
