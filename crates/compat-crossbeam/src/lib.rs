//! Offline stand-in for `crossbeam`, providing the MPMC [`channel`]
//! module and the work-stealing [`deque`] module the DSE worker pool
//! uses. Implemented over mutex-guarded deques — not lock-free, but
//! correct, and the DSE work items are coarse enough (one cost-model
//! evaluation each) that queue overhead is noise.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// (Our subset never reports this — queues are unbounded and
    /// receivers outlive senders in every call site — but the type keeps
    /// the API shape.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`] when no value is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on a channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueue a value; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they
                // can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking until one is available or every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a value without blocking. The `tybec serve`
        /// dispatcher drains the queue with this after a blocking
        /// [`recv`][Receiver::recv] to micro-batch concurrent requests.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Dequeue a value, blocking at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) =
                    self.shared.ready.wait_timeout(q, left).unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }
}

pub mod deque {
    //! Work-stealing deques with the `crossbeam-deque` API shape:
    //! an owning [`Worker`] endpoint pushing and popping at the front,
    //! and cloneable [`Stealer`] handles taking work from the back.
    //!
    //! Unlike the lock-free original, operations serialise on one mutex
    //! per queue; [`Steal::Retry`] is kept for API compatibility but
    //! never produced (a mutex acquisition cannot lose a race
    //! mid-operation).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// The owner's endpoint of one work-stealing queue.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    /// A thief's endpoint; cloneable and shareable across threads.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The victim's queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The operation lost a race and may be retried (never produced
        /// by this implementation; kept for API compatibility).
        Retry,
    }

    impl<T> Steal<T> {
        /// `Some(task)` on success, `None` otherwise.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Did the victim turn out to be empty?
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }
    }

    impl<T> Worker<T> {
        /// A new FIFO queue: the owner pushes at the back and pops at
        /// the front, so tasks run roughly in submission order.
        pub fn new_fifo() -> Worker<T> {
            Worker { shared: Arc::new(Mutex::new(VecDeque::new())) }
        }

        /// Enqueue a task at the owner's end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap_or_else(|e| e.into_inner()).push_back(task);
        }

        /// Dequeue the owner's next task.
        pub fn pop(&self) -> Option<T> {
            self.shared.lock().unwrap_or_else(|e| e.into_inner()).pop_front()
        }

        /// A stealer handle onto this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { shared: Arc::clone(&self.shared) }
        }

        /// Tasks currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Is the queue empty right now?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Stealer<T> {
        /// Steal one task from the opposite end of the owner's.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap_or_else(|e| e.into_inner()).pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steal up to half of the victim's tasks into `dest`, then pop
        /// one of them for immediate execution.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let batch = {
                let mut victim = self.shared.lock().unwrap_or_else(|e| e.into_inner());
                // Take strictly less than half, never the last task: an
                // owner drains its own queue before exiting, so a task
                // left behind is always processed — and leaving one
                // guarantees every worker whose queue was seeded gets to
                // run at least one task on its own thread, however late
                // the scheduler starts it (tytra-dse relies on this for
                // its per-worker trace lanes).
                let len = victim.len();
                if len < 2 {
                    return Steal::Empty;
                }
                let take = len / 2;
                // Taking from the back keeps the front (oldest) tasks
                // with the owner, as the lock-free original does.
                victim.split_off(len - take)
            };
            let mut batch = batch.into_iter();
            let Some(first) = batch.next() else { return Steal::Empty };
            let mut dest_q = dest.shared.lock().unwrap_or_else(|e| e.into_inner());
            dest_q.extend(batch);
            Steal::Success(first)
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer { shared: Arc::clone(&self.shared) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Steal, Worker};

    #[test]
    fn worker_pops_fifo_stealer_takes_the_back() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        for v in 1..=3 {
            w.push(v);
        }
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert!(w.is_empty());
    }

    #[test]
    fn batch_steal_moves_half_and_pops_one() {
        let victim = Worker::new_fifo();
        let thief = Worker::new_fifo();
        for v in 0..10 {
            victim.push(v);
        }
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert!(matches!(got, Steal::Success(_)));
        assert_eq!(victim.len(), 5);
        assert_eq!(thief.len(), 4, "five stolen: one popped, four queued");
        assert!(victim.stealer().steal_batch_and_pop(&Worker::new_fifo()).success().is_some());
    }

    #[test]
    fn batch_steal_never_takes_the_last_task() {
        let victim = Worker::new_fifo();
        let thief = Worker::new_fifo();
        victim.push(7);
        assert_eq!(victim.stealer().steal_batch_and_pop(&thief), Steal::Empty);
        assert_eq!(victim.len(), 1, "a lone task stays with its owner");
        victim.push(8);
        assert!(matches!(victim.stealer().steal_batch_and_pop(&thief), Steal::Success(8)));
        assert_eq!(victim.pop(), Some(7));
    }

    #[test]
    fn nothing_is_lost_under_concurrent_stealing() {
        let owner = Worker::new_fifo();
        for v in 0..1000u64 {
            owner.push(v);
        }
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let st = owner.stealer();
                let total = &total;
                s.spawn(move || loop {
                    match st.steal() {
                        Steal::Success(v) => {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {}
                    }
                });
            }
            while let Some(v) = owner.pop() {
                total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert_eq!(total.into_inner(), (0..1000).sum::<u64>());
    }

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = channel::unbounded();
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = channel::unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn workers_drain_everything() {
        let (tx, rx) = channel::unbounded::<u64>();
        for v in 0..100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum::<u64>());
    }
}
