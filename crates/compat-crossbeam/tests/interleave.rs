//! Deterministic interleaving stress tests for the work-stealing deque,
//! centred on `steal_batch_and_pop`.
//!
//! Two layers:
//!
//! 1. a single-threaded *model check*: a seeded operation schedule runs
//!    against both the real deque and a trivially-correct `VecDeque`
//!    model of the spec, asserting exact agreement after every step —
//!    any divergence replays from the printed `(seed, step)` pair;
//! 2. a *barrier-stepped* concurrent test: threads execute seeded op
//!    schedules in lock-stepped rounds, so the set of racing operations
//!    in each round is deterministic even though their order within the
//!    round is not. The invariant checked is schedule-independent:
//!    every pushed task is consumed exactly once.
//!
//! The second test is also the workload the CI thread-sanitizer job
//! runs: racing `steal_batch_and_pop` calls against owner pushes and
//! pops is exactly the access pattern the DSE worker pool generates.

use crossbeam::deque::{Steal, Stealer, Worker};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// Minimal xorshift so the schedule needs no external RNG crate.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The spec of `steal_batch_and_pop`, executed on a plain `VecDeque`:
/// refuse when fewer than two tasks remain, otherwise move `len / 2`
/// tasks from the back of the victim to the back of the thief and hand
/// the oldest moved task to the caller.
fn model_batch_steal(victim: &mut VecDeque<u64>, thief: &mut VecDeque<u64>) -> Option<u64> {
    let len = victim.len();
    if len < 2 {
        return None;
    }
    let mut batch: VecDeque<u64> = victim.split_off(len - len / 2);
    let first = batch.pop_front();
    thief.extend(batch);
    first
}

#[test]
fn seeded_schedules_match_the_model_exactly() {
    const QUEUES: usize = 3;
    const STEPS: u64 = 2_000;
    for seed in [1u64, 0xDEAD_BEEF, 0x00C0_FFEE, 42] {
        let mut rng = Rng::new(seed);
        let real: Vec<Worker<u64>> = (0..QUEUES).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<u64>> = real.iter().map(Worker::stealer).collect();
        let mut model: Vec<VecDeque<u64>> = vec![VecDeque::new(); QUEUES];
        let mut next_task = 0u64;
        for step in 0..STEPS {
            let q = rng.below(QUEUES as u64) as usize;
            let ctx = format!("seed {seed:#x}, step {step}, queue {q}");
            match rng.below(4) {
                0 => {
                    real[q].push(next_task);
                    model[q].push_back(next_task);
                    next_task += 1;
                }
                1 => {
                    assert_eq!(real[q].pop(), model[q].pop_front(), "pop diverged at {ctx}");
                }
                2 => {
                    let got = stealers[q].steal().success();
                    assert_eq!(got, model[q].pop_back(), "steal diverged at {ctx}");
                }
                _ => {
                    let dest = (q + 1 + rng.below(QUEUES as u64 - 1) as usize) % QUEUES;
                    let got = stealers[q].steal_batch_and_pop(&real[dest]).success();
                    let want = {
                        let [v, t] = model.get_disjoint_mut([q, dest]).unwrap();
                        model_batch_steal(v, t)
                    };
                    assert_eq!(got, want, "batch steal diverged at {ctx} -> {dest}");
                }
            }
            for (i, m) in model.iter().enumerate() {
                assert_eq!(real[i].len(), m.len(), "length diverged at {ctx} on queue {i}");
            }
        }
        // Drain both sides in lockstep to compare full contents.
        for (i, m) in model.iter_mut().enumerate() {
            while let Some(want) = m.pop_front() {
                assert_eq!(real[i].pop(), Some(want), "seed {seed:#x}: drain of queue {i}");
            }
            assert!(real[i].is_empty());
        }
    }
}

#[test]
fn barrier_stepped_batch_steals_conserve_every_task() {
    const WORKERS: usize = 4;
    const ROUNDS: u64 = 300;
    for seed in [3u64, 0x5EED, 0xFEED_F00D] {
        let queues: Vec<Worker<u64>> = (0..WORKERS).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<u64>> = queues.iter().map(Worker::stealer).collect();
        let pushed = AtomicU64::new(0);
        let consumed = AtomicU64::new(0);
        let barrier = Barrier::new(WORKERS);
        std::thread::scope(|s| {
            for (me, q) in queues.iter().enumerate() {
                let stealers = &stealers;
                let barrier = &barrier;
                let (pushed, consumed) = (&pushed, &consumed);
                s.spawn(move || {
                    // Per-thread schedule is fixed by (seed, me): the op
                    // *set* racing in each round is deterministic even
                    // though the winner of each race is not.
                    let mut rng = Rng::new(seed.wrapping_mul(31).wrapping_add(me as u64));
                    let mut local = 0u64;
                    for _ in 0..ROUNDS {
                        barrier.wait();
                        match rng.below(4) {
                            0 | 1 => {
                                // Tag tasks with the producing thread so
                                // task ids never collide across threads.
                                q.push((me as u64) << 32 | local);
                                local += 1;
                                pushed.fetch_add(1, Ordering::Relaxed);
                            }
                            2 => {
                                if q.pop().is_some() {
                                    consumed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            _ => {
                                let victim = rng.below(WORKERS as u64) as usize;
                                match stealers[victim].steal_batch_and_pop(q) {
                                    Steal::Success(_) => {
                                        consumed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Steal::Empty | Steal::Retry => {}
                                }
                            }
                        }
                    }
                    // Drain the home queue so every task is accounted.
                    barrier.wait();
                    while q.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            pushed.load(Ordering::Relaxed),
            consumed.load(Ordering::Relaxed),
            "seed {seed:#x}: tasks lost or duplicated under racing batch steals"
        );
    }
}
