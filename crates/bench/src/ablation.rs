//! Ablation study: how much accuracy each ingredient of the cost model
//! buys (DESIGN.md §8).
//!
//! For each evaluation kernel the full model and three ablated variants
//! are compared against the virtual toolchain/simulator ground truth:
//!
//! * **no sustained-bandwidth model** — streams assumed to run at the
//!   controller-efficiency fraction of peak (the naive model §V-C argues
//!   against): throughput error explodes on memory-bound designs;
//! * **no structural resources** — functional units only: ALUT/REG/BRAM
//!   all underestimated, stencil kernels lose their entire BRAM
//!   footprint;
//! * **no strength reduction** — constant multiplies priced as variable:
//!   the zero-DSP SOR suddenly books DSPs the toolchain never uses.

use crate::emit;
use tytra_cost::{estimate_with, CostOptions};
use tytra_device::stratix_v_gsd8;
use tytra_kernels::{all_kernels, EvalKernel};
use tytra_sim::{run_application, synthesize};
use tytra_transform::Variant;

/// Accuracy of one model configuration on one kernel.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Kernel name.
    pub kernel: String,
    /// Configuration label.
    pub config: &'static str,
    /// Signed ALUT error vs the toolchain, percent.
    pub alut_err_pct: f64,
    /// Signed BRAM error, percent.
    pub bram_err_pct: f64,
    /// Signed DSP error (absolute blocks, since zero rows divide badly).
    pub dsp_err_blocks: i64,
    /// Signed per-instance runtime error vs the simulator, percent.
    pub runtime_err_pct: f64,
}

/// (label, options constructor) pairs for the sweep.
type ConfigRow = (&'static str, fn() -> CostOptions);

const CONFIGS: [ConfigRow; 4] = [
    ("full model", CostOptions::full),
    ("no sustained-BW", CostOptions::without_bandwidth),
    ("no structural", CostOptions::without_structural),
    ("no strength-red.", CostOptions::without_strength_reduction),
];

fn row(
    kernel: &dyn EvalKernel,
    variant: &Variant,
    label: &'static str,
    opts: CostOptions,
) -> AblationRow {
    let m = kernel.lower_variant(variant).expect("lowers");
    row_module(&m, kernel.name().to_string(), label, opts)
}

fn row_module(
    m: &tytra_ir::IrModule,
    kernel: String,
    label: &'static str,
    opts: CostOptions,
) -> AblationRow {
    let dev = stratix_v_gsd8();
    let est = estimate_with(m, &dev, &opts).expect("estimates");
    let act = synthesize(m, &dev).expect("synthesizes");
    let run = run_application(m, &dev).expect("simulates");
    let e = est.resources.total.pct_error_vs(&act.resources);
    // Compare whole-application runtimes: the estimator amortises the
    // Form-B staging into its per-instance time, the simulator reports
    // it separately — totals are the common denominator.
    let t_est = est.total_runtime_s();
    let t_act = run.t_total_s;
    AblationRow {
        kernel,
        config: label,
        alut_err_pct: e[0],
        bram_err_pct: e[2],
        dsp_err_blocks: est.resources.total.dsps as i64 - act.resources.dsps as i64,
        runtime_err_pct: (t_est - t_act) / t_act * 100.0,
    }
}

/// A kernel whose input is traversed column-major (constant stride) —
/// the access pattern whose two-orders-of-magnitude bandwidth collapse
/// (Fig 10) the sustained model exists to predict.
fn strided_victim() -> tytra_ir::IrModule {
    use tytra_ir::{AccessPattern, ModuleBuilder, Opcode, ParKind, ScalarType, StreamDir};
    let t = ScalarType::UInt(32);
    let n: u64 = 2000 * 2000;
    let mut b = ModuleBuilder::new("transpose_sum");
    b.global_array("x", t, n, StreamDir::Read, AccessPattern::Strided { stride: 2000 });
    b.global_output("y", t, n);
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let x = f.arg("x");
        let v = f.instr(Opcode::Add, t, vec![x, f.imm(1)]);
        f.write_out("y", v);
    }
    b.main_calls("f0");
    b.ndrange(&[n]).nki(10);
    b.finish().expect("valid")
}

/// Run the ablation over every kernel × configuration, plus a
/// strided-access victim where the bandwidth model matters most.
pub fn run() -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for k in all_kernels() {
        for (label, mk) in CONFIGS {
            rows.push(row(k.as_ref(), &Variant::baseline(), label, mk()));
        }
    }
    let victim = strided_victim();
    for (label, mk) in CONFIGS {
        rows.push(row_module(&victim, "strided-victim".into(), label, mk()));
    }
    rows
}

/// Render the study.
pub fn render() -> String {
    let mut s = String::from("== Ablation: what each model ingredient buys ==\n");
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.kernel,
                r.config.to_string(),
                emit::pct(r.alut_err_pct),
                emit::pct(r.bram_err_pct),
                format!("{:+}", r.dsp_err_blocks),
                emit::pct(r.runtime_err_pct),
            ]
        })
        .collect();
    s.push_str(&emit::table(
        &["kernel", "configuration", "ALUT err", "BRAM err", "DSP err", "runtime err"],
        &rows,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(kernel: &str) -> Vec<AblationRow> {
        run().into_iter().filter(|r| r.kernel == kernel).collect()
    }

    #[test]
    fn full_model_is_most_accurate_on_resources() {
        for kernel in ["sor", "hotspot", "lavamd"] {
            let rows = rows_for(kernel);
            let full = rows.iter().find(|r| r.config == "full model").unwrap();
            let no_struct = rows.iter().find(|r| r.config == "no structural").unwrap();
            assert!(
                full.alut_err_pct.abs() < no_struct.alut_err_pct.abs(),
                "{kernel}: {} vs {}",
                full.alut_err_pct,
                no_struct.alut_err_pct
            );
        }
    }

    #[test]
    fn structural_ablation_loses_the_bram_model() {
        // Stencil kernels' BRAM is entirely structural (offset windows):
        // without the structural terms the estimate collapses to zero.
        let rows = rows_for("hotspot");
        let no_struct = rows.iter().find(|r| r.config == "no structural").unwrap();
        assert!((no_struct.bram_err_pct + 100.0).abs() < 1.0, "{}", no_struct.bram_err_pct);
        let full = rows.iter().find(|r| r.config == "full model").unwrap();
        assert!(full.bram_err_pct.abs() < 1.0);
    }

    #[test]
    fn strength_reduction_ablation_books_phantom_dsps() {
        // SOR's seven constant multiplies: the full model books 0 DSPs
        // (matching the toolchain); the ablated one books 7.
        let rows = rows_for("sor");
        let full = rows.iter().find(|r| r.config == "full model").unwrap();
        let nosr = rows.iter().find(|r| r.config == "no strength-red.").unwrap();
        assert_eq!(full.dsp_err_blocks, 0);
        assert_eq!(nosr.dsp_err_blocks, 7);
    }

    #[test]
    fn bandwidth_ablation_breaks_strided_throughput() {
        let rows = rows_for("strided-victim");
        let full = rows.iter().find(|r| r.config == "full model").unwrap();
        let nobw = rows.iter().find(|r| r.config == "no sustained-BW").unwrap();
        assert!(
            nobw.runtime_err_pct.abs() > 5.0 * full.runtime_err_pct.abs().max(1.0),
            "naive BW should wreck a strided design: full {} vs naive {}",
            full.runtime_err_pct,
            nobw.runtime_err_pct
        );
        // And in the optimistic direction (it promises bandwidth the
        // strided stream cannot sustain).
        assert!(nobw.runtime_err_pct < -50.0, "{}", nobw.runtime_err_pct);
    }
}
