//! Fig 9 — deriving resource cost expressions from benchmark points.
//!
//! Paper: a quadratic fitted from three synthesis points (18/32/64 bits)
//! predicts a 24-bit divider at 654 ALUTs vs 652 synthesised; multiplier
//! ALUTs are piece-wise-linear and DSP elements a staircase. Here the
//! "synthesis points" come from the virtual toolchain, the fit from
//! `tytra-device`, and the table sweeps widths 8…64.

use crate::emit;
use tytra_device::{stratix_v_gsd8, OpCostModel, PolyFit};
use tytra_ir::{Opcode, ScalarType};
use tytra_sim::synth::synth_fu_probe;

/// One width sample of the Fig 9 curves.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig09Row {
    /// Operand bit width.
    pub width: u16,
    /// Cost-model divider ALUTs (fitted quadratic).
    pub div_aluts_est: u64,
    /// Virtual-toolchain divider ALUTs ("actual").
    pub div_aluts_actual: u64,
    /// Cost-model multiplier ALUTs (piece-wise linear).
    pub mul_aluts_est: u64,
    /// Cost-model multiplier DSP elements (staircase).
    pub mul_dsps_est: u64,
}

/// The quadratic refit from three virtual-toolchain points, as the
/// paper fits from three synthesis runs. Returns (coefficients lowest
/// first, prediction at 24 bits, actual at 24 bits).
pub fn refit_divider() -> (Vec<f64>, u64, u64) {
    let dev = stratix_v_gsd8();
    let pts: Vec<(f64, f64)> = [18u16, 32, 64]
        .iter()
        .map(|&w| {
            let a = synth_fu_probe(&dev, Opcode::Div, ScalarType::UInt(w)).aluts;
            (f64::from(w), a as f64)
        })
        .collect();
    let fit = PolyFit::fit(&pts, 2);
    let pred24 = fit.eval_count(24.0);
    let act24 = synth_fu_probe(&dev, Opcode::Div, ScalarType::UInt(24)).aluts;
    (fit.coeffs.clone(), pred24, act24)
}

/// Sweep the widths.
pub fn run() -> Vec<Fig09Row> {
    let ops = OpCostModel::stratix_v();
    let dev = stratix_v_gsd8();
    (1..=8)
        .map(|k| {
            let w = 8 * k;
            let ty = ScalarType::UInt(w);
            Fig09Row {
                width: w,
                div_aluts_est: ops.cost(Opcode::Div, ty).aluts,
                div_aluts_actual: synth_fu_probe(&dev, Opcode::Div, ty).aluts,
                mul_aluts_est: ops.cost(Opcode::Mul, ty).aluts,
                mul_dsps_est: ops.cost(Opcode::Mul, ty).dsps,
            }
        })
        .collect()
}

/// Render the experiment.
pub fn render() -> String {
    let mut s = String::from("== Fig 9: resource cost expressions vs bit width (Stratix-V) ==\n");
    let (coeffs, pred24, act24) = refit_divider();
    s.push_str(&format!(
        "divider fit from 3 toolchain points: {:.2}x^2 + {:.2}x + {:.2} (paper: x^2 + 3.7x - 10.6)\n",
        coeffs[2], coeffs[1], coeffs[0]
    ));
    s.push_str(&format!(
        "24-bit interpolation: {pred24} ALUTs vs {act24} synthesised ({:.2}% error; paper: 654 vs 652)\n\n",
        (pred24 as f64 - act24 as f64) / act24 as f64 * 100.0
    ));
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.width.to_string(),
                r.div_aluts_est.to_string(),
                r.div_aluts_actual.to_string(),
                r.mul_aluts_est.to_string(),
                r.mul_dsps_est.to_string(),
            ]
        })
        .collect();
    s.push_str(&emit::table(
        &["width", "div-ALUT(est)", "div-ALUT(actual)", "mul-ALUT", "mul-DSP"],
        &rows,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refit_recovers_quadratic_within_a_few_percent() {
        let (coeffs, pred24, act24) = refit_divider();
        assert!((coeffs[2] - 1.0).abs() < 0.25, "{coeffs:?}");
        let err = (pred24 as f64 - act24 as f64).abs() / act24 as f64;
        assert!(err < 0.05, "24-bit interpolation error {err}");
    }

    #[test]
    fn staircase_and_monotonicity() {
        let rows = run();
        assert_eq!(rows.len(), 8);
        // Divider grows strictly; DSP staircase is monotone and reaches
        // 8 at 64 bits.
        for w in rows.windows(2) {
            assert!(w[1].div_aluts_est > w[0].div_aluts_est);
            assert!(w[1].mul_dsps_est >= w[0].mul_dsps_est);
        }
        assert_eq!(rows.last().unwrap().mul_dsps_est, 8);
        // Two-curve separation: divider ALUTs dwarf multiplier ALUTs.
        assert!(rows.last().unwrap().div_aluts_est > 40 * rows.last().unwrap().mul_aluts_est);
    }

    #[test]
    fn render_contains_fit_line() {
        let s = render();
        assert!(s.contains("divider fit"));
        assert!(s.contains("24-bit interpolation"));
    }
}
