//! Fig 17 — runtime of the SOR kernel for different grid sizes,
//! normalised against the CPU-only solution (1000 kernel iterations).
//!
//! Reproduction targets: `fpga-tytra` beats both comparators from 48³
//! up (paper: "apart from the smallest grid-size"), `fpga-maxJ` is
//! *slower* than the CPU at the typical weather-model grid (~100³), and
//! the small-grid point shows the stream-overhead reversal.

use crate::emit;
use tytra_device::stratix_v_gsd8;
use tytra_hls_baseline::{case_study, CaseStudyPoint};

/// The paper's grid sides.
pub const SIDES: [u64; 5] = [24, 48, 96, 144, 192];

/// The paper's iteration count.
pub const NKI: u64 = 1000;

/// Run the sweep.
pub fn run() -> Vec<CaseStudyPoint> {
    case_study(&SIDES, NKI, &stratix_v_gsd8()).expect("case study runs")
}

/// Render the experiment.
pub fn render() -> String {
    render_points(&run())
}

/// Render pre-computed points (shared with fig18's binary).
pub fn render_points(points: &[CaseStudyPoint]) -> String {
    let mut s =
        String::from("== Fig 17: SOR runtime vs grid size, normalised to CPU (nmaxp = 1000) ==\n");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (c, m, t) = p.runtime_normalized();
            vec![
                p.side.to_string(),
                emit::f(c, 2),
                emit::f(m, 2),
                emit::f(t, 2),
                emit::f(p.cpu_s, 3),
                emit::f(p.maxj_s, 3),
                emit::f(p.tytra_s, 3),
            ]
        })
        .collect();
    s.push_str(&emit::table(
        &["side", "cpu", "fpga-maxJ", "fpga-tytra", "cpu[s]", "maxJ[s]", "tytra[s]"],
        &rows,
    ));
    let best_vs_maxj = points.iter().map(|p| p.maxj_s / p.tytra_s).fold(0.0f64, f64::max);
    let best_vs_cpu = points.iter().map(|p| p.cpu_s / p.tytra_s).fold(0.0f64, f64::max);
    s.push_str(&format!(
        "tytra best: {best_vs_maxj:.1}x over maxJ (paper: 3.9x), {best_vs_cpu:.1}x over cpu (paper: 2.6x)\n",
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_shape_holds() {
        let pts = run();
        // tytra wins from 48³ up.
        for p in pts.iter().filter(|p| p.side >= 48) {
            assert!(p.tytra_s < p.cpu_s, "side {}", p.side);
            assert!(p.tytra_s < p.maxj_s, "side {}", p.side);
        }
        // maxJ slower than CPU at the typical grid.
        let p96 = pts.iter().find(|p| p.side == 96).unwrap();
        assert!(p96.maxj_s > p96.cpu_s);
        // Small-grid reversal for tytra.
        let p24 = pts.iter().find(|p| p.side == 24).unwrap();
        assert!(p24.tytra_s / p24.cpu_s > p96.tytra_s / p96.cpu_s);
    }

    #[test]
    fn factors_are_in_the_papers_range() {
        let pts = run();
        let best_vs_maxj = pts.iter().map(|p| p.maxj_s / p.tytra_s).fold(0.0f64, f64::max);
        let best_vs_cpu = pts.iter().map(|p| p.cpu_s / p.tytra_s).fold(0.0f64, f64::max);
        assert!((2.0..8.0).contains(&best_vs_maxj), "{best_vs_maxj}");
        assert!((1.5..6.0).contains(&best_vs_cpu), "{best_vs_cpu}");
    }
}
