//! Regenerate the paper's speedup data (see tytra-bench::speedup).
fn main() {
    print!("{}", tytra_bench::speedup::render());
}
