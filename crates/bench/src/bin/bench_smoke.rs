//! CI smoke benchmarks: the estimator session and the DSE search engine.
//!
//! Usage: `bench_smoke [OUT.json [DSE_OUT.json]]` (defaults
//! `BENCH_estimator.json` and `BENCH_dse.json`).
//!
//! The first artifact times a cold (fresh-session-per-sweep) vs warm
//! (one reused session) 4-variant SOR sweep: median cold and warm sweep
//! time in microseconds, the cold/warm speedup, the warm session's memo
//! hit rate, plus a `pass_us` object breaking one traced cold+warm sweep
//! down by estimator pass (total span time per `estimator.*` span name).
//!
//! The second artifact races the branch-and-bound search against the
//! exhaustive escape hatch on the sor/eval-small acceptance space and
//! records wall-times, the pruned fraction and the steal count, then
//! repeats the race on an NKI-1 space where the congruence prefilter
//! collapses the A/B form axis (recording classes, collapsed count and
//! prefiltered wall). The run *fails* (nonzero exit) if either race's
//! leaderboards or infeasible sets diverge — the admissibility and
//! congruence contracts, enforced in CI — or if the prefilter collapses
//! nothing on the NKI-1 space.
//!
//! All JSON is hand-rolled — the workspace has no serde.

use std::time::Instant;
use tytra_cost::EstimatorSession;
use tytra_device::{eval_small, stratix_v_gsd8};
use tytra_dse::{search, ExplorationConfig, SearchConfig, SearchOutcome, SearchStats};
use tytra_kernels::{EvalKernel, Sor};
use tytra_transform::Variant;

const REPS: usize = 25;
/// Search reps: each rep costs a full multi-threaded space sweep.
const DSE_REPS: usize = 9;

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn outcome_fingerprint(o: &SearchOutcome) -> (Vec<(String, u64)>, Vec<String>) {
    (
        o.leaderboard
            .iter()
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect(),
        o.invalid.iter().map(|iv| iv.variant.tag()).collect(),
    )
}

/// Race pruned vs exhaustive search on the sor/eval-small acceptance
/// space; exit nonzero if their outcomes diverge.
fn bench_dse(out: &str) {
    let sor = Sor::cubic(16, 10);
    let dev = eval_small();
    // The acceptance space: the default lane sweep includes counts that
    // cannot fit eval-small, so the bound pass has real work to do; four
    // workers over chunked deques makes stealing observable.
    let space = ExplorationConfig { workers: 4, ..ExplorationConfig::default() };

    let run = |cfg: &SearchConfig| -> (f64, SearchOutcome, SearchStats) {
        let mut walls = Vec::with_capacity(DSE_REPS);
        let mut last = None;
        let mut stats = SearchStats::default();
        for _ in 0..DSE_REPS {
            let t0 = Instant::now();
            let outcome = search(&sor, &dev, cfg);
            walls.push(t0.elapsed().as_secs_f64() * 1e6);
            stats = outcome.stats;
            last = Some(outcome);
        }
        (median_us(&mut walls), last.expect("at least one rep"), stats)
    };

    let (exhaustive_us, ex_outcome, _) = run(&SearchConfig::exhaustive(space.clone()));
    let (pruned_us, pr_outcome, pr_stats) = run(&SearchConfig::pruned(space.clone()));

    if outcome_fingerprint(&pr_outcome) != outcome_fingerprint(&ex_outcome) {
        eprintln!("FAIL: pruned search diverged from exhaustive search");
        eprintln!("  pruned:     {:?}", outcome_fingerprint(&pr_outcome));
        eprintln!("  exhaustive: {:?}", outcome_fingerprint(&ex_outcome));
        std::process::exit(1);
    }

    // Congruence prefilter: at NKI == 1 the A/B form axis collapses, so
    // the same space over an NKI-1 SOR must replicate half its full
    // estimates from the class cache — and still match exhaustive
    // bit-for-bit. Gated here like the bound pass above.
    let sor1 = Sor::cubic(16, 1);
    let run1 = |cfg: &SearchConfig| -> (f64, SearchOutcome, SearchStats) {
        let mut walls = Vec::with_capacity(DSE_REPS);
        let mut last = None;
        let mut stats = SearchStats::default();
        for _ in 0..DSE_REPS {
            let t0 = Instant::now();
            let outcome = search(&sor1, &dev, cfg);
            walls.push(t0.elapsed().as_secs_f64() * 1e6);
            stats = outcome.stats;
            last = Some(outcome);
        }
        (median_us(&mut walls), last.expect("at least one rep"), stats)
    };
    let (_, ex1_outcome, _) = run1(&SearchConfig::exhaustive(space.clone()));
    let (prefilter_us, pf_outcome, pf_stats) = run1(&SearchConfig::pruned(space));

    if outcome_fingerprint(&pf_outcome) != outcome_fingerprint(&ex1_outcome) {
        eprintln!("FAIL: prefiltered search diverged from exhaustive search at NKI 1");
        eprintln!("  prefiltered: {:?}", outcome_fingerprint(&pf_outcome));
        eprintln!("  exhaustive:  {:?}", outcome_fingerprint(&ex1_outcome));
        std::process::exit(1);
    }
    if pf_stats.collapsed == 0 {
        eprintln!("FAIL: congruence prefilter collapsed nothing on an NKI-1 space");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"bench\": \"dse_search_sor16_eval_small\",\n  \"reps\": {DSE_REPS},\n  \
         \"exhaustive_us\": {exhaustive_us:.3},\n  \"pruned_us\": {pruned_us:.3},\n  \
         \"speedup\": {:.3},\n  \"pruned_fraction\": {:.4},\n  \
         \"generated\": {},\n  \"estimated\": {},\n  \
         \"pruned_bound\": {},\n  \"pruned_unfit\": {},\n  \"steal_count\": {},\n  \
         \"prefilter_classes\": {},\n  \"prefilter_collapsed\": {},\n  \
         \"prefilter_estimated\": {},\n  \"prefilter_us\": {prefilter_us:.3}\n}}\n",
        exhaustive_us / pruned_us,
        pr_stats.pruned_fraction(),
        pr_stats.generated,
        pr_stats.estimated,
        pr_stats.pruned_bound,
        pr_stats.pruned_unfit,
        pr_stats.stolen,
        pf_stats.classes,
        pf_stats.collapsed,
        pf_stats.estimated,
    );
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "dse: exhaustive {exhaustive_us:.1} µs  pruned {pruned_us:.1} µs  speedup {:.2}x  \
         pruned {:.0}%  steals {}",
        exhaustive_us / pruned_us,
        pr_stats.pruned_fraction() * 100.0,
        pr_stats.stolen
    );
    println!(
        "dse prefilter (nki 1): {} classes  {} collapsed  {} estimated  {prefilter_us:.1} µs",
        pf_stats.classes, pf_stats.collapsed, pf_stats.estimated
    );
    println!("wrote {out} (leaderboards identical)");
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_estimator.json".to_string());
    let dse_out = std::env::args().nth(2).unwrap_or_else(|| "BENCH_dse.json".to_string());

    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let modules: Vec<_> = [1u64, 2, 4, 8]
        .iter()
        .map(|&l| sor.lower_variant(&Variant { lanes: l, ..Variant::baseline() }).expect("lowers"))
        .collect();
    let sweep = |session: &mut EstimatorSession| -> f64 {
        modules.iter().map(|m| session.estimate(m).expect("estimate").throughput.ekit).sum()
    };

    // Cold: a fresh session per sweep — every pass runs for every variant.
    let mut cold = Vec::with_capacity(REPS);
    let mut checksum = 0.0f64;
    for _ in 0..REPS {
        let mut session = EstimatorSession::new(dev.clone());
        let t0 = Instant::now();
        checksum += sweep(&mut session);
        cold.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // Warm: one session reused — after the first sweep everything replays.
    let mut warm_session = EstimatorSession::new(dev.clone());
    checksum += sweep(&mut warm_session);
    let mut warm = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        checksum += sweep(&mut warm_session);
        warm.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    let cold_us = median_us(&mut cold);
    let warm_us = median_us(&mut warm);
    let stats = warm_session.stats();

    // Per-pass breakdown: trace one cold + one warm sweep through a
    // fresh session and sum span time per estimator pass. Tracing stays
    // off for the timing loops above so they measure the untraced path.
    tytra_trace::set_enabled(true);
    let mut traced_session = EstimatorSession::new(dev.clone());
    checksum += sweep(&mut traced_session);
    checksum += sweep(&mut traced_session);
    tytra_trace::set_enabled(false);
    let mut pass_us: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for rec in tytra_trace::take_records() {
        if rec.name.starts_with("estimator.") && rec.name != "estimator.estimate" {
            *pass_us.entry(rec.name).or_insert(0.0) += rec.dur_ns as f64 / 1e3;
        }
    }
    let pass_json = pass_us
        .iter()
        .map(|(name, us)| format!("    \"{name}\": {us:.3}"))
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"session_sweep_sor48_lanes_1_2_4_8\",\n  \"reps\": {REPS},\n  \
         \"cold_us\": {cold_us:.3},\n  \"warm_us\": {warm_us:.3},\n  \
         \"speedup\": {:.3},\n  \"hit_rate\": {:.4},\n  \"pass_us\": {{\n{pass_json}\n  }}\n}}\n",
        cold_us / warm_us,
        stats.hit_rate(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "cold {cold_us:.1} µs  warm {warm_us:.1} µs  speedup {:.2}x  hit rate {:.1}%",
        cold_us / warm_us,
        stats.hit_rate() * 100.0
    );
    println!("wrote {out} (checksum {checksum:.1})");

    bench_dse(&dse_out);
}
