//! CI smoke benchmarks: the estimator session and the DSE search engine.
//!
//! Usage: `bench_smoke [OUT.json [DSE_OUT.json]]` (defaults
//! `BENCH_estimator.json` and `BENCH_dse.json`).
//!
//! The first artifact times a cold (fresh-session-per-sweep) vs warm
//! (one reused session) 4-variant SOR sweep: median cold and warm sweep
//! time in microseconds, the cold/warm speedup, the warm session's memo
//! hit rate, plus a `pass_us` object breaking one traced cold+warm sweep
//! down by estimator pass (total span time per `estimator.*` span name).
//!
//! The second artifact races the branch-and-bound search against the
//! exhaustive escape hatch on the sor/eval-small acceptance space and
//! records wall-times, the pruned fraction and the steal count, then
//! repeats the race on an NKI-1 space where the congruence prefilter
//! collapses the A/B form axis (recording classes, collapsed count and
//! prefiltered wall). The run *fails* (nonzero exit) if either race's
//! leaderboards or infeasible sets diverge — the admissibility and
//! congruence contracts, enforced in CI — or if the prefilter collapses
//! nothing on the NKI-1 space.
//!
//! All JSON is hand-rolled — the workspace has no serde.

use std::time::Instant;
use tytra_cost::EstimatorSession;
use tytra_device::{eval_small, stratix_v_gsd8};
use tytra_dse::{search, ExplorationConfig, SearchConfig, SearchOutcome, SearchStats};
use tytra_kernels::{EvalKernel, Sor};
use tytra_transform::Variant;

/// Counting shim over the system allocator, compiled only under the
/// bench-only `alloc-count` feature: one relaxed atomic per allocation,
/// enough to measure the steady-state allocs-per-variant budget of the
/// arena costing path without any external profiler.
#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static ALLOCS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counter has no effect on
    // the returned pointers or layouts.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static A: CountingAlloc = CountingAlloc;

    pub fn count() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`);
/// 0 where procfs is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Steady-state heap allocations per costed variant on the acceptance
/// space: one warm sweep populates the factory bases and every session
/// memo, then a second sweep is counted. The budget covers the whole
/// per-variant path — `VariantFactory::design` (the one name `String`)
/// plus `bound_design` (memoized arena reads, no clones).
///
/// `None` when the binary was built without `alloc-count`.
fn steady_state_allocs_per_variant() -> Option<f64> {
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
    #[cfg(feature = "alloc-count")]
    {
        let sor = Sor::cubic(16, 10);
        let dev = eval_small();
        let factory = sor.variant_factory();
        let mut session = EstimatorSession::new(dev);
        // Warm sweep doubles as the filter: keep the variants the bound
        // pass accepts (seq-inner points are structurally rejected),
        // lower every base and fill every memo.
        let variants: Vec<_> = tytra_transform::enumerate_variants(
            sor.geometry().size(),
            &[1, 2, 4, 8, 16, 32],
            &[1, 2],
            &[tytra_ir::MemForm::A, tytra_ir::MemForm::B],
        )
        .into_iter()
        .filter(|v| {
            let d = factory.design(v).expect("legal variant");
            session.bound_design(&d.patched()).is_ok()
        })
        .collect();
        assert!(!variants.is_empty());
        let before = counting_alloc::count();
        for v in &variants {
            let d = factory.design(v).expect("legal variant");
            let _ = session.bound_design(&d.patched());
        }
        let after = counting_alloc::count();
        Some((after - before) as f64 / variants.len() as f64)
    }
}

const REPS: usize = 25;
/// Search reps: each rep costs a full multi-threaded space sweep.
const DSE_REPS: usize = 9;

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn outcome_fingerprint(o: &SearchOutcome) -> (Vec<(String, u64)>, Vec<String>) {
    (
        o.leaderboard
            .iter()
            .map(|e| (e.variant.tag(), e.report.throughput.ekit.to_bits()))
            .collect(),
        o.invalid.iter().map(|iv| iv.variant.tag()).collect(),
    )
}

/// Race pruned vs exhaustive search on the sor/eval-small acceptance
/// space; exit nonzero if their outcomes diverge.
fn bench_dse(out: &str) {
    let sor = Sor::cubic(16, 10);
    let dev = eval_small();
    // The acceptance space: the default lane sweep includes counts that
    // cannot fit eval-small, so the bound pass has real work to do; four
    // workers over chunked deques makes stealing observable.
    let space = ExplorationConfig { workers: 4, ..ExplorationConfig::default() };

    let run = |cfg: &SearchConfig| -> (f64, SearchOutcome, SearchStats) {
        let mut walls = Vec::with_capacity(DSE_REPS);
        let mut last = None;
        let mut stats = SearchStats::default();
        for _ in 0..DSE_REPS {
            let t0 = Instant::now();
            let outcome = search(&sor, &dev, cfg);
            walls.push(t0.elapsed().as_secs_f64() * 1e6);
            stats = outcome.stats;
            last = Some(outcome);
        }
        (median_us(&mut walls), last.expect("at least one rep"), stats)
    };

    let (exhaustive_us, ex_outcome, _) = run(&SearchConfig::exhaustive(space.clone()));
    let (pruned_us, pr_outcome, pr_stats) = run(&SearchConfig::pruned(space.clone()));

    if outcome_fingerprint(&pr_outcome) != outcome_fingerprint(&ex_outcome) {
        eprintln!("FAIL: pruned search diverged from exhaustive search");
        eprintln!("  pruned:     {:?}", outcome_fingerprint(&pr_outcome));
        eprintln!("  exhaustive: {:?}", outcome_fingerprint(&ex_outcome));
        std::process::exit(1);
    }

    // Congruence prefilter: at NKI == 1 the A/B form axis collapses, so
    // the same space over an NKI-1 SOR must replicate half its full
    // estimates from the class cache — and still match exhaustive
    // bit-for-bit. Gated here like the bound pass above.
    let sor1 = Sor::cubic(16, 1);
    let run1 = |cfg: &SearchConfig| -> (f64, SearchOutcome, SearchStats) {
        let mut walls = Vec::with_capacity(DSE_REPS);
        let mut last = None;
        let mut stats = SearchStats::default();
        for _ in 0..DSE_REPS {
            let t0 = Instant::now();
            let outcome = search(&sor1, &dev, cfg);
            walls.push(t0.elapsed().as_secs_f64() * 1e6);
            stats = outcome.stats;
            last = Some(outcome);
        }
        (median_us(&mut walls), last.expect("at least one rep"), stats)
    };
    let (_, ex1_outcome, _) = run1(&SearchConfig::exhaustive(space.clone()));
    let (prefilter_us, pf_outcome, pf_stats) = run1(&SearchConfig::pruned(space));

    if outcome_fingerprint(&pf_outcome) != outcome_fingerprint(&ex1_outcome) {
        eprintln!("FAIL: prefiltered search diverged from exhaustive search at NKI 1");
        eprintln!("  prefiltered: {:?}", outcome_fingerprint(&pf_outcome));
        eprintln!("  exhaustive:  {:?}", outcome_fingerprint(&ex1_outcome));
        std::process::exit(1);
    }
    if pf_stats.collapsed == 0 {
        eprintln!("FAIL: congruence prefilter collapsed nothing on an NKI-1 space");
        std::process::exit(1);
    }

    // Throughput of the production configuration: every generated design
    // point of the acceptance space, over the pruned sweep's wall time.
    let design_points_per_sec = pr_stats.generated as f64 / (pruned_us / 1e6);

    // Costing-loop A/B on the same space: the legacy tree path (a fresh
    // lowering plus tree-walk bound per point — how every point was
    // costed before the arena) against the arena path (copy-on-write
    // patch plus SoA bound). Steady state on both sides: warm sessions,
    // and the arena's factory bases already lowered. The arena must be
    // at least 5x the tree path — the point of the whole layout change —
    // and the ratio is gated here like the leaderboard contracts above.
    const COST_REPS: usize = 40;
    let mut tree_session = EstimatorSession::new(dev.clone());
    // The filter pass doubles as the tree session's warm-up: keep the
    // points the bound pass accepts (seq-inner shapes are rejected).
    let variants: Vec<Variant> = tytra_transform::enumerate_variants(
        sor.geometry().size(),
        &[1, 2, 4, 8, 16, 32],
        &[1, 2],
        &[tytra_ir::MemForm::A, tytra_ir::MemForm::B],
    )
    .into_iter()
    .filter(|v| sor.lower_variant(v).is_ok_and(|m| tree_session.bound(&m).is_ok()))
    .collect();
    assert!(!variants.is_empty());
    let tree_sweep = |session: &mut EstimatorSession| {
        for v in &variants {
            let m = sor.lower_variant(v).expect("legal variant");
            let _ = session.bound(&m).expect("bound");
        }
    };
    let mut tree_walls = Vec::with_capacity(COST_REPS);
    for _ in 0..COST_REPS {
        let t0 = Instant::now();
        tree_sweep(&mut tree_session);
        tree_walls.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let factory = sor.variant_factory();
    let mut arena_session = EstimatorSession::new(dev.clone());
    let arena_sweep = |session: &mut EstimatorSession| {
        for v in &variants {
            let d = factory.design(v).expect("legal variant");
            let _ = session.bound_design(&d.patched()).expect("bound");
        }
    };
    arena_sweep(&mut arena_session);
    let mut arena_walls = Vec::with_capacity(COST_REPS);
    for _ in 0..COST_REPS {
        let t0 = Instant::now();
        arena_sweep(&mut arena_session);
        arena_walls.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    let tree_us = median_us(&mut tree_walls);
    let arena_us = median_us(&mut arena_walls);
    let costing_tree_pps = variants.len() as f64 / (tree_us / 1e6);
    let costing_arena_pps = variants.len() as f64 / (arena_us / 1e6);
    let costing_speedup = costing_arena_pps / costing_tree_pps;
    if costing_speedup < 5.0 {
        eprintln!(
            "FAIL: arena costing is only {costing_speedup:.2}x the tree path \
             ({costing_arena_pps:.0} vs {costing_tree_pps:.0} points/s; floor: 5x)"
        );
        std::process::exit(1);
    }

    // Observability overhead: the flight recorder is on by default in
    // production, so its cost on the costing hot path is a contract, not
    // a curiosity. Re-run the arena sweep with one recorder mark per
    // point (the bound pass emits exactly that) with the recorder on vs
    // off, interleaving the reps so drift hits both sides equally. Gated
    // at ≤ 5% median overhead.
    const OBS_REPS: usize = 30;
    let marked_sweep = |session: &mut EstimatorSession| {
        for (i, v) in variants.iter().enumerate() {
            tytra_trace::recorder::mark("dse.bound", i as u64);
            let d = factory.design(v).expect("legal variant");
            let _ = session.bound_design(&d.patched()).expect("bound");
        }
    };
    let recorder_was_on = tytra_trace::recorder::enabled();
    let mut on_walls = Vec::with_capacity(OBS_REPS);
    let mut off_walls = Vec::with_capacity(OBS_REPS);
    for _ in 0..OBS_REPS {
        tytra_trace::recorder::set_enabled(true);
        let t0 = Instant::now();
        marked_sweep(&mut arena_session);
        on_walls.push(t0.elapsed().as_secs_f64() * 1e6);
        tytra_trace::recorder::set_enabled(false);
        let t0 = Instant::now();
        marked_sweep(&mut arena_session);
        off_walls.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    tytra_trace::recorder::set_enabled(recorder_was_on);
    let recorder_on_us = median_us(&mut on_walls);
    let recorder_off_us = median_us(&mut off_walls);
    let observability_overhead_pct = (recorder_on_us - recorder_off_us) / recorder_off_us * 100.0;
    if observability_overhead_pct > 5.0 {
        eprintln!(
            "FAIL: flight recorder adds {observability_overhead_pct:.2}% to the costing sweep \
             ({recorder_on_us:.1} vs {recorder_off_us:.1} µs; budget: 5%)"
        );
        std::process::exit(1);
    }

    // Steady-state allocation budget of the arena costing path. Gated at
    // ≤ 2 heap allocations per variant when the counting allocator is
    // compiled in (`--features alloc-count`); reported as null otherwise.
    let allocs_per_variant = steady_state_allocs_per_variant();
    if let Some(apv) = allocs_per_variant {
        if apv > 2.0 {
            eprintln!(
                "FAIL: steady-state costing allocates {apv:.2} heap blocks per variant \
                 (budget: 2.0)"
            );
            std::process::exit(1);
        }
    }
    let apv_json = allocs_per_variant.map_or_else(|| "null".to_string(), |apv| format!("{apv:.3}"));
    let rss_kb = peak_rss_kb();

    let json = format!(
        "{{\n  \"bench\": \"dse_search_sor16_eval_small\",\n  \"reps\": {DSE_REPS},\n  \
         \"exhaustive_us\": {exhaustive_us:.3},\n  \"pruned_us\": {pruned_us:.3},\n  \
         \"speedup\": {:.3},\n  \"pruned_fraction\": {:.4},\n  \
         \"generated\": {},\n  \"estimated\": {},\n  \
         \"pruned_bound\": {},\n  \"pruned_unfit\": {},\n  \"steal_count\": {},\n  \
         \"prefilter_classes\": {},\n  \"prefilter_collapsed\": {},\n  \
         \"prefilter_estimated\": {},\n  \"prefilter_us\": {prefilter_us:.3},\n  \
         \"design_points_per_sec\": {design_points_per_sec:.1},\n  \
         \"costing_tree_points_per_sec\": {costing_tree_pps:.1},\n  \
         \"costing_arena_points_per_sec\": {costing_arena_pps:.1},\n  \
         \"arena_costing_speedup\": {costing_speedup:.2},\n  \
         \"recorder_on_us\": {recorder_on_us:.3},\n  \
         \"recorder_off_us\": {recorder_off_us:.3},\n  \
         \"observability_overhead_pct\": {observability_overhead_pct:.3},\n  \
         \"peak_rss_kb\": {rss_kb},\n  \"allocs_per_variant\": {apv_json}\n}}\n",
        exhaustive_us / pruned_us,
        pr_stats.pruned_fraction(),
        pr_stats.generated,
        pr_stats.estimated,
        pr_stats.pruned_bound,
        pr_stats.pruned_unfit,
        pr_stats.stolen,
        pf_stats.classes,
        pf_stats.collapsed,
        pf_stats.estimated,
    );
    std::fs::write(out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "dse: exhaustive {exhaustive_us:.1} µs  pruned {pruned_us:.1} µs  speedup {:.2}x  \
         pruned {:.0}%  steals {}",
        exhaustive_us / pruned_us,
        pr_stats.pruned_fraction() * 100.0,
        pr_stats.stolen
    );
    println!(
        "dse prefilter (nki 1): {} classes  {} collapsed  {} estimated  {prefilter_us:.1} µs",
        pf_stats.classes, pf_stats.collapsed, pf_stats.estimated
    );
    println!(
        "dse throughput: {design_points_per_sec:.0} design-points/s  peak RSS {rss_kb} kB  \
         allocs/variant {apv_json}"
    );
    println!(
        "dse costing A/B: tree {costing_tree_pps:.0} pts/s  arena {costing_arena_pps:.0} pts/s  \
         speedup {costing_speedup:.1}x"
    );
    println!(
        "dse observability: recorder on {recorder_on_us:.1} µs  off {recorder_off_us:.1} µs  \
         overhead {observability_overhead_pct:+.2}%"
    );
    println!("wrote {out} (leaderboards identical)");
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_estimator.json".to_string());
    let dse_out = std::env::args().nth(2).unwrap_or_else(|| "BENCH_dse.json".to_string());

    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let modules: Vec<_> = [1u64, 2, 4, 8]
        .iter()
        .map(|&l| sor.lower_variant(&Variant { lanes: l, ..Variant::baseline() }).expect("lowers"))
        .collect();
    let sweep = |session: &mut EstimatorSession| -> f64 {
        modules.iter().map(|m| session.estimate(m).expect("estimate").throughput.ekit).sum()
    };

    // Cold: a fresh session per sweep — every pass runs for every variant.
    let mut cold = Vec::with_capacity(REPS);
    let mut checksum = 0.0f64;
    for _ in 0..REPS {
        let mut session = EstimatorSession::new(dev.clone());
        let t0 = Instant::now();
        checksum += sweep(&mut session);
        cold.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    // Warm: one session reused — after the first sweep everything replays.
    let mut warm_session = EstimatorSession::new(dev.clone());
    checksum += sweep(&mut warm_session);
    let mut warm = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        checksum += sweep(&mut warm_session);
        warm.push(t0.elapsed().as_secs_f64() * 1e6);
    }

    let cold_us = median_us(&mut cold);
    let warm_us = median_us(&mut warm);
    let stats = warm_session.stats();

    // Per-pass breakdown: trace one cold + one warm sweep through a
    // fresh session and sum span time per estimator pass. Tracing stays
    // off for the timing loops above so they measure the untraced path.
    tytra_trace::set_enabled(true);
    let mut traced_session = EstimatorSession::new(dev.clone());
    checksum += sweep(&mut traced_session);
    checksum += sweep(&mut traced_session);
    tytra_trace::set_enabled(false);
    let mut pass_us: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    for rec in tytra_trace::take_records() {
        if rec.name.starts_with("estimator.") && rec.name != "estimator.estimate" {
            *pass_us.entry(rec.name).or_insert(0.0) += rec.dur_ns as f64 / 1e3;
        }
    }
    let pass_json = pass_us
        .iter()
        .map(|(name, us)| format!("    \"{name}\": {us:.3}"))
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"session_sweep_sor48_lanes_1_2_4_8\",\n  \"reps\": {REPS},\n  \
         \"cold_us\": {cold_us:.3},\n  \"warm_us\": {warm_us:.3},\n  \
         \"speedup\": {:.3},\n  \"hit_rate\": {:.4},\n  \"pass_us\": {{\n{pass_json}\n  }}\n}}\n",
        cold_us / warm_us,
        stats.hit_rate(),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!(
        "cold {cold_us:.1} µs  warm {warm_us:.1} µs  speedup {:.2}x  hit rate {:.1}%",
        cold_us / warm_us,
        stats.hit_rate() * 100.0
    );
    println!("wrote {out} (checksum {checksum:.1})");

    bench_dse(&dse_out);
}
