//! Regenerate every table and figure of the paper's evaluation.
fn main() {
    print!("{}", tytra_bench::run_all());
}
