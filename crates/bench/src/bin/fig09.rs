//! Regenerate the paper's fig09 data (see tytra-bench::fig09).
fn main() {
    print!("{}", tytra_bench::fig09::render());
}
