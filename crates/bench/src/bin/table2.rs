//! Regenerate the paper's table2 data (see tytra-bench::table2).
fn main() {
    print!("{}", tytra_bench::table2::render());
}
