//! Regenerate the paper's fig10 data (see tytra-bench::fig10).
fn main() {
    print!("{}", tytra_bench::fig10::render());
}
