//! Regenerate the paper's fig17 data (see tytra-bench::fig17).
fn main() {
    print!("{}", tytra_bench::fig17::render());
}
