//! Ablation study over the cost model's ingredients (DESIGN.md §8).
fn main() {
    print!("{}", tytra_bench::ablation::render());
}
