//! Regenerate the paper's fig18 data (see tytra-bench::fig18).
fn main() {
    print!("{}", tytra_bench::fig18::render());
}
