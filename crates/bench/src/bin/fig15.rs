//! Regenerate the paper's fig15 data (see tytra-bench::fig15).
fn main() {
    print!("{}", tytra_bench::fig15::render());
}
