//! Fig 10 — sustained bandwidth vs data size and contiguity.
//!
//! Two views of the same link: the paper's *measured* calibration
//! (embedded verbatim in `tytra-device`) and the *mechanistic* DRAM
//! model re-measured by streaming through `tytra-sim`. The reproduction
//! targets are the curve's shape: contiguous bandwidth rising with size
//! and plateauing around side ≈ 1000–4000, strided flat and roughly two
//! orders of magnitude below.

use crate::emit;
use tytra_device::BandwidthModel;
use tytra_ir::AccessPattern;
use tytra_sim::DramModel;

/// One point of the Fig 10 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Square-array side (also the stride for strided access).
    pub side: u64,
    /// Measured-calibration contiguous figure, Gbps.
    pub cont_calibrated: f64,
    /// Mechanistic-model contiguous figure, Gbps.
    pub cont_mechanistic: f64,
    /// Measured-calibration strided figure, Gbps.
    pub strided_calibrated: f64,
    /// Mechanistic-model strided figure, Gbps.
    pub strided_mechanistic: f64,
}

/// The paper's x-axis points.
pub const SIDES: [u64; 12] = [100, 500, 800, 1000, 1500, 2000, 2500, 3000, 4000, 4500, 5000, 6000];

/// Run the sweep.
pub fn run() -> Vec<Fig10Row> {
    let cal = BandwidthModel::fig10_virtex7();
    let mech = DramModel::fig10_baseline();
    SIDES
        .iter()
        .map(|&side| {
            let elems = side * side;
            Fig10Row {
                side,
                cont_calibrated: cal.sustained_gbps(AccessPattern::Contiguous, elems),
                cont_mechanistic: mech.sustained_gbps(AccessPattern::Contiguous, side, 4.0),
                strided_calibrated: cal
                    .sustained_gbps(AccessPattern::Strided { stride: side }, elems),
                strided_mechanistic: mech.sustained_gbps(
                    AccessPattern::Strided { stride: side },
                    side,
                    4.0,
                ),
            }
        })
        .collect()
}

/// Render the experiment.
pub fn render() -> String {
    let mut s = String::from(
        "== Fig 10: sustained bandwidth vs size & contiguity (ADM-PCIE-7V3 baseline) ==\n",
    );
    let rows: Vec<Vec<String>> = run()
        .into_iter()
        .map(|r| {
            vec![
                r.side.to_string(),
                emit::f(r.cont_calibrated, 2),
                emit::f(r.cont_mechanistic, 2),
                emit::f(r.strided_calibrated, 3),
                emit::f(r.strided_mechanistic, 3),
            ]
        })
        .collect();
    s.push_str(&emit::table(
        &["side", "cont Gbps (meas.)", "cont Gbps (mech.)", "strided (meas.)", "strided (mech.)"],
        &rows,
    ));
    let r = run();
    let gap = r.last().unwrap().cont_calibrated / r.last().unwrap().strided_calibrated;
    s.push_str(&format!("contiguity gap at side 6000: {gap:.0}x (paper: ~90x)\n"));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_views_rise_and_plateau() {
        let rows = run();
        for view in [
            rows.iter().map(|r| r.cont_calibrated).collect::<Vec<_>>(),
            rows.iter().map(|r| r.cont_mechanistic).collect::<Vec<_>>(),
        ] {
            assert!(view.first().unwrap() < view.last().unwrap());
            // Plateau: last two points within 5 %.
            let (a, b) = (view[view.len() - 2], view[view.len() - 1]);
            assert!((b - a) / a < 0.05);
        }
    }

    #[test]
    fn both_views_show_the_contiguity_collapse() {
        let rows = run();
        let last = rows.last().unwrap();
        assert!(last.cont_calibrated / last.strided_calibrated > 50.0);
        assert!(last.cont_mechanistic / last.strided_mechanistic > 50.0);
    }

    #[test]
    fn calibrated_values_match_the_published_labels() {
        let rows = run();
        assert_eq!(rows[0].cont_calibrated, 0.3);
        assert_eq!(rows[3].cont_calibrated, 2.4);
        assert_eq!(rows[11].cont_calibrated, 6.3);
        assert_eq!(rows[11].strided_calibrated, 0.07);
    }

    #[test]
    fn mechanistic_lands_in_the_measured_decade() {
        for r in run() {
            let ratio = r.cont_mechanistic / r.cont_calibrated;
            assert!(ratio > 0.2 && ratio < 6.0, "side {}: ratio {ratio}", r.side);
        }
    }
}
