//! Table II — estimated vs actual resources and throughput for the
//! three scientific kernels (integer versions).
//!
//! Estimates come from the cost model, actuals from the virtual
//! toolchain (resources, clock) and the cycle-level simulator (CPKI).
//! The reproduction target is the error *regime*: single-digit
//! percentages, BRAM within a fraction of a percent (the window-bit
//! arithmetic), and zero-DSP rows staying zero.

use crate::emit;
use tytra_cost::estimate;
use tytra_device::{stratix_v_gsd8, ResourceVector};
use tytra_kernels::{all_kernels, EvalKernel};
use tytra_sim::{run_application, synthesize};
use tytra_transform::Variant;

/// One kernel's estimated-vs-actual comparison.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Kernel name.
    pub kernel: String,
    /// Cost-model estimate.
    pub estimated: ResourceVector,
    /// Virtual-toolchain actual.
    pub actual: ResourceVector,
    /// Estimated cycles per kernel instance.
    pub cpki_est: f64,
    /// Simulated cycles per kernel instance.
    pub cpki_actual: u64,
    /// Signed percentage errors [ALUT, REG, BRAM, DSP].
    pub errors_pct: [f64; 4],
    /// Signed CPKI percentage error.
    pub cpki_error_pct: f64,
}

/// Evaluate one kernel under the baseline variant.
pub fn row_for(kernel: &dyn EvalKernel) -> Table2Row {
    let dev = stratix_v_gsd8();
    let m = kernel.lower_variant(&Variant::baseline()).expect("baseline lowers");
    let est = estimate(&m, &dev).expect("estimate");
    let act = synthesize(&m, &dev).expect("synthesize");
    let run = run_application(&m, &dev).expect("simulate");
    let errors_pct = est.resources.total.pct_error_vs(&act.resources);
    let cpki_error_pct = (est.throughput.cpki - run.cpki() as f64) / run.cpki() as f64 * 100.0;
    Table2Row {
        kernel: kernel.name().to_string(),
        estimated: est.resources.total,
        actual: act.resources,
        cpki_est: est.throughput.cpki,
        cpki_actual: run.cpki(),
        errors_pct,
        cpki_error_pct,
    }
}

/// Run all three kernels.
pub fn run() -> Vec<Table2Row> {
    all_kernels().iter().map(|k| row_for(k.as_ref())).collect()
}

/// Render the experiment.
pub fn render() -> String {
    let mut s = String::from(
        "== Table II: estimated vs actual resources & CPKI (three kernels, integer) ==\n",
    );
    let mut rows = Vec::new();
    for r in run() {
        rows.push(vec![
            r.kernel.clone(),
            "est".into(),
            r.estimated.aluts.to_string(),
            r.estimated.regs.to_string(),
            r.estimated.bram_bits.to_string(),
            r.estimated.dsps.to_string(),
            emit::f(r.cpki_est, 0),
        ]);
        rows.push(vec![
            String::new(),
            "actual".into(),
            r.actual.aluts.to_string(),
            r.actual.regs.to_string(),
            r.actual.bram_bits.to_string(),
            r.actual.dsps.to_string(),
            r.cpki_actual.to_string(),
        ]);
        rows.push(vec![
            String::new(),
            "% err".into(),
            emit::pct(r.errors_pct[0]),
            emit::pct(r.errors_pct[1]),
            emit::pct(r.errors_pct[2]),
            emit::pct(r.errors_pct[3]),
            emit::pct(r.cpki_error_pct),
        ]);
    }
    s.push_str(&emit::table(&["kernel", "", "ALUT", "REG", "BRAM(bits)", "DSP", "CPKI"], &rows));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_kernels::{Hotspot, LavaMd, Sor};

    #[test]
    fn errors_stay_in_the_table2_regime() {
        for r in run() {
            assert!(r.errors_pct[0].abs() < 15.0, "{}: ALUT {:?}", r.kernel, r.errors_pct);
            assert!(r.errors_pct[1].abs() < 15.0, "{}: REG {:?}", r.kernel, r.errors_pct);
            assert!(r.errors_pct[2].abs() < 2.0, "{}: BRAM {:?}", r.kernel, r.errors_pct);
            assert!(r.errors_pct[3].abs() <= 15.0, "{}: DSP {:?}", r.kernel, r.errors_pct);
            assert!(r.cpki_error_pct.abs() < 6.0, "{}: CPKI {}", r.kernel, r.cpki_error_pct);
        }
    }

    #[test]
    fn sor_row_has_zero_dsps_and_window_bram() {
        let r = row_for(&Sor::default());
        assert_eq!(r.estimated.dsps, 0, "constant coefficients strength-reduce");
        assert_eq!(r.actual.dsps, 0);
        // 30³ grid: window ±900 on ui18 → (1801)×18 est vs 1800×18
        // actual.
        assert_eq!(r.estimated.bram_bits, 1801 * 18);
        assert_eq!(r.actual.bram_bits, 1800 * 18);
    }

    #[test]
    fn hotspot_row_matches_paper_bram_arithmetic() {
        let r = row_for(&Hotspot::default());
        // ±512 window on ui32: 32.8 Kbit estimated vs 32.7 Kbit actual —
        // Table II's hotspot BRAM row to the bit.
        assert_eq!(r.estimated.bram_bits, 32_800);
        assert_eq!(r.actual.bram_bits, 32_768);
        assert_eq!(r.estimated.dsps, r.actual.dsps, "ui32 products cannot pair");
        assert_eq!(r.estimated.dsps, 12);
    }

    #[test]
    fn lavamd_row_shows_dsp_pairing_gap() {
        let r = row_for(&LavaMd::default());
        assert_eq!(r.estimated.dsps, 26, "Table II estimates 26");
        assert_eq!(r.actual.dsps, 23, "pairing saves 3 (Table II actual 23)");
        assert!((r.errors_pct[3] - 13.0).abs() < 1.0, "{:?}", r.errors_pct);
        assert_eq!(r.estimated.bram_bits, 0, "no row-sized windows");
    }

    #[test]
    fn estimates_never_equal_actuals_exactly_on_alut_axis() {
        for r in run() {
            assert_ne!(r.estimated.aluts, r.actual.aluts, "{}", r.kernel);
        }
    }
}
