//! Fig 18 — increase from idle energy consumption for the SOR sweep,
//! normalised against the CPU-only solution.
//!
//! Reproduction targets: FPGAs "very quickly overtake CPU-only
//! solutions"; `fpga-tytra` shows up to ~11× power-efficiency over the
//! CPU and ~3× over `fpga-maxJ`.

use crate::emit;
use crate::fig17;
use tytra_hls_baseline::CaseStudyPoint;

/// Same sweep as Fig 17 (the paper derives both figures from one run).
pub fn run() -> Vec<CaseStudyPoint> {
    fig17::run()
}

/// Render the experiment.
pub fn render() -> String {
    render_points(&run())
}

/// Render pre-computed points.
pub fn render_points(points: &[CaseStudyPoint]) -> String {
    let mut s = String::from(
        "== Fig 18: SOR delta energy vs grid size, normalised to CPU (nmaxp = 1000) ==\n",
    );
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let (c, m, t) = p.energy_normalized();
            vec![
                p.side.to_string(),
                emit::f(c, 2),
                emit::f(m, 2),
                emit::f(t, 2),
                emit::f(p.cpu_j, 1),
                emit::f(p.maxj_j, 1),
                emit::f(p.tytra_j, 1),
            ]
        })
        .collect();
    s.push_str(&emit::table(
        &["side", "cpu", "fpga-maxJ", "fpga-tytra", "cpu[J]", "maxJ[J]", "tytra[J]"],
        &rows,
    ));
    let best_vs_cpu = points.iter().map(|p| p.cpu_j / p.tytra_j).fold(0.0f64, f64::max);
    let best_vs_maxj = points.iter().map(|p| p.maxj_j / p.tytra_j).fold(0.0f64, f64::max);
    s.push_str(&format!(
        "tytra energy gain: {best_vs_cpu:.1}x over cpu (paper: up to 11x), {best_vs_maxj:.1}x over maxJ (paper: 2.9x)\n",
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpga_overtakes_cpu_energy_quickly() {
        let pts = run();
        for p in pts.iter().filter(|p| p.side >= 48) {
            assert!(p.tytra_j < p.cpu_j, "side {}", p.side);
        }
        // Even the conventional HLS port wins energy at scale.
        let p192 = pts.iter().find(|p| p.side == 192).unwrap();
        assert!(p192.maxj_j < p192.cpu_j);
    }

    #[test]
    fn efficiency_factors_near_paper() {
        let pts = run();
        let vs_cpu = pts.iter().map(|p| p.cpu_j / p.tytra_j).fold(0.0f64, f64::max);
        let vs_maxj = pts.iter().map(|p| p.maxj_j / p.tytra_j).fold(0.0f64, f64::max);
        assert!((5.0..20.0).contains(&vs_cpu), "vs cpu {vs_cpu} (paper 11x)");
        assert!((1.5..8.0).contains(&vs_maxj), "vs maxj {vs_maxj} (paper 2.9x)");
    }

    #[test]
    fn tytra_always_beats_maxj_on_energy() {
        for p in run() {
            assert!(p.tytra_j < p.maxj_j, "side {}", p.side);
        }
    }
}
