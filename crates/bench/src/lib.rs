//! # tytra-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation, each producing
//! structured rows plus a rendered text table, with a binary per
//! experiment (`cargo run -p tytra-bench --release --bin fig09` etc.,
//! or `--bin all` for the full set) and Criterion benches for the
//! timing-sensitive claims. See DESIGN.md §4 for the experiment index
//! and EXPERIMENTS.md for recorded paper-vs-measured results.

pub mod ablation;
pub mod emit;
pub mod fig09;
pub mod fig10;
pub mod fig15;
pub mod fig17;
pub mod fig18;
pub mod speedup;
pub mod table2;

/// Run every experiment and render the full report (the `all` binary).
pub fn run_all() -> String {
    let mut s = String::new();
    s.push_str(&fig09::render());
    s.push('\n');
    s.push_str(&fig10::render());
    s.push('\n');
    s.push_str(&table2::render());
    s.push('\n');
    s.push_str(&fig15::render());
    s.push('\n');
    s.push_str(&fig17::render());
    s.push('\n');
    s.push_str(&fig18::render());
    s.push('\n');
    s.push_str(&speedup::render());
    s.push('\n');
    s.push_str(&ablation::render());
    s
}
