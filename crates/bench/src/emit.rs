//! Minimal table rendering shared by the experiment modules (kept
//! dependency-free per DESIGN.md §7 — no serde_json beyond the approved
//! list).

/// Render rows of equal length as an aligned text table with a header.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        out.push('\n');
    };
    render_row(&mut out, &header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for r in rows {
        render_row(&mut out, r);
    }
    out
}

/// Format a float with the given decimals.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Format a signed percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t =
            table(&["a", "bbbb"], &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2].trim(), "1     2");
        assert_eq!(lines[3].trim(), "100     x");
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(-7.04), "-7.0%");
        assert_eq!(pct(0.333), "+0.3%");
    }
}
