//! Criterion benches over the compilation-pipeline stages the paper's
//! flow touches per variant: parse → validate → cost → synthesize →
//! simulate → emit HDL. Shows where the (already sub-millisecond)
//! per-variant budget goes.

use criterion::{criterion_group, criterion_main, Criterion};
use tytra_codegen::emit_design;
use tytra_cost::estimate;
use tytra_device::stratix_v_gsd8;
use tytra_ir::{parse, print};
use tytra_kernels::{EvalKernel, Sor};
use tytra_sim::{simulate_instance, synthesize};
use tytra_transform::Variant;

fn stages(c: &mut Criterion) {
    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let module = sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap();
    let text = print(&module);

    let mut g = c.benchmark_group("pipeline_stages");
    g.bench_function("lower_from_frontend", |b| {
        b.iter(|| sor.lower_variant(&Variant { lanes: 4, ..Variant::baseline() }).unwrap())
    });
    g.bench_function("print_to_text", |b| b.iter(|| print(&module).len()));
    g.bench_function("parse_and_validate", |b| b.iter(|| parse(&text).unwrap().functions.len()));
    g.bench_function("cost_model", |b| b.iter(|| estimate(&module, &dev).unwrap().throughput.ekit));
    g.bench_function("virtual_synthesis", |b| {
        b.iter(|| synthesize(&module, &dev).unwrap().resources.aluts)
    });
    g.bench_function("cycle_simulation", |b| {
        b.iter(|| simulate_instance(&module, &dev, 200.0).unwrap().total)
    });
    g.bench_function("emit_verilog", |b| b.iter(|| emit_design(&module, &dev).unwrap().len()));
    g.finish();
}

criterion_group!(benches, stages);
criterion_main!(benches);
