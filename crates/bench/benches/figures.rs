//! Criterion benches over the figure/table regeneration pipelines —
//! one per experiment, so `cargo bench` exercises every reproduction
//! path and reports how long regenerating each artefact takes.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("figures/fig09_resource_curves", |b| {
        b.iter(|| tytra_bench::fig09::run().len())
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("figures/fig10_bandwidth", |b| b.iter(|| tytra_bench::fig10::run().len()));
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig15_lane_sweep", |b| b.iter(tytra_bench::fig15::walls));
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("table2_accuracy", |b| b.iter(|| tytra_bench::table2::run().len()));
    g.finish();
}

fn bench_fig17_18(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    // One case-study sweep feeds both figures.
    g.bench_function("fig17_fig18_case_study", |b| b.iter(|| tytra_bench::fig17::run().len()));
    g.finish();
}

criterion_group!(benches, bench_fig09, bench_fig10, bench_fig15, bench_table2, bench_fig17_18);
criterion_main!(benches);
