//! The §VI-A speed claim under Criterion: cost-model evaluation vs the
//! detailed preliminary estimator vs the full virtual-toolchain run,
//! all on the same SOR variant. The paper's claim is >200× between the
//! first two.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tytra_cost::{estimate, EstimatorSession};
use tytra_device::stratix_v_gsd8;
use tytra_hls_baseline::slow_estimate;
use tytra_kernels::{EvalKernel, Sor};
use tytra_sim::run_application;
use tytra_transform::Variant;

fn bench_estimators(c: &mut Criterion) {
    let sor = Sor::cubic(96, 10);
    let m = sor.lower_variant(&Variant::baseline()).expect("lowers");
    let dev = stratix_v_gsd8();

    let mut g = c.benchmark_group("estimator_speed");
    g.sample_size(20);

    g.bench_function("cost_model", |b| {
        b.iter(|| estimate(&m, &dev).expect("estimate").throughput.ekit)
    });
    g.bench_function("slow_preliminary_estimator", |b| {
        b.iter_batched(
            || (),
            |_| slow_estimate(&m, &dev).expect("slow").cpki,
            BatchSize::PerIteration,
        )
    });
    g.bench_function("full_virtual_run", |b| {
        b.iter(|| run_application(&m, &dev).expect("run").cpki())
    });
    g.finish();
}

fn bench_variant_sweep(c: &mut Criterion) {
    // Costing a whole 16-variant sweep — what the DSE pays per kernel.
    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let variants: Vec<_> =
        [1u64, 2, 4, 8].iter().map(|&l| Variant { lanes: l, ..Variant::baseline() }).collect();
    let modules: Vec<_> = variants.iter().map(|v| sor.lower_variant(v).expect("lowers")).collect();

    c.bench_function("cost_model/4_variant_sweep", |b| {
        b.iter(|| {
            modules
                .iter()
                .map(|m| estimate(m, &dev).expect("estimate").throughput.ekit)
                .sum::<f64>()
        })
    });
}

fn bench_session_sweep(c: &mut Criterion) {
    // The same 4-variant sweep through the pass pipeline: cold pays the
    // session construction plus every pass per variant; warm replays
    // memoized sub-results across the whole sweep.
    let sor = Sor::cubic(48, 10);
    let dev = stratix_v_gsd8();
    let modules: Vec<_> = [1u64, 2, 4, 8]
        .iter()
        .map(|&l| sor.lower_variant(&Variant { lanes: l, ..Variant::baseline() }).expect("lowers"))
        .collect();
    let sweep = |session: &mut EstimatorSession| {
        modules.iter().map(|m| session.estimate(m).expect("estimate").throughput.ekit).sum::<f64>()
    };

    let mut g = c.benchmark_group("session_sweep");
    g.bench_function("cold", |b| {
        b.iter_batched(
            || EstimatorSession::new(dev.clone()),
            |mut session| sweep(&mut session),
            BatchSize::PerIteration,
        )
    });
    let mut warm = EstimatorSession::new(dev.clone());
    sweep(&mut warm); // prime the memo tables once, untimed
    g.bench_function("warm", |b| b.iter(|| sweep(&mut warm)));
    g.finish();
}

criterion_group!(benches, bench_estimators, bench_variant_sweep, bench_session_sweep);
criterion_main!(benches);
