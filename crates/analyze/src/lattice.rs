//! The lattice abstraction every analysis value lives in.
//!
//! A monotone dataflow analysis assigns each program point a value from
//! a join-semilattice and iterates monotone transfer functions to a
//! fixpoint. The solver ([`crate::solver`]) only needs three things from
//! the value domain: a least element, a join, and a way to tell whether
//! a join actually changed anything (that is the worklist's termination
//! test), so that is the whole trait.

use std::collections::BTreeSet;
use tytra_ir::ScalarType;

/// A join-semilattice value.
pub trait Lattice: Clone + PartialEq {
    /// The least element (`⊥`): the value every node starts from.
    fn bottom() -> Self;

    /// Join `other` into `self` (least upper bound), returning `true`
    /// when `self` changed. The solver re-enqueues a node's dependents
    /// exactly when its value changed, so a `join` that reports phantom
    /// changes costs iterations and one that misses changes loses
    /// soundness.
    fn join(&mut self, other: &Self) -> bool;
}

/// Reachability / may-facts: `false = ⊥`, `true = ⊤`.
impl Lattice for bool {
    fn bottom() -> bool {
        false
    }

    fn join(&mut self, other: &bool) -> bool {
        let changed = !*self && *other;
        *self |= *other;
        changed
    }
}

/// The powerset lattice ordered by inclusion, joined by union. Used by
/// the stream-dependence analysis ("which memory objects can flow into
/// this node").
impl<T: Ord + Clone> Lattice for BTreeSet<T> {
    fn bottom() -> BTreeSet<T> {
        BTreeSet::new()
    }

    fn join(&mut self, other: &BTreeSet<T>) -> bool {
        let before = self.len();
        for x in other {
            if !self.contains(x) {
                self.insert(x.clone());
            }
        }
        self.len() != before
    }
}

/// An integer interval with an explicit empty element and an explicit
/// "any value of the type" top. Bounds are `i128` so 64-bit arithmetic
/// on the endpoints cannot itself overflow; the transfer functions clamp
/// results back to the value's [`ScalarType`] range (treating overflow
/// as "could be anything", which is sound under wrapping *or*
/// saturating hardware semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interval {
    /// No value reaches this point yet (`⊥`).
    Empty,
    /// Every reachable value lies in `lo..=hi`.
    Range {
        /// Least possible value.
        lo: i128,
        /// Greatest possible value.
        hi: i128,
    },
    /// Any representable value (`⊤`); also the only element used for
    /// floating-point values, which this analysis does not bound.
    Any,
}

impl Interval {
    /// The interval holding exactly `v`.
    pub fn constant(v: i128) -> Interval {
        Interval::Range { lo: v, hi: v }
    }

    /// An interval from endpoints (normalising `lo > hi` to `Empty`).
    pub fn range(lo: i128, hi: i128) -> Interval {
        if lo > hi {
            Interval::Empty
        } else {
            Interval::Range { lo, hi }
        }
    }

    /// The full representable range of `ty`, or [`Interval::Any`] for
    /// floats (whose values this analysis does not order).
    pub fn of_type(ty: ScalarType) -> Interval {
        match ty {
            ScalarType::UInt(w) => {
                let hi = (1i128 << w.min(127)) - 1;
                Interval::Range { lo: 0, hi }
            }
            ScalarType::Int(w) => {
                let half = 1i128 << (w.saturating_sub(1)).min(126);
                Interval::Range { lo: -half, hi: half - 1 }
            }
            ScalarType::Float(_) => Interval::Any,
        }
    }

    /// The single value this interval holds, if it is a singleton.
    pub fn as_constant(&self) -> Option<i128> {
        match self {
            Interval::Range { lo, hi } if lo == hi => Some(*lo),
            _ => None,
        }
    }

    /// The endpoints, when the interval is a finite range.
    pub fn bounds(&self) -> Option<(i128, i128)> {
        match self {
            Interval::Range { lo, hi } => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// Clamp this interval to the representable range of `ty`. A result
    /// that sticks out of the type's range may have wrapped in hardware,
    /// so anything outside widens to the type's full range rather than
    /// truncating (truncation would be unsound under wrapping).
    pub fn fit(self, ty: ScalarType) -> Interval {
        let Interval::Range { lo, hi } = self else {
            return match self {
                Interval::Empty => Interval::Empty,
                _ => Interval::of_type(ty),
            };
        };
        match Interval::of_type(ty) {
            Interval::Range { lo: tlo, hi: thi } => {
                if lo >= tlo && hi <= thi {
                    Interval::Range { lo, hi }
                } else {
                    Interval::Range { lo: tlo, hi: thi }
                }
            }
            other => other,
        }
    }
}

impl Lattice for Interval {
    fn bottom() -> Interval {
        Interval::Empty
    }

    fn join(&mut self, other: &Interval) -> bool {
        let joined = match (*self, *other) {
            (a, Interval::Empty) => a,
            (Interval::Empty, b) => b,
            (Interval::Any, _) | (_, Interval::Any) => Interval::Any,
            (Interval::Range { lo: a, hi: b }, Interval::Range { lo: c, hi: d }) => {
                Interval::Range { lo: a.min(c), hi: b.max(d) }
            }
        };
        let changed = joined != *self;
        *self = joined;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_lattice_is_monotone() {
        let mut r = bool::bottom();
        assert!(!r.join(&false));
        assert!(r.join(&true));
        assert!(!r.join(&true));
        assert!(!r.join(&false), "true is top: nothing changes it");
    }

    #[test]
    fn set_lattice_joins_by_union() {
        let mut s: BTreeSet<u32> = Lattice::bottom();
        assert!(s.join(&BTreeSet::from([1, 2])));
        assert!(!s.join(&BTreeSet::from([2])));
        assert!(s.join(&BTreeSet::from([3])));
        assert_eq!(s, BTreeSet::from([1, 2, 3]));
    }

    #[test]
    fn interval_join_takes_the_hull() {
        let mut i = Interval::constant(4);
        assert!(i.join(&Interval::constant(9)));
        assert_eq!(i, Interval::range(4, 9));
        assert!(!i.join(&Interval::constant(5)), "5 is inside the hull");
        assert!(i.join(&Interval::Any));
        assert_eq!(i, Interval::Any);
    }

    #[test]
    fn interval_fit_widens_on_overflow() {
        let ty = ScalarType::UInt(8);
        assert_eq!(Interval::range(3, 200).fit(ty), Interval::range(3, 200));
        // 300 exceeds u8: the value may have wrapped anywhere.
        assert_eq!(Interval::range(3, 300).fit(ty), Interval::range(0, 255));
        assert_eq!(Interval::range(-1, 5).fit(ty), Interval::range(0, 255));
    }

    #[test]
    fn type_ranges_match_the_width() {
        assert_eq!(Interval::of_type(ScalarType::UInt(18)), Interval::range(0, (1 << 18) - 1));
        assert_eq!(Interval::of_type(ScalarType::Int(16)), Interval::range(-32768, 32767));
        assert_eq!(Interval::of_type(ScalarType::Float(32)), Interval::Any);
    }

    #[test]
    fn empty_normalisation_and_constants() {
        assert_eq!(Interval::range(5, 4), Interval::Empty);
        assert_eq!(Interval::constant(7).as_constant(), Some(7));
        assert_eq!(Interval::range(1, 2).as_constant(), None);
    }
}
