//! Value-range / constant propagation over the Compute-IR.
//!
//! Each reachable function gets one dataflow node per defined name
//! (parameter, offset stream, SSA value, reduction accumulator) valued
//! in the [`Interval`] lattice. Input parameters seed at their type's
//! full range, immediates at singletons, and interval arithmetic flows
//! through the def–use edges. The IR is straight-line SSA, so the only
//! cycles are reduction accumulators reading themselves; a widening cap
//! (jump to the type's full range after [`WIDEN_AFTER`] visits) keeps
//! those finite.
//!
//! Two products come out: per-name ranges (the `tybec analyze` report,
//! including how many values are compile-time constants) and
//! [`ClampFinding`]s — `min`/`max` instructions whose immediate bound
//! lies outside the other operand's derived range, making one branch of
//! the clamp unreachable. The TL1007 lint pass renders those findings.

use std::collections::BTreeMap;

use tytra_ir::{
    Instruction, IrFunction, IrModule, Opcode, Operand, ParKind, ScalarType, SrcLoc, Stmt,
};

use crate::lattice::{Interval, Lattice};
use crate::solver::{reachable, solve, SolverStats};

/// Visits of one node before its value widens to the full type range.
/// Reduction self-loops converge in one widening step; anything higher
/// only delays that without adding precision (the loop body repeats
/// identically every iteration).
pub const WIDEN_AFTER: u32 = 4;

/// A `min`/`max` clamp whose immediate can never fire (or always
/// fires): one branch of the clamp is unreachable given the derived
/// range of the other operand.
#[derive(Debug, Clone, PartialEq)]
pub struct ClampFinding {
    /// Function containing the clamp.
    pub func: String,
    /// Destination name of the clamp instruction.
    pub value: String,
    /// `min` or `max`.
    pub mnemonic: &'static str,
    /// The immediate bound.
    pub imm: i64,
    /// Lower end of the clamped operand's derived range.
    pub lo: i128,
    /// Upper end of the clamped operand's derived range.
    pub hi: i128,
    /// `true` when the result is always the immediate (the data path is
    /// dead); `false` when the clamp is a no-op (the immediate is dead).
    pub always_imm: bool,
    /// Source location of the instruction.
    pub span: SrcLoc,
}

/// Ranges derived for one function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnRanges {
    /// Interval per defined name (params, offsets, SSA values,
    /// accumulators), in name order.
    pub values: BTreeMap<String, Interval>,
    /// Offset window per source stream: `(most negative, most
    /// positive)` offset — the NDRange-bounds fact the smart-buffer
    /// sizing reads.
    pub windows: BTreeMap<String, (i64, i64)>,
}

impl FnRanges {
    /// How many derived values are compile-time constants.
    pub fn constants(&self) -> usize {
        self.values.values().filter(|v| v.as_constant().is_some()).count()
    }
}

/// Result of the whole-module range analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RangeAnalysis {
    /// Per-function ranges, for every function reachable from `main`.
    pub per_fn: BTreeMap<String, FnRanges>,
    /// Unreachable-range clamp findings (TL1007), in program order.
    pub findings: Vec<ClampFinding>,
    /// Summed solver counters across all functions.
    pub stats: SolverStats,
}

/// Run value-range propagation over every function reachable from
/// `main`.
pub fn analyze_ranges(m: &IrModule) -> RangeAnalysis {
    let (live, mut stats) = reachable(m);
    let mut out = RangeAnalysis::default();
    for f in &m.functions {
        if !live.contains(&f.name) {
            continue;
        }
        let (ranges, fn_stats, findings) = analyze_function(f);
        stats.absorb(&fn_stats);
        out.per_fn.insert(f.name.clone(), ranges);
        out.findings.extend(findings);
    }
    out.stats = stats;
    out
}

/// One dataflow node: a defined name and how its value is computed.
enum NodeKind<'a> {
    /// Input parameter: seeded at the type's full range.
    Param(ScalarType),
    /// Offset stream: same value range as its source stream.
    Offset(&'a str),
    /// SSA instruction (local or reduction destination).
    Instr(&'a Instruction),
}

/// Node table of one function: defined names in definition order.
struct Nodes<'a> {
    names: Vec<&'a str>,
    kinds: Vec<NodeKind<'a>>,
    index: BTreeMap<&'a str, usize>,
}

impl<'a> Nodes<'a> {
    fn add(&mut self, name: &'a str, kind: NodeKind<'a>) {
        if !self.index.contains_key(name) {
            self.index.insert(name, self.names.len());
            self.names.push(name);
            self.kinds.push(kind);
        }
    }

    fn collect(f: &'a IrFunction) -> Nodes<'a> {
        let mut nodes = Nodes { names: Vec::new(), kinds: Vec::new(), index: BTreeMap::new() };
        for p in &f.params {
            nodes.add(&p.name, NodeKind::Param(p.ty));
        }
        for s in &f.body {
            match s {
                Stmt::Offset(o) => nodes.add(&o.dest, NodeKind::Offset(&o.src)),
                Stmt::Instr(i) => nodes.add(i.dest.name(), NodeKind::Instr(i)),
                Stmt::Call(_) => {}
            }
        }
        nodes
    }
}

fn analyze_function(f: &IrFunction) -> (FnRanges, SolverStats, Vec<ClampFinding>) {
    let nodes = Nodes::collect(f);

    // succs: def → use edges. Straight-line SSA means one definition per
    // name; the only back-edges are reductions re-reading themselves.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nodes.names.len()];
    for (n, kind) in nodes.kinds.iter().enumerate() {
        let deps: Vec<&str> = match kind {
            NodeKind::Param(_) => Vec::new(),
            NodeKind::Offset(src) => vec![src],
            NodeKind::Instr(i) => i.operands.iter().filter_map(Operand::name).collect(),
        };
        for d in deps {
            if let Some(&def) = nodes.index.get(d) {
                if !succs[def].contains(&n) {
                    succs[def].push(n);
                }
            }
        }
    }

    let mut visits = vec![0u32; nodes.names.len()];
    let (vals, stats) = solve(&succs, |n, vals: &[Interval]| {
        visits[n] += 1;
        match &nodes.kinds[n] {
            NodeKind::Param(ty) => Interval::of_type(*ty),
            NodeKind::Offset(src) => nodes.index.get(*src).map_or(Interval::Any, |&d| vals[d]),
            NodeKind::Instr(i) => {
                if visits[n] > WIDEN_AFTER {
                    // Widen: a reduction self-loop grows its range every
                    // visit; jump straight to the type's full range.
                    return Interval::of_type(i.ty);
                }
                let mut v = eval(i, |name| match nodes.index.get(name) {
                    Some(&d) => vals[d],
                    // Module-level names (ports, foreign globals): no
                    // local definition, assume anything.
                    None => Interval::Any,
                })
                .fit(i.ty);
                if i.dest.is_global() {
                    // Reduction accumulators start at zero before the
                    // first kernel iteration folds into them; without
                    // this seed the self-loop never leaves bottom.
                    v.join(&Interval::constant(0).fit(i.ty));
                }
                v
            }
        }
    });

    let mut ranges = FnRanges::default();
    for (name, v) in nodes.names.iter().zip(&vals) {
        ranges.values.insert((*name).to_string(), *v);
    }
    for src in f.offset_sources() {
        let mut neg = 0i64;
        let mut pos = 0i64;
        for o in f.offsets().filter(|o| o.src == src) {
            neg = neg.min(o.offset);
            pos = pos.max(o.offset);
        }
        ranges.windows.insert(src.to_string(), (neg, pos));
    }

    // Clamp findings, in program order. Only datapath kinds: `seq`
    // bodies time-multiplex one unit and routinely clamp defensively.
    let mut findings = Vec::new();
    if matches!(f.kind, ParKind::Pipe | ParKind::Comb) {
        for i in f.instrs() {
            findings.extend(clamp_finding(f, i, &nodes.index, &vals));
        }
    }
    (ranges, stats, findings)
}

/// Check one `min`/`max` instruction for an unreachable clamp branch.
fn clamp_finding(
    f: &IrFunction,
    i: &Instruction,
    index: &BTreeMap<&str, usize>,
    vals: &[Interval],
) -> Option<ClampFinding> {
    if !matches!(i.op, Opcode::Min | Opcode::Max) || i.operands.len() != 2 {
        return None;
    }
    // Exactly one immediate bound against one ranged value.
    let (imm, other) = match (&i.operands[0], &i.operands[1]) {
        (Operand::Imm(c), o) | (o, Operand::Imm(c)) if !o.is_const() => (*c, o),
        _ => return None,
    };
    let name = other.name()?;
    let (lo, hi) = vals[*index.get(name)?].bounds()?;
    let c = i128::from(imm);
    let always_imm = match i.op {
        Opcode::Min => c <= lo, // min(x, c) with c ≤ lo: always c
        _ => c >= hi,           // max(x, c) with c ≥ hi: always c
    };
    let noop = match i.op {
        Opcode::Min => c >= hi, // min(x, c) with c ≥ hi: always x
        _ => c <= lo,           // max(x, c) with c ≤ lo: always x
    };
    if !always_imm && !noop {
        return None;
    }
    Some(ClampFinding {
        func: f.name.clone(),
        value: i.dest.name().to_string(),
        mnemonic: i.op.mnemonic(),
        imm,
        lo,
        hi,
        always_imm,
        span: i.span,
    })
}

/// Interval evaluation of one instruction from its operand ranges.
fn eval(i: &Instruction, lookup: impl Fn(&str) -> Interval) -> Interval {
    if matches!(i.ty, ScalarType::Float(_)) {
        // Floats are unordered in this analysis.
        return Interval::Any;
    }
    if i.op.is_compare() {
        // Comparison flags are 1-bit regardless of declared width.
        return Interval::range(0, 1);
    }
    let ops: Vec<Interval> = i
        .operands
        .iter()
        .map(|o| match o {
            Operand::Imm(v) => Interval::constant(i128::from(*v)),
            Operand::ImmF(_) => Interval::Any,
            Operand::Local(n) | Operand::Global(n) => lookup(n),
        })
        .collect();
    if ops.contains(&Interval::Empty) {
        return Interval::Empty;
    }
    let bin = |f: fn((i128, i128), (i128, i128)) -> Interval| -> Interval {
        match (ops[0].bounds(), ops[1].bounds()) {
            (Some(a), Some(b)) => f(a, b),
            _ => Interval::Any,
        }
    };
    match i.op {
        Opcode::Add => {
            bin(|(al, ah), (bl, bh)| Interval::range(al.saturating_add(bl), ah.saturating_add(bh)))
        }
        Opcode::Sub => {
            bin(|(al, ah), (bl, bh)| Interval::range(al.saturating_sub(bh), ah.saturating_sub(bl)))
        }
        Opcode::Mul => bin(|(al, ah), (bl, bh)| {
            let ps = [
                al.saturating_mul(bl),
                al.saturating_mul(bh),
                ah.saturating_mul(bl),
                ah.saturating_mul(bh),
            ];
            Interval::range(*ps.iter().min().unwrap(), *ps.iter().max().unwrap())
        }),
        Opcode::Min => bin(|(al, ah), (bl, bh)| Interval::range(al.min(bl), ah.min(bh))),
        Opcode::Max => bin(|(al, ah), (bl, bh)| Interval::range(al.max(bl), ah.max(bh))),
        Opcode::Neg => match ops[0].bounds() {
            Some((lo, hi)) => Interval::range(hi.saturating_neg(), lo.saturating_neg()),
            None => Interval::Any,
        },
        Opcode::Abs => match ops[0].bounds() {
            Some((lo, hi)) if lo >= 0 => Interval::range(lo, hi),
            Some((lo, hi)) if hi <= 0 => Interval::range(hi.saturating_neg(), lo.saturating_neg()),
            Some((lo, hi)) => Interval::range(0, hi.max(lo.saturating_neg())),
            None => Interval::Any,
        },
        Opcode::Select => {
            // Either arm can be taken: the hull of both data operands.
            let mut v = ops[1];
            v.join(&ops[2]);
            v
        }
        // Division, shifts and bitwise logic fold only when fully
        // constant; interval rules for them buy little on this IR.
        Opcode::Div
        | Opcode::Rem
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor => match (ops[0].as_constant(), ops[1].as_constant()) {
            (Some(a), Some(b)) => fold_const(i.op, a, b),
            _ => Interval::Any,
        },
        _ => Interval::Any,
    }
}

/// Constant-fold the opcodes that only fold when both operands are
/// known exactly.
fn fold_const(op: Opcode, a: i128, b: i128) -> Interval {
    let v = match op {
        Opcode::Div if b != 0 => a.checked_div(b),
        Opcode::Rem if b != 0 => a.checked_rem(b),
        Opcode::Shl if (0..128).contains(&b) => a.checked_shl(b as u32),
        Opcode::Shr if (0..128).contains(&b) => a.checked_shr(b as u32),
        Opcode::And => Some(a & b),
        Opcode::Or => Some(a | b),
        Opcode::Xor => Some(a ^ b),
        _ => None,
    };
    v.map_or(Interval::Any, Interval::constant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::parse;

    const CLAMPED: &str = r#"
!module = !"clamp"
!ndrange = !{64}
!nki = !1
!form = !"B"
%mem_p = memobj addrSpace(1) ui8, !size, !64
%mem_q = memobj addrSpace(1) ui8, !size, !64
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui8, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui8, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui8 %p, out ui8 %q) pipe {
  ui8 %a = min ui8 %p, 300
  ui8 %b = max ui8 %a, 10
  ui8 %q__out = or ui8 %b, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;

    #[test]
    fn clamp_outside_type_range_is_flagged() {
        let m = parse(CLAMPED).expect("parses");
        let r = analyze_ranges(&m);
        // min(%p, 300) on ui8: %p ∈ [0, 255], the bound can never fire.
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.mnemonic, "min");
        assert_eq!(f.imm, 300);
        assert!(!f.always_imm, "the clamp is a no-op, not a constant");
        assert_eq!((f.lo, f.hi), (0, 255));
        // max(%a, 10) is a real clamp: %a ∈ [0, 255] straddles 10.
        assert!(!r.findings.iter().any(|f| f.value == "b"));
    }

    #[test]
    fn ranges_flow_through_the_datapath() {
        let m = parse(CLAMPED).expect("parses");
        let r = analyze_ranges(&m);
        let f0 = &r.per_fn["f0"];
        assert_eq!(f0.values["p"], Interval::range(0, 255));
        assert_eq!(f0.values["a"], Interval::range(0, 255), "min(x, 300) keeps [0,255]");
        assert_eq!(f0.values["b"], Interval::range(10, 255), "max(x, 10) raises the floor");
        assert_eq!(f0.values["q__out"], Interval::range(0, 255), "or is opaque, fit to ui8");
        assert_eq!(f0.constants(), 0);
    }

    #[test]
    fn reductions_widen_instead_of_diverging() {
        let src = r#"
!module = !"acc"
!ndrange = !{64}
!nki = !1
!form = !"B"
%mem_p = memobj addrSpace(1) ui8, !size, !64
%mem_q = memobj addrSpace(1) ui8, !size, !64
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui8, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui8, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui8 %p, out ui8 %q) pipe {
  ui8 @acc = add ui8 %p, @acc
  ui8 %q__out = or ui8 %p, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;
        let m = parse(src).expect("parses");
        let r = analyze_ranges(&m);
        // The self-loop must terminate (widening) and land on the full
        // type range, not a partial unrolling.
        assert_eq!(r.per_fn["f0"].values["acc"], Interval::range(0, 255));
        assert!(r.stats.iterations > 0);
    }

    #[test]
    fn constants_propagate_and_are_counted() {
        let src = r#"
!module = !"konst"
!ndrange = !{64}
!nki = !1
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !64
%mem_q = memobj addrSpace(1) ui18, !size, !64
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %k = shl ui18 3, 4
  ui18 %q__out = add ui18 %p, %k
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;
        let m = parse(src).expect("parses");
        let r = analyze_ranges(&m);
        let f0 = &r.per_fn["f0"];
        assert_eq!(f0.values["k"].as_constant(), Some(48));
        assert_eq!(f0.constants(), 1);
        // p ∈ [0, 2^18-1]; q__out = p + 48 overflows the type range, so
        // fit() widens it back to the full ui18 range.
        assert_eq!(f0.values["q__out"], Interval::range(0, (1 << 18) - 1));
    }

    #[test]
    fn offset_windows_are_reported() {
        let src = r#"
!module = !"sten"
!ndrange = !{30, 30}
!nki = !1
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !900
%mem_q = memobj addrSpace(1) ui18, !size, !900
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %pp = ui18 %p, !offset, !+30
  ui18 %pn = ui18 %p, !offset, !-30
  ui18 %q__out = add ui18 %pp, %pn
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;
        let m = parse(src).expect("parses");
        let r = analyze_ranges(&m);
        let f0 = &r.per_fn["f0"];
        assert_eq!(f0.windows["p"], (-30, 30));
        // Offset streams carry the source's value range.
        assert_eq!(f0.values["pp"], f0.values["p"]);
    }
}
