//! The aggregated analysis report and its text / JSON renderings.
//!
//! `tybec analyze <design.tirl>` runs every analysis in the crate and
//! renders this report. The JSON form is a single strict-JSON object
//! (validated in CI by the same hand-rolled parser `trace_check` uses),
//! with the class key rendered as a hex string so no 64-bit precision is
//! lost to float readers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tytra_ir::IrModule;
use tytra_trace::{self as trace, json};

use crate::congruence::{analyze_congruence, CongruenceInfo};
use crate::deadlock::{analyze_deadlock, DeadlockAnalysis};
use crate::lattice::Interval;
use crate::range::{analyze_ranges, RangeAnalysis};
use crate::solver::{reachable, summaries, FnSummary, SolverStats};

/// Everything the analysis framework derives about one module.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Design (module) name.
    pub design: String,
    /// Per-function effect summaries (all functions, reachable or not).
    pub summaries: BTreeMap<String, FnSummary>,
    /// Function names reachable from `main`.
    pub reachable: Vec<String>,
    /// Value-range analysis (reachable functions only).
    pub ranges: RangeAnalysis,
    /// Stream-dependence / deadlock analysis.
    pub deadlock: DeadlockAnalysis,
    /// Cost-congruence facts.
    pub congruence: CongruenceInfo,
    /// Summed solver counters over every analysis.
    pub stats: SolverStats,
}

/// Run every analysis over `m`. Instrumented with `analyze.*` spans so
/// traced runs show where fixpoint time goes.
pub fn analyze_module(m: &IrModule) -> AnalysisReport {
    let _sp = trace::span("analyze.module").with("module", m.name.as_str());
    let (live, live_stats) = {
        let _s = trace::span("analyze.summaries");
        reachable(m)
    };
    let sums = summaries(m);
    let ranges = {
        let _s = trace::span("analyze.range");
        analyze_ranges(m)
    };
    let deadlock = {
        let _s = trace::span("analyze.deadlock");
        analyze_deadlock(m)
    };
    let congruence = {
        let _s = trace::span("analyze.congruence");
        analyze_congruence(m)
    };
    let mut stats = live_stats;
    stats.absorb(&ranges.stats);
    stats.absorb(&deadlock.stats);
    // Reachable names in declaration order (the solver returns a set).
    let reachable_ordered: Vec<String> =
        m.functions.iter().filter(|f| live.contains(&f.name)).map(|f| f.name.clone()).collect();
    AnalysisReport {
        design: m.name.clone(),
        summaries: sums,
        reachable: reachable_ordered,
        ranges,
        deadlock,
        congruence,
        stats,
    }
}

fn interval_text(v: Interval) -> String {
    match v {
        Interval::Empty => "empty".to_string(),
        Interval::Any => "any".to_string(),
        Interval::Range { lo, hi } if lo == hi => format!("{lo}"),
        Interval::Range { lo, hi } => format!("[{lo}, {hi}]"),
    }
}

impl AnalysisReport {
    /// Human-readable rendering (the default `tybec analyze` output).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "analysis of `{}`", self.design);
        let _ = writeln!(
            out,
            "  solver: {} nodes, {} iterations (peak worklist {})",
            self.stats.nodes, self.stats.iterations, self.stats.peak_worklist
        );
        let _ = writeln!(out, "  reachable: {}", self.reachable.join(", "));
        for name in &self.reachable {
            let Some(r) = self.ranges.per_fn.get(name) else { continue };
            let _ = writeln!(
                out,
                "  @{}: {} values ({} constant)",
                name,
                r.values.len(),
                r.constants()
            );
            for (v, iv) in &r.values {
                let _ = writeln!(out, "    %{:<12} {}", v, interval_text(*iv));
            }
            for (src, (neg, pos)) in &r.windows {
                let _ = writeln!(out, "    window %{src}: [{neg:+}, {pos:+}]");
            }
        }
        for c in &self.ranges.findings {
            let kind = if c.always_imm { "always the immediate" } else { "a no-op" };
            let _ = writeln!(
                out,
                "  clamp: `{} %{}, {}` in @{} is {} (operand in [{}, {}])",
                c.mnemonic, c.value, c.imm, c.func, kind, c.lo, c.hi
            );
        }
        for d in &self.deadlock.findings {
            let _ = writeln!(
                out,
                "  deadlock: `%{}` feeds itself through @{} (in %{}, out %{}, window [{:+}, {:+}])",
                d.mem, d.func, d.in_param, d.out_param, d.window.0, d.window.1
            );
        }
        let collapse = if self.congruence.form_collapses { "collapses" } else { "distinct" };
        let _ = writeln!(
            out,
            "  congruence: class {:#018x}, canonical form {}, A/B axis {}",
            self.congruence.key, self.congruence.canonical_form, collapse
        );
        out
    }

    /// Strict-JSON rendering: one object, keys in a fixed order,
    /// parseable by `tytra_trace::json::parse`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"design\":\"{}\"", json::escape(&self.design));
        let _ = write!(
            out,
            ",\"solver\":{{\"nodes\":{},\"iterations\":{},\"peak_worklist\":{}}}",
            self.stats.nodes, self.stats.iterations, self.stats.peak_worklist
        );
        out.push_str(",\"reachable\":[");
        for (i, f) in self.reachable.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json::escape(f));
        }
        out.push(']');
        out.push_str(",\"functions\":[");
        for (i, name) in self.reachable.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (values, constants) =
                self.ranges.per_fn.get(name).map_or((0, 0), |r| (r.values.len(), r.constants()));
            let summary = self.summaries.get(name);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"values\":{},\"constants\":{},\"consumed\":{},\"callees\":{}}}",
                json::escape(name),
                values,
                constants,
                summary.map_or(0, |s| s.consumed.len()),
                summary.map_or(0, |s| s.callees.len()),
            );
        }
        out.push(']');
        out.push_str(",\"clamp_findings\":[");
        for (i, c) in self.ranges.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"func\":\"{}\",\"value\":\"{}\",\"op\":\"{}\",\"imm\":{},\"lo\":{},\"hi\":{},\"always_imm\":{}}}",
                json::escape(&c.func),
                json::escape(&c.value),
                c.mnemonic,
                c.imm,
                c.lo,
                c.hi,
                c.always_imm
            );
        }
        out.push(']');
        out.push_str(",\"deadlock_findings\":[");
        for (i, d) in self.deadlock.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mem\":\"{}\",\"func\":\"{}\",\"in\":\"{}\",\"out\":\"{}\",\"window\":[{},{}]}}",
                json::escape(&d.mem),
                json::escape(&d.func),
                json::escape(&d.in_param),
                json::escape(&d.out_param),
                d.window.0,
                d.window.1
            );
        }
        out.push(']');
        let _ = write!(
            out,
            ",\"congruence\":{{\"key\":\"{:#018x}\",\"canonical_form\":\"{}\",\"form_collapses\":{}}}",
            self.congruence.key,
            self.congruence.canonical_form,
            self.congruence.form_collapses
        );
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::parse;

    const SRC: &str = r#"
!module = !"rpt"
!ndrange = !{64}
!nki = !1
!form = !"A"
%mem_p = memobj addrSpace(1) ui8, !size, !64
%mem_q = memobj addrSpace(1) ui8, !size, !64
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui8, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui8, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui8 %p, out ui8 %q) pipe {
  ui8 %a = min ui8 %p, 999
  ui8 %q__out = or ui8 %a, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;

    #[test]
    fn report_aggregates_every_analysis() {
        let m = parse(SRC).expect("parses");
        let r = analyze_module(&m);
        assert_eq!(r.design, "rpt");
        assert_eq!(r.reachable, vec!["f0".to_string(), "main".to_string()]);
        assert_eq!(r.ranges.findings.len(), 1, "the 999 clamp is unreachable on ui8");
        assert!(r.deadlock.findings.is_empty());
        assert!(r.congruence.form_collapses, "form A at NKI == 1");
        assert!(r.stats.nodes > 0 && r.stats.iterations > 0);
        assert_eq!(r.summaries.len(), 2);
    }

    #[test]
    fn json_is_strict_and_carries_the_findings() {
        let m = parse(SRC).expect("parses");
        let r = analyze_module(&m);
        let text = r.render_json();
        let parsed = json::parse(&text).expect("strict JSON");
        assert_eq!(parsed.get("design").and_then(|v| v.as_str()), Some("rpt"));
        let clamps = parsed.get("clamp_findings").and_then(|v| v.as_arr()).expect("array");
        assert_eq!(clamps.len(), 1);
        assert_eq!(clamps[0].get("op").and_then(|v| v.as_str()), Some("min"));
        let cong = parsed.get("congruence").expect("object");
        assert_eq!(cong.get("canonical_form").and_then(|v| v.as_str()), Some("B"));
        let key = cong.get("key").and_then(|v| v.as_str()).expect("hex key");
        assert!(key.starts_with("0x") && key.len() == 18, "{key}");
        let solver = parsed.get("solver").expect("object");
        assert!(solver.get("iterations").and_then(|v| v.as_num()).unwrap() >= 1.0);
    }

    #[test]
    fn text_rendering_mentions_the_class_and_findings() {
        let m = parse(SRC).expect("parses");
        let r = analyze_module(&m);
        let text = r.render_text();
        assert!(text.contains("analysis of `rpt`"), "{text}");
        assert!(text.contains("clamp: `min %a, 999`"), "{text}");
        assert!(text.contains("congruence: class 0x"), "{text}");
        assert!(text.contains("A/B axis collapses"), "{text}");
    }

    #[test]
    fn json_key_matches_the_congruence_key() {
        let m = parse(SRC).expect("parses");
        let r = analyze_module(&m);
        let parsed = json::parse(&r.render_json()).unwrap();
        let key = parsed
            .get("congruence")
            .and_then(|c| c.get("key"))
            .and_then(|v| v.as_str())
            .unwrap()
            .to_string();
        let parsed_key = u64::from_str_radix(key.trim_start_matches("0x"), 16).unwrap();
        assert_eq!(parsed_key, r.congruence.key);
    }
}
