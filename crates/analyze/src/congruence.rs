//! Structural cost-congruence classes.
//!
//! The DSE funnel's cheapest tier: two design variants whose canonical
//! forms are structurally identical are guaranteed — not heuristically
//! likely — to receive bit-identical cost reports, so the estimator
//! only needs to run once per class and can replicate the result to
//! every member. "Provable" is load-bearing: the pruned+prefiltered
//! leaderboard must stay bit-identical to `--exhaustive`, so the class
//! key may only erase inputs the cost model provably never reads, or
//! reads in a provably value-identical way.
//!
//! # What the key erases, and why that is sound
//!
//! **Module name.** Variants lower as `{kernel}_{variant.tag()}`, so
//! form-A and form-B siblings differ in name. The name flows only into
//! `CostReport::design` (a label); no numeric pass reads it. The
//! replicated report gets the member's own name patched back in, so
//! even the label is exact.
//!
//! **Memory-execution form A vs B, only when `NKI == 1`.** The form
//! feeds exactly two places in the estimator: the throughput
//! expressions (Eqs 1–3) and the admissible bound. For forms A and B
//! those expressions differ only in which terms are divided by `NKI`
//! (form A re-transports the NDRange every kernel iteration; form B
//! amortises the host transfer over all `NKI` iterations). With
//! `NKI == 1` every such division is by `1.0`, which is exact in
//! IEEE-754 (`x / 1.0 == x` bit-for-bit, including NaN payloads
//! produced upstream), so every intermediate — and therefore the final
//! report — is bit-identical between the two forms. The replicated
//! report's `params.form` is patched to the member's own form, making
//! the replica indistinguishable from a fresh estimate. Forms C and
//! `Tiled` change which *terms* appear, not just their scaling, so they
//! are never collapsed; neither are A/B at `NKI > 1`.
//!
//! Everything else — functions, Manage-IR, NDRange, NKI, vectorization,
//! frequency constraint — stays in the key via
//! [`tytra_ir::fingerprint_module`].

use tytra_ir::{fingerprint_module, IrModule, MemForm, PatchedModule};

/// The canonical representative of a module's cost class: name erased,
/// form A rewritten to B when (and only when) `NKI == 1`.
pub fn canonicalize(m: &IrModule) -> IrModule {
    let mut c = m.clone();
    c.name = String::new();
    if c.meta.nki == 1 && c.meta.form == MemForm::A {
        c.meta.form = MemForm::B;
    }
    c
}

/// The cost-class key: the stable fingerprint of the canonical form.
/// Equal keys ⇒ bit-identical cost reports (module name and, at
/// `NKI == 1`, the A/B form aside — both patched during replication).
pub fn cost_class_key(m: &IrModule) -> u64 {
    fingerprint_module(&canonicalize(m))
}

/// [`cost_class_key`] for an arena-backed design, without materializing
/// or cloning a tree: canonicalization is just a different patch (name
/// erased, form A rewritten to B when `NKI == 1`) over the same base, so
/// the key is a straight re-hash of the arena's SoA columns. Guaranteed
/// equal to `cost_class_key(&d.materialize())`.
pub fn cost_class_key_design(d: &PatchedModule<'_>) -> u64 {
    let form = if d.arena.nki() == 1 && d.form == MemForm::A { MemForm::B } else { d.form };
    d.arena.fingerprint_patched("", form, d.vect)
}

/// Whether two modules are provably cost-congruent.
pub fn congruent(a: &IrModule, b: &IrModule) -> bool {
    cost_class_key(a) == cost_class_key(b)
}

/// Congruence facts for one module, as reported by `tybec analyze`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CongruenceInfo {
    /// The cost-class key.
    pub key: u64,
    /// The canonical memory-execution form.
    pub canonical_form: MemForm,
    /// Whether the A/B form axis collapses for this design
    /// (`NKI == 1`): a DSE sweep over both forms estimates this design
    /// once instead of twice.
    pub form_collapses: bool,
}

/// Compute the congruence facts of one module.
pub fn analyze_congruence(m: &IrModule) -> CongruenceInfo {
    let canon = canonicalize(m);
    CongruenceInfo {
        key: fingerprint_module(&canon),
        canonical_form: canon.meta.form,
        form_collapses: m.meta.nki == 1 && matches!(m.meta.form, MemForm::A | MemForm::B),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn build(name: &str, form: MemForm, nki: u64) -> IrModule {
        let mut b = ModuleBuilder::new(name);
        b.global_input("p", T, 4096);
        b.global_output("q", T, 4096);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 1);
            let c = f.offset("p", T, -1);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[4096]);
        b.nki(nki);
        b.form(form);
        b.finish_unchecked()
    }

    #[test]
    fn name_is_erased_from_the_key() {
        let a = build("sor_a", MemForm::B, 10);
        let b = build("sor_b", MemForm::B, 10);
        assert!(congruent(&a, &b));
        assert_ne!(
            tytra_ir::fingerprint_module(&a),
            tytra_ir::fingerprint_module(&b),
            "raw fingerprints still differ — only the class key collapses names"
        );
    }

    #[test]
    fn forms_collapse_exactly_at_nki_1() {
        let a1 = build("k_A", MemForm::A, 1);
        let b1 = build("k_B", MemForm::B, 1);
        assert!(congruent(&a1, &b1), "A ≡ B at NKI == 1");
        assert!(analyze_congruence(&a1).form_collapses);
        assert_eq!(analyze_congruence(&a1).canonical_form, MemForm::B);

        let a2 = build("k_A", MemForm::A, 2);
        let b2 = build("k_B", MemForm::B, 2);
        assert!(!congruent(&a2, &b2), "A ≢ B once NKI amortisation differs");
        assert!(!analyze_congruence(&a2).form_collapses);
    }

    #[test]
    fn form_c_never_collapses() {
        let c = build("k_C", MemForm::C, 1);
        let b = build("k_B", MemForm::B, 1);
        assert!(!congruent(&c, &b));
        assert!(!analyze_congruence(&c).form_collapses);
        assert_eq!(analyze_congruence(&c).canonical_form, MemForm::C);
    }

    #[test]
    fn structural_differences_split_classes() {
        let a = build("k", MemForm::B, 1);
        let mut b = build("k", MemForm::B, 1);
        b.meta.vect = 2;
        assert!(!congruent(&a, &b), "vectorization is cost-relevant");
        let mut c = build("k", MemForm::B, 1);
        c.mems[0].len = 8192;
        assert!(!congruent(&a, &c), "memory sizes are cost-relevant");
    }

    #[test]
    fn key_is_deterministic_and_span_transparent() {
        let a = build("k", MemForm::A, 1);
        assert_eq!(cost_class_key(&a), cost_class_key(&a));
        let mut b = build("k", MemForm::A, 1);
        for f in &mut b.functions {
            f.span = tytra_ir::SrcLoc::at(42, 1);
        }
        assert_eq!(cost_class_key(&a), cost_class_key(&b));
    }

    #[test]
    fn design_key_matches_tree_key() {
        // The arena-keyed prefilter must agree with the tree key on every
        // (form, NKI, vect) combination — including the A→B collapse.
        for nki in [1, 2] {
            for form in [MemForm::A, MemForm::B, MemForm::C, MemForm::Tiled { tiles: 4 }] {
                for vect in [1, 2] {
                    let mut m = build("k_x", form, nki);
                    m.meta.vect = vect;
                    let arena = tytra_ir::ArenaModule::build(m.clone());
                    let d = arena.patched("k_x", form, vect);
                    assert_eq!(
                        cost_class_key_design(&d),
                        cost_class_key(&m),
                        "nki={nki} form={form:?} vect={vect}"
                    );
                }
            }
        }
    }

    #[test]
    fn canonicalize_does_not_mutate_the_input() {
        let a = build("k", MemForm::A, 1);
        let before = a.clone();
        let _ = canonicalize(&a);
        assert_eq!(a, before);
        assert_eq!(a.meta.form, MemForm::A);
    }
}
