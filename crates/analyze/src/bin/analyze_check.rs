//! `analyze_check` — validate the JSON emitted by
//! `tybec analyze <design.tirl> --json`.
//!
//! ```text
//! analyze_check <report.json>...
//! ```
//!
//! Each file must strict-parse (the same zero-tolerance parser
//! `trace_check` uses) into an object carrying the full report shape:
//! `design`, `solver` (with `nodes`/`iterations`/`peak_worklist`),
//! `reachable`, `functions` (each with `name`/`values`/`constants`/
//! `consumed`/`callees`), `clamp_findings`, `deadlock_findings` and
//! `congruence` (whose `key` must round-trip as a 16-digit hex `u64`).
//! CI runs this over the report of every design in `assets/`.

use std::process::ExitCode;
use tytra_trace::json::{parse, Json};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: analyze_check <report.json>...");
        return ExitCode::FAILURE;
    }
    for path in &args {
        match check(path) {
            Ok(summary) => println!("{summary}"),
            Err(msg) => {
                eprintln!("analyze_check: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn require<'a>(doc: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or(format!("{path}: missing `{key}`"))
}

fn check(path: &str) -> Result<String, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    doc.as_obj().ok_or(format!("{path}: report is not an object"))?;

    let design =
        require(&doc, path, "design")?.as_str().ok_or(format!("{path}: `design` not a string"))?;

    let solver = require(&doc, path, "solver")?;
    for key in ["nodes", "iterations", "peak_worklist"] {
        require(solver, path, key)?
            .as_num()
            .ok_or(format!("{path}: `solver.{key}` not a number"))?;
    }

    let reachable = require(&doc, path, "reachable")?
        .as_arr()
        .ok_or(format!("{path}: `reachable` not an array"))?;
    if reachable.iter().any(|f| f.as_str().is_none()) {
        return Err(format!("{path}: `reachable` holds a non-string"));
    }

    let functions = require(&doc, path, "functions")?
        .as_arr()
        .ok_or(format!("{path}: `functions` not an array"))?;
    for (i, f) in functions.iter().enumerate() {
        f.get("name")
            .and_then(Json::as_str)
            .ok_or(format!("{path}: functions[{i}] lacks a string `name`"))?;
        for key in ["values", "constants", "consumed", "callees"] {
            if f.get(key).is_none() {
                return Err(format!("{path}: functions[{i}] lacks `{key}`"));
            }
        }
    }

    for key in ["clamp_findings", "deadlock_findings"] {
        require(&doc, path, key)?.as_arr().ok_or(format!("{path}: `{key}` not an array"))?;
    }

    let congruence = require(&doc, path, "congruence")?;
    let key = congruence
        .get("key")
        .and_then(Json::as_str)
        .ok_or(format!("{path}: `congruence.key` not a string"))?;
    let hex = key
        .strip_prefix("0x")
        .ok_or(format!("{path}: `congruence.key` lacks the 0x prefix: {key}"))?;
    if hex.len() != 16 || u64::from_str_radix(hex, 16).is_err() {
        return Err(format!("{path}: `congruence.key` is not a 16-digit hex u64: {key}"));
    }
    congruence
        .get("canonical_form")
        .and_then(Json::as_str)
        .ok_or(format!("{path}: `congruence.canonical_form` not a string"))?;

    Ok(format!(
        "{path}: ok — design `{design}`, {} reachable, {} function reports",
        reachable.len(),
        functions.len()
    ))
}
