//! Worklist fixpoint solver and per-function effect summaries.
//!
//! The solver is deliberately tiny: analyses model their program points
//! as nodes of a dependence graph, provide a monotone transfer function
//! from the current assignment to a node's new value, and the solver
//! iterates to the least fixpoint with a FIFO worklist. Termination is
//! the analysis's obligation (finite-height lattice, or widening — see
//! [`crate::range`]); every lattice in this crate satisfies it.
//!
//! Effect summaries ([`FnSummary`]) are the interprocedural half: one
//! pass over each function collects what it consumes, defines and
//! forwards, so interprocedural questions (reachability, port liveness)
//! become graph problems over the summaries instead of repeated body
//! walks. The lint passes TL1001/TL1002 are phrased entirely in terms of
//! these summaries.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use tytra_ir::{ArenaModule, Dest, IrFunction, IrModule, Stmt};

use crate::lattice::Lattice;

/// Counters from one fixpoint run (reported under `analyze.*` spans and
/// in the `tybec analyze` output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Worklist pops until the fixpoint (≥ `nodes`: every node is
    /// visited at least once).
    pub iterations: u64,
    /// High-water mark of the worklist.
    pub peak_worklist: usize,
}

impl SolverStats {
    /// Merge another run's counters into this one (used when a report
    /// aggregates several analyses).
    pub fn absorb(&mut self, other: &SolverStats) {
        self.nodes += other.nodes;
        self.iterations += other.iterations;
        self.peak_worklist = self.peak_worklist.max(other.peak_worklist);
    }
}

/// Run a monotone dataflow analysis to its least fixpoint.
///
/// `succs[n]` lists the nodes whose transfer function reads node `n`'s
/// value — the nodes to re-enqueue when `n` changes. `transfer(n, vals)`
/// computes node `n`'s new value from the current assignment; the solver
/// joins it into the old value and propagates only on change. Every node
/// is seeded on the worklist once, in index order, so a transfer that
/// ignores `vals` (an entry fact) still runs.
pub fn solve<L, F>(succs: &[Vec<usize>], mut transfer: F) -> (Vec<L>, SolverStats)
where
    L: Lattice,
    F: FnMut(usize, &[L]) -> L,
{
    let n = succs.len();
    let mut values: Vec<L> = (0..n).map(|_| L::bottom()).collect();
    let mut queued = vec![true; n];
    let mut worklist: VecDeque<usize> = (0..n).collect();
    let mut stats = SolverStats { nodes: n, iterations: 0, peak_worklist: n };

    while let Some(node) = worklist.pop_front() {
        queued[node] = false;
        stats.iterations += 1;
        let out = transfer(node, &values);
        if values[node].join(&out) {
            for &s in &succs[node] {
                if !queued[s] {
                    queued[s] = true;
                    worklist.push_back(s);
                }
            }
            stats.peak_worklist = stats.peak_worklist.max(worklist.len());
        }
    }
    (values, stats)
}

/// What one function's body does to the outside world, collected in a
/// single pass. Summaries replace repeated body walks: a question like
/// "is port `p` live" reads the summary sets instead of re-scanning
/// statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Names the body consumes: instruction operands (local and global),
    /// offset sources and call arguments. A parameter forwarded to a
    /// callee counts as consumed — the callee's own liveness is its own
    /// summary's problem.
    pub consumed: BTreeSet<String>,
    /// Local SSA values the body defines (`Dest::Local`).
    pub defined_values: BTreeSet<String>,
    /// Offset streams the body declares.
    pub defined_offsets: BTreeSet<String>,
    /// Global accumulators the body reduces into (`Dest::Global`).
    pub written_globals: BTreeSet<String>,
    /// Names forwarded as call arguments (a subset of `consumed`).
    pub forwarded: BTreeSet<String>,
    /// Callee names in call order, first occurrence only.
    pub callees: Vec<String>,
}

impl FnSummary {
    /// Collect the summary of one function.
    pub fn of(f: &IrFunction) -> FnSummary {
        let mut s = FnSummary::default();
        for stmt in &f.body {
            match stmt {
                Stmt::Instr(i) => {
                    for o in &i.operands {
                        if let Some(n) = o.name() {
                            s.consumed.insert(n.to_string());
                        }
                    }
                    match &i.dest {
                        Dest::Local(n) => {
                            s.defined_values.insert(n.clone());
                        }
                        Dest::Global(n) => {
                            s.written_globals.insert(n.clone());
                        }
                    }
                }
                Stmt::Offset(o) => {
                    s.consumed.insert(o.src.clone());
                    s.defined_offsets.insert(o.dest.clone());
                }
                Stmt::Call(c) => {
                    for a in &c.args {
                        if let Some(n) = a.name() {
                            s.consumed.insert(n.to_string());
                            s.forwarded.insert(n.to_string());
                        }
                    }
                    if !s.callees.iter().any(|k| k == &c.callee) {
                        s.callees.push(c.callee.clone());
                    }
                }
            }
        }
        s
    }

    /// Whether the body consumes `name`.
    pub fn consumes(&self, name: &str) -> bool {
        self.consumed.contains(name)
    }

    /// Whether the body produces the value of output port `name`: the
    /// `%<name>__out` drain convention, a direct local definition, or
    /// the port forwarded to a callee (which then owns the obligation).
    pub fn writes_port(&self, name: &str) -> bool {
        let drain = format!("{name}__out");
        self.defined_values.contains(&drain)
            || self.defined_values.contains(name)
            || self.forwarded.contains(name)
    }
}

/// Per-function effect summaries for a whole module, in declaration
/// order (keyed by function name; TIRL validation rejects duplicates).
pub fn summaries(m: &IrModule) -> BTreeMap<String, FnSummary> {
    m.functions.iter().map(|f| (f.name.clone(), FnSummary::of(f))).collect()
}

/// Function names reachable from `main`, computed with the boolean
/// lattice over the call graph: `main`'s entry fact is `true`, and a
/// function is reachable when any caller is. Equivalent to the preorder
/// walk in `IrModule::reachable_functions`, but phrased as a dataflow
/// problem so it shares the solver (and its stats) with every other
/// analysis.
pub fn reachable(m: &IrModule) -> (BTreeSet<String>, SolverStats) {
    let index: BTreeMap<&str, usize> =
        m.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();
    // preds[n] = callers of n; succs[n] = callees of n (reachability
    // flows caller → callee, so a caller's change re-enqueues callees).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); m.functions.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); m.functions.len()];
    for (i, f) in m.functions.iter().enumerate() {
        for c in f.calls() {
            if let Some(&j) = index.get(c.callee.as_str()) {
                preds[j].push(i);
                succs[i].push(j);
            }
        }
    }
    let (vals, stats) = solve(&succs, |n, vals: &[bool]| {
        m.functions[n].name == "main" || preds[n].iter().any(|&p| vals[p])
    });
    let set =
        m.functions.iter().zip(&vals).filter(|(_, &r)| r).map(|(f, _)| f.name.clone()).collect();
    (set, stats)
}

/// [`reachable`] over a flattened arena: the call graph comes from the
/// arena's pre-resolved dense callee indices ([`ArenaModule::callees`]),
/// so building the dependence graph does no string hashing or cloning.
/// Returns the same set and stats as `reachable(a.tree())`.
pub fn reachable_arena(a: &ArenaModule) -> (BTreeSet<String>, SolverStats) {
    let n = a.fn_count();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for callee in a.callees(tytra_ir::FnId(i as u32)).flatten() {
            preds[callee.index()].push(i);
            succs[i].push(callee.index());
        }
    }
    let main = a.fn_by_name("main").map(tytra_ir::FnId::index);
    let (vals, stats) = solve(&succs, |node, vals: &[bool]| {
        main == Some(node) || preds[node].iter().any(|&p| vals[p])
    });
    let set = (0..n)
        .zip(&vals)
        .filter(|(_, &r)| r)
        .map(|(i, _)| a.resolve(a.fn_name(tytra_ir::FnId(i as u32))).to_string())
        .collect();
    (set, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::{Call, Instruction, Opcode, Operand, ParKind, Param, ScalarType, SrcLoc};

    fn call(f: &str, args: Vec<Operand>) -> Stmt {
        Stmt::Call(Call { callee: f.into(), args, kind: ParKind::Pipe, span: SrcLoc::none() })
    }

    /// main → f1 → f0, plus an orphan f2 and a cycle f3 ↔ f4 not
    /// reachable from main.
    fn sample_module() -> IrModule {
        let mut m = IrModule::new("t");
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(call("f1", vec![Operand::local("p")]));
        let mut f1 = IrFunction::new("f1", ParKind::Par);
        f1.body.push(call("f0", vec![Operand::local("p")]));
        let f0 = IrFunction::new("f0", ParKind::Pipe);
        let f2 = IrFunction::new("f2", ParKind::Pipe);
        let mut f3 = IrFunction::new("f3", ParKind::Pipe);
        f3.body.push(call("f4", vec![]));
        let mut f4 = IrFunction::new("f4", ParKind::Pipe);
        f4.body.push(call("f3", vec![]));
        m.functions = vec![main, f1, f0, f2, f3, f4];
        m
    }

    #[test]
    fn reachability_matches_the_preorder_walk() {
        let m = sample_module();
        let (set, stats) = reachable(&m);
        let expected: BTreeSet<String> =
            m.reachable_functions().iter().map(|f| f.name.clone()).collect();
        assert_eq!(set, expected);
        assert_eq!(set, BTreeSet::from(["main".into(), "f1".into(), "f0".into()]));
        assert_eq!(stats.nodes, 6);
        assert!(stats.iterations >= 6, "every node visited at least once");
    }

    #[test]
    fn arena_reachability_matches_tree_reachability() {
        // Same graph, same seeding order — the arena path must reproduce
        // the tree path's set *and* its solver stats exactly.
        let m = sample_module();
        let (tree_set, tree_stats) = reachable(&m);
        let a = tytra_ir::ArenaModule::build(m);
        let (arena_set, arena_stats) = reachable_arena(&a);
        assert_eq!(arena_set, tree_set);
        assert_eq!(arena_stats, tree_stats);
    }

    #[test]
    fn unreachable_cycle_stays_bottom() {
        // f3 ↔ f4 support each other but nothing roots them: the least
        // fixpoint keeps both unreachable (a naive greatest-fixpoint
        // formulation would mark them live).
        let (set, _) = reachable(&sample_module());
        assert!(!set.contains("f3"));
        assert!(!set.contains("f4"));
    }

    #[test]
    fn solver_converges_on_a_cycle() {
        // Two nodes feeding each other with a set lattice: the fixpoint
        // is the union of both seeds on both nodes.
        let succs = vec![vec![1], vec![0]];
        let seeds = [BTreeSet::from([1u32]), BTreeSet::from([2u32])];
        let (vals, stats) = solve(&succs, |n, vals: &[BTreeSet<u32>]| {
            let mut out = seeds[n].clone();
            let other = 1 - n;
            out.extend(vals[other].iter().copied());
            out
        });
        assert_eq!(vals[0], BTreeSet::from([1, 2]));
        assert_eq!(vals[1], BTreeSet::from([1, 2]));
        assert!(stats.iterations >= 3, "the cycle forces re-visits");
        assert_eq!(stats.nodes, 2);
    }

    #[test]
    fn summary_collects_all_effect_sets() {
        let mut f = IrFunction::new("f0", ParKind::Pipe);
        f.params.push(Param::input("p", ScalarType::UInt(18)));
        f.params.push(Param::output("q", ScalarType::UInt(18)));
        f.body.push(Stmt::Offset(tytra_ir::OffsetDecl {
            dest: "pp1".into(),
            ty: ScalarType::UInt(18),
            src: "p".into(),
            offset: 1,
            span: SrcLoc::none(),
        }));
        f.body.push(Stmt::Instr(Instruction::new(
            Dest::Local("q__out".into()),
            Opcode::Add,
            ScalarType::UInt(18),
            vec![Operand::local("pp1"), Operand::Imm(1)],
        )));
        f.body.push(Stmt::Instr(Instruction::new(
            Dest::Global("acc".into()),
            Opcode::Add,
            ScalarType::UInt(18),
            vec![Operand::local("q__out"), Operand::global("acc")],
        )));
        let s = FnSummary::of(&f);
        assert!(s.consumes("p") && s.consumes("pp1") && s.consumes("acc"));
        assert!(!s.consumes("q"));
        assert_eq!(s.defined_offsets, BTreeSet::from(["pp1".into()]));
        assert_eq!(s.defined_values, BTreeSet::from(["q__out".into()]));
        assert_eq!(s.written_globals, BTreeSet::from(["acc".into()]));
        assert!(s.writes_port("q"), "drain convention `q__out` writes port q");
        assert!(!s.writes_port("r"));
        assert!(s.callees.is_empty() && s.forwarded.is_empty());
    }

    #[test]
    fn forwarding_counts_as_port_write_and_consumption() {
        let mut f = IrFunction::new("f1", ParKind::Par);
        f.params.push(Param::output("out", ScalarType::UInt(18)));
        f.body.push(call("f0", vec![Operand::local("out")]));
        f.body.push(call("f0", vec![Operand::local("out")]));
        let s = FnSummary::of(&f);
        assert!(s.writes_port("out"), "forwarding hands the obligation to the callee");
        assert!(s.consumes("out"));
        assert_eq!(s.callees, vec!["f0".to_string()], "callees dedup by first occurrence");
    }

    #[test]
    fn module_summaries_are_keyed_by_name() {
        let m = sample_module();
        let sums = summaries(&m);
        assert_eq!(sums.len(), 6);
        assert_eq!(sums["main"].callees, vec!["f1".to_string()]);
        assert_eq!(sums["f1"].callees, vec!["f0".to_string()]);
        assert!(sums["f0"].callees.is_empty());
    }
}
