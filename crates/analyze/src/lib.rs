//! tytra-analyze: a monotone dataflow framework over TyTra-IR.
//!
//! The crate is split into a small generic core and a catalogue of
//! concrete analyses built on it:
//!
//! - [`lattice`] — the [`Lattice`] trait (bottom + join) and the
//!   [`Interval`] value-range domain, plus stock impls for `bool`
//!   (reachability) and `BTreeSet` (flow sets).
//! - [`solver`] — the worklist fixpoint engine [`solve`], per-function
//!   effect summaries ([`FnSummary`] / [`summaries`]) and call-graph
//!   reachability ([`reachable`]).
//! - [`range`] — value-range / constant propagation over function
//!   bodies, stencil-offset windows, and the TL1007 clamp findings.
//! - [`deadlock`] — stream dependence: which memories flow into which
//!   functions, and the TL1008 read↔write self-cycle findings.
//! - [`congruence`] — structural cost-congruence: the class key that
//!   lets the DSE funnel estimate each equivalence class once
//!   ([`cost_class_key`], [`congruent`]).
//! - [`report`] — [`analyze_module`] runs the whole catalogue and the
//!   [`AnalysisReport`] renders it as text or strict JSON for
//!   `tybec analyze`.
//!
//! Soundness arguments live next to the code they justify: interval
//! widening in `range`, the bit-identical replication proof in
//! `congruence`. `docs/analysis.md` gives the prose version.

#![warn(clippy::pedantic)]
// Pedantic lints we deliberately opt out of, crate-wide:
// readable casts between index/counter types dominate the solver,
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_possible_wrap)]
#![allow(clippy::cast_sign_loss)]
// prose module docs trip the backtick heuristic on IR terms,
#![allow(clippy::doc_markdown)]
// long fixpoint routines read better unsplit,
#![allow(clippy::too_many_lines)]
// and `match` arms over lattice elements are clearer unnested.
#![allow(clippy::match_same_arms)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::must_use_candidate)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::return_self_not_must_use)]
// The arena call-graph builder indexes two parallel edge vectors
// (preds/succs) by the same dense function id; a range loop states
// that symmetry better than enumerate over either one.
#![allow(clippy::needless_range_loop)]

pub mod congruence;
pub mod deadlock;
pub mod lattice;
pub mod range;
pub mod report;
pub mod solver;

pub use congruence::{
    analyze_congruence, canonicalize, congruent, cost_class_key, cost_class_key_design,
    CongruenceInfo,
};
pub use deadlock::{analyze_deadlock, CycleFinding, DeadlockAnalysis};
pub use lattice::{Interval, Lattice};
pub use range::{analyze_ranges, ClampFinding, FnRanges, RangeAnalysis, WIDEN_AFTER};
pub use report::{analyze_module, AnalysisReport};
pub use solver::{reachable, reachable_arena, solve, summaries, FnSummary, SolverStats};
