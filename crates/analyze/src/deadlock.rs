//! Stream dependence / buffer-feasibility (deadlock) analysis.
//!
//! The Manage-IR wires memory objects to kernel functions through
//! stream objects and port declarations. A memory object that a
//! function both reads from and (transitively) writes back to closes a
//! feedback loop through the datapath: the pipeline can only make
//! progress if the element being written is never one the reader still
//! needs, which on this IR (one-pass streaming over the NDRange, offset
//! windows realised as bounded smart buffers) cannot be guaranteed by
//! construction — the write stream races the read stream over the same
//! buffer. The paper's memory-execution forms sidestep this by
//! double-buffering (`pnew` is a *different* memory object than `p`),
//! so a self-feeding object is almost always a transcription error, and
//! at best a design that deadlocks once the offset window drains.
//!
//! The analysis is a reachability problem in the powerset lattice: each
//! node (memory object or reachable function) carries the set of memory
//! objects whose data can flow into it. Memory objects seed with
//! themselves; edges follow `mem → istream-port → function` and
//! `function → ostream-port → mem` bindings (ports bind to function
//! parameters by their unqualified name) plus intra-function
//! input-to-output flow (conservative: any input may influence any
//! output). A memory object appearing in its own writer's set closes
//! the loop; each such loop is reported as a [`CycleFinding`] (TL1008).

use std::collections::{BTreeMap, BTreeSet};

use tytra_ir::{IrModule, PortDir, SrcLoc, StreamDir};

use crate::solver::{reachable, solve, SolverStats};

/// A feedback loop: `mem` feeds function `func`, whose output stream
/// writes `mem` again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleFinding {
    /// The memory object on the loop.
    pub mem: String,
    /// The function whose output closes the loop.
    pub func: String,
    /// The input parameter through which `mem` enters `func`.
    pub in_param: String,
    /// The output parameter through which the write returns to `mem`.
    pub out_param: String,
    /// Offset window `(most negative, most positive)` that `func`
    /// opens on the looping input stream — the buffer whose drain is
    /// the deadlock horizon (`(0, 0)` when no offsets are declared).
    pub window: (i64, i64),
    /// Source location of the memory object declaration.
    pub span: SrcLoc,
}

/// Result of the stream-dependence analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeadlockAnalysis {
    /// Feedback loops found (TL1008), ordered by memory declaration.
    pub findings: Vec<CycleFinding>,
    /// Which memory objects can flow into each reachable function,
    /// keyed by function name.
    pub inflows: BTreeMap<String, BTreeSet<String>>,
    /// Solver counters.
    pub stats: SolverStats,
}

/// Run the stream-dependence / deadlock check.
pub fn analyze_deadlock(m: &IrModule) -> DeadlockAnalysis {
    let (live, mut stats) = reachable(m);

    // Node space: memory objects first, then reachable functions.
    let live_fns: Vec<&str> =
        m.functions.iter().filter(|f| live.contains(&f.name)).map(|f| f.name.as_str()).collect();
    let n_mems = m.mems.len();
    let n = n_mems + live_fns.len();
    let mem_index: BTreeMap<&str, usize> =
        m.mems.iter().enumerate().map(|(i, mm)| (mm.name.as_str(), i)).collect();
    let fn_index: BTreeMap<&str, usize> =
        live_fns.iter().enumerate().map(|(i, f)| (*f, n_mems + i)).collect();

    // Port bindings: an istream port with unqualified name `p` feeds
    // every reachable function with an input parameter `p`; an ostream
    // port `q` is driven by every reachable function with an output
    // parameter `q`. (Lane-replicated designs bind ports to parameters
    // implicitly by name; explicit-argument designs forward the same
    // names, so name binding covers both call conventions.)
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let edge =
        |from: usize, to: usize, preds: &mut Vec<Vec<usize>>, succs: &mut Vec<Vec<usize>>| {
            if !preds[to].contains(&from) {
                preds[to].push(from);
                succs[from].push(to);
            }
        };
    for p in &m.ports {
        let Some(stream) = m.stream(&p.stream) else { continue };
        let Some(&mem) = mem_index.get(stream.mem.as_str()) else { continue };
        let short = p.arg_name();
        for f in m.functions.iter().filter(|f| live.contains(&f.name)) {
            let Some(param) = f.param(short) else { continue };
            let Some(&fnode) = fn_index.get(f.name.as_str()) else { continue };
            match (p.dir, param.dir) {
                (StreamDir::Read, PortDir::In) => edge(mem, fnode, &mut preds, &mut succs),
                (StreamDir::Write, PortDir::Out) => edge(fnode, mem, &mut preds, &mut succs),
                _ => {}
            }
        }
    }

    // Fixpoint: each node accumulates the memory objects that can reach
    // it. Memory nodes seed with themselves.
    let (vals, dl_stats) = solve(&succs, |node, vals: &[BTreeSet<String>]| {
        let mut out = BTreeSet::new();
        if node < n_mems {
            out.insert(m.mems[node].name.clone());
        }
        for &p in &preds[node] {
            out.extend(vals[p].iter().cloned());
        }
        out
    });
    stats.absorb(&dl_stats);

    let mut out = DeadlockAnalysis::default();
    for f in &live_fns {
        out.inflows.insert((*f).to_string(), vals[fn_index[*f]].clone());
    }

    // A loop closes when a function that writes mem M also has M in its
    // inflow set. Report one finding per (mem, function) pair, in
    // memory-declaration order.
    for mem in &m.mems {
        for f in m.functions.iter().filter(|f| live.contains(&f.name)) {
            let Some(&fnode) = fn_index.get(f.name.as_str()) else { continue };
            if !vals[fnode].contains(&mem.name) {
                continue;
            }
            // Does f write mem (via an ostream port bound to one of its
            // output params)?
            let Some(out_param) = write_param(m, f.name.as_str(), &mem.name) else { continue };
            // Through which input does mem enter f? Prefer the direct
            // port binding; a loop through intermediaries reports the
            // first input parameter on the path's last hop.
            let in_param = read_param(m, f.name.as_str(), &mem.name)
                .or_else(|| f.params.iter().find(|p| p.dir == PortDir::In).map(|p| p.name.clone()))
                .unwrap_or_default();
            let window = f.offset_sources().iter().find(|s| **s == in_param).map_or((0, 0), |s| {
                let mut neg = 0i64;
                let mut pos = 0i64;
                for o in f.offsets().filter(|o| o.src == **s) {
                    neg = neg.min(o.offset);
                    pos = pos.max(o.offset);
                }
                (neg, pos)
            });
            out.findings.push(CycleFinding {
                mem: mem.name.clone(),
                func: f.name.clone(),
                in_param,
                out_param,
                window,
                span: mem.span,
            });
        }
    }
    out.stats = stats;
    out
}

/// The output parameter of `func` that an ostream port routes to `mem`,
/// if any.
fn write_param(m: &IrModule, func: &str, mem: &str) -> Option<String> {
    let f = m.function(func)?;
    for p in &m.ports {
        if p.dir != StreamDir::Write {
            continue;
        }
        let Some(s) = m.stream(&p.stream) else { continue };
        if s.mem != mem {
            continue;
        }
        if let Some(param) = f.param(p.arg_name()) {
            if param.dir == PortDir::Out {
                return Some(param.name.clone());
            }
        }
    }
    None
}

/// The input parameter of `func` that an istream port feeds from `mem`,
/// if any.
fn read_param(m: &IrModule, func: &str, mem: &str) -> Option<String> {
    let f = m.function(func)?;
    for p in &m.ports {
        if p.dir != StreamDir::Read {
            continue;
        }
        let Some(s) = m.stream(&p.stream) else { continue };
        if s.mem != mem {
            continue;
        }
        if let Some(param) = f.param(p.arg_name()) {
            if param.dir == PortDir::In {
                return Some(param.name.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_ir::parse;

    /// `mem_p` is read *and* written by `f0`: a feedback loop.
    const LOOPED: &str = r#"
!module = !"looped"
!ndrange = !{30, 30}
!nki = !10
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !900
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_pw = streamobj %mem_p, !write, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_pw"
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %pp = ui18 %p, !offset, !+30
  ui18 %pn = ui18 %p, !offset, !-30
  ui18 %t = add ui18 %pp, %pn
  ui18 %q__out = or ui18 %t, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;

    /// Double-buffered variant: read `mem_p`, write `mem_q`.
    const BUFFERED: &str = r#"
!module = !"buffered"
!ndrange = !{30, 30}
!nki = !10
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !900
%mem_q = memobj addrSpace(1) ui18, !size, !900
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.q = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %pp = ui18 %p, !offset, !+30
  ui18 %t = add ui18 %pp, %p
  ui18 %q__out = or ui18 %t, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;

    #[test]
    fn self_feeding_memory_is_a_cycle() {
        let m = parse(LOOPED).expect("parses");
        let r = analyze_deadlock(&m);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let c = &r.findings[0];
        assert_eq!(c.mem, "mem_p");
        assert_eq!(c.func, "f0");
        assert_eq!(c.in_param, "p");
        assert_eq!(c.out_param, "q");
        assert_eq!(c.window, (-30, 30));
        assert_eq!(r.inflows["f0"], BTreeSet::from(["mem_p".to_string()]));
    }

    #[test]
    fn double_buffering_is_clean() {
        let m = parse(BUFFERED).expect("parses");
        let r = analyze_deadlock(&m);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.inflows["f0"], BTreeSet::from(["mem_p".to_string()]));
    }

    #[test]
    fn assets_shape_module_is_clean() {
        // Three separate memories as in the seeded SOR asset: reads from
        // p and rhs, writes pnew — no loop.
        let src = r#"
!module = !"sorish"
!ndrange = !{8}
!nki = !2
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !8
%mem_rhs = memobj addrSpace(1) ui18, !size, !8
%mem_pnew = memobj addrSpace(1) ui18, !size, !8
%strobj_p = streamobj %mem_p, !read, !"CONT"
%strobj_rhs = streamobj %mem_rhs, !read, !"CONT"
%strobj_pnew = streamobj %mem_pnew, !write, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
@main.rhs = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_rhs"
@main.pnew = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_pnew"
define void @f0(ui18 %p, ui18 %rhs, out ui18 %pnew) pipe {
  ui18 %t = add ui18 %p, %rhs
  ui18 %pnew__out = or ui18 %t, 0
}
define void @main() {
  call @f0(%p, %rhs, %pnew) pipe
}
"#;
        let m = parse(src).expect("parses");
        let r = analyze_deadlock(&m);
        assert!(r.findings.is_empty());
        assert_eq!(r.inflows["f0"], BTreeSet::from(["mem_p".to_string(), "mem_rhs".to_string()]));
    }
}
