//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`criterion_group!`] and
//! [`criterion_main!`] — backed by a plain wall-clock timer: a short
//! warm-up, then a fixed measurement window, then a one-line
//! median-per-iteration report. No statistics engine, no plotting; the
//! numbers are indicative, the API is the point.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortises its setup closure. The stub runs one
/// setup per iteration regardless — `PerIteration` semantics, the only
/// batch size our benches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh input per iteration.
    PerIteration,
    /// Small batches (treated as `PerIteration`).
    SmallInput,
    /// Large batches (treated as `PerIteration`).
    LargeInput,
}

/// Per-benchmark measurement state handed to the closure.
pub struct Bencher {
    /// Iterations actually executed in the measurement window.
    iters: u64,
    /// Total measured time.
    elapsed: Duration,
    /// Measurement window budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher { iters: 0, elapsed: Duration::ZERO, budget }
    }

    /// Time `routine` repeatedly until the window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        std_black_box(routine());
        let start = Instant::now();
        while start.elapsed() < self.budget {
            std_black_box(routine());
            self.iters += 1;
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        let start = Instant::now();
        let mut spent = Duration::ZERO;
        while spent < self.budget {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            spent += t0.elapsed();
            self.iters += 1;
            if start.elapsed() > self.budget * 4 {
                break; // setup-dominated: don't spin forever
            }
        }
        self.elapsed = spent;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no iterations)");
            return;
        }
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        println!("{name:<40} {:>12.3} µs/iter  ({} iters)", per * 1e6, self.iters);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep benches quick: the stub is for API compatibility and
        // smoke-timing, not statistics.
        Criterion { budget: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group (a labelled namespace in this stub).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's window is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut b = Bencher::new(self.parent.budget);
        f(&mut b);
        b.report(&full);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a group function running each target, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("batched", |b| b.iter_batched(|| 21, |x| x * 2, BatchSize::PerIteration));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { budget: Duration::from_millis(5) };
        quick(&mut c);
    }
}
