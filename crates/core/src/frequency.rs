//! Operating-frequency estimate `FD` (Table I: "device's operating
//! frequency — design-variant dependent — parsing IR").
//!
//! The clock a design closes is bounded by (a) the slowest pipeline stage
//! — for `pipe`/`seq` bodies the worst single functional unit, for `comb`
//! blocks the whole combinational chain along the block's critical path —
//! and (b) routing congestion as the device fills up, modelled as a
//! linear derating of the fabric's base Fmax.

use tytra_device::{CurveCache, ResourceVector, TargetDevice};
use tytra_ir::{ConfigNode, Dfg, IrError, IrFunction, IrModule, ParKind};

/// Estimated clock and its contributors.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockEstimate {
    /// `FD` in MHz.
    pub freq_mhz: f64,
    /// Worst combinational stage delay found, ns.
    pub max_stage_delay_ns: f64,
    /// Name of the function containing the limiting stage.
    pub limiting_function: String,
}

/// Estimate the design's clock.
pub fn estimate_clock(
    m: &IrModule,
    dev: &TargetDevice,
    tree: &ConfigNode,
    used: &ResourceVector,
) -> Result<ClockEstimate, IrError> {
    let mut worst = (0.0f64, String::new());
    visit(m, dev, tree, &mut worst)?;
    Ok(finish_clock(m, dev, worst, used))
}

/// Derate the worst stage delay by fabric utilisation and apply any
/// explicit frequency constraint — the tail shared by [`estimate_clock`]
/// and the session clock pass.
pub(crate) fn finish_clock(
    m: &IrModule,
    dev: &TargetDevice,
    worst: (f64, String),
    used: &ResourceVector,
) -> ClockEstimate {
    let util = used.max_utilization(&dev.capacity).min(1.0);
    let freq = dev.clock_mhz(worst.0, util, m.meta.freq_mhz);
    ClockEstimate { freq_mhz: freq, max_stage_delay_ns: worst.0, limiting_function: worst.1 }
}

/// The worst combinational stage *within one function* — the unit the
/// session memoizes under the function's structural fingerprint.
///
/// Combining per-function results across a preorder walk with a strict
/// `>` reproduces the legacy instruction-level walk exactly: the maximum
/// is the same value, and the strict comparison keeps the earliest
/// function on ties, as before.
pub(crate) fn function_worst_stage(
    dev: &TargetDevice,
    curves: Option<&CurveCache>,
    f: &IrFunction,
    kind: ParKind,
) -> Option<(f64, String)> {
    match kind {
        ParKind::Pipe | ParKind::Seq => {
            let mut worst: Option<f64> = None;
            for i in f.instrs() {
                let d = match curves {
                    Some(c) => c.stage_delay_ns(&dev.ops, i.op, i.ty),
                    None => dev.ops.stage_delay_ns(i.op, i.ty),
                };
                if worst.is_none_or(|w| d > w) {
                    worst = Some(d);
                }
            }
            worst.map(|d| (d, f.name.clone()))
        }
        ParKind::Comb => {
            // The whole block must settle in one cycle: routing overhead
            // once, plus the chained op delays along the critical path.
            let dfg = Dfg::build(f, &tytra_ir::UnitLatency);
            let path = dfg.critical_path();
            let chain: f64 = path
                .iter()
                .map(|&idx| {
                    let i = &dfg.nodes[idx].instr;
                    dev.ops.op_delay_ns(i.op, i.ty)
                })
                .sum();
            Some((dev.ops.route_delay_ns() + chain, f.name.clone()))
        }
        ParKind::Par => None,
    }
}

fn visit(
    m: &IrModule,
    dev: &TargetDevice,
    node: &ConfigNode,
    worst: &mut (f64, String),
) -> Result<(), IrError> {
    let f = m
        .function(&node.function)
        .ok_or_else(|| IrError::Unknown { kind: "function", name: node.function.clone() })?;
    if let Some(own) = function_worst_stage(dev, None, f, node.kind) {
        if own.0 > worst.0 {
            *worst = own;
        }
    }
    for c in &node.children {
        visit(m, dev, c, worst)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{config_tree, ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(32);

    fn clock_of(build: impl FnOnce(&mut ModuleBuilder)) -> ClockEstimate {
        let mut b = ModuleBuilder::new("m");
        b.global_input("x", T, 1024);
        b.global_output("y", T, 1024);
        build(&mut b);
        b.ndrange(&[1024]);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        estimate_clock(&m, &dev, &tree.root, &ResourceVector::ZERO).unwrap()
    }

    #[test]
    fn pipelined_adds_run_near_base_fmax() {
        let c = clock_of(|b| {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
            b.main_calls("f0");
        });
        assert!(c.freq_mhz > 200.0, "{c:?}");
        assert_eq!(c.limiting_function, "f0");
    }

    #[test]
    fn divider_stage_limits_clock() {
        let div = clock_of(|b| {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Div, T, vec![x.clone(), x]);
            f.write_out("y", v);
            b.main_calls("f0");
        });
        let add = clock_of(|b| {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x.clone(), x]);
            f.write_out("y", v);
            b.main_calls("f0");
        });
        assert!(div.freq_mhz < add.freq_mhz);
        assert!(div.max_stage_delay_ns > add.max_stage_delay_ns);
    }

    #[test]
    fn comb_chain_delays_accumulate() {
        let chained = clock_of(|b| {
            {
                let f = b.function("c0", ParKind::Comb);
                f.input("x", T);
                f.output("y", T);
                let x = f.arg("x");
                // Four chained adds in one combinatorial block.
                let a = f.instr(Opcode::Add, T, vec![x.clone(), x.clone()]);
                let c = f.instr(Opcode::Add, T, vec![a.clone(), x.clone()]);
                let d = f.instr(Opcode::Add, T, vec![c.clone(), x.clone()]);
                let e = f.instr(Opcode::Add, T, vec![d, x]);
                f.write_out("y", e);
            }
            {
                let f = b.function("f0", ParKind::Pipe);
                f.input("x", T);
                f.output("y", T);
                f.call("c0", vec![], ParKind::Comb);
            }
            b.main_calls("f0");
        });
        let single = clock_of(|b| {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x.clone(), x]);
            f.write_out("y", v);
            b.main_calls("f0");
        });
        assert!(
            chained.max_stage_delay_ns > 2.0 * single.max_stage_delay_ns - 2.1,
            "comb chain {} vs pipe stage {}",
            chained.max_stage_delay_ns,
            single.max_stage_delay_ns
        );
        assert!(chained.freq_mhz < single.freq_mhz);
        assert_eq!(chained.limiting_function, "c0");
    }

    #[test]
    fn utilisation_derates_clock() {
        let mut b = ModuleBuilder::new("m");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let lo = estimate_clock(&m, &dev, &tree.root, &ResourceVector::ZERO).unwrap();
        let nearly_full = ResourceVector::new(dev.capacity.aluts * 9 / 10, 0, 0, 0);
        let hi = estimate_clock(&m, &dev, &tree.root, &nearly_full).unwrap();
        assert!(hi.freq_mhz < lo.freq_mhz);
    }

    #[test]
    fn explicit_constraint_wins() {
        let mut b = ModuleBuilder::new("m");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[64]).freq_mhz(100.0);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let c = estimate_clock(&m, &dev, &tree.root, &ResourceVector::ZERO).unwrap();
        assert_eq!(c.freq_mhz, 100.0);
    }
}
