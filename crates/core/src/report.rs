//! The cost report — everything Fig 2 says the model emits: resource
//! estimates, performance estimate, memory-bandwidth assessment, plus the
//! limiting parameter and a rendered summary.

use crate::bandwidth::BandwidthBreakdown;
use crate::bottleneck::Limiter;
use crate::frequency::ClockEstimate;
use crate::params::CostParams;
use crate::resource::ResourceEstimate;
use crate::throughput::ThroughputEstimate;
use std::fmt;
use tytra_device::resources::Utilization;
use tytra_ir::{ConfigClass, ConfigTree};

/// Full cost-model output for one design variant on one target.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Design name (module name).
    pub design: String,
    /// Target name.
    pub target: String,
    /// Extracted Table I parameters.
    pub params: CostParams,
    /// Design-space classification of the configuration (Fig 5).
    pub class: ConfigClass,
    /// Resource estimate and breakdown.
    pub resources: ResourceEstimate,
    /// Resource utilisation fractions against the target.
    pub utilization: Utilization,
    /// Whether the variant fits the device at all.
    pub fits: bool,
    /// Clock estimate.
    pub clock: ClockEstimate,
    /// Bandwidth assessment.
    pub bandwidth: BandwidthBreakdown,
    /// Throughput estimate (EKIT & friends).
    pub throughput: ThroughputEstimate,
    /// The performance-limiting parameter.
    pub limiter: Limiter,
    /// Estimated delta power above idle, W (device power model applied
    /// to the estimated resources, clock and exercised bandwidth).
    pub power_w: f64,
}

impl CostReport {
    /// Total runtime estimate for all `NKI` kernel instances, seconds.
    pub fn total_runtime_s(&self) -> f64 {
        self.throughput.t_instance * self.params.nki as f64
    }

    /// Estimated delta energy above idle over the whole run, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.power_w * self.total_runtime_s()
    }

    /// Convenience: is the variant valid (fits and streams feasible)?
    pub fn is_valid(&self) -> bool {
        self.fits
    }

    /// The configuration tree is not stored (it borrows nothing but is
    /// bulky); re-derive headline lane count.
    pub fn lanes(&self) -> u64 {
        self.params.knl
    }

    /// Render the one-screen summary `tybec` prints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        let _ = writeln!(s, "design   : {}", self.design);
        let _ = writeln!(s, "target   : {}", self.target);
        let _ = writeln!(
            s,
            "config   : {:?}, {} lane(s), DV={}",
            self.class, self.params.knl, self.params.dv
        );
        let _ = writeln!(
            s,
            "resources: {} ({})",
            self.resources.total,
            if self.fits { "fits" } else { "DOES NOT FIT" }
        );
        let _ = writeln!(
            s,
            "utilise  : ALUT {:.1}% REG {:.1}% BRAM {:.1}% DSP {:.1}%",
            self.utilization.aluts * 100.0,
            self.utilization.regs * 100.0,
            self.utilization.bram_bits * 100.0,
            self.utilization.dsps * 100.0
        );
        let _ = writeln!(
            s,
            "clock    : {:.1} MHz (worst stage {:.2} ns in @{})",
            self.clock.freq_mhz, self.clock.max_stage_delay_ns, self.clock.limiting_function
        );
        let _ = writeln!(
            s,
            "bandwidth: rho_G {:.3} ({:.2} GB/s eff), rho_H {:.3} ({:.2} GB/s eff)",
            self.bandwidth.rho_g,
            self.bandwidth.dram_effective / 1e9,
            self.bandwidth.rho_h,
            self.bandwidth.host_effective / 1e9
        );
        let _ = writeln!(
            s,
            "EKIT     : {:.3} kernel-instances/s ({:.3} paper-form), CPKI {:.0}",
            self.throughput.ekit, self.throughput.ekit_paper, self.throughput.cpki
        );
        let _ = writeln!(
            s,
            "runtime  : {:.3} ms/instance, {:.3} s total over NKI={}",
            self.throughput.t_instance * 1e3,
            self.total_runtime_s(),
            self.params.nki
        );
        let _ = writeln!(
            s,
            "power    : {:.1} W estimated delta, {:.2} J over the run",
            self.power_w,
            self.total_energy_j()
        );
        let _ = writeln!(s, "limiter  : {} — {}", self.limiter, self.limiter.tuning_hint());
        s
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Internal helper carrying the pieces into the report (keeps
/// [`crate::estimate`] tidy).
#[allow(clippy::too_many_arguments)] // one field per report section
pub(crate) fn assemble(
    design: String,
    target: String,
    params: CostParams,
    tree: &ConfigTree,
    resources: ResourceEstimate,
    utilization: Utilization,
    fits: bool,
    clock: ClockEstimate,
    bandwidth: BandwidthBreakdown,
    throughput: ThroughputEstimate,
    limiter: Limiter,
    power_w: f64,
) -> CostReport {
    CostReport {
        design,
        target,
        params,
        class: tree.class,
        resources,
        utilization,
        fits,
        clock,
        bandwidth,
        throughput,
        limiter,
        power_w,
    }
}
