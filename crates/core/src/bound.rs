//! The `bound` pass: admissible analytic bounds for branch-and-bound DSE.
//!
//! A full estimate runs eight passes; most of that cost is the schedule
//! and clock walks over the datapath. This pass prices a variant from
//! the *wall terms* of Eqs 1–3 alone — the memoized per-function
//! resource sums and the bandwidth model — and yields
//!
//! * an **exact** resource total (the resource pass is already
//!   per-function-memoized arithmetic, so the "lower bound" on resource
//!   use per variant family is the exact value — and with it an exact
//!   fit/doesn't-fit verdict), and
//! * an **upper bound on EKIT**: a lower bound on `t_instance` built
//!   from the terms that do not need a schedule or a clock.
//!
//! The time bound drops the fill terms and replaces the compute term by
//! its clock-ceiling floor:
//!
//! ```text
//! t_lower = t_host + max(t_memory, t_compute_floor) + t_overhead
//! t_compute_floor = items_per_lane · II / (max(Fmax, 1) · 1e6)
//! ```
//!
//! `t_host`, `t_memory` and `t_overhead` are computed by the *same
//! expressions* as [`crate::throughput::estimate_throughput`]; the
//! initiation interval `II` is recomputed exactly from the configuration
//! tree (it depends only on the lane subtree's kind and instruction
//! count, not on the scheduled datapath); and the achieved clock can
//! never exceed `max(Fmax, 1)` MHz ([`TargetDevice::clock_mhz`] derates
//! and clamps downwards only). Every dropped term is non-negative and
//! every substituted term is a floor of its exact counterpart under the
//! same floating-point rounding, so `t_lower ≤ t_instance` holds
//! bit-for-bit and `ekit ≤ ekit_upper` — the search never prunes a
//! variant that could have entered the leaderboard. The admissibility
//! argument, including the floating-point monotonicity details, is
//! written out in `docs/dse-search.md`.

use crate::bandwidth::BandwidthBreakdown;
use crate::params::RawGeometry;
use tytra_device::{ResourceVector, TargetDevice};
use tytra_ir::MemForm;

/// The bound pass's verdict on one variant.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBound {
    /// Exact resource total (the per-family lower bound is tight: the
    /// resource pass is memoized integer arithmetic, not an estimate of
    /// an estimate).
    pub resources: ResourceVector,
    /// Exact fit verdict against the device capacity.
    pub fits: bool,
    /// Lower bound on seconds per kernel instance.
    pub t_lower: f64,
    /// Upper bound on EKIT (`1 / t_lower`; `+∞` when `t_lower` is 0, so
    /// a zero-cost bound can never prune).
    pub ekit_upper: f64,
}

impl CostBound {
    /// Can this variant possibly beat an incumbent EKIT? Strict
    /// comparison: an exact tie must still be estimated so deterministic
    /// index tie-breaking sees it. Deliberately `!(a < b)` rather than
    /// `a >= b`: if either side were ever NaN the answer must be "keep"
    /// (estimating too much is safe, pruning too much is a wrong
    /// leaderboard).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn can_beat(&self, incumbent_ekit: f64) -> bool {
        !(self.ekit_upper < incumbent_ekit)
    }
}

/// Assemble the bound from the geometry, the bandwidth assessment and
/// the tree-derived initiation interval. `ii` must equal the schedule
/// pass's value (Pipe/Comb/Par lane → 1.0, Seq lane → instruction
/// count); the caller recomputes it from the configuration tree.
pub(crate) fn assemble(
    g: &RawGeometry,
    dev: &TargetDevice,
    bw: &BandwidthBreakdown,
    ii: f64,
    resources: ResourceVector,
    fits: bool,
) -> CostBound {
    let total_bytes = g.total_bytes();

    // Host term — exactly Eq 1-3's host transfer, as in the throughput
    // pass (Form A pays per instance, B/C/Tiled amortise over NKI).
    let host_raw = if bw.host_effective > 0.0 { total_bytes / bw.host_effective } else { 0.0 };
    let t_host = match g.form {
        MemForm::A => host_raw,
        MemForm::B | MemForm::C | MemForm::Tiled { .. } => host_raw / g.nki as f64,
    };

    // Memory term — identical to the throughput pass.
    let t_memory = match g.form {
        MemForm::C => 0.0,
        MemForm::Tiled { .. } => total_bytes / bw.dram_effective.max(1.0) / g.nki as f64,
        _ => {
            if total_bytes == 0.0 {
                0.0
            } else {
                total_bytes / bw.dram_effective.max(1.0)
            }
        }
    };

    // Compute floor: the datapath cannot clock above max(Fmax, 1) MHz,
    // so this divides the same numerator by a ≥ divisor.
    let fd_ceiling = dev.fmax_mhz.max(1.0) * 1e6;
    let t_compute_floor = g.items_per_lane() * ii / fd_ceiling;

    // Overheads — identical to the throughput pass.
    let setup = dev.host_link.stream_setup_us * g.n_streams as f64;
    let t_overhead = match g.form {
        MemForm::A => (dev.host_call_overhead_us + setup) * 1e-6,
        _ => (dev.host_call_overhead_us + setup / g.nki as f64) * 1e-6,
    };

    // Form C's main term is t_compute by construction; for the others it
    // is max(t_memory, t_compute). max(t_memory_as_computed,
    // t_compute_floor) lower-bounds both cases (Form C's t_memory is 0).
    let t_lower = t_host + t_memory.max(t_compute_floor) + t_overhead;
    let ekit_upper = if t_lower > 0.0 { 1.0 / t_lower } else { f64::INFINITY };

    CostBound { resources, fits, t_lower, ekit_upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RawGeometry;
    use tytra_device::eval_small;

    fn geom(form: MemForm) -> RawGeometry {
        RawGeometry {
            ngs: 1_000_000,
            nki: 1000,
            nwpt_words: 4,
            bytes_per_item: 16,
            noff: 900,
            noff_bytes: 2700,
            knl: 1,
            dv: 1,
            form,
            n_streams: 4,
            local_bytes: 0,
        }
    }

    fn bw() -> BandwidthBreakdown {
        BandwidthBreakdown {
            streams: vec![],
            dram_effective: 8.0e9,
            rho_g: 0.21,
            host_effective: 2.4e9,
            rho_h: 0.6,
        }
    }

    #[test]
    fn zero_time_bound_cannot_prune() {
        let b = CostBound {
            resources: ResourceVector::default(),
            fits: true,
            t_lower: 0.0,
            ekit_upper: f64::INFINITY,
        };
        assert!(b.can_beat(1e300));
    }

    #[test]
    fn exact_tie_is_not_prunable() {
        let dev = eval_small();
        let b = assemble(&geom(MemForm::B), &dev, &bw(), 1.0, ResourceVector::default(), true);
        assert!(b.can_beat(b.ekit_upper), "strict comparison keeps ties");
        assert!(!b.can_beat(b.ekit_upper * (1.0 + 1e-9)));
    }

    #[test]
    fn form_a_bound_charges_host_per_instance() {
        let dev = eval_small();
        let a = assemble(&geom(MemForm::A), &dev, &bw(), 1.0, ResourceVector::default(), true);
        let b = assemble(&geom(MemForm::B), &dev, &bw(), 1.0, ResourceVector::default(), true);
        assert!(a.t_lower > b.t_lower, "Form A pays the host wall every instance");
        assert!(a.ekit_upper < b.ekit_upper);
    }

    #[test]
    fn seq_ii_tightens_the_compute_floor() {
        let dev = eval_small();
        let pipe = assemble(&geom(MemForm::C), &dev, &bw(), 1.0, ResourceVector::default(), true);
        let seq = assemble(&geom(MemForm::C), &dev, &bw(), 12.0, ResourceVector::default(), true);
        assert!(seq.t_lower > pipe.t_lower);
    }
}
