//! Ablatable cost-model configuration.
//!
//! DESIGN.md §8 commits to ablation benches for the design choices the
//! paper motivates. [`CostOptions`] switches the three distinctive
//! ingredients of the model off one at a time:
//!
//! * the **empirical sustained-bandwidth model** (section V-C) — without
//!   it, streams are assumed to sustain the controller-efficiency
//!   fraction of peak regardless of pattern and size;
//! * the **structural resource terms** (offset buffers, delay lines,
//!   stream control, lane glue) — without them, only the datapath
//!   functional units are counted, as a naive per-instruction model
//!   would;
//! * **constant strength reduction** — without it, a multiply by a
//!   constant is priced like a variable multiply (DSP and all).
//!
//! `estimate` ≡ `estimate_with(&CostOptions::default())`; the ablation
//! bench (`cargo run -p tytra-bench --bin ablation`) quantifies how each
//! ingredient buys accuracy against the virtual toolchain.

/// Which ingredients of the cost model are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostOptions {
    /// Apply the Fig 10 empirical sustained-bandwidth model (§V-C).
    pub sustained_bandwidth: bool,
    /// Count structural logic (offset buffers, delay lines, stream
    /// control, sequencers, lane glue), not just functional units.
    pub structural_resources: bool,
    /// Model synthesis strength reduction of constant operands.
    pub strength_reduction: bool,
}

impl Default for CostOptions {
    fn default() -> CostOptions {
        CostOptions {
            sustained_bandwidth: true,
            structural_resources: true,
            strength_reduction: true,
        }
    }
}

impl CostOptions {
    /// Everything on (the paper's model).
    pub fn full() -> CostOptions {
        CostOptions::default()
    }

    /// The naive comparator: per-instruction resources at peak
    /// bandwidth, no strength reduction.
    pub fn naive() -> CostOptions {
        CostOptions {
            sustained_bandwidth: false,
            structural_resources: false,
            strength_reduction: false,
        }
    }

    /// Ablate only the bandwidth model.
    pub fn without_bandwidth() -> CostOptions {
        CostOptions { sustained_bandwidth: false, ..CostOptions::default() }
    }

    /// Ablate only the structural terms.
    pub fn without_structural() -> CostOptions {
        CostOptions { structural_resources: false, ..CostOptions::default() }
    }

    /// Ablate only strength reduction.
    pub fn without_strength_reduction() -> CostOptions {
        CostOptions { strength_reduction: false, ..CostOptions::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full() {
        assert_eq!(CostOptions::default(), CostOptions::full());
        let f = CostOptions::full();
        assert!(f.sustained_bandwidth && f.structural_resources && f.strength_reduction);
    }

    #[test]
    fn naive_disables_everything() {
        let n = CostOptions::naive();
        assert!(!n.sustained_bandwidth && !n.structural_resources && !n.strength_reduction);
    }

    #[test]
    fn single_ablations_flip_one_switch() {
        assert!(!CostOptions::without_bandwidth().sustained_bandwidth);
        assert!(CostOptions::without_bandwidth().structural_resources);
        assert!(!CostOptions::without_structural().structural_resources);
        assert!(CostOptions::without_structural().sustained_bandwidth);
        assert!(!CostOptions::without_strength_reduction().strength_reduction);
    }
}
