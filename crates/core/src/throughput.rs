//! The EKIT throughput cost model (paper section V-B, Equations 1–3).
//!
//! EKIT — *Effective Kernel-Instance Throughput* — is kernel-instance
//! executions per second: the reciprocal of the time one kernel instance
//! takes, composed of
//!
//! 1. host ↔ device-DRAM transfer (amortised over `NKI` for Forms B/C),
//! 2. priming the offset stream buffers until the first work-item can be
//!    processed (`Noff`),
//! 3. filling the kernel pipeline (`KPD / FD`),
//! 4. executing all work-items — the larger of the external-memory time
//!    and the datapath time (`max` term); Form C replaces the `max` by
//!    its compute argument since BRAM-resident data can always feed the
//!    pipeline.
//!
//! Two engineering constants extend the paper's expressions so the §VII
//! case-study shapes reproduce: a fixed host invocation overhead and a
//! per-stream DMA setup charge, both per kernel instance and both taken
//! from the target description. Setting them to zero recovers the
//! textbook Eqs 1–3 (`ThroughputEstimate::ekit_paper` reports that form
//! too).

use crate::bandwidth::BandwidthBreakdown;
use crate::params::CostParams;
use tytra_device::TargetDevice;
use tytra_ir::MemForm;

/// The throughput estimate and its term decomposition (all times in
/// seconds, per kernel instance).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputEstimate {
    /// Host↔DRAM transfer time (already amortised per form).
    pub t_host: f64,
    /// Offset-buffer priming time.
    pub t_offset_fill: f64,
    /// Pipeline fill time.
    pub t_pipe_fill: f64,
    /// External-memory streaming time for all work-items.
    pub t_memory: f64,
    /// Datapath time for all work-items.
    pub t_compute: f64,
    /// Fixed overheads (host call + per-stream DMA setup).
    pub t_overhead: f64,
    /// Total seconds per kernel instance.
    pub t_instance: f64,
    /// EKIT: kernel instances per second (with overheads).
    pub ekit: f64,
    /// EKIT by the unextended paper expressions (no overhead terms).
    pub ekit_paper: f64,
    /// Estimated cycles per kernel instance (`CPKI`, Table II's
    /// throughput measure): fill + drain + streaming of all work-items at
    /// the datapath rate.
    pub cpki: f64,
    /// Clock used, MHz.
    pub freq_mhz: f64,
}

/// Evaluate the EKIT expression for the design's memory-execution form.
pub fn estimate_throughput(
    p: &CostParams,
    dev: &TargetDevice,
    bw: &BandwidthBreakdown,
    freq_mhz: f64,
) -> ThroughputEstimate {
    let fd = freq_mhz * 1e6; // Hz
    let total_bytes = p.total_bytes();

    // 1. Host transfer term.
    let host_raw = if bw.host_effective > 0.0 { total_bytes / bw.host_effective } else { 0.0 };
    let t_host = match p.form {
        MemForm::A => host_raw,
        // Forms B/C/Tiled move the data once over all NKI instances.
        MemForm::B | MemForm::C | MemForm::Tiled { .. } => host_raw / p.nki as f64,
    };

    // 2. Offset priming (from DRAM; Form C primes from BRAM at fabric
    // speed, effectively one element per cycle).
    let t_offset_fill = match p.form {
        MemForm::C => p.noff as f64 / fd,
        MemForm::Tiled { tiles } => {
            // Each tile re-primes its halo.
            (p.noff_bytes as f64 / bw.dram_effective.max(1.0)) * f64::from(tiles)
        }
        _ => {
            if p.noff_bytes == 0 {
                0.0
            } else {
                p.noff_bytes as f64 / bw.dram_effective.max(1.0)
            }
        }
    };

    // 3. Pipeline fill.
    let fills = match p.form {
        MemForm::Tiled { tiles } => f64::from(tiles),
        _ => 1.0,
    };
    let t_pipe_fill = fills * f64::from(p.sched.kpd) / fd;

    // 4. Main term.
    let t_memory = match p.form {
        MemForm::C => 0.0,
        MemForm::Tiled { .. } => total_bytes / bw.dram_effective.max(1.0) / p.nki as f64,
        _ => {
            if total_bytes == 0.0 {
                0.0
            } else {
                total_bytes / bw.dram_effective.max(1.0)
            }
        }
    };
    let t_compute = p.items_per_lane() * p.sched.ii / fd;
    let t_main = match p.form {
        MemForm::C => t_compute,
        _ => t_memory.max(t_compute),
    };

    // Engineering overheads (see module docs). Form A re-arms every
    // stream's DMA descriptors each kernel call; Forms B/C arm them once
    // at staging time (amortised over NKI).
    let setup = dev.host_link.stream_setup_us * p.n_streams as f64;
    let t_overhead = match p.form {
        MemForm::A => (dev.host_call_overhead_us + setup) * 1e-6,
        _ => (dev.host_call_overhead_us + setup / p.nki as f64) * 1e-6,
    };

    let t_paper = t_host + t_offset_fill + t_pipe_fill + t_main;
    let t_instance = t_paper + t_overhead;

    let cpki = p.noff as f64 + f64::from(p.sched.kpd) + p.items_per_lane() * p.sched.ii;

    ThroughputEstimate {
        t_host,
        t_offset_fill,
        t_pipe_fill,
        t_memory,
        t_compute,
        t_overhead,
        t_instance,
        ekit: 1.0 / t_instance,
        ekit_paper: 1.0 / t_paper,
        cpki,
        freq_mhz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CostParams;
    use crate::schedule::PipelineSchedule;
    use tytra_device::stratix_v_gsd8;

    fn params(form: MemForm, knl: u64) -> CostParams {
        CostParams {
            ngs: 1_000_000,
            nki: 1000,
            nwpt_words: 4,
            bytes_per_item: 16,
            noff: 900,
            noff_bytes: 2700,
            sched: PipelineSchedule { kpd: 20, ii: 1.0, ni: 30, delay_line_bits_per_lane: 500 },
            knl,
            dv: 1,
            form,
            n_streams: 4 * knl,
            local_bytes: 0,
        }
    }

    fn bw() -> BandwidthBreakdown {
        BandwidthBreakdown {
            streams: vec![],
            dram_effective: 8.0e9,
            rho_g: 0.21,
            host_effective: 2.4e9,
            rho_h: 0.6,
        }
    }

    #[test]
    fn form_a_pays_host_every_instance() {
        let dev = stratix_v_gsd8();
        let a = estimate_throughput(&params(MemForm::A, 1), &dev, &bw(), 200.0);
        let b = estimate_throughput(&params(MemForm::B, 1), &dev, &bw(), 200.0);
        assert!((a.t_host - 16.0e6 / 2.4e9).abs() < 1e-12);
        assert!((b.t_host - a.t_host / 1000.0).abs() < 1e-15);
        assert!(b.ekit > a.ekit);
    }

    #[test]
    fn form_b_max_term_picks_binding_constraint() {
        let dev = stratix_v_gsd8();
        // 1 lane at 200 MHz: compute = 1e6/200e6 = 5 ms; memory = 16 MB /
        // 8 GB/s = 2 ms → compute-bound.
        let e = estimate_throughput(&params(MemForm::B, 1), &dev, &bw(), 200.0);
        assert!(e.t_compute > e.t_memory);
        // 8 lanes: compute 0.625 ms → memory-bound.
        let e8 = estimate_throughput(&params(MemForm::B, 8), &dev, &bw(), 200.0);
        assert!(e8.t_memory > e8.t_compute);
        // Lanes only help until the memory wall.
        assert!(e8.ekit < 8.0 * e.ekit);
    }

    #[test]
    fn form_c_is_compute_bound_by_construction() {
        let dev = stratix_v_gsd8();
        let mut p = params(MemForm::C, 1);
        p.n_streams = 0;
        let e = estimate_throughput(&p, &dev, &bw(), 200.0);
        assert_eq!(e.t_memory, 0.0);
        // Offset priming at fabric rate: 900 cycles.
        assert!((e.t_offset_fill - 900.0 / 200.0e6).abs() < 1e-15);
    }

    #[test]
    fn lanes_scale_compute_term() {
        let dev = stratix_v_gsd8();
        let e1 = estimate_throughput(&params(MemForm::C, 1), &dev, &bw(), 200.0);
        let e4 = estimate_throughput(&params(MemForm::C, 4), &dev, &bw(), 200.0);
        assert!((e1.t_compute / e4.t_compute - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_form_excludes_overheads() {
        let dev = stratix_v_gsd8();
        let e = estimate_throughput(&params(MemForm::B, 4), &dev, &bw(), 200.0);
        assert!(e.ekit_paper > e.ekit);
        assert!(e.t_overhead > 0.0);
        assert!((1.0 / e.ekit_paper + e.t_overhead - e.t_instance).abs() < 1e-12);
    }

    #[test]
    fn cpki_composition() {
        let dev = stratix_v_gsd8();
        let e = estimate_throughput(&params(MemForm::B, 1), &dev, &bw(), 200.0);
        assert!((e.cpki - (900.0 + 20.0 + 1_000_000.0)).abs() < 1e-6);
    }

    #[test]
    fn tiled_form_interpolates_between_b_and_c() {
        // Tiling only pays off when Form B is memory-bound: use 8 lanes
        // so the datapath outruns the DRAM link.
        let dev = stratix_v_gsd8();
        let b = estimate_throughput(&params(MemForm::B, 8), &dev, &bw(), 200.0);
        let c = {
            let mut p = params(MemForm::C, 8);
            p.n_streams = 0;
            estimate_throughput(&p, &dev, &bw(), 200.0)
        };
        let t = estimate_throughput(&params(MemForm::Tiled { tiles: 64 }, 8), &dev, &bw(), 200.0);
        // Tiled amortises DRAM traffic over NKI like C, so it beats B...
        assert!(t.ekit > b.ekit);
        // ...but pays per-tile refills, so it cannot beat pure C.
        assert!(t.ekit_paper < c.ekit_paper);
    }

    #[test]
    fn higher_clock_helps_compute_bound_designs() {
        let dev = stratix_v_gsd8();
        let slow = estimate_throughput(&params(MemForm::C, 1), &dev, &bw(), 100.0);
        let fast = estimate_throughput(&params(MemForm::C, 1), &dev, &bw(), 250.0);
        assert!(fast.ekit > slow.ekit);
    }
}
