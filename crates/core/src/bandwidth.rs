//! Applying the empirical sustained-bandwidth model to a design's
//! streams (paper section V-C).
//!
//! Each off-chip stream sustains a pattern- and size-dependent fraction
//! of the link's peak. Concurrent streams time-share the memory
//! controller: the aggregate is the sum of per-stream sustained figures,
//! capped at a controller-efficiency fraction of the link peak. The
//! resulting aggregate ÷ peak is the design's ρ (ρ_G for the DRAM link,
//! ρ_H for the host link).

use tytra_device::{CurveCache, LinkKind, LinkSpec, TargetDevice};
use tytra_ir::{AccessPattern, IrModule, StreamDir};

/// Fraction of link peak a real controller sustains with many concurrent
/// well-formed streams.
pub const CONTROLLER_EFFICIENCY: f64 = 0.85;

/// One stream's bandwidth assessment.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBandwidth {
    /// Stream-object name.
    pub name: String,
    /// Direction.
    pub dir: StreamDir,
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Elements in the backing array.
    pub elems: u64,
    /// Sustained bandwidth alone on the link, bytes/s.
    pub sustained_bytes_per_s: f64,
}

/// Aggregate bandwidth figures for one design on one target.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthBreakdown {
    /// Per off-chip stream assessments.
    pub streams: Vec<StreamBandwidth>,
    /// Aggregate sustained DRAM bandwidth, bytes/s (`GPB · ρ_G`).
    pub dram_effective: f64,
    /// The DRAM scaling factor ρ_G.
    pub rho_g: f64,
    /// Aggregate sustained host bandwidth, bytes/s (`HPB · ρ_H`).
    pub host_effective: f64,
    /// The host scaling factor ρ_H.
    pub rho_h: f64,
}

/// Assess with the empirical model disabled: every stream is assumed to
/// sustain the controller-efficiency fraction of peak, regardless of
/// pattern or size. This is the naive model the paper's section V-C
/// argues against; the ablation bench quantifies the damage.
pub fn assess_naive(m: &IrModule, dev: &TargetDevice) -> BandwidthBreakdown {
    assess_naive_impl(m, dev, None)
}

pub(crate) fn assess_naive_impl(
    m: &IrModule,
    dev: &TargetDevice,
    cache: Option<&CurveCache>,
) -> BandwidthBreakdown {
    let mut full = assess_impl(m, dev, cache);
    let dram = dev.dram_link.peak_bytes_per_s * CONTROLLER_EFFICIENCY;
    let host = dev.host_link.peak_bytes_per_s * CONTROLLER_EFFICIENCY;
    for s in &mut full.streams {
        s.sustained_bytes_per_s = dram;
    }
    full.dram_effective = dram;
    full.rho_g = CONTROLLER_EFFICIENCY;
    full.host_effective = host;
    full.rho_h = CONTROLLER_EFFICIENCY;
    full
}

/// Assess every off-chip stream of the design and derive ρ_G / ρ_H.
///
/// Streams are **co-required**: every work-item consumes one element of
/// each input stream and produces one of each output, so the slowest
/// per-element stream gates the item rate — a strided input cannot be
/// masked by a fast contiguous output. The aggregate is therefore
/// `min(Σ sustained capped at controller efficiency,
///      lanes × min_i(sustained_i / elem_bytes_i) × bytes_per_item)`.
pub fn assess(m: &IrModule, dev: &TargetDevice) -> BandwidthBreakdown {
    assess_impl(m, dev, None)
}

/// [`assess`] with sustained-bandwidth interpolations routed through a
/// session curve cache when one is present.
pub(crate) fn assess_impl(
    m: &IrModule,
    dev: &TargetDevice,
    cache: Option<&CurveCache>,
) -> BandwidthBreakdown {
    let mut streams = Vec::new();
    let mut dram_sum = 0.0;
    // Slowest per-element rate across co-required streams, items/s.
    let mut min_item_rate = f64::INFINITY;
    let mut bytes_per_item_all_lanes = 0.0f64;
    for s in &m.streams {
        let Some(mem) = m.mem(&s.mem) else { continue };
        if !mem.space.is_offchip() {
            continue;
        }
        let sustained = match cache {
            Some(c) => {
                c.sustained_bytes_per_s(LinkKind::Dram, &dev.dram_link.bw, s.pattern, mem.len)
            }
            None => dev.dram_link.bw.sustained_bytes_per_s(s.pattern, mem.len),
        };
        dram_sum += sustained;
        let eb = f64::from(mem.elem_ty.bytes());
        min_item_rate = min_item_rate.min(sustained / eb);
        bytes_per_item_all_lanes += eb;
        streams.push(StreamBandwidth {
            name: s.name.clone(),
            dir: s.dir,
            pattern: s.pattern,
            elems: mem.len,
            sustained_bytes_per_s: sustained,
        });
    }
    let lanes = m.kernel_lanes().max(1) as f64;
    // Per-work-item bytes (per-lane stream sets are parallel replicas).
    let bytes_per_item = bytes_per_item_all_lanes / lanes;
    let gated = if min_item_rate.is_finite() {
        lanes * min_item_rate * bytes_per_item
    } else {
        f64::INFINITY
    };
    let dram_sum = dram_sum.min(gated);
    let (dram_effective, rho_g) = aggregate(&dev.dram_link, dram_sum, streams.is_empty());

    // Host DMA moves whole arrays contiguously regardless of the kernel's
    // access pattern; its sustained figure depends on transfer size.
    let total_elems: u64 = m
        .streams
        .iter()
        .filter_map(|s| m.mem(&s.mem))
        .filter(|mem| mem.space.is_offchip())
        .map(|mem| mem.len)
        .sum();
    let host_sum = if total_elems == 0 {
        0.0
    } else {
        match cache {
            Some(c) => c.sustained_bytes_per_s(
                LinkKind::Host,
                &dev.host_link.bw,
                AccessPattern::Contiguous,
                total_elems,
            ),
            None => dev.host_link.bw.sustained_bytes_per_s(AccessPattern::Contiguous, total_elems),
        }
    };
    let (host_effective, rho_h) = aggregate(&dev.host_link, host_sum, total_elems == 0);

    BandwidthBreakdown { streams, dram_effective, rho_g, host_effective, rho_h }
}

fn aggregate(link: &LinkSpec, sum: f64, empty: bool) -> (f64, f64) {
    if empty {
        // No off-chip streams: bandwidth is not a factor; report the
        // cap so time terms divide cleanly.
        let eff = link.peak_bytes_per_s * CONTROLLER_EFFICIENCY;
        return (eff, CONTROLLER_EFFICIENCY);
    }
    let eff = sum.min(link.peak_bytes_per_s * CONTROLLER_EFFICIENCY);
    (eff, eff / link.peak_bytes_per_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{stratix_v_gsd8, virtex7_adm7v3};
    use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(32);

    fn module_with_streams(n_in: usize, strided: bool, elems: u64) -> IrModule {
        let mut b = ModuleBuilder::new("m");
        for i in 0..n_in {
            if strided {
                b.global_array(
                    &format!("x{i}"),
                    T,
                    elems,
                    StreamDir::Read,
                    AccessPattern::Strided { stride: 2000 },
                );
            } else {
                b.global_input(&format!("x{i}"), T, elems);
            }
        }
        b.global_output("y", T, elems);
        {
            let f = b.function("f0", ParKind::Pipe);
            for i in 0..n_in {
                f.input(format!("x{i}"), T);
            }
            f.output("y", T);
            let x = f.arg("x0");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[elems]);
        b.finish_unchecked()
    }

    #[test]
    fn contiguous_streams_aggregate() {
        let dev = virtex7_adm7v3();
        let m = module_with_streams(3, false, 2000 * 2000);
        let bw = assess(&m, &dev);
        assert_eq!(bw.streams.len(), 4);
        // Each contiguous 2000-side stream sustains 5.2 Gbps = 0.65 GB/s.
        let per = 5.2e9 / 8.0;
        assert!((bw.streams[0].sustained_bytes_per_s - per).abs() / per < 1e-9);
        assert!((bw.dram_effective - 4.0 * per).abs() / per < 1e-6);
        assert!(bw.rho_g > 0.2 && bw.rho_g < 0.3, "{}", bw.rho_g);
    }

    #[test]
    fn aggregate_capped_at_controller_efficiency() {
        let dev = virtex7_adm7v3();
        // 20 streams would nominally exceed the 10.7 GB/s link.
        let m = module_with_streams(19, false, 6000 * 6000);
        let bw = assess(&m, &dev);
        assert!((bw.rho_g - CONTROLLER_EFFICIENCY).abs() < 1e-9);
        assert!(
            (bw.dram_effective - dev.dram_link.peak_bytes_per_s * CONTROLLER_EFFICIENCY).abs()
                < 1.0
        );
    }

    #[test]
    fn strided_streams_collapse_rho() {
        let dev = virtex7_adm7v3();
        let cont = assess(&module_with_streams(1, false, 2000 * 2000), &dev);
        let strided = assess(&module_with_streams(1, true, 2000 * 2000), &dev);
        // One stream of each direction; the strided input drags the
        // aggregate down by an order of magnitude or more.
        assert!(cont.dram_effective / strided.dram_effective > 1.8);
        let strided_in = &strided.streams[0];
        assert!(matches!(strided_in.pattern, AccessPattern::Strided { .. }));
        assert!(strided_in.sustained_bytes_per_s < 0.08e9 / 8.0 + 1.0);
    }

    #[test]
    fn small_arrays_sustain_less() {
        let dev = virtex7_adm7v3();
        let small = assess(&module_with_streams(1, false, 100 * 100), &dev);
        let large = assess(&module_with_streams(1, false, 4000 * 4000), &dev);
        assert!(small.dram_effective < large.dram_effective);
    }

    #[test]
    fn no_offchip_streams_reports_cap() {
        let dev = stratix_v_gsd8();
        let mut b = ModuleBuilder::new("c");
        b.local_array("x", T, 64, StreamDir::Read);
        b.local_array("y", T, 64, StreamDir::Write);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let bw = assess(&m, &dev);
        assert!(bw.streams.is_empty());
        assert_eq!(bw.rho_g, CONTROLLER_EFFICIENCY);
    }

    #[test]
    fn host_rho_depends_on_transfer_size() {
        let dev = stratix_v_gsd8();
        let small = assess(&module_with_streams(1, false, 64 * 64), &dev);
        let large = assess(&module_with_streams(1, false, 4000 * 4000), &dev);
        assert!(small.rho_h < large.rho_h);
        assert!(large.rho_h <= CONTROLLER_EFFICIENCY + 1e-12);
    }
}
