//! Datapath scheduling: pipeline depth (`KPD`), initiation interval and
//! structural register accounting across the configuration hierarchy.

use tytra_device::{CachedLatency, CurveCache, TargetDevice};
use tytra_ir::{ConfigNode, Dfg, IrError, IrModule, ParKind};

/// The scheduled shape of one design variant's processing element(s).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSchedule {
    /// `KPD`: kernel pipeline depth in cycles — fill latency before the
    /// first result emerges. Coarse pipelines add their stages' depths;
    /// parallel lanes take the maximum.
    pub kpd: u32,
    /// Initiation interval: cycles between successive work-items entering
    /// one lane (1 for a full pipeline, `NI` for `seq` bodies). This is
    /// the paper's `NTO · NI` product.
    pub ii: f64,
    /// `NI`: datapath instructions per processing element (one lane's
    /// subtree).
    pub ni: u64,
    /// Pass-through delay-line bits over the lane subtree (the `∆` chains
    /// of Fig 13), before lane replication.
    pub delay_line_bits_per_lane: u64,
}

/// Schedule the module's configuration tree with the device's latency
/// calibration.
pub fn schedule(
    m: &IrModule,
    dev: &TargetDevice,
    tree: &ConfigNode,
) -> Result<PipelineSchedule, IrError> {
    schedule_with(m, dev, None, tree)
}

/// [`schedule`] with latency lookups routed through a session curve
/// cache when one is present. The schedule depends only on the lane
/// subtree (not on `DV` or lane count), which is why a session memoizes
/// it under the subtree fingerprint.
pub(crate) fn schedule_with(
    m: &IrModule,
    dev: &TargetDevice,
    curves: Option<&CurveCache>,
    tree: &ConfigNode,
) -> Result<PipelineSchedule, IrError> {
    let lane = lane_subtree(tree);
    let (kpd, delay_bits) = depth_of(m, dev, curves, lane)?;
    let ni = lane.subtree_instrs();
    let ii = match lane.kind {
        // A pipeline accepts one work-item per cycle once full.
        ParKind::Pipe | ParKind::Comb => 1.0,
        // A sequential PE re-uses its functional units: one instruction
        // per cycle, NI cycles per work-item.
        ParKind::Seq => ni.max(1) as f64,
        ParKind::Par => 1.0,
    };
    Ok(PipelineSchedule { kpd, ii, ni, delay_line_bits_per_lane: delay_bits })
}

/// The subtree that one lane executes: for a `par` root, its first child
/// (lanes are replicas by construction); otherwise the root itself.
pub fn lane_subtree(tree: &ConfigNode) -> &ConfigNode {
    if tree.kind == ParKind::Par {
        tree.children.first().unwrap_or(tree)
    } else {
        tree
    }
}

/// Recursive pipeline depth + delay-line bits of a subtree.
fn depth_of(
    m: &IrModule,
    dev: &TargetDevice,
    curves: Option<&CurveCache>,
    node: &ConfigNode,
) -> Result<(u32, u64), IrError> {
    let f = m
        .function(&node.function)
        .ok_or_else(|| IrError::Unknown { kind: "function", name: node.function.clone() })?;
    match node.kind {
        ParKind::Pipe => {
            let dfg = match curves {
                Some(c) => Dfg::build(f, &CachedLatency { ops: &dev.ops, cache: c }),
                None => Dfg::build(f, &dev.ops),
            };
            let mut depth = dfg.depth;
            let mut bits = dfg.delay_line_bits;
            for c in &node.children {
                match c.kind {
                    // A comb block inlines as one extra stage.
                    ParKind::Comb => depth += 1,
                    _ => {
                        let (d, b) = depth_of(m, dev, curves, c)?;
                        depth += d;
                        bits += b;
                    }
                }
            }
            Ok((depth, bits))
        }
        ParKind::Comb => Ok((1, 0)),
        ParKind::Seq => {
            // A sequential PE's "fill" is one pass over its instructions.
            Ok((f.n_instructions().max(1) as u32, 0))
        }
        ParKind::Par => {
            // Lanes fill concurrently: the slowest decides.
            let mut depth = 0;
            let mut bits = 0;
            for c in &node.children {
                let (d, b) = depth_of(m, dev, curves, c)?;
                depth = depth.max(d);
                bits = bits.max(b);
            }
            Ok((depth, bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{config_tree, ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn chain_module(lanes: usize) -> IrModule {
        let mut b = ModuleBuilder::new("m");
        b.global_input("x", T, 1 << 12);
        b.global_output("y", T, 1 << 12);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let m1 = f.instr(Opcode::Mul, T, vec![x.clone(), f.imm(3)]);
            let a1 = f.instr(Opcode::Add, T, vec![m1, x]);
            f.write_out("y", a1);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[1 << 12]);
        b.finish_unchecked()
    }

    #[test]
    fn single_pipe_depth_and_ii() {
        let m = chain_module(1);
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let s = schedule(&m, &dev, &tree.root).unwrap();
        // mul(2) → add(1) → or(1): depth 4.
        assert_eq!(s.kpd, 4);
        assert_eq!(s.ii, 1.0);
        assert_eq!(s.ni, 3);
        // x waits 2 cycles for the mul; a1 feeds or directly.
        assert!(s.delay_line_bits_per_lane >= 2 * 18);
    }

    #[test]
    fn par_lanes_fill_concurrently() {
        let dev = stratix_v_gsd8();
        let m1 = chain_module(1);
        let m4 = chain_module(4);
        let t1 = config_tree::extract(&m1).unwrap();
        let t4 = config_tree::extract(&m4).unwrap();
        let s1 = schedule(&m1, &dev, &t1.root).unwrap();
        let s4 = schedule(&m4, &dev, &t4.root).unwrap();
        assert_eq!(s1.kpd, s4.kpd, "KPD is per lane, not per design");
        assert_eq!(s4.ni, s1.ni, "NI is per PE");
    }

    #[test]
    fn coarse_pipe_adds_depths() {
        let mut b = ModuleBuilder::new("coarse");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("stageA", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        {
            let f = b.function("stageB", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Mul, T, vec![x, f.imm(5)]);
            f.write_out("y", v);
        }
        {
            let f = b.function("top", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            f.call("stageA", vec![], ParKind::Pipe);
            f.call("stageB", vec![], ParKind::Pipe);
        }
        b.main_calls("top");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let s = schedule(&m, &dev, &tree.root).unwrap();
        // stageA: add+or = 2; stageB: mul(2)+or = 3; top itself: 0.
        assert_eq!(s.kpd, 5);
        assert_eq!(s.ni, 4);
    }

    #[test]
    fn seq_ii_equals_ni() {
        let mut b = ModuleBuilder::new("seq");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("s0", ParKind::Seq);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let a = f.instr(Opcode::Add, T, vec![x.clone(), f.imm(1)]);
            let c = f.instr(Opcode::Mul, T, vec![a, x]);
            f.write_out("y", c);
        }
        b.main_calls("s0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let s = schedule(&m, &dev, &tree.root).unwrap();
        assert_eq!(s.ni, 3);
        assert_eq!(s.ii, 3.0);
        assert_eq!(s.kpd, 3);
    }
}
