//! Run-time reconfiguration costing — the C6 axis of the design-space
//! abstraction (paper Fig 5: "C6 Run-time Reconfiguration", for "cases
//! where a kernel may have too many instructions to fit entirely on the
//! available FPGA resources as a pipeline"). The EKIT measure was
//! explicitly defined "to take into account ... dynamic reconfiguration
//! penalty if applicable" (§V-B); this module supplies that penalty.
//!
//! Model: a design that does not fit is partitioned into `k` successive
//! *personalities* (greedy first-fit over the coarse-pipeline stages, or
//! an even split of a flat pipeline's instructions). Each kernel
//! instance then executes as `k` passes; between passes the fabric is
//! reconfigured and the intermediate stream is staged in device DRAM.
//! Per instance:
//!
//! ```text
//! T_reconf = k·t_swap + Σ_pass (fill + NGS/(F·KNL·DV))
//!            + (k − 1) · 2·NGS·elem_bytes / (GPB·ρ_G)   (stage out + in)
//! ```

use crate::bandwidth::BandwidthBreakdown;
use crate::params::CostParams;
use crate::report::CostReport;
use tytra_device::TargetDevice;

/// Reconfiguration-execution estimate for an oversized design.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigPlan {
    /// Number of personalities (bitstream partitions).
    pub personalities: u32,
    /// Seconds per fabric swap.
    pub t_swap_s: f64,
    /// Seconds per kernel instance including swaps and DRAM staging.
    pub t_instance_s: f64,
    /// EKIT under reconfiguration.
    pub ekit: f64,
    /// Slowdown versus the (infeasible) fully-resident design.
    pub slowdown: f64,
}

/// Default full-fabric reconfiguration time for a Stratix-V-class part,
/// seconds (CvP/PR regions are faster; this is the conservative figure).
pub const T_SWAP_FULL_S: f64 = 0.1;

/// Plan reconfigured execution for a design whose resource estimate
/// exceeded the device. Returns `None` when even a single instruction
/// set cannot be split (a lone stage already overflows) or when the
/// design fits and needs no reconfiguration.
pub fn plan(report: &CostReport, dev: &TargetDevice) -> Option<ReconfigPlan> {
    if report.fits {
        return None;
    }
    let total = &report.resources.total;
    // Personalities needed on the tightest axis.
    let need = |used: u64, cap: u64| -> u32 {
        if cap == 0 {
            return u32::MAX;
        }
        used.div_ceil(cap) as u32
    };
    let k = need(total.aluts, dev.capacity.aluts)
        .max(need(total.regs, dev.capacity.regs))
        .max(need(total.bram_bits, dev.capacity.bram_bits))
        .max(need(total.dsps, dev.capacity.dsps));
    if k == u32::MAX || k < 2 {
        return None;
    }
    // A pipeline can only split at instruction granularity: give up when
    // a single instruction's share would still overflow (approximated by
    // requiring at least one instruction per personality).
    if u64::from(k) > report.params.sched.ni.max(1) {
        return None;
    }
    Some(plan_with(report, &report.params, &report.bandwidth, k, T_SWAP_FULL_S))
}

/// Plan with an explicit partition count and swap time (exposed for the
/// DSE engine's what-if queries and for partial-reconfiguration
/// targets).
pub fn plan_with(
    report: &CostReport,
    p: &CostParams,
    bw: &BandwidthBreakdown,
    k: u32,
    t_swap_s: f64,
) -> ReconfigPlan {
    let fd = report.clock.freq_mhz * 1e6;
    let passes = f64::from(k.max(1));
    // Each pass streams all items through its slice of the pipeline.
    let per_pass_fill = f64::from(report.params.sched.kpd) / passes / fd;
    let per_pass_items = p.items_per_lane() * p.sched.ii / fd;
    // Between passes the intermediate stream round-trips DRAM.
    let elem_bytes = (p.bytes_per_item / p.nwpt_words.max(1)).max(1) as f64;
    let staging = (passes - 1.0) * 2.0 * p.ngs as f64 * elem_bytes / bw.dram_effective.max(1.0);
    let t_instance = passes * (t_swap_s + per_pass_fill + per_pass_items)
        + staging
        + report.throughput.t_host
        + report.throughput.t_overhead;
    let resident = report.throughput.t_instance;
    ReconfigPlan {
        personalities: k,
        t_swap_s,
        t_instance_s: t_instance,
        ekit: 1.0 / t_instance,
        slowdown: t_instance / resident,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate;
    use tytra_device::eval_small;
    use tytra_ir::{IrModule, ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn big_module(lanes: usize) -> IrModule {
        let mut b = ModuleBuilder::new(format!("big_l{lanes}"));
        let n = 1u64 << 16;
        for l in 0..lanes {
            b.global_input(&format!("x{l}"), T, n / lanes as u64);
            b.global_output(&format!("y{l}"), T, n / lanes as u64);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let mut cur = f.arg("x");
            for _ in 0..40 {
                let x = f.arg("x");
                cur = f.instr(Opcode::Mul, T, vec![cur, x]);
            }
            f.write_out("y", cur);
        }
        let f = b.function("f1", ParKind::Par);
        for _ in 0..lanes {
            f.call("f0", vec![], ParKind::Pipe);
        }
        b.main_calls("f1");
        b.ndrange(&[n]).nki(10);
        b.finish().unwrap()
    }

    #[test]
    fn fitting_designs_need_no_plan() {
        let dev = eval_small();
        let m = big_module(2);
        let r = estimate(&m, &dev).unwrap();
        if r.fits {
            assert!(plan(&r, &dev).is_none());
        }
    }

    #[test]
    fn oversized_design_gets_a_multi_personality_plan() {
        let dev = eval_small();
        // 16 lanes × 40 multiplies ≫ 3400 ALUTs.
        let m = big_module(16);
        let r = estimate(&m, &dev).unwrap();
        assert!(!r.fits, "premise: oversized");
        let plan = plan(&r, &dev).expect("splittable");
        assert!(plan.personalities >= 2, "{plan:?}");
        assert!(plan.t_instance_s > r.throughput.t_instance);
        assert!(plan.slowdown > 1.0);
        // Swaps dominate small instances: at 0.1 s per swap the instance
        // takes at least k × 0.1 s.
        assert!(plan.t_instance_s >= f64::from(plan.personalities) * T_SWAP_FULL_S);
    }

    #[test]
    fn faster_swaps_recover_throughput() {
        let dev = eval_small();
        let m = big_module(16);
        let r = estimate(&m, &dev).unwrap();
        let full = plan(&r, &dev).unwrap();
        let partial = plan_with(&r, &r.params, &r.bandwidth, full.personalities, 0.01);
        assert!(partial.t_instance_s < full.t_instance_s);
        assert!(partial.ekit > full.ekit);
    }

    #[test]
    fn more_personalities_cost_more_swaps() {
        let dev = eval_small();
        let m = big_module(16);
        let r = estimate(&m, &dev).unwrap();
        let k2 = plan_with(&r, &r.params, &r.bandwidth, 2, T_SWAP_FULL_S);
        let k4 = plan_with(&r, &r.params, &r.bandwidth, 4, T_SWAP_FULL_S);
        assert!(k4.t_instance_s > k2.t_instance_s);
    }
}
