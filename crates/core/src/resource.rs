//! The resource-utilization cost model (paper section V-A).
//!
//! "We calculate the overall resource-cost of the design by accumulating
//! the cost of individual IR instructions and the structural information
//! implied in the type of each IR function."
//!
//! Per configuration node:
//!
//! * **pipe** — Σ per-instruction functional-unit costs (each replicated
//!   `DV` times), plus the pass-through delay lines the ASAP schedule
//!   implies (Fig 13's `∆` chains), plus one offset buffer per offset
//!   source (window × width bits — spilt to BRAM above a threshold,
//!   registers below it), plus stream-port glue;
//! * **comb** — Σ instruction ALUTs with a single output register layer
//!   (single-cycle block);
//! * **seq** — one functional unit per opcode family (maximum width
//!   instance), a sequencing FSM, and an instruction store;
//! * **par** — Σ children plus per-lane distribution glue.
//!
//! Module level adds stream-control counters per off-chip stream and any
//! `local` memory objects (BRAM).
//!
//! The estimator deliberately allocates offset windows of
//! `max_pos − min_neg + 1` elements (the element under the read head
//! included), which is why Table II's SOR estimate is 5418 bits against a
//! synthesised 5400: the synthesis tool's FIFO drops the in-flight
//! element. Our synthesis emulator reproduces that behaviour.

use tytra_device::{CachedLatency, CurveCache, ResourceVector, TargetDevice};
use tytra_ir::{
    fingerprint_function, ArenaModule, ConfigNode, ConfigPlan, Dfg, IrError, IrFunction, IrModule,
    Opcode, ParKind, PlanNode, ScalarType,
};
use tytra_trace::bounded::BoundedMap;
use tytra_trace::metrics::Counter;

/// Offset windows at or below this many bits stay in registers; larger
/// windows spill to block RAM (a Stratix ALM yields two pack-able
/// registers — tiny windows are cheaper in fabric).
pub const OFFSET_REG_SPILL_BITS: u64 = 128;

/// Per-stream-port interface glue (ready/valid handshake, FIFO pointers).
const PORT_GLUE_ALUTS: u64 = 8;
/// Stream-control block per off-chip stream: address counter + request
/// generator (the "stream control" of Figs 4 and 13).
const STREAM_CTRL_ALUTS: u64 = 35;
const STREAM_CTRL_REGS: u64 = 48;
/// Lane-distribution glue per `par` child.
const LANE_GLUE_ALUTS: u64 = 30;
/// Sequencer FSM for `seq` functions.
const SEQ_FSM_ALUTS: u64 = 60;
const SEQ_FSM_REGS: u64 = 40;

/// Resource estimate with a per-category breakdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceBreakdown {
    /// Functional units implementing datapath instructions.
    pub datapath: ResourceVector,
    /// Pass-through delay lines balancing operand arrival.
    pub delay_lines: ResourceVector,
    /// Offset buffers (stencil windows).
    pub offset_buffers: ResourceVector,
    /// Stream control, port glue, lane distribution, sequencer FSMs.
    pub control: ResourceVector,
    /// On-chip `local` memory objects.
    pub local_memory: ResourceVector,
}

impl ResourceBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> ResourceVector {
        self.datapath + self.delay_lines + self.offset_buffers + self.control + self.local_memory
    }
}

impl std::ops::AddAssign<&ResourceBreakdown> for ResourceBreakdown {
    fn add_assign(&mut self, rhs: &ResourceBreakdown) {
        self.datapath += rhs.datapath;
        self.delay_lines += rhs.delay_lines;
        self.offset_buffers += rhs.offset_buffers;
        self.control += rhs.control;
        self.local_memory += rhs.local_memory;
    }
}

/// The resource estimate for a design variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Grand total.
    pub total: ResourceVector,
    /// Category breakdown.
    pub breakdown: ResourceBreakdown,
    /// Resources of a single lane subtree (before replication) — what the
    /// DSE engine uses to predict wall positions when sweeping lanes.
    pub per_lane: ResourceVector,
}

/// Estimate the resources of a design variant (full model).
pub fn estimate_resources(
    m: &IrModule,
    dev: &TargetDevice,
    tree: &ConfigNode,
) -> Result<ResourceEstimate, IrError> {
    estimate_resources_with(m, dev, tree, &crate::CostOptions::default())
}

/// Estimate with ablatable options (see [`crate::CostOptions`]).
pub fn estimate_resources_with(
    m: &IrModule,
    dev: &TargetDevice,
    tree: &ConfigNode,
    opts: &crate::CostOptions,
) -> Result<ResourceEstimate, IrError> {
    let mut walk =
        Walk { m, dev, dv: u64::from(m.meta.vect.max(1)), opts, curves: None, memo: None };
    estimate_resources_impl(&mut walk, tree)
}

/// Session entry point: identical arithmetic to
/// [`estimate_resources_with`], but per-function costs are served from
/// `memo.table` (keyed on the function's structural fingerprint and
/// `DV`) and calibration lookups go through `curves`.
pub(crate) fn estimate_resources_session(
    m: &IrModule,
    dev: &TargetDevice,
    tree: &ConfigNode,
    opts: &crate::CostOptions,
    curves: &CurveCache,
    memo: NodeMemo<'_>,
) -> Result<ResourceEstimate, IrError> {
    let mut walk = Walk {
        m,
        dev,
        dv: u64::from(m.meta.vect.max(1)),
        opts,
        curves: Some(curves),
        memo: Some(memo),
    };
    estimate_resources_impl(&mut walk, tree)
}

/// Arena entry point: the session resource pass over a flattened
/// [`ConfigPlan`] — identical arithmetic to
/// [`estimate_resources_session`], but the recursive tree walk becomes a
/// linear scan over the plan's preorder slice and the module-level terms
/// read the arena's precomputed geometry. Memo misses still price the
/// function body through [`function_cost`] on the retained base tree
/// (the cost depends only on the body, `DV` and the options, all of
/// which are patch-independent). Infallible: the plan only exists when
/// every configuration node's function resolved at arena build time.
pub(crate) fn estimate_resources_arena(
    a: &ArenaModule,
    plan: &ConfigPlan,
    dev: &TargetDevice,
    vect: u32,
    opts: &crate::CostOptions,
    curves: &CurveCache,
    mut memo: NodeMemo<'_>,
) -> ResourceEstimate {
    let dv = u64::from(vect.max(1));
    let mut acc = ResourceBreakdown::default();
    plan_nodes_cost(a, &plan.nodes, dev, dv, opts, curves, &mut memo, &mut acc);
    if !opts.structural_resources {
        acc.delay_lines = ResourceVector::ZERO;
        acc.offset_buffers = ResourceVector::ZERO;
        acc.control = ResourceVector::ZERO;
    }
    if opts.structural_resources {
        // `u64` addition is exact, so one multiply equals the tree
        // path's per-port accumulation.
        acc.control +=
            ResourceVector::new(STREAM_CTRL_ALUTS, STREAM_CTRL_REGS, 0, 0) * a.offchip_ports();
    }
    for &bits in a.local_mem_bits() {
        acc.local_memory += ResourceVector::new(2, 0, bits, 0);
    }

    // Per-lane figure: the lane slice re-walks the memo with live
    // counters, exactly as the tree path's second `node_cost` pass does.
    let mut lane_acc = ResourceBreakdown::default();
    plan_nodes_cost(a, plan.lane_nodes(), dev, dv, opts, curves, &mut memo, &mut lane_acc);
    let ctrl_per_lane = a.offchip_ports().div_ceil(plan.par_lanes.max(1));
    let per_lane = lane_acc.total()
        + ResourceVector::new(STREAM_CTRL_ALUTS, STREAM_CTRL_REGS, 0, 0) * ctrl_per_lane;

    ResourceEstimate { total: acc.total(), breakdown: acc, per_lane }
}

/// Linear-scan equivalent of [`Walk::node_cost`] over a preorder plan
/// slice: `par` nodes price lane glue per child (no memo traffic), every
/// other node goes through the `(fingerprint, DV)` memo.
#[allow(clippy::too_many_arguments)]
fn plan_nodes_cost(
    a: &ArenaModule,
    nodes: &[PlanNode],
    dev: &TargetDevice,
    dv: u64,
    opts: &crate::CostOptions,
    curves: &CurveCache,
    memo: &mut NodeMemo<'_>,
    acc: &mut ResourceBreakdown,
) {
    for node in nodes {
        if node.kind == ParKind::Par {
            acc.control +=
                ResourceVector::new(LANE_GLUE_ALUTS, 0, 0, 0) * u64::from(node.n_children);
            continue;
        }
        let key = (a.fn_fp(node.func), dv);
        if let Some(hit) = memo.table.get(&key) {
            memo.hits.incr();
            *acc += hit;
        } else {
            memo.misses.incr();
            let f = &a.tree().functions[node.func.index()];
            let own = function_cost(a.tree(), dev, f, node.kind, dv, opts, Some(curves));
            *acc += &own;
            if memo.table.insert(key, own) {
                memo.evictions.incr();
            }
        }
    }
}

/// Memo handles threaded through a session-backed resource walk. The
/// counters are the session's registry-backed `session.memo.*` set.
pub(crate) struct NodeMemo<'a> {
    pub(crate) table: &'a mut BoundedMap<(u64, u64), ResourceBreakdown>,
    pub(crate) hits: &'a Counter,
    pub(crate) misses: &'a Counter,
    pub(crate) evictions: &'a Counter,
}

/// One resource-accumulation walk over a configuration tree.
struct Walk<'a> {
    m: &'a IrModule,
    dev: &'a TargetDevice,
    dv: u64,
    opts: &'a crate::CostOptions,
    curves: Option<&'a CurveCache>,
    memo: Option<NodeMemo<'a>>,
}

fn estimate_resources_impl(
    walk: &mut Walk<'_>,
    tree: &ConfigNode,
) -> Result<ResourceEstimate, IrError> {
    let (m, opts) = (walk.m, walk.opts);
    let mut acc = ResourceBreakdown::default();
    walk.node_cost(tree, &mut acc)?;
    if !opts.structural_resources {
        // Naive per-instruction model: keep only functional units.
        acc.delay_lines = ResourceVector::ZERO;
        acc.offset_buffers = ResourceVector::ZERO;
        acc.control = ResourceVector::ZERO;
    }

    // Module-level: stream control per off-chip stream.
    if opts.structural_resources {
        for p in &m.ports {
            let offchip = m
                .stream(&p.stream)
                .and_then(|s| m.mem(&s.mem))
                .map(|mem| mem.space.is_offchip())
                .unwrap_or(true);
            if offchip {
                acc.control += ResourceVector::new(STREAM_CTRL_ALUTS, STREAM_CTRL_REGS, 0, 0);
            }
        }
    }
    // Local memory objects are BRAM-resident.
    for mem in &m.mems {
        if !mem.space.is_offchip() {
            acc.local_memory += ResourceVector::new(2, 0, mem.bits(), 0);
        }
    }

    // Per-lane figure: one lane subtree, including its share of stream
    // control (off-chip streams split evenly across lanes when the design
    // declares per-lane ports).
    let lane = crate::schedule::lane_subtree(tree);
    let mut lane_acc = ResourceBreakdown::default();
    walk.node_cost(lane, &mut lane_acc)?;
    let lanes = if tree.kind == ParKind::Par { tree.children.len() as u64 } else { 1 };
    let offchip_streams = m
        .ports
        .iter()
        .filter(|p| {
            m.stream(&p.stream)
                .and_then(|s| m.mem(&s.mem))
                .map(|mem| mem.space.is_offchip())
                .unwrap_or(true)
        })
        .count() as u64;
    let ctrl_per_lane = offchip_streams.div_ceil(lanes.max(1));
    let per_lane = lane_acc.total()
        + ResourceVector::new(STREAM_CTRL_ALUTS, STREAM_CTRL_REGS, 0, 0) * ctrl_per_lane;

    Ok(ResourceEstimate { total: acc.total(), breakdown: acc, per_lane })
}

impl Walk<'_> {
    /// Accumulate the cost of a configuration node and its children.
    ///
    /// The node's *own* contribution (everything [`function_cost`]
    /// computes) depends only on the function body, `DV` and the options,
    /// so a session memoizes it under `(fingerprint, dv)`; `par` glue and
    /// child recursion stay outside the memo because they depend on the
    /// tree shape. Addition over [`ResourceVector`]s is exact (`u64`), so
    /// replaying a cached sub-total is bit-identical to recomputing it.
    fn node_cost(&mut self, node: &ConfigNode, acc: &mut ResourceBreakdown) -> Result<(), IrError> {
        let f = self
            .m
            .function(&node.function)
            .ok_or_else(|| IrError::Unknown { kind: "function", name: node.function.clone() })?;
        if node.kind == ParKind::Par {
            for _ in &node.children {
                acc.control += ResourceVector::new(LANE_GLUE_ALUTS, 0, 0, 0);
            }
        } else if let Some(memo) = self.memo.as_mut() {
            let key = (fingerprint_function(f), self.dv);
            if let Some(hit) = memo.table.get(&key) {
                memo.hits.incr();
                *acc += hit;
            } else {
                memo.misses.incr();
                let own =
                    function_cost(self.m, self.dev, f, node.kind, self.dv, self.opts, self.curves);
                *acc += &own;
                if memo.table.insert(key, own) {
                    memo.evictions.incr();
                }
            }
        } else {
            let own =
                function_cost(self.m, self.dev, f, node.kind, self.dv, self.opts, self.curves);
            *acc += &own;
        }
        // Validator guarantees comb has no children.
        if node.kind != ParKind::Comb {
            for c in &node.children {
                self.node_cost(c, acc)?;
            }
        }
        Ok(())
    }
}

/// The cost a single function contributes by itself — no children, no
/// lane glue. This is the unit of memoization for a session.
fn function_cost(
    m: &IrModule,
    dev: &TargetDevice,
    f: &IrFunction,
    kind: ParKind,
    dv: u64,
    opts: &crate::CostOptions,
    curves: Option<&CurveCache>,
) -> ResourceBreakdown {
    let mut acc = ResourceBreakdown::default();
    match kind {
        ParKind::Pipe => pipe_cost(m, dev, f, dv, opts, curves, &mut acc),
        ParKind::Comb => comb_cost(dev, f, dv, opts, curves, &mut acc),
        ParKind::Seq => seq_cost(dev, f, curves, &mut acc),
        ParKind::Par => {}
    }
    acc
}

/// One calibration-curve lookup, through the session cache when present.
fn op_cost(
    dev: &TargetDevice,
    curves: Option<&CurveCache>,
    op: Opcode,
    ty: ScalarType,
) -> ResourceVector {
    match curves {
        Some(c) => c.cost(&dev.ops, op, ty),
        None => dev.ops.cost(op, ty),
    }
}

fn pipe_cost(
    m: &IrModule,
    dev: &TargetDevice,
    f: &IrFunction,
    dv: u64,
    opts: &crate::CostOptions,
    curves: Option<&CurveCache>,
    acc: &mut ResourceBreakdown,
) {
    let _ = m;
    // Functional units, one per instruction per vector slot.
    for i in f.instrs() {
        let fu = if opts.strength_reduction {
            fu_estimate_with(dev, curves, i)
        } else {
            op_cost(dev, curves, i.op, i.ty)
        };
        acc.datapath += fu * dv;
    }
    // Delay lines from the ASAP schedule. Long chains retire into
    // LUT-based shift registers (the calibration toolchain's SRL
    // extraction), trading ~3/4 of the flip-flops for a small LUT cost;
    // short chains stay in registers.
    let dfg = match curves {
        Some(c) => Dfg::build(f, &CachedLatency { ops: &dev.ops, cache: c }),
        None => Dfg::build(f, &dev.ops),
    };
    let dl_bits = dfg.delay_line_bits * dv;
    if dl_bits > OFFSET_REG_SPILL_BITS * 2 {
        acc.delay_lines += ResourceVector::new(dl_bits / 8 + 2, dl_bits / 4, 0, 0);
    } else {
        acc.delay_lines += ResourceVector::new(0, dl_bits, 0, 0);
    }
    // Offset buffers: one window per offset source, elements
    // (max_pos − min_neg + 1) wide (see module docs).
    for src in f.offset_sources() {
        let window = f.offset_window(src) + 1;
        let width =
            f.offsets().find(|o| o.src == src).map(|o| u64::from(o.ty.bits())).unwrap_or(18);
        let bits = window * width * dv;
        if bits <= OFFSET_REG_SPILL_BITS {
            acc.offset_buffers += ResourceVector::new(4, bits, 0, 0);
        } else {
            // BRAM window + read/write pointer logic.
            acc.offset_buffers += ResourceVector::new(12, 20, bits, 0);
        }
    }
    // Port glue.
    acc.control += ResourceVector::new(PORT_GLUE_ALUTS * f.params.len() as u64, 0, 0, 0);
}

fn comb_cost(
    dev: &TargetDevice,
    f: &IrFunction,
    dv: u64,
    opts: &crate::CostOptions,
    curves: Option<&CurveCache>,
    acc: &mut ResourceBreakdown,
) {
    let mut out_width = 0u64;
    for i in f.instrs() {
        // Combinational block: LUT cost only, no internal pipeline
        // registers.
        let c = if opts.strength_reduction {
            fu_estimate_with(dev, curves, i)
        } else {
            op_cost(dev, curves, i.op, i.ty)
        };
        acc.datapath += ResourceVector::new(c.aluts, 0, 0, c.dsps) * dv;
        out_width = out_width.max(u64::from(i.ty.bits()));
    }
    // One register layer at the block's output (it occupies one stage of
    // the parent pipeline).
    acc.datapath += ResourceVector::new(0, out_width * dv, 0, 0);
}

/// Per-instruction estimate with the strength reductions the cost model
/// knows synthesis will perform on constant operands: an integer multiply
/// by a compile-time constant becomes a shift-add network over the
/// constant's set bits (no DSP), constant shifts become wiring, and
/// or/xor/and with zero folds away. This is how Table II's integer SOR
/// estimates zero DSPs.
pub fn fu_estimate(dev: &TargetDevice, i: &tytra_ir::Instruction) -> ResourceVector {
    fu_estimate_with(dev, None, i)
}

/// [`fu_estimate`] with calibration lookups routed through a session
/// cache when one is present.
fn fu_estimate_with(
    dev: &TargetDevice,
    curves: Option<&CurveCache>,
    i: &tytra_ir::Instruction,
) -> ResourceVector {
    use tytra_ir::Operand;
    let base = op_cost(dev, curves, i.op, i.ty);
    if !i.ty.is_int() {
        return base;
    }
    let imm = i.operands.iter().find_map(|o| match o {
        Operand::Imm(v) => Some(*v),
        _ => None,
    });
    let Some(c) = imm else { return base };
    let w = u64::from(i.ty.bits());
    match i.op {
        Opcode::Mul => {
            let ones = u64::from(c.unsigned_abs().count_ones());
            let adders = ones.saturating_sub(1);
            ResourceVector::new(adders * (w + 2) + 2, base.regs, 0, 0)
        }
        Opcode::Shl | Opcode::Shr => ResourceVector::new(0, base.regs, 0, 0),
        Opcode::Or | Opcode::Xor if c == 0 => ResourceVector::new(0, base.regs, 0, 0),
        _ => base,
    }
}

fn seq_cost(
    dev: &TargetDevice,
    f: &IrFunction,
    curves: Option<&CurveCache>,
    acc: &mut ResourceBreakdown,
) {
    // One functional unit per opcode family: the widest instance wins.
    let mut families: Vec<(Opcode, ScalarType)> = Vec::new();
    for i in f.instrs() {
        match families.iter_mut().find(|(op, _)| *op == i.op) {
            Some((_, ty)) => {
                if i.ty.bits() > ty.bits() {
                    *ty = i.ty;
                }
            }
            None => families.push((i.op, i.ty)),
        }
    }
    for (op, ty) in families {
        acc.datapath += op_cost(dev, curves, op, ty);
    }
    // (seq PEs time-share full-width units; constant folding does not
    // apply because the shared unit must serve variable operands too.)
    // Sequencer + instruction store (32 bits per instruction).
    acc.control += ResourceVector::new(SEQ_FSM_ALUTS, SEQ_FSM_REGS, 0, 0);
    acc.control += ResourceVector::new(0, 0, f.n_instructions() * 32, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{config_tree, ModuleBuilder, Opcode, ParKind};

    const T: ScalarType = ScalarType::UInt(18);

    fn pipe_module(lanes: usize, window: i64) -> IrModule {
        let mut b = ModuleBuilder::new("m");
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, 27_000 / lanes as u64);
                b.global_output(&format!("q{l}"), T, 27_000 / lanes as u64);
            }
        } else {
            b.global_input("p", T, 27_000);
            b.global_output("q", T, 27_000);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, window);
            let c = f.offset("p", T, -window);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            let sm = f.instr(Opcode::Mul, T, vec![s, f.imm(3)]);
            f.write_out("q", sm);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[27_000]);
        b.finish_unchecked()
    }

    fn estimate(m: &IrModule) -> ResourceEstimate {
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(m).unwrap();
        estimate_resources(m, &dev, &tree.root).unwrap()
    }

    #[test]
    fn offset_window_matches_table2_arithmetic() {
        // SOR-like ±150 window on ui18: estimator books
        // (150 + 150 + 1) × 18 = 5418 BRAM bits — the Table II estimate.
        let m = pipe_module(1, 150);
        let est = estimate(&m);
        assert_eq!(est.breakdown.offset_buffers.bram_bits, 5418);
    }

    #[test]
    fn small_windows_stay_in_registers() {
        let m = pipe_module(1, 3);
        let est = estimate(&m);
        assert_eq!(est.breakdown.offset_buffers.bram_bits, 0);
        assert_eq!(est.breakdown.offset_buffers.regs, 7 * 18);
    }

    #[test]
    fn lanes_replicate_datapath() {
        let e1 = estimate(&pipe_module(1, 150));
        let e4 = estimate(&pipe_module(4, 150));
        assert_eq!(e4.breakdown.datapath, {
            let d = e1.breakdown.datapath;
            d * 4
        });
        assert_eq!(e4.breakdown.offset_buffers.bram_bits, 4 * 5418);
        // Per-lane figure is stable across replication.
        assert_eq!(e1.per_lane.aluts, e4.per_lane.aluts);
    }

    #[test]
    fn vectorization_replicates_fus() {
        let mut m = pipe_module(1, 150);
        m.meta.vect = 2;
        let e2 = estimate(&m);
        let e1 = estimate(&pipe_module(1, 150));
        assert_eq!(e2.breakdown.datapath, e1.breakdown.datapath * 2);
        assert_eq!(e2.breakdown.offset_buffers.bram_bits, 2 * 5418);
    }

    #[test]
    fn stream_control_counted_per_offchip_stream() {
        let e = estimate(&pipe_module(1, 150));
        // Two off-chip streams → two stream-control blocks.
        assert_eq!(e.breakdown.control.regs, 2 * STREAM_CTRL_REGS);
    }

    #[test]
    fn const_multiplier_is_strength_reduced() {
        // `mul %s, 3` → shift-add network: no DSP, popcount(3)−1 = 1
        // adder.
        let e = estimate(&pipe_module(1, 150));
        assert_eq!(e.total.dsps, 0);
    }

    #[test]
    fn variable_multiplier_books_a_dsp() {
        let mut b = ModuleBuilder::new("vm");
        b.global_input("a", T, 64);
        b.global_input("w", T, 64);
        b.global_output("q", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("a", T);
            f.input("w", T);
            f.output("q", T);
            let a = f.arg("a");
            let w = f.arg("w");
            let p = f.instr(Opcode::Mul, T, vec![a, w]);
            f.write_out("q", p);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let e = estimate(&m);
        assert_eq!(e.total.dsps, 1, "one 18-bit variable multiply → one DSP");
    }

    #[test]
    fn comb_block_has_no_internal_regs() {
        let mut b = ModuleBuilder::new("cmb");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("c0", ParKind::Comb);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x.clone(), x]);
            f.write_out("y", v);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            f.call("c0", vec![], ParKind::Comb);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let e = estimate(&m);
        // Output register layer only: 18 bits.
        assert_eq!(e.breakdown.datapath.regs, 18);
        assert!(e.breakdown.datapath.aluts > 0);
    }

    #[test]
    fn seq_shares_functional_units() {
        let mut b = ModuleBuilder::new("sq");
        b.global_input("x", T, 64);
        b.global_output("y", T, 64);
        {
            let f = b.function("s0", ParKind::Seq);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            // Three adds share one adder in a seq PE.
            let a = f.instr(Opcode::Add, T, vec![x.clone(), f.imm(1)]);
            let c = f.instr(Opcode::Add, T, vec![a.clone(), x.clone()]);
            let d = f.instr(Opcode::Add, T, vec![c, a]);
            f.write_out("y", d);
        }
        b.main_calls("s0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let tree = config_tree::extract(&m).unwrap();
        let e = estimate_resources(&m, &dev, &tree.root).unwrap();
        // One adder (20) + one or (9, from write_out) — far less than 4
        // separate units.
        let adder = dev.ops.cost(Opcode::Add, T).aluts;
        let orer = dev.ops.cost(Opcode::Or, T).aluts;
        assert_eq!(e.breakdown.datapath.aluts, adder + orer);
        // Instruction store: 4 instrs × 32 bits.
        assert_eq!(e.breakdown.control.bram_bits, 4 * 32);
    }

    #[test]
    fn breakdown_totals_add_up() {
        let e = estimate(&pipe_module(4, 150));
        assert_eq!(
            e.total,
            e.breakdown.datapath
                + e.breakdown.delay_lines
                + e.breakdown.offset_buffers
                + e.breakdown.control
                + e.breakdown.local_memory
        );
    }
}
