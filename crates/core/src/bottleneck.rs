//! Identification of the performance-limiting parameter.
//!
//! "Our cost model also exposes the performance limiting parameter,
//! allowing targeted optimization and opening the route to a feedback
//! path in our compiler flow with automated, targeted tuning of designs."
//!
//! The limiter is the largest term of the EKIT decomposition — one of the
//! communication walls, the computation wall, or (for degenerate designs)
//! a fill overhead — plus a resource verdict for variants that do not fit
//! the device at all.

use crate::throughput::ThroughputEstimate;
use std::fmt;

/// The binding constraint of a design variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limiter {
    /// Host↔device link saturated (the Fig 15 "communication wall
    /// (host-streams)").
    HostBandwidth,
    /// Device-DRAM link saturated (the "communication wall
    /// (DRAM-streams)").
    DramBandwidth,
    /// Datapath throughput (more lanes / higher clock would help — until
    /// the "computation wall" of exhausted resources).
    Compute,
    /// Offset-buffer priming dominates (grid too small for the stencil
    /// reach).
    OffsetFill,
    /// Pipeline fill dominates (grid far smaller than pipeline depth).
    PipelineFill,
    /// Fixed per-instance overheads dominate (kernel far too small).
    Overhead,
}

impl Limiter {
    /// A targeted-tuning hint for the DSE feedback loop.
    pub fn tuning_hint(self) -> &'static str {
        match self {
            Limiter::HostBandwidth => {
                "move to Form B/C (stage data in device DRAM or BRAM) or reduce words per tuple"
            }
            Limiter::DramBandwidth => {
                "improve access contiguity, widen bursts, or move the working set on chip (Form C / tiling)"
            }
            Limiter::Compute => "add kernel lanes or vectorize (until the computation wall)",
            Limiter::OffsetFill => "reduce stencil reach or reshape so offsets shrink",
            Limiter::PipelineFill => "batch more work-items per kernel instance",
            Limiter::Overhead => "batch kernel instances or reduce the stream count",
        }
    }
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Limiter::HostBandwidth => "host-bandwidth wall",
            Limiter::DramBandwidth => "DRAM-bandwidth wall",
            Limiter::Compute => "compute-bound",
            Limiter::OffsetFill => "offset-fill-bound",
            Limiter::PipelineFill => "pipeline-fill-bound",
            Limiter::Overhead => "overhead-bound",
        };
        f.write_str(s)
    }
}

/// Pick the limiting term of a throughput estimate.
pub fn limiter(t: &ThroughputEstimate) -> Limiter {
    let candidates = [
        (t.t_host, Limiter::HostBandwidth),
        (t.t_memory, Limiter::DramBandwidth),
        (t.t_compute, Limiter::Compute),
        (t.t_offset_fill, Limiter::OffsetFill),
        (t.t_pipe_fill, Limiter::PipelineFill),
        (t.t_overhead, Limiter::Overhead),
    ];
    candidates
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, l)| l)
        .expect("non-empty candidate list")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(host: f64, mem: f64, comp: f64, off: f64, fill: f64, ovh: f64) -> ThroughputEstimate {
        let main = mem.max(comp);
        let total = host + off + fill + main + ovh;
        ThroughputEstimate {
            t_host: host,
            t_offset_fill: off,
            t_pipe_fill: fill,
            t_memory: mem,
            t_compute: comp,
            t_overhead: ovh,
            t_instance: total,
            ekit: 1.0 / total,
            ekit_paper: 1.0 / (total - ovh),
            cpki: 0.0,
            freq_mhz: 200.0,
        }
    }

    #[test]
    fn picks_each_wall() {
        assert_eq!(limiter(&t(9.0, 1.0, 1.0, 0.0, 0.0, 0.1)), Limiter::HostBandwidth);
        assert_eq!(limiter(&t(1.0, 9.0, 1.0, 0.0, 0.0, 0.1)), Limiter::DramBandwidth);
        assert_eq!(limiter(&t(1.0, 1.0, 9.0, 0.0, 0.0, 0.1)), Limiter::Compute);
        assert_eq!(limiter(&t(0.1, 0.1, 0.1, 9.0, 0.0, 0.1)), Limiter::OffsetFill);
        assert_eq!(limiter(&t(0.1, 0.1, 0.1, 0.0, 9.0, 0.1)), Limiter::PipelineFill);
        assert_eq!(limiter(&t(0.1, 0.1, 0.1, 0.0, 0.0, 9.0)), Limiter::Overhead);
    }

    #[test]
    fn hints_are_actionable() {
        for l in [
            Limiter::HostBandwidth,
            Limiter::DramBandwidth,
            Limiter::Compute,
            Limiter::OffsetFill,
            Limiter::PipelineFill,
            Limiter::Overhead,
        ] {
            assert!(!l.tuning_hint().is_empty());
            assert!(!l.to_string().is_empty());
        }
    }
}
