//! Extraction of the Table I throughput parameters from a design's IR.
//!
//! Every parameter of the EKIT expressions (Eqs 1–3), with its paper name
//! and provenance ("Evaluation Method" column of Table I):
//!
//! | field | paper | provenance |
//! |---|---|---|
//! | `ngs` | NGS | parsing IR metadata (NDRange) |
//! | `nki` | NKI | parsing IR metadata |
//! | `nwpt_words` / `bytes_per_item` | NWPT | parsing IR (off-chip ports) |
//! | `noff` / `noff_bytes` | Noff | parsing IR (stream offsets) |
//! | `kpd` | KPD | parsing IR (scheduled datapath) |
//! | `ii` | NTO·NI | parsing IR (configuration kind) |
//! | `ni` | NI | parsing IR |
//! | `knl` | KNL | parsing IR (par replication) |
//! | `dv` | DV | parsing IR metadata |
//!
//! `HPB`, `GPB` come from the architecture description and ρ_H, ρ_G from
//! the empirical bandwidth model (see [`crate::bandwidth`]).

use crate::schedule::{self, PipelineSchedule};
use tytra_device::TargetDevice;
use tytra_ir::{config_tree, ConfigTree, IrModule, MemForm, TybecError};

/// All design-and-program-dependent parameters of the throughput model.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// `NGS`: work-items per kernel instance (NDRange product).
    pub ngs: u64,
    /// `NKI`: kernel-instance repetitions.
    pub nki: u64,
    /// `NWPT`: off-chip words consumed + produced per work-item.
    pub nwpt_words: u64,
    /// Off-chip bytes per work-item (NWPT with word widths applied).
    pub bytes_per_item: u64,
    /// `Noff`: maximum look-ahead of any stream offset, in elements — the
    /// number of elements that must arrive before the first work-item can
    /// be processed.
    pub noff: u64,
    /// `Noff` converted to bytes at the offset stream's element width.
    pub noff_bytes: u64,
    /// The lane schedule (KPD, II, NI, delay lines).
    pub sched: PipelineSchedule,
    /// `KNL`: parallel kernel lanes.
    pub knl: u64,
    /// `DV`: degree of vectorization per lane.
    pub dv: u32,
    /// Memory-execution form.
    pub form: MemForm,
    /// Number of off-chip streams (each pays per-stream DMA setup).
    pub n_streams: u64,
    /// Total bytes held in on-chip (local) memory objects.
    pub local_bytes: u64,
}

impl CostParams {
    /// Extract every parameter from the module against a target.
    /// Also returns the extracted configuration tree for reuse.
    pub fn extract(
        m: &IrModule,
        dev: &TargetDevice,
    ) -> Result<(CostParams, ConfigTree), TybecError> {
        let tree = config_tree::extract(m)?;
        let sched = schedule::schedule(m, dev, &tree.root)?;
        Ok((CostParams::from_parts(m, &tree, sched), tree))
    }

    /// Assemble the parameters from an already-extracted configuration
    /// tree and schedule — the infallible geometry half of [`extract`],
    /// used by the session pipeline after its schedule pass.
    pub(crate) fn from_parts(
        m: &IrModule,
        tree: &ConfigTree,
        sched: PipelineSchedule,
    ) -> CostParams {
        RawGeometry::extract(m, tree).finish(sched)
    }

    /// Work-items each lane processes per kernel instance.
    pub fn items_per_lane(&self) -> f64 {
        self.ngs as f64 / (self.knl.max(1) as f64 * f64::from(self.dv.max(1)))
    }

    /// Total off-chip bytes one kernel instance moves (reads + writes).
    pub fn total_bytes(&self) -> f64 {
        self.ngs as f64 * self.bytes_per_item as f64
    }
}

/// The schedule-free parameters: everything [`CostParams`] carries except
/// the lane schedule. Extracted by IR inspection alone, so the `bound`
/// pass can price the bandwidth and overhead terms of Eqs 1–3 without
/// running the (datapath-walking) schedule pass.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawGeometry {
    pub ngs: u64,
    pub nki: u64,
    pub nwpt_words: u64,
    pub bytes_per_item: u64,
    pub noff: u64,
    pub noff_bytes: u64,
    pub knl: u64,
    pub dv: u32,
    pub form: MemForm,
    pub n_streams: u64,
    pub local_bytes: u64,
}

impl RawGeometry {
    /// Extract the Table I geometry from a module and its configuration
    /// tree (the exact computation [`CostParams::from_parts`] performs
    /// before attaching the schedule).
    pub(crate) fn extract(m: &IrModule, tree: &ConfigTree) -> RawGeometry {
        let ngs = m.meta.global_size();
        let nki = m.meta.nki;

        // Off-chip traffic: every port whose backing memory object lives
        // in an off-chip space moves one element per work-item. With KNL
        // lanes the ports are replicated (p0..p3 in the paper's Fig 14)
        // but each lane serves NGS/KNL items, so per-work-item traffic is
        // the *distinct arrays'* element count: ports ÷ lanes when the
        // module declares per-lane ports.
        let mut offchip_ports = 0u64;
        let mut bytes = 0u64;
        let mut n_streams = 0u64;
        let mut local_bytes = 0u64;
        for mem in &m.mems {
            if !mem.space.is_offchip() {
                local_bytes += mem.bytes();
            }
        }
        for p in &m.ports {
            let offchip = m
                .stream(&p.stream)
                .and_then(|s| m.mem(&s.mem))
                .map(|mem| mem.space.is_offchip())
                .unwrap_or(true);
            if offchip {
                n_streams += 1;
                offchip_ports += 1;
                bytes += u64::from(p.ty.bytes());
            }
        }
        let knl = tree.lanes;
        // Per-lane port sets: a KNL-lane design declares KNL× the ports of
        // the distinct arrays; normalise to per-work-item traffic.
        let lanes_div = knl.max(1);
        let (nwpt_words, bytes_per_item) =
            if offchip_ports.is_multiple_of(lanes_div) && offchip_ports > 0 {
                (offchip_ports / lanes_div, bytes / lanes_div)
            } else {
                (offchip_ports, bytes)
            };

        // Noff: the largest forward look-ahead over all reachable pipes.
        let mut noff = 0u64;
        let mut noff_bytes = 0u64;
        for f in m.reachable_functions() {
            for o in f.offsets() {
                if o.offset > 0 {
                    let lookahead = o.offset as u64;
                    if lookahead > noff {
                        noff = lookahead;
                        noff_bytes = lookahead * u64::from(o.ty.bytes());
                    }
                }
            }
        }

        RawGeometry {
            ngs,
            nki,
            nwpt_words,
            bytes_per_item,
            noff,
            noff_bytes,
            knl,
            dv: m.meta.vect,
            form: m.meta.form,
            n_streams,
            local_bytes,
        }
    }

    /// [`extract`][RawGeometry::extract] over an arena-backed design:
    /// the same Table I geometry, read from the arena's precomputed
    /// scalars plus the variant's patched `form`/`vect` cells instead of
    /// walking the tree. Bit-identical to running `extract` on the
    /// materialized module (every scalar is the same `u64` the tree walk
    /// accumulates; the `NWPT` normalisation repeats the exact
    /// divisibility branch).
    pub(crate) fn extract_design(d: &tytra_ir::PatchedModule<'_>, knl: u64) -> RawGeometry {
        let a = d.arena;
        let offchip_ports = a.offchip_ports();
        let bytes = a.offchip_port_bytes();
        let lanes_div = knl.max(1);
        let (nwpt_words, bytes_per_item) =
            if offchip_ports.is_multiple_of(lanes_div) && offchip_ports > 0 {
                (offchip_ports / lanes_div, bytes / lanes_div)
            } else {
                (offchip_ports, bytes)
            };
        RawGeometry {
            ngs: a.ngs(),
            nki: a.nki(),
            nwpt_words,
            bytes_per_item,
            noff: a.noff(),
            noff_bytes: a.noff_bytes(),
            knl,
            dv: d.vect,
            form: d.form,
            n_streams: offchip_ports,
            local_bytes: a.local_bytes(),
        }
    }

    /// Attach a schedule, completing the [`CostParams`].
    pub(crate) fn finish(self, sched: PipelineSchedule) -> CostParams {
        CostParams {
            ngs: self.ngs,
            nki: self.nki,
            nwpt_words: self.nwpt_words,
            bytes_per_item: self.bytes_per_item,
            noff: self.noff,
            noff_bytes: self.noff_bytes,
            sched,
            knl: self.knl,
            dv: self.dv,
            form: self.form,
            n_streams: self.n_streams,
            local_bytes: self.local_bytes,
        }
    }

    /// Work-items each lane processes per kernel instance. Must stay
    /// bit-identical to [`CostParams::items_per_lane`]: the bound's
    /// compute floor divides the same numerator the throughput pass
    /// divides, so floating-point monotonicity makes the bound
    /// admissible (see `docs/dse-search.md`).
    pub(crate) fn items_per_lane(&self) -> f64 {
        self.ngs as f64 / (self.knl.max(1) as f64 * f64::from(self.dv.max(1)))
    }

    /// Total off-chip bytes per kernel instance, as in
    /// [`CostParams::total_bytes`].
    pub(crate) fn total_bytes(&self) -> f64 {
        self.ngs as f64 * self.bytes_per_item as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::stratix_v_gsd8;
    use tytra_ir::{MemForm, ModuleBuilder, Opcode, ParKind, ScalarType, StreamDir};

    const T: ScalarType = ScalarType::UInt(18);

    fn stencil_module(lanes: usize) -> IrModule {
        let mut b = ModuleBuilder::new("st");
        let n = 27_000u64;
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, n / lanes as u64);
                b.global_output(&format!("q{l}"), T, n / lanes as u64);
            }
        } else {
            b.global_input("p", T, n);
            b.global_output("q", T, n);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 900);
            let c = f.offset("p", T, -900);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            f.write_out("q", s);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[30, 30, 30]).nki(1000).form(MemForm::B);
        b.finish_unchecked()
    }

    #[test]
    fn extracts_basic_geometry() {
        let m = stencil_module(1);
        let dev = stratix_v_gsd8();
        let (p, tree) = CostParams::extract(&m, &dev).unwrap();
        assert_eq!(p.ngs, 27_000);
        assert_eq!(p.nki, 1000);
        assert_eq!(p.knl, 1);
        assert_eq!(tree.lanes, 1);
        assert_eq!(p.nwpt_words, 2);
        assert_eq!(p.bytes_per_item, 6); // two ui18 ports, 3 bytes each
        assert_eq!(p.noff, 900);
        assert_eq!(p.noff_bytes, 2700);
        assert_eq!(p.form, MemForm::B);
        assert_eq!(p.n_streams, 2);
        assert_eq!(p.dv, 1);
    }

    #[test]
    fn per_lane_ports_normalise_nwpt() {
        let m = stencil_module(4);
        let dev = stratix_v_gsd8();
        let (p, _) = CostParams::extract(&m, &dev).unwrap();
        assert_eq!(p.knl, 4);
        assert_eq!(p.n_streams, 8, "8 physical streams");
        assert_eq!(p.nwpt_words, 2, "but still 2 words per work-item");
        assert!((p.items_per_lane() - 6750.0).abs() < 1e-9);
    }

    #[test]
    fn local_memory_counted_for_form_c() {
        let mut b = ModuleBuilder::new("c");
        b.local_array("x", T, 4096, StreamDir::Read);
        b.local_array("y", T, 4096, StreamDir::Write);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", T);
            f.output("y", T);
            let x = f.arg("x");
            let v = f.instr(Opcode::Add, T, vec![x, f.imm(1)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[4096]).form(MemForm::C);
        let m = b.finish_unchecked();
        let dev = stratix_v_gsd8();
        let (p, _) = CostParams::extract(&m, &dev).unwrap();
        assert_eq!(p.nwpt_words, 0, "no off-chip traffic");
        assert_eq!(p.n_streams, 0);
        assert_eq!(p.local_bytes, 2 * 4096 * 3);
    }

    #[test]
    fn negative_offsets_do_not_set_noff() {
        let mut b = ModuleBuilder::new("m");
        b.global_input("p", T, 64);
        b.global_output("q", T, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, -8);
            let p = f.arg("p");
            let s = f.instr(Opcode::Add, T, vec![a, p]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish_unchecked();
        let (p, _) = CostParams::extract(&m, &stratix_v_gsd8()).unwrap();
        assert_eq!(p.noff, 0, "pure look-behind needs no priming");
    }

    #[test]
    fn total_bytes_product() {
        let m = stencil_module(1);
        let (p, _) = CostParams::extract(&m, &stratix_v_gsd8()).unwrap();
        assert!((p.total_bytes() - 27_000.0 * 6.0).abs() < 1e-9);
    }
}
