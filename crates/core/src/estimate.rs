//! Top-level cost-model entry point: the estimation flow of Fig 11's
//! first three (blue) stages — parse memory/stream objects and accumulate
//! their cost, analyze the functions and determine the configuration,
//! estimate throughput for the configuration type.
//!
//! Since the pass-pipeline refactor both entry points are thin wrappers
//! over a single-use [`EstimatorSession`] — the session *is* the
//! pipeline; these functions just run one module through a cold one.
//! Long-lived callers (the DSE engine, a future server mode) hold a
//! session instead and let the memo tables warm up across variants.

use crate::report::CostReport;
use crate::session::EstimatorSession;
use tytra_device::TargetDevice;
use tytra_ir::{IrModule, TybecError};

/// Run the full cost model over a validated design variant.
///
/// The module is re-validated defensively (the estimator walks the call
/// tree and trusts SSA discipline).
pub fn estimate(m: &IrModule, dev: &TargetDevice) -> Result<CostReport, TybecError> {
    estimate_with(m, dev, &crate::CostOptions::default())
}

/// Run the cost model with ablatable ingredients (see
/// [`crate::CostOptions`]); used by the ablation bench.
pub fn estimate_with(
    m: &IrModule,
    dev: &TargetDevice,
    opts: &crate::CostOptions,
) -> Result<CostReport, TybecError> {
    EstimatorSession::with_options(dev.clone(), *opts).estimate(m)
}

/// Off-chip gigabytes per second the run actually exercises, used to
/// scale the dynamic-power term. Degenerate instance times (zero, NaN or
/// infinite, e.g. from a zero-frequency constraint) must not propagate
/// into the reported power figure, so they clamp to zero traffic.
pub(crate) fn exercised_gbytes(total_bytes: f64, t_instance: f64) -> f64 {
    if !t_instance.is_finite() || t_instance <= 0.0 {
        return 0.0;
    }
    let g = total_bytes / t_instance / 1e9;
    if g.is_finite() {
        g
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{eval_small, stratix_v_gsd8};
    use tytra_ir::{MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    /// A reduced SOR-like stencil: 1 input + 1 output array, 6 offsets,
    /// weighted sum, error reduction.
    fn sor_like(lanes: usize, n: u64, form: MemForm) -> IrModule {
        let side = (n as f64).cbrt().round() as i64;
        let plane = side * side;
        let mut b = ModuleBuilder::new(format!("sor_l{lanes}"));
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, n / lanes as u64);
                b.global_output(&format!("q{l}"), T, n / lanes as u64);
            }
        } else {
            b.global_input("p", T, n);
            b.global_output("q", T, n);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let o1 = f.offset("p", T, 1);
            let o2 = f.offset("p", T, -1);
            let o3 = f.offset("p", T, side);
            let o4 = f.offset("p", T, -side);
            let o5 = f.offset("p", T, plane);
            let o6 = f.offset("p", T, -plane);
            let s1 = f.instr(Opcode::Add, T, vec![o1, o2]);
            let s2 = f.instr(Opcode::Add, T, vec![o3, o4]);
            let s3 = f.instr(Opcode::Add, T, vec![o5, o6]);
            let s4 = f.instr(Opcode::Add, T, vec![s1, s2]);
            let s5 = f.instr(Opcode::Add, T, vec![s4, s3]);
            let w = f.instr(Opcode::Mul, T, vec![s5, f.imm(21845)]);
            let p0 = f.arg("p");
            let r = f.instr(Opcode::Add, T, vec![w, p0.clone()]);
            let err = f.instr(Opcode::Sub, T, vec![r.clone(), p0]);
            f.reduce("sorErrAcc", Opcode::Add, T, err);
            f.write_out("q", r);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[n]).nki(1000).form(form);
        b.finish().expect("sor_like is valid")
    }

    #[test]
    fn end_to_end_report_is_coherent() {
        let m = sor_like(1, 96 * 96 * 96, MemForm::B);
        let dev = stratix_v_gsd8();
        let r = estimate(&m, &dev).unwrap();
        assert!(r.fits);
        assert!(r.resources.total.aluts > 100);
        assert!(r.resources.breakdown.offset_buffers.bram_bits > 0);
        assert!(r.clock.freq_mhz > 100.0);
        assert!(r.throughput.ekit > 0.0);
        assert!(r.total_runtime_s() > 0.0);
        assert_eq!(r.params.knl, 1);
        let text = r.render();
        assert!(text.contains("EKIT"));
        assert!(text.contains("limiter"));
    }

    #[test]
    fn more_lanes_raise_throughput_until_a_wall() {
        let dev = stratix_v_gsd8();
        let e1 = estimate(&sor_like(1, 96 * 96 * 96, MemForm::B), &dev).unwrap();
        let e4 = estimate(&sor_like(4, 96 * 96 * 96, MemForm::B), &dev).unwrap();
        assert!(e4.throughput.ekit > e1.throughput.ekit);
        // Resources scale roughly with lanes.
        assert!(e4.resources.total.aluts > 3 * e1.resources.total.aluts);
    }

    #[test]
    fn form_a_slower_than_form_b() {
        let dev = stratix_v_gsd8();
        let a = estimate(&sor_like(1, 96 * 96 * 96, MemForm::A), &dev).unwrap();
        let b = estimate(&sor_like(1, 96 * 96 * 96, MemForm::B), &dev).unwrap();
        assert!(b.throughput.ekit > a.throughput.ekit);
        // With enough lanes the datapath outruns the PCIe link and the
        // host wall binds (the Fig 15 "communication wall
        // (host-streams)").
        let a8 = estimate(&sor_like(8, 96 * 96 * 96, MemForm::A), &dev).unwrap();
        assert_eq!(a8.limiter, crate::Limiter::HostBandwidth);
    }

    #[test]
    fn small_device_does_not_fit_many_lanes() {
        let dev = eval_small();
        let r = estimate(&sor_like(16, 96 * 96 * 96, MemForm::B), &dev).unwrap();
        assert!(!r.fits, "16 SOR lanes must blow eval-small: {}", r.resources.total);
        let r1 = estimate(&sor_like(1, 96 * 96 * 96, MemForm::B), &dev).unwrap();
        assert!(r1.fits);
    }

    #[test]
    fn estimate_rejects_invalid_modules() {
        let mut m = sor_like(1, 4096, MemForm::B);
        m.functions.retain(|f| f.name != "main");
        assert!(estimate(&m, &stratix_v_gsd8()).is_err());
    }

    #[test]
    fn exercised_gbytes_guards_degenerate_instance_times() {
        // Normal case: identical to the plain quotient.
        let g = exercised_gbytes(6.0e9, 2.0);
        assert_eq!(g.to_bits(), (6.0e9f64 / 2.0 / 1e9).to_bits());
        // Degenerate instance times clamp to zero traffic instead of
        // leaking NaN/inf into the power model.
        assert_eq!(exercised_gbytes(1.0e9, 0.0), 0.0);
        assert_eq!(exercised_gbytes(1.0e9, -1.0), 0.0);
        assert_eq!(exercised_gbytes(1.0e9, f64::NAN), 0.0);
        assert_eq!(exercised_gbytes(1.0e9, f64::INFINITY), 0.0);
        // Overflow to infinity in the quotient also clamps.
        assert_eq!(exercised_gbytes(f64::INFINITY, 2.0), 0.0);
        assert_eq!(exercised_gbytes(f64::MAX, f64::MIN_POSITIVE), 0.0);
    }

    #[test]
    fn estimator_is_fast() {
        // §VI-A: the Perl prototype evaluates a variant in 0.3 s. The
        // Rust model must stay far under that — microseconds — so the
        // >200× claim over preliminary HLS estimates holds with margin.
        let m = sor_like(4, 96 * 96 * 96, MemForm::B);
        let dev = stratix_v_gsd8();
        let t0 = std::time::Instant::now();
        let n = 100;
        for _ in 0..n {
            let r = estimate(&m, &dev).unwrap();
            assert!(r.throughput.ekit > 0.0);
        }
        let per = t0.elapsed().as_secs_f64() / n as f64;
        assert!(per < 0.05, "estimation took {per} s/variant");
    }
}
