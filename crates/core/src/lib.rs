//! # tytra-cost — the TyTra cost model
//!
//! This crate is the paper's primary contribution (section V): a fast,
//! light-weight cost model that takes a design variant expressed in
//! TyTra-IR plus a target description and emits
//!
//! * **resource estimates** (ALUTs / registers / BRAM bits / DSPs) —
//!   accumulated from calibrated per-instruction expressions and the
//!   structural logic the IR implies (offset buffers, delay lines, stream
//!   control) — [`resource`];
//! * a **clock estimate** `FD` from per-stage combinational delays and a
//!   congestion derating — [`frequency`];
//! * **sustained-bandwidth estimates** per stream and the aggregate
//!   scaling factors ρ_H / ρ_G — [`bandwidth`];
//! * the **EKIT throughput estimate** (Effective Kernel-Instance
//!   Throughput), Equations 1–3, one per memory-execution form —
//!   [`throughput`];
//! * the **performance-limiting parameter** (which wall binds: host
//!   bandwidth, DRAM bandwidth, compute, or fill overheads) —
//!   [`bottleneck`] — "allowing targeted optimization and opening the
//!   route to a feedback path with automated, targeted tuning".
//!
//! Internally the model is organised as an explicit **pass pipeline**
//! (validate → configure → schedule → parameters → resources → clock →
//! bandwidth → throughput/power) driven by an [`EstimatorSession`]: a
//! long-lived handle that memoizes per-function and per-stream
//! sub-results under stable structural fingerprints so DSE sweeps cost
//! thousands of related variants without redoing shared work — see
//! [`session`] and `docs/estimator-internals.md`.
//!
//! The one-shot entry point is [`estimate()`][estimate::estimate]:
//!
//! ```
//! use tytra_ir::parse;
//! use tytra_device::stratix_v_gsd8;
//!
//! let src = r#"
//! !module = !"double"
//! !ndrange = !{4096}
//! !nki = !1
//! !form = !"B"
//! %mem_x = memobj addrSpace(1) ui32, !size, !4096
//! %strobj_x = streamobj %mem_x, !read, !"CONT"
//! @main.x = addrSpace(12) ui32, !"istream", !"CONT", !0, !"strobj_x"
//! %mem_y = memobj addrSpace(1) ui32, !size, !4096
//! %strobj_y = streamobj %mem_y, !write, !"CONT"
//! @main.y = addrSpace(12) ui32, !"ostream", !"CONT", !0, !"strobj_y"
//! define void @f0(ui32 %x, out ui32 %y) pipe {
//!   ui32 %t = mul ui32 %x, 2
//!   ui32 %y__out = or ui32 %t, 0
//! }
//! define void @main() {
//!   call @f0(%x, %y) pipe
//! }
//! "#;
//! let m = parse(src).unwrap();
//! let report = tytra_cost::estimate(&m, &stratix_v_gsd8()).unwrap();
//! assert!(report.resources.total.aluts > 0);
//! assert!(report.throughput.ekit > 0.0);
//! ```

pub mod bandwidth;
pub mod bottleneck;
pub mod bound;
pub mod estimate;
pub mod frequency;
pub mod options;
pub mod params;
pub mod reconfig;
pub mod report;
pub mod resource;
pub mod schedule;
pub mod session;
pub mod throughput;

pub use bandwidth::{BandwidthBreakdown, StreamBandwidth};
pub use bottleneck::Limiter;
pub use bound::CostBound;
pub use estimate::{estimate, estimate_with};
pub use options::CostOptions;
pub use params::CostParams;
pub use reconfig::{plan as reconfig_plan, ReconfigPlan};
pub use report::CostReport;
pub use resource::{ResourceBreakdown, ResourceEstimate};
pub use schedule::PipelineSchedule;
pub use session::{EstimatorSession, SessionStats};
pub use throughput::ThroughputEstimate;
