//! The session-based estimator: the cost pipeline as explicit, memoized
//! passes.
//!
//! [`EstimatorSession`] is a long-lived handle owning one target device.
//! Where [`estimate()`][crate::estimate::estimate] pays the full pipeline
//! — validation, configuration extraction, scheduling, per-instruction
//! resource accumulation, calibration-curve evaluation, bandwidth
//! assessment — from scratch on every call, a session keys each pass's
//! sub-results on stable structural fingerprints
//! ([`tytra_ir::fingerprint`]) and replays them when a later variant
//! shares the IR they were computed from. Variants in a DSE sweep share
//! almost all of their IR (a 32-lane variant is one pipe function
//! repeated 32 times; a lane sweep re-uses the same lane body at every
//! width), so warm-session sweeps run mostly out of the memo tables.
//!
//! The pass pipeline, with each pass's memo key:
//!
//! | pass | input | memo key | cached value |
//! |---|---|---|---|
//! | validate | module | [`fingerprint_module`] | (validity) |
//! | configure | module | — (cheap, always runs) | `ConfigTree` |
//! | schedule | lane subtree | [`fingerprint_subtree`] | `PipelineSchedule` |
//! | parameters | tree + schedule | — (infallible arithmetic) | `CostParams` |
//! | resources | per function | [`fingerprint_function`] + `DV` | `ResourceBreakdown` |
//! | clock | per function | [`fingerprint_function`] | worst stage (ns, name) |
//! | bandwidth | stream set | [`fingerprint_streams`] + lanes | `BandwidthBreakdown` |
//! | throughput / power | scalars | — (pure arithmetic) | — |
//!
//! Below those, every calibration-fit and sustained-bandwidth curve
//! evaluation in `tytra-device` is interned in a session-scoped
//! [`CurveCache`].
//!
//! **Bit-identity.** Cached values are the exact values the uncached
//! code produced — resource sums are `u64` (addition commutes exactly),
//! `f64`s are stored and replayed bit-for-bit, and the per-function
//! worst-stage combine uses the same strict `>` preorder as the legacy
//! instruction walk — so a warm [`estimate`][EstimatorSession::estimate]
//! returns a [`CostReport`] bit-identical to a cold one. The
//! `session_equivalence` property test and the byte-identical
//! `tybec dse sor` leaderboard pin this down.

use crate::bandwidth::{self, BandwidthBreakdown};
use crate::bound::CostBound;
use crate::frequency;
use crate::params::CostParams;
use crate::report::{assemble, CostReport};
use crate::resource::{self, ResourceBreakdown};
use crate::schedule::{self, PipelineSchedule};
use crate::{bottleneck, throughput, CostOptions};
use tytra_device::{CurveCache, TargetDevice};
use tytra_ir::{
    config_tree, fingerprint_function, fingerprint_module, fingerprint_streams,
    fingerprint_subtree, validate, ArenaModule, ConfigNode, ConfigPlan, IrError, IrModule,
    PatchedModule, StableHasher, TybecError,
};
use tytra_trace as trace;
use tytra_trace::bounded::{BoundedMap, BoundedSet};
use tytra_trace::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};

/// Entries each pass memo table may hold before CLOCK eviction kicks
/// in. Sized for full-space sweeps (a few thousand variants share a few
/// hundred distinct fingerprints) while keeping a long-running
/// `tybec serve` session's footprint bounded.
pub const DEFAULT_MEMO_CAPACITY: usize = 8192;

/// Memo-table traffic counters for one estimator session.
///
/// `hits`/`misses` aggregate every memoized pass *and* the device-level
/// curve cache; `invalidations` counts [`EstimatorSession::invalidate`]
/// calls; `evictions` counts entries the CLOCK hand dropped under
/// capacity pressure (pass memos plus curve cache). The DSE engine sums
/// these across worker sessions and the CLI prints them under `--stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Lookups answered from a memo table.
    pub hits: u64,
    /// Lookups that fell through and were computed fresh.
    pub misses: u64,
    /// Explicit whole-session invalidations.
    pub invalidations: u64,
    /// Memo entries evicted under capacity pressure.
    pub evictions: u64,
}

impl SessionStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the memo tables (0 when the
    /// session is untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for SessionStats {
    fn add_assign(&mut self, rhs: SessionStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.invalidations += rhs.invalidations;
        self.evictions += rhs.evictions;
    }
}

/// A long-lived estimator handle: one target device, one set of cost
/// options, and the memo tables shared by every module costed through it.
///
/// ```
/// use tytra_cost::EstimatorSession;
/// use tytra_device::stratix_v_gsd8;
/// # let src = r#"
/// # !module = !"double"
/// # !ndrange = !{4096}
/// # !nki = !1
/// # !form = !"B"
/// # %mem_x = memobj addrSpace(1) ui32, !size, !4096
/// # %strobj_x = streamobj %mem_x, !read, !"CONT"
/// # @main.x = addrSpace(12) ui32, !"istream", !"CONT", !0, !"strobj_x"
/// # %mem_y = memobj addrSpace(1) ui32, !size, !4096
/// # %strobj_y = streamobj %mem_y, !write, !"CONT"
/// # @main.y = addrSpace(12) ui32, !"ostream", !"CONT", !0, !"strobj_y"
/// # define void @f0(ui32 %x, out ui32 %y) pipe {
/// #   ui32 %t = mul ui32 %x, 2
/// #   ui32 %y__out = or ui32 %t, 0
/// # }
/// # define void @main() {
/// #   call @f0(%x, %y) pipe
/// # }
/// # "#;
/// let m = tytra_ir::parse(src).unwrap();
/// let mut session = EstimatorSession::new(stratix_v_gsd8());
/// let cold = session.estimate(&m).unwrap();
/// let warm = session.estimate(&m).unwrap();
/// assert_eq!(cold.throughput.ekit.to_bits(), warm.throughput.ekit.to_bits());
/// assert!(session.stats().hit_rate() > 0.0);
/// ```
pub struct EstimatorSession {
    dev: TargetDevice,
    opts: CostOptions,
    curves: CurveCache,
    /// Whole-module fingerprints that already passed validation.
    validated: BoundedSet<u64>,
    /// Arena base fingerprints whose *base tree* passed validation. The
    /// validator never reads the three patched cells (it only touches
    /// `meta.ndrange`/`nki`/`freq_mhz`, plus the module name for its
    /// trace span), so one base validation covers every
    /// [`PatchedModule`] of that arena.
    validated_bases: BoundedSet<u64>,
    /// Per-function resource costs, keyed `(function fingerprint, DV)`.
    node_costs: BoundedMap<(u64, u64), ResourceBreakdown>,
    /// Per-function worst stage delays, keyed on function fingerprint.
    worst_stage: BoundedMap<u64, Option<(f64, String)>>,
    /// Lane-subtree schedules, keyed on subtree fingerprint.
    schedules: BoundedMap<u64, PipelineSchedule>,
    /// Bandwidth breakdowns, keyed on (stream fingerprint, lanes).
    bandwidths: BoundedMap<u64, BandwidthBreakdown>,
    /// The single source of truth for the session's counters: the
    /// handles below (and the curve cache's `curves.*` pair) all live in
    /// this registry, so [`stats`][EstimatorSession::stats] and
    /// [`metrics_snapshot`][EstimatorSession::metrics_snapshot] can
    /// never disagree.
    metrics: Registry,
    hits: Counter,
    misses: Counter,
    invalidations: Counter,
    evictions: Counter,
    memo_entries: Gauge,
    estimate_ns: Histogram,
    bound_ns: Histogram,
}

impl EstimatorSession {
    /// A session with default cost options.
    pub fn new(dev: TargetDevice) -> EstimatorSession {
        EstimatorSession::with_options(dev, CostOptions::default())
    }

    /// A session with explicit (possibly ablated) cost options. Options
    /// are fixed for the session's lifetime so they need not be part of
    /// any memo key.
    pub fn with_options(dev: TargetDevice, opts: CostOptions) -> EstimatorSession {
        EstimatorSession::with_memo_capacity(dev, opts, DEFAULT_MEMO_CAPACITY)
    }

    /// A session whose pass memo tables each evict past `capacity`
    /// entries. Eviction only ever forces a bit-identical recompute
    /// (every memoized value is a pure function of its key), so a tiny
    /// capacity trades speed for memory, never accuracy.
    pub fn with_memo_capacity(
        dev: TargetDevice,
        opts: CostOptions,
        capacity: usize,
    ) -> EstimatorSession {
        let metrics = Registry::new();
        EstimatorSession {
            dev,
            opts,
            curves: CurveCache::with_registry(&metrics),
            validated: BoundedSet::new(capacity),
            validated_bases: BoundedSet::new(capacity),
            node_costs: BoundedMap::new(capacity),
            worst_stage: BoundedMap::new(capacity),
            schedules: BoundedMap::new(capacity),
            bandwidths: BoundedMap::new(capacity),
            hits: metrics.counter("session.memo.hits"),
            misses: metrics.counter("session.memo.misses"),
            invalidations: metrics.counter("session.invalidations"),
            evictions: metrics.counter("session.memo.evictions"),
            memo_entries: metrics.gauge("session.memo.entries"),
            estimate_ns: metrics.histogram("estimator.estimate_ns"),
            bound_ns: metrics.histogram("estimator.bound_ns"),
            metrics,
        }
    }

    /// The target the session costs against.
    pub fn device(&self) -> &TargetDevice {
        &self.dev
    }

    /// The session's cost options.
    pub fn options(&self) -> &CostOptions {
        &self.opts
    }

    /// Aggregate memo statistics: pass-level tables plus the device
    /// curve cache. A view over the same counters
    /// [`metrics_snapshot`][EstimatorSession::metrics_snapshot] reports.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            hits: self.hits.get() + self.curves.hits(),
            misses: self.misses.get() + self.curves.misses(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get() + self.curves.evictions(),
        }
    }

    /// Point-in-time snapshot of the session's metrics registry:
    /// `session.memo.*`, `curves.*`, `session.invalidations`, the
    /// `session.memo.entries` gauge and the `estimator.estimate_ns`
    /// latency histogram. Snapshots from worker sessions merge
    /// (`Snapshot::merge`) into the `tybec dse --metrics` table.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Drop every memoized sub-result (e.g. after mutating the device
    /// description in place). Counters survive; `invalidations` is
    /// incremented.
    pub fn invalidate(&mut self) {
        self.curves.clear();
        self.validated.clear();
        self.validated_bases.clear();
        self.node_costs.clear();
        self.worst_stage.clear();
        self.schedules.clear();
        self.bandwidths.clear();
        self.invalidations.incr();
    }

    /// Run the full cost pipeline over a design variant, serving every
    /// sub-result the session has already computed from its memo tables.
    ///
    /// Reports are bit-identical to [`crate::estimate()`] on the same
    /// module and device — with or without tracing enabled, since spans
    /// only observe. Each pass opens an `estimator.*` span carrying its
    /// memo fingerprint and hit/miss verdict (see
    /// `docs/observability.md`).
    pub fn estimate(&mut self, m: &IrModule) -> Result<CostReport, TybecError> {
        let t0 = std::time::Instant::now();
        let _root = trace::span("estimator.estimate").with("module", m.name.as_str());

        // Pass 0: validation, once per distinct module.
        self.validate_pass(m)?;

        // Pass 1: configuration extraction (cheap tree walk, not worth a
        // clone-heavy memo entry).
        let tree = {
            let _sp = trace::span("estimator.configure");
            config_tree::extract(m)?
        };

        // Pass 2: schedule, shared by every variant with the same lane
        // subtree (lane count and DV do not enter the schedule).
        let lane = schedule::lane_subtree(&tree.root);
        let lane_fp = fingerprint_subtree(m, lane);
        let sched = {
            let mut sp = trace::span("estimator.schedule").with("fp", lane_fp);
            match self.schedules.get(&lane_fp) {
                Some(s) => {
                    self.hits.incr();
                    sp.record("memo_hit", true);
                    s.clone()
                }
                None => {
                    let s = schedule::schedule_with(m, &self.dev, Some(&self.curves), &tree.root)?;
                    self.misses.incr();
                    sp.record("memo_hit", false);
                    if self.schedules.insert(lane_fp, s.clone()) {
                        self.evictions.incr();
                    }
                    s
                }
            }
        };

        // Pass 3: parameter extraction (pure arithmetic over pass 1+2).
        let params = {
            let _sp = trace::span("estimator.parameters");
            CostParams::from_parts(m, &tree, sched)
        };

        // Pass 4: resources, memoized per function.
        let resources = self.resources_pass(m, &tree)?;
        let utilization = resources.total.utilization(&self.dev.capacity);
        let fits = resources.total.fits_within(&self.dev.capacity);

        // Pass 5: clock, worst stage memoized per function.
        let clock = {
            let _sp = trace::span("estimator.clock");
            let mut worst = (0.0f64, String::new());
            self.clock_walk(m, &tree.root, &mut worst)?;
            frequency::finish_clock(m, &self.dev, worst, &resources.total)
        };

        // Pass 6: bandwidth, memoized per stream set + lane count.
        let bw = self.bandwidth_pass(m);

        // Pass 7: throughput, limiter, power — pure arithmetic.
        let report = {
            let _sp = trace::span("estimator.throughput");
            let tput = throughput::estimate_throughput(&params, &self.dev, &bw, clock.freq_mhz);
            let limiter = bottleneck::limiter(&tput);
            let exercised_gbytes =
                crate::estimate::exercised_gbytes(params.total_bytes(), tput.t_instance);
            let power_w =
                self.dev.power.delta_watts(&resources.total, clock.freq_mhz, exercised_gbytes);
            assemble(
                m.name.clone(),
                self.dev.name.clone(),
                params,
                &tree,
                resources,
                utilization,
                fits,
                clock,
                bw,
                tput,
                limiter,
                power_w,
            )
        };

        self.memo_entries.set(self.memo_len() as f64);
        self.estimate_ns.record(t0.elapsed().as_nanos() as u64);
        Ok(report)
    }

    /// The cheap branch-and-bound pass: an exact resource/fit verdict
    /// plus an admissible upper bound on EKIT, from the memoized
    /// validate, resource and bandwidth passes alone — no schedule or
    /// clock walk over the datapath (see [`crate::bound`]).
    ///
    /// Shares memo tables with [`estimate`][EstimatorSession::estimate]:
    /// a bound followed by an estimate of the same variant replays the
    /// resource and bandwidth sub-results, and vice versa, so
    /// interleaving bounds never perturbs estimate results.
    pub fn bound(&mut self, m: &IrModule) -> Result<CostBound, TybecError> {
        let t0 = std::time::Instant::now();
        let _root = trace::span("estimator.bound").with("module", m.name.as_str());
        self.validate_pass(m)?;
        let tree = config_tree::extract(m)?;
        let resources = self.resources_pass(m, &tree)?;
        let fits = resources.total.fits_within(&self.dev.capacity);
        let bw = self.bandwidth_pass(m);
        let g = crate::params::RawGeometry::extract(m, &tree);
        // The initiation interval depends only on the lane subtree's
        // kind and instruction count — recompute it exactly as the
        // schedule pass would, without building the datapath graph.
        let lane = schedule::lane_subtree(&tree.root);
        let ii = match lane.kind {
            tytra_ir::ParKind::Seq => lane.subtree_instrs().max(1) as f64,
            _ => 1.0,
        };
        let b = crate::bound::assemble(&g, &self.dev, &bw, ii, resources.total, fits);
        self.memo_entries.set(self.memo_len() as f64);
        self.bound_ns.record(t0.elapsed().as_nanos() as u64);
        Ok(b)
    }

    /// [`estimate`][EstimatorSession::estimate] over an arena-backed
    /// design variant: the same eight-pass pipeline, but configuration,
    /// geometry and all memo keys come from the arena's precomputed
    /// columns, so a warm call never materializes or clones the module.
    /// Reports are bit-identical to estimating
    /// [`materialize`][PatchedModule::materialize]d tree through the same
    /// session (pinned by the `arena_equivalence` suite and a fuzz
    /// oracle). Trace streams carry the same spans with the same
    /// fingerprints; only the validate pass's `memo_hit` flag can differ,
    /// because sibling variants of one arena share a single base
    /// validation.
    pub fn estimate_design(&mut self, d: &PatchedModule<'_>) -> Result<CostReport, TybecError> {
        let Some(plan) = d.arena.config() else {
            // Configuration extraction failed at arena build time; the
            // tree pipeline reproduces the same error (or handles the
            // exotic shape the plan cannot express).
            return self.estimate(&d.materialize());
        };
        let t0 = std::time::Instant::now();
        let _root = trace::span("estimator.estimate").with("module", d.name);

        // Pass 0: validation, shared across the arena's variants.
        self.validate_design(d)?;

        // Pass 1 ran at arena build time; keep the span so the trace
        // stream shape matches the tree pipeline.
        {
            let _sp = trace::span("estimator.configure");
        }

        // Pass 2: schedule. Same memo key as the tree path (the lane
        // subtree's fingerprint — patch-independent); a miss schedules
        // the base tree, which the memo key already asserts is
        // equivalent (lane count and DV do not enter the schedule).
        let sched = {
            let mut sp = trace::span("estimator.schedule").with("fp", plan.lane_fp);
            match self.schedules.get(&plan.lane_fp) {
                Some(s) => {
                    self.hits.incr();
                    sp.record("memo_hit", true);
                    s.clone()
                }
                None => {
                    let s = schedule::schedule_with(
                        d.arena.tree(),
                        &self.dev,
                        Some(&self.curves),
                        &plan.tree.root,
                    )?;
                    self.misses.incr();
                    sp.record("memo_hit", false);
                    if self.schedules.insert(plan.lane_fp, s.clone()) {
                        self.evictions.incr();
                    }
                    s
                }
            }
        };

        // Pass 3: parameters from precomputed geometry + patched cells.
        let params = {
            let _sp = trace::span("estimator.parameters");
            crate::params::RawGeometry::extract_design(d, plan.tree.lanes).finish(sched)
        };

        // Pass 4: resources over the preorder plan.
        let resources = self.resources_design(d, plan);
        let utilization = resources.total.utilization(&self.dev.capacity);
        let fits = resources.total.fits_within(&self.dev.capacity);

        // Pass 5: clock. `finish_clock` reads only `meta.freq_mhz`,
        // which the patch never touches.
        let clock = {
            let _sp = trace::span("estimator.clock");
            let worst = self.clock_design(d.arena, plan);
            frequency::finish_clock(d.arena.tree(), &self.dev, worst, &resources.total)
        };

        // Pass 6: bandwidth (Manage-IR only — patch-independent).
        self.ensure_bandwidth_design(d.arena);
        let bw = self.bandwidths[&d.arena.bw_key()].clone();

        // Pass 7: throughput, limiter, power — pure arithmetic.
        let report = {
            let _sp = trace::span("estimator.throughput");
            let tput = throughput::estimate_throughput(&params, &self.dev, &bw, clock.freq_mhz);
            let limiter = bottleneck::limiter(&tput);
            let exercised_gbytes =
                crate::estimate::exercised_gbytes(params.total_bytes(), tput.t_instance);
            let power_w =
                self.dev.power.delta_watts(&resources.total, clock.freq_mhz, exercised_gbytes);
            assemble(
                d.name.to_string(),
                self.dev.name.clone(),
                params,
                &plan.tree,
                resources,
                utilization,
                fits,
                clock,
                bw,
                tput,
                limiter,
                power_w,
            )
        };

        self.memo_entries.set(self.memo_len() as f64);
        self.estimate_ns.record(t0.elapsed().as_nanos() as u64);
        Ok(report)
    }

    /// [`bound`][EstimatorSession::bound] over an arena-backed design:
    /// the branch-and-bound hot path. Steady-state (all memos warm) this
    /// performs no heap allocation at all — fingerprints and geometry are
    /// precomputed, the initiation interval is the plan's `lane_ii`, and
    /// the bandwidth breakdown is read by reference from the memo table.
    pub fn bound_design(&mut self, d: &PatchedModule<'_>) -> Result<CostBound, TybecError> {
        let Some(plan) = d.arena.config() else {
            return self.bound(&d.materialize());
        };
        let t0 = std::time::Instant::now();
        let _root = trace::span("estimator.bound").with("module", d.name);
        self.validate_design(d)?;
        let resources = self.resources_design(d, plan);
        let fits = resources.total.fits_within(&self.dev.capacity);
        self.ensure_bandwidth_design(d.arena);
        let g = crate::params::RawGeometry::extract_design(d, plan.tree.lanes);
        let bw = &self.bandwidths[&d.arena.bw_key()];
        let b = crate::bound::assemble(&g, &self.dev, bw, plan.lane_ii, resources.total, fits);
        self.memo_entries.set(self.memo_len() as f64);
        self.bound_ns.record(t0.elapsed().as_nanos() as u64);
        Ok(b)
    }

    /// Pass 0 over an arena-backed design. The patched fingerprint is
    /// checked first (so repeat visits count hits exactly as the tree
    /// path does); on a miss, one validation of the *base* tree stands in
    /// for every variant of the arena (see `validated_bases`).
    fn validate_design(&mut self, d: &PatchedModule<'_>) -> Result<(), IrError> {
        let module_fp = d.fingerprint();
        let mut sp = trace::span("estimator.validate").with("fp", module_fp);
        if self.validated.contains(&module_fp) {
            self.hits.incr();
            sp.record("memo_hit", true);
        } else if self.validated_bases.contains(&d.arena.base_fp()) {
            self.hits.incr();
            sp.record("memo_hit", true);
            if self.validated.insert(module_fp) {
                self.evictions.incr();
            }
        } else {
            self.misses.incr();
            sp.record("memo_hit", false);
            validate::validate(d.arena.tree())?;
            if self.validated_bases.insert(d.arena.base_fp()) {
                self.evictions.incr();
            }
            if self.validated.insert(module_fp) {
                self.evictions.incr();
            }
        }
        Ok(())
    }

    /// Pass 4 over the flattened plan (same span and memo traffic as
    /// [`resources_pass`][EstimatorSession::resources_pass]).
    fn resources_design(
        &mut self,
        d: &PatchedModule<'_>,
        plan: &ConfigPlan,
    ) -> crate::resource::ResourceEstimate {
        let _sp = trace::span("estimator.resources");
        resource::estimate_resources_arena(
            d.arena,
            plan,
            &self.dev,
            d.vect,
            &self.opts,
            &self.curves,
            resource::NodeMemo {
                table: &mut self.node_costs,
                hits: &self.hits,
                misses: &self.misses,
                evictions: &self.evictions,
            },
        )
    }

    /// Pass 5 over the flattened plan, in two phases: fill the
    /// worst-stage memo for every plan node (same per-visit hit/miss
    /// accounting as [`clock_walk`][EstimatorSession::clock_walk]), then
    /// a read-only strict-`>` preorder combine that borrows the memoized
    /// stage names and pays a single `String` copy at the end.
    fn clock_design(&mut self, a: &ArenaModule, plan: &ConfigPlan) -> (f64, String) {
        for node in &plan.nodes {
            let key = a.fn_fp(node.func);
            if self.worst_stage.contains_key(&key) {
                self.hits.incr();
            } else {
                let f = &a.tree().functions[node.func.index()];
                let v =
                    frequency::function_worst_stage(&self.dev, Some(&self.curves), f, node.kind);
                self.misses.incr();
                if self.worst_stage.insert(key, v) {
                    self.evictions.incr();
                }
            }
        }
        let mut worst: (f64, &str) = (0.0, "");
        for node in &plan.nodes {
            if let Some(Some(own)) = self.worst_stage.peek(&a.fn_fp(node.func)) {
                if own.0 > worst.0 {
                    worst = (own.0, own.1.as_str());
                }
            }
        }
        (worst.0, worst.1.to_string())
    }

    /// Pass 6 over an arena: ensure the bandwidth breakdown for the
    /// arena's (patch-independent) key is memoized, without handing out a
    /// clone — the bound path reads it by reference afterwards. Same span
    /// and counter traffic as
    /// [`bandwidth_pass`][EstimatorSession::bandwidth_pass]; the miss
    /// path assesses the *base* tree, exact because the bandwidth pass
    /// reads only the Manage-IR, which the patch never touches.
    fn ensure_bandwidth_design(&mut self, a: &ArenaModule) {
        let bw_key = a.bw_key();
        let mut sp = trace::span("estimator.bandwidth").with("fp", bw_key);
        if self.bandwidths.contains_key(&bw_key) {
            self.hits.incr();
            sp.record("memo_hit", true);
        } else {
            let b = if self.opts.sustained_bandwidth {
                bandwidth::assess_impl(a.tree(), &self.dev, Some(&self.curves))
            } else {
                bandwidth::assess_naive_impl(a.tree(), &self.dev, Some(&self.curves))
            };
            self.misses.incr();
            sp.record("memo_hit", false);
            if self.bandwidths.insert(bw_key, b) {
                self.evictions.incr();
            }
        }
    }

    /// Pass 0: validation, memoized per whole-module fingerprint.
    fn validate_pass(&mut self, m: &IrModule) -> Result<(), IrError> {
        let module_fp = fingerprint_module(m);
        let mut sp = trace::span("estimator.validate").with("fp", module_fp);
        if self.validated.contains(&module_fp) {
            self.hits.incr();
            sp.record("memo_hit", true);
        } else {
            self.misses.incr();
            sp.record("memo_hit", false);
            validate::validate(m)?;
            if self.validated.insert(module_fp) {
                self.evictions.incr();
            }
        }
        Ok(())
    }

    /// Pass 4: resource accumulation, memoized per function.
    fn resources_pass(
        &mut self,
        m: &IrModule,
        tree: &tytra_ir::ConfigTree,
    ) -> Result<crate::resource::ResourceEstimate, IrError> {
        let _sp = trace::span("estimator.resources");
        resource::estimate_resources_session(
            m,
            &self.dev,
            &tree.root,
            &self.opts,
            &self.curves,
            resource::NodeMemo {
                table: &mut self.node_costs,
                hits: &self.hits,
                misses: &self.misses,
                evictions: &self.evictions,
            },
        )
    }

    /// Pass 6: bandwidth assessment, memoized per stream set + lanes.
    fn bandwidth_pass(&mut self, m: &IrModule) -> BandwidthBreakdown {
        let bw_key = {
            let mut h = StableHasher::new();
            h.write_u64(fingerprint_streams(m));
            h.write_u64(m.kernel_lanes());
            h.finish()
        };
        let mut sp = trace::span("estimator.bandwidth").with("fp", bw_key);
        match self.bandwidths.get(&bw_key) {
            Some(b) => {
                self.hits.incr();
                sp.record("memo_hit", true);
                b.clone()
            }
            None => {
                let b = if self.opts.sustained_bandwidth {
                    bandwidth::assess_impl(m, &self.dev, Some(&self.curves))
                } else {
                    bandwidth::assess_naive_impl(m, &self.dev, Some(&self.curves))
                };
                self.misses.incr();
                sp.record("memo_hit", false);
                if self.bandwidths.insert(bw_key, b.clone()) {
                    self.evictions.incr();
                }
                b
            }
        }
    }

    /// Total entries across the session's memo tables (the
    /// `session.memo.entries` gauge).
    fn memo_len(&self) -> usize {
        self.validated.len()
            + self.validated_bases.len()
            + self.node_costs.len()
            + self.worst_stage.len()
            + self.schedules.len()
            + self.bandwidths.len()
    }

    /// Preorder clock walk, replaying per-function worst stages from the
    /// memo table. Strict `>` combine matches the legacy visit exactly.
    fn clock_walk(
        &mut self,
        m: &IrModule,
        node: &ConfigNode,
        worst: &mut (f64, String),
    ) -> Result<(), IrError> {
        let f = m
            .function(&node.function)
            .ok_or_else(|| IrError::Unknown { kind: "function", name: node.function.clone() })?;
        let key = fingerprint_function(f);
        let own = match self.worst_stage.get(&key) {
            Some(hit) => {
                self.hits.incr();
                hit.clone()
            }
            None => {
                let v =
                    frequency::function_worst_stage(&self.dev, Some(&self.curves), f, node.kind);
                self.misses.incr();
                if self.worst_stage.insert(key, v.clone()) {
                    self.evictions.incr();
                }
                v
            }
        };
        if let Some(own) = own {
            if own.0 > worst.0 {
                *worst = own;
            }
        }
        for c in &node.children {
            self.clock_walk(m, c, worst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tytra_device::{eval_small, stratix_v_gsd8};
    use tytra_ir::{MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

    const T: ScalarType = ScalarType::UInt(18);

    fn laned_module(lanes: usize, form: MemForm) -> IrModule {
        let n = 27_000u64;
        let mut b = ModuleBuilder::new(format!("k_l{lanes}"));
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, n / lanes as u64);
                b.global_output(&format!("q{l}"), T, n / lanes as u64);
            }
        } else {
            b.global_input("p", T, n);
            b.global_output("q", T, n);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 30);
            let c = f.offset("p", T, -30);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            let w = f.instr(Opcode::Mul, T, vec![s, f.imm(3)]);
            f.write_out("q", w);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[n]).nki(100).form(form);
        b.finish().expect("laned_module is valid")
    }

    #[test]
    fn warm_report_is_bit_identical_to_cold() {
        let dev = stratix_v_gsd8();
        let m = laned_module(4, MemForm::B);
        let fresh = crate::estimate(&m, &dev).unwrap();
        let mut session = EstimatorSession::new(dev);
        let cold = session.estimate(&m).unwrap();
        let warm = session.estimate(&m).unwrap();
        for r in [&cold, &warm] {
            assert_eq!(format!("{fresh:?}"), format!("{r:?}"));
        }
        assert_eq!(fresh.throughput.ekit.to_bits(), warm.throughput.ekit.to_bits());
        assert_eq!(fresh.power_w.to_bits(), warm.power_w.to_bits());
        assert_eq!(fresh.clock.freq_mhz.to_bits(), warm.clock.freq_mhz.to_bits());
    }

    #[test]
    fn repeated_lanes_hit_within_a_single_variant() {
        // 8 lanes of the same pipe function: 7 of the 8 per-function
        // resource lookups must hit even on a cold session.
        let mut session = EstimatorSession::new(stratix_v_gsd8());
        session.estimate(&laned_module(8, MemForm::B)).unwrap();
        let s = session.stats();
        assert!(s.hits > 0, "{s:?}");
    }

    #[test]
    fn sweep_hit_rate_exceeds_half() {
        // A Fig-15-style lane sweep: the lane body is shared by every
        // variant, so a warm session serves most lookups from memory.
        let mut session = EstimatorSession::new(eval_small());
        for lanes in [1usize, 2, 4, 8] {
            for form in [MemForm::A, MemForm::B] {
                session.estimate(&laned_module(lanes, form)).unwrap();
            }
        }
        let s = session.stats();
        assert!(s.hit_rate() > 0.5, "hit rate {:.3} with {s:?}", s.hit_rate());
    }

    #[test]
    fn invalidate_clears_tables_and_counts() {
        let m = laned_module(2, MemForm::B);
        let mut session = EstimatorSession::new(stratix_v_gsd8());
        let before = session.estimate(&m).unwrap();
        session.invalidate();
        assert_eq!(session.stats().invalidations, 1);
        let after = session.estimate(&m).unwrap();
        assert_eq!(format!("{before:?}"), format!("{after:?}"));
    }

    #[test]
    fn session_rejects_invalid_modules() {
        let mut m = laned_module(1, MemForm::B);
        m.functions.retain(|f| f.name != "main");
        let mut session = EstimatorSession::new(stratix_v_gsd8());
        assert!(session.estimate(&m).is_err());
        // And keeps rejecting it (failure is not cached as success).
        assert!(session.estimate(&m).is_err());
    }

    #[test]
    fn bound_is_admissible_and_fit_exact() {
        let mut session = EstimatorSession::new(eval_small());
        for lanes in [1usize, 2, 4, 8, 16] {
            for form in [MemForm::A, MemForm::B, MemForm::C] {
                let m = laned_module(lanes, form);
                let b = session.bound(&m).unwrap();
                let r = session.estimate(&m).unwrap();
                assert_eq!(b.fits, r.fits, "fit verdict is exact (l{lanes} {form:?})");
                assert_eq!(b.resources, r.resources.total, "resource total is exact");
                assert!(
                    b.ekit_upper >= r.throughput.ekit,
                    "bound must be admissible: ub {} < ekit {} (l{lanes} {form:?})",
                    b.ekit_upper,
                    r.throughput.ekit
                );
            }
        }
    }

    #[test]
    fn interleaved_bounds_do_not_perturb_estimates() {
        let dev = eval_small();
        let modules: Vec<IrModule> =
            [1usize, 2, 4].iter().map(|&l| laned_module(l, MemForm::B)).collect();
        let mut plain = EstimatorSession::new(dev.clone());
        let mut mixed = EstimatorSession::new(dev);
        for m in &modules {
            let a = plain.estimate(m).unwrap();
            mixed.bound(m).unwrap();
            let b = mixed.estimate(m).unwrap();
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn bound_rejects_invalid_modules() {
        let mut m = laned_module(1, MemForm::B);
        m.functions.retain(|f| f.name != "main");
        let mut session = EstimatorSession::new(stratix_v_gsd8());
        assert!(session.bound(&m).is_err());
    }

    #[test]
    fn design_estimates_are_bit_identical_to_tree() {
        let dev = eval_small();
        let mut tree_s = EstimatorSession::new(dev.clone());
        let mut arena_s = EstimatorSession::new(dev);
        let a = tytra_ir::ArenaModule::build(laned_module(4, MemForm::B));
        for (name, form, vect) in [
            ("k_l4", MemForm::B, 1u32),
            ("k_l4_v2_pipe_A", MemForm::A, 2),
            ("k_l4_v1_pipe_C", MemForm::C, 1),
            ("tiled", MemForm::Tiled { tiles: 4 }, 1),
        ] {
            let d = a.patched(name, form, vect);
            let m = d.materialize();
            let tr = tree_s.estimate(&m).unwrap();
            let ar = arena_s.estimate_design(&d).unwrap();
            assert_eq!(format!("{tr:?}"), format!("{ar:?}"), "estimate ({name})");
            let tb = tree_s.bound(&m).unwrap();
            let ab = arena_s.bound_design(&d).unwrap();
            assert_eq!(format!("{tb:?}"), format!("{ab:?}"), "bound ({name})");
        }
    }

    #[test]
    fn design_and_tree_paths_share_memos() {
        let mut session = EstimatorSession::new(eval_small());
        let a = tytra_ir::ArenaModule::build(laned_module(8, MemForm::B));
        let d = a.identity();
        let cold = session.estimate_design(&d).unwrap();
        // The tree path over the materialized module replays the memo
        // entries the design path populated (identity patch: same
        // fingerprints), and vice versa.
        let misses_after_cold = session.misses.get();
        let warm_tree = session.estimate(&d.materialize()).unwrap();
        assert_eq!(format!("{cold:?}"), format!("{warm_tree:?}"));
        assert_eq!(session.misses.get(), misses_after_cold, "tree path fully warm");
        let warm_design = session.estimate_design(&d).unwrap();
        assert_eq!(format!("{cold:?}"), format!("{warm_design:?}"));
        assert_eq!(session.misses.get(), misses_after_cold, "design path fully warm");
        let b1 = session.bound_design(&d).unwrap();
        let b2 = session.bound(&d.materialize()).unwrap();
        assert_eq!(format!("{b1:?}"), format!("{b2:?}"));
    }

    #[test]
    fn sibling_variants_share_one_base_validation() {
        let mut session = EstimatorSession::new(eval_small());
        let a = tytra_ir::ArenaModule::build(laned_module(4, MemForm::B));
        session.bound_design(&a.patched("v_a", MemForm::A, 1)).unwrap();
        let misses_first = session.stats().misses;
        session.bound_design(&a.patched("v_b", MemForm::B, 1)).unwrap();
        session.bound_design(&a.patched("v_c", MemForm::C, 1)).unwrap();
        // The later variants' validate passes hit via the shared base,
        // resources hit under the same `(fingerprint, DV)` keys, and
        // bandwidth hits on the shared patch-independent key. (A DV
        // change *would* miss the resource memo, by design.)
        assert_eq!(
            session.stats().misses,
            misses_first,
            "a same-DV sibling variant must not recompute any pass"
        );
    }

    #[test]
    fn design_path_falls_back_without_a_plan() {
        // A module whose configuration tree cannot be extracted (no
        // `main`) has no plan; the design path must reproduce the tree
        // path's error through the fallback.
        let mut m = laned_module(1, MemForm::B);
        m.functions.retain(|f| f.name != "main");
        let a = tytra_ir::ArenaModule::build(m);
        assert!(a.config().is_none());
        let mut session = EstimatorSession::new(stratix_v_gsd8());
        assert!(session.estimate_design(&a.identity()).is_err());
        assert!(session.bound_design(&a.identity()).is_err());
    }

    #[test]
    fn stats_math() {
        let s = SessionStats { hits: 3, misses: 1, invalidations: 0, evictions: 0 };
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(SessionStats::default().hit_rate(), 0.0);
        let mut t = s;
        t += SessionStats { hits: 1, misses: 1, invalidations: 2, evictions: 5 };
        assert_eq!(t, SessionStats { hits: 4, misses: 2, invalidations: 2, evictions: 5 });
    }

    #[test]
    fn sessions_are_send() {
        // `tybec serve` hands warm sessions to worker threads; pin the
        // auto-trait so a non-Send field cannot sneak in unnoticed.
        fn assert_send<T: Send>() {}
        assert_send::<EstimatorSession>();
    }

    #[test]
    fn tiny_capacity_evicts_but_stays_bit_identical() {
        // Capacity 1 forces the CLOCK hand on nearly every insert; the
        // evicted entries are recomputed, so reports must still match an
        // unbounded session bit for bit.
        let dev = eval_small();
        let mut roomy = EstimatorSession::new(dev.clone());
        let mut tight = EstimatorSession::with_memo_capacity(dev, CostOptions::default(), 1);
        for lanes in [1usize, 2, 4, 8] {
            for form in [MemForm::A, MemForm::B] {
                let m = laned_module(lanes, form);
                let a = roomy.estimate(&m).unwrap();
                let b = tight.estimate(&m).unwrap();
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "l{lanes} {form:?}");
            }
        }
        assert_eq!(roomy.stats().evictions, 0, "default capacity never evicts here");
        let tight_stats = tight.stats();
        assert!(tight_stats.evictions > 0, "capacity 1 must evict: {tight_stats:?}");
    }
}
