//! Physical-plausibility properties of the cost model over randomised
//! designs: resources grow with replication, throughput responds to the
//! knobs in the right direction, and the EKIT terms compose.

use proptest::prelude::*;
use tytra_cost::{estimate, estimate_with, CostOptions};
use tytra_device::stratix_v_gsd8;
use tytra_ir::{IrModule, MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

/// Build a pipeline with `n_muls` chained multiplies at `width` bits,
/// `lanes` lanes and the given geometry.
fn chain_module(width: u16, n_muls: usize, lanes: u64, ngs: u64, nki: u64) -> IrModule {
    let t = ScalarType::UInt(width);
    let mut b = ModuleBuilder::new(format!("chain_w{width}_m{n_muls}_l{lanes}"));
    if lanes > 1 {
        for l in 0..lanes {
            b.global_input(&format!("x{l}"), t, ngs / lanes);
            b.global_output(&format!("y{l}"), t, ngs / lanes);
        }
    } else {
        b.global_input("x", t, ngs);
        b.global_output("y", t, ngs);
    }
    {
        let f = b.function("f0", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let mut cur = f.arg("x");
        for _ in 0..n_muls {
            let x = f.arg("x");
            cur = f.instr(Opcode::Mul, t, vec![cur, x]);
        }
        let fin = f.instr(Opcode::Add, t, vec![cur, f.imm(1)]);
        f.write_out("y", fin);
    }
    if lanes > 1 {
        let f = b.function("f1", ParKind::Par);
        for _ in 0..lanes {
            f.call("f0", vec![], ParKind::Pipe);
        }
        b.main_calls("f1");
    } else {
        b.main_calls("f0");
    }
    b.ndrange(&[ngs]).nki(nki).form(MemForm::B);
    b.finish().expect("valid chain module")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resources_monotone_in_instruction_count(
        w in 8u16..40,
        n in 1usize..8,
    ) {
        let dev = stratix_v_gsd8();
        let small = estimate(&chain_module(w, n, 1, 1 << 12, 1), &dev).unwrap();
        let large = estimate(&chain_module(w, n + 2, 1, 1 << 12, 1), &dev).unwrap();
        prop_assert!(large.resources.total.aluts > small.resources.total.aluts);
        prop_assert!(large.params.sched.ni > small.params.sched.ni);
        prop_assert!(large.params.sched.kpd >= small.params.sched.kpd);
    }

    #[test]
    fn resources_scale_linearly_with_lanes(
        lanes_pow in 1u32..4,
        n in 1usize..5,
    ) {
        let lanes = 1u64 << lanes_pow;
        let dev = stratix_v_gsd8();
        let one = estimate(&chain_module(18, n, 1, 1 << 12, 1), &dev).unwrap();
        let many = estimate(&chain_module(18, n, lanes, 1 << 12, 1), &dev).unwrap();
        let ratio = many.resources.total.aluts as f64 / one.resources.total.aluts as f64;
        // Per-lane port/stream-control replication makes tiny datapaths
        // scale slightly super-linearly; the band is still ~linear.
        prop_assert!(
            ratio > 0.85 * lanes as f64 && ratio < 1.35 * lanes as f64 + 0.2,
            "{lanes} lanes scaled ALUTs by {ratio}"
        );
    }

    #[test]
    fn compute_bound_throughput_improves_with_lanes(lanes_pow in 1u32..4) {
        let lanes = 1u64 << lanes_pow;
        let dev = stratix_v_gsd8();
        // Small traffic (1 in, 1 out) keeps the design compute-bound.
        let one = estimate(&chain_module(18, 4, 1, 1 << 18, 10), &dev).unwrap();
        let many = estimate(&chain_module(18, 4, lanes, 1 << 18, 10), &dev).unwrap();
        prop_assert!(many.throughput.ekit > one.throughput.ekit);
    }

    #[test]
    fn ekit_terms_compose_to_the_total(
        w in 8u16..33,
        n in 1usize..6,
        lanes_pow in 0u32..3,
    ) {
        let dev = stratix_v_gsd8();
        let r = estimate(&chain_module(w, n, 1 << lanes_pow, 1 << 14, 5), &dev).unwrap();
        let t = &r.throughput;
        let main = t.t_memory.max(t.t_compute);
        let sum = t.t_host + t.t_offset_fill + t.t_pipe_fill + main + t.t_overhead;
        prop_assert!((sum - t.t_instance).abs() < 1e-12 * t.t_instance.max(1e-30));
        prop_assert!((1.0 / t.t_instance - t.ekit).abs() < 1e-6 * t.ekit);
    }

    #[test]
    fn bigger_grids_take_longer(npow in 10u32..20) {
        let dev = stratix_v_gsd8();
        let small = estimate(&chain_module(18, 3, 1, 1 << npow, 5), &dev).unwrap();
        let large = estimate(&chain_module(18, 3, 1, 1 << (npow + 1), 5), &dev).unwrap();
        prop_assert!(large.throughput.t_instance > small.throughput.t_instance);
        prop_assert!(large.throughput.cpki > small.throughput.cpki);
    }

    #[test]
    fn ablated_structural_model_underestimates(
        w in 8u16..33,
        n in 1usize..6,
    ) {
        let dev = stratix_v_gsd8();
        let m = chain_module(w, n, 1, 1 << 12, 1);
        let full = estimate_with(&m, &dev, &CostOptions::full()).unwrap();
        let naive = estimate_with(&m, &dev, &CostOptions::without_structural()).unwrap();
        prop_assert!(naive.resources.total.aluts < full.resources.total.aluts);
        prop_assert!(naive.resources.total.regs <= full.resources.total.regs);
    }

    #[test]
    fn form_a_never_faster_than_form_b(
        npow in 12u32..18,
        nki in 2u64..50,
    ) {
        let dev = stratix_v_gsd8();
        let mut ma = chain_module(18, 3, 1, 1 << npow, nki);
        ma.meta.form = MemForm::A;
        let mut mb = chain_module(18, 3, 1, 1 << npow, nki);
        mb.meta.form = MemForm::B;
        let a = estimate(&ma, &dev).unwrap();
        let b = estimate(&mb, &dev).unwrap();
        prop_assert!(b.throughput.ekit >= a.throughput.ekit);
    }
}
