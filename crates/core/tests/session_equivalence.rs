//! Bit-identity of the session path: for any module the builder can
//! produce, a warm [`EstimatorSession`] must return exactly the report
//! the one-shot [`estimate`] entry point returns — not approximately,
//! but to the last mantissa bit. The session is a cache, never a second
//! cost model.
//!
//! The strategy deliberately reuses one session across a whole batch of
//! related variants (shared lane subtrees, shared stream layouts) so
//! that later estimates replay memoized sub-results recorded under
//! earlier ones — the exact situation where a lossy memo key or an
//! order-dependent fold would surface as a diverging report.

use proptest::prelude::*;
use tytra_cost::{estimate, EstimatorSession};
use tytra_device::{eval_small, stratix_v_gsd8};
use tytra_ir::{IrModule, MemForm, ModuleBuilder, Opcode, ParKind, ScalarType};

/// A small stencil-shaped pipeline: `lanes` lanes over an `ngs`-point
/// range, each lane an offset/add/mul chain at `width` bits.
fn stencil_module(width: u16, lanes: u64, ngs: u64, nki: u64, form: MemForm) -> IrModule {
    let t = ScalarType::UInt(width);
    let mut b = ModuleBuilder::new(format!("prop_w{width}_l{lanes}_{form:?}"));
    for l in 0..lanes {
        b.global_input(&format!("x{l}"), t, ngs / lanes);
        b.global_output(&format!("y{l}"), t, ngs / lanes);
    }
    {
        let f = b.function("lane", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let x = f.arg("x");
        let up = f.offset("x", t, 30);
        let dn = f.offset("x", t, -30);
        let s = f.instr(Opcode::Add, t, vec![up, dn]);
        let m = f.instr(Opcode::Mul, t, vec![s, f.imm(3)]);
        let out = f.instr(Opcode::Add, t, vec![m, x]);
        f.write_out("y", out);
    }
    if lanes > 1 {
        let f = b.function("wrap", ParKind::Par);
        for _ in 0..lanes {
            f.call("lane", vec![], ParKind::Pipe);
        }
        b.main_calls("wrap");
    } else {
        b.main_calls("lane");
    }
    b.ndrange(&[ngs]).nki(nki).form(form);
    b.finish().expect("valid stencil module")
}

fn forms() -> impl Strategy<Value = MemForm> {
    prop_oneof![Just(MemForm::A), Just(MemForm::B), Just(MemForm::C)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One warm session, many variants: every report must match the
    /// fresh estimator bit for bit, including the floating-point tail.
    #[test]
    fn warm_session_matches_fresh_estimate(
        width in 8u16..40,
        log_ngs in 10u32..14,
        nki in 1u64..50,
        form in forms(),
        big_dev in any::<bool>(),
    ) {
        let ngs = 1u64 << log_ngs;
        let dev = if big_dev { stratix_v_gsd8() } else { eval_small() };
        let mut session = EstimatorSession::new(dev.clone());
        // Lane counts repeat and interleave so later variants replay
        // sub-results memoized under earlier ones.
        for lanes in [1u64, 2, 4, 8, 4, 1] {
            let m = stencil_module(width, lanes, ngs, nki, form);
            let fresh = estimate(&m, &dev).unwrap();
            let warm = session.estimate(&m).unwrap();
            prop_assert_eq!(
                warm.throughput.ekit.to_bits(),
                fresh.throughput.ekit.to_bits(),
                "ekit diverged at lanes={} ({} vs {})",
                lanes, warm.throughput.ekit, fresh.throughput.ekit
            );
            prop_assert_eq!(warm.power_w.to_bits(), fresh.power_w.to_bits());
            prop_assert_eq!(warm.clock.freq_mhz.to_bits(), fresh.clock.freq_mhz.to_bits());
            prop_assert_eq!(
                format!("{warm:?}"),
                format!("{fresh:?}"),
                "full report diverged at lanes={}", lanes
            );
        }
        // The batch shares one lane body, so the memo must have fired.
        prop_assert!(session.stats().hits > 0, "session never hit its memo tables");
    }
}
