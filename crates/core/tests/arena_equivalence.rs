//! Bit-identity of the arena path: for any module the builder can
//! produce and any copy-on-write patch over it, the estimator's
//! `estimate_design`/`bound_design` passes must return exactly what the
//! tree path returns for the materialized patch — not approximately,
//! but to the last mantissa bit. The arena is a layout change, never a
//! second cost model.
//!
//! The strategies deliberately drive one pair of warm sessions through
//! a whole batch of sibling patches over a shared arena base, so later
//! designs replay memoized sub-results recorded under earlier ones —
//! the exact situation where a patch-dependent memo key or a
//! base-validation shortcut that reads a patched cell would surface as
//! a diverging report.

use proptest::prelude::*;
use tytra_cost::EstimatorSession;
use tytra_device::{eval_small, stratix_v_gsd8};
use tytra_ir::{
    fingerprint_module, ArenaModule, IrModule, MemForm, ModuleBuilder, Opcode, ParKind, ScalarType,
};

/// A small stencil-shaped pipeline: `lanes` lanes over an `ngs`-point
/// range, each lane an offset/add/mul chain at `width` bits.
fn stencil_module(width: u16, lanes: u64, ngs: u64, nki: u64, form: MemForm) -> IrModule {
    let t = ScalarType::UInt(width);
    let mut b = ModuleBuilder::new(format!("arena_w{width}_l{lanes}_{form:?}"));
    for l in 0..lanes {
        b.global_input(&format!("x{l}"), t, ngs / lanes);
        b.global_output(&format!("y{l}"), t, ngs / lanes);
    }
    {
        let f = b.function("lane", ParKind::Pipe);
        f.input("x", t);
        f.output("y", t);
        let x = f.arg("x");
        let up = f.offset("x", t, 30);
        let dn = f.offset("x", t, -30);
        let s = f.instr(Opcode::Add, t, vec![up, dn]);
        let m = f.instr(Opcode::Mul, t, vec![s, f.imm(3)]);
        let out = f.instr(Opcode::Add, t, vec![m, x]);
        f.write_out("y", out);
    }
    if lanes > 1 {
        let f = b.function("wrap", ParKind::Par);
        for _ in 0..lanes {
            f.call("lane", vec![], ParKind::Pipe);
        }
        b.main_calls("wrap");
    } else {
        b.main_calls("lane");
    }
    b.ndrange(&[ngs]).nki(nki).form(form);
    b.finish().expect("valid stencil module")
}

fn forms() -> impl Strategy<Value = MemForm> {
    prop_oneof![
        Just(MemForm::A),
        Just(MemForm::B),
        Just(MemForm::C),
        Just(MemForm::Tiled { tiles: 4 }),
    ]
}

/// The patch sweep applied to every generated base: names, forms and
/// vectorization degrees a DSE sweep would request as siblings.
fn patches(base: &IrModule) -> Vec<(String, MemForm, u32)> {
    vec![
        (base.name.clone(), base.meta.form, base.meta.vect),
        ("p_a".to_string(), MemForm::A, 1),
        ("p_b".to_string(), MemForm::B, 1),
        ("p_b2".to_string(), MemForm::B, 2),
        ("p_t".to_string(), MemForm::Tiled { tiles: 2 }, 4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Patched fingerprints equal tree fingerprints of the equivalent
    /// mutated clone, and identity materialization is exact.
    #[test]
    fn patched_fingerprints_match_the_tree(
        width in 8u16..40,
        lanes in prop_oneof![Just(1u64), Just(2), Just(4)],
        nki in 1u64..20,
        form in forms(),
    ) {
        let m = stencil_module(width, lanes, 1 << 12, nki, form);
        let arena = ArenaModule::build(m.clone());
        prop_assert_eq!(arena.identity().fingerprint(), fingerprint_module(&m));
        prop_assert_eq!(arena.identity().materialize(), m.clone());
        for (name, pform, vect) in patches(&m) {
            let d = arena.patched(&name, pform, vect);
            let mut tree = m.clone();
            tree.name = name.clone();
            tree.meta.form = pform;
            tree.meta.vect = vect;
            prop_assert_eq!(
                d.fingerprint(),
                fingerprint_module(&tree),
                "patch {}/{:?}/DV{}", name, pform, vect
            );
            prop_assert_eq!(d.materialize(), tree, "patch {}/{:?}/DV{}", name, pform, vect);
        }
    }

    /// One warm session per path, a batch of sibling patches: every
    /// estimate and every bound must match the tree path bit for bit.
    #[test]
    fn design_passes_match_tree_passes(
        width in 8u16..40,
        log_ngs in 10u32..14,
        nki in 1u64..20,
        form in forms(),
        big_dev in any::<bool>(),
    ) {
        let ngs = 1u64 << log_ngs;
        let dev = if big_dev { stratix_v_gsd8() } else { eval_small() };
        let mut via_arena = EstimatorSession::new(dev.clone());
        let mut via_tree = EstimatorSession::new(dev.clone());
        for lanes in [1u64, 2, 4, 2] {
            let m = stencil_module(width, lanes, ngs, nki, form);
            let arena = ArenaModule::build(m.clone());
            for (name, pform, vect) in patches(&m) {
                let d = arena.patched(&name, pform, vect);
                let tree = d.materialize();
                let a = via_arena.estimate_design(&d).unwrap();
                let t = via_tree.estimate(&tree).unwrap();
                prop_assert_eq!(
                    a.throughput.ekit.to_bits(),
                    t.throughput.ekit.to_bits(),
                    "ekit diverged on {}/{:?}/DV{} ({} vs {})",
                    name, pform, vect, a.throughput.ekit, t.throughput.ekit
                );
                prop_assert_eq!(
                    format!("{a:?}"),
                    format!("{t:?}"),
                    "full report diverged on {}/{:?}/DV{}", name, pform, vect
                );
                let ab = via_arena.bound_design(&d).unwrap();
                let tb = via_tree.bound(&tree).unwrap();
                prop_assert_eq!(
                    format!("{ab:?}"),
                    format!("{tb:?}"),
                    "bound diverged on {}/{:?}/DV{}", name, pform, vect
                );
            }
        }
        // Sibling patches share schedule/resource memos through the
        // arena fingerprints, so the design path must have hit them.
        prop_assert!(via_arena.stats().hits > 0, "design path never hit its memo tables");
    }
}
