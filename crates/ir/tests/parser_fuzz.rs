//! Robustness properties of the lexer/parser: arbitrary input never
//! panics, and near-miss mutations of valid sources fail cleanly with
//! positioned errors rather than being silently accepted as something
//! else.

use proptest::prelude::*;
use tytra_ir::parser::{lexer::lex, parse_unvalidated};

const VALID: &str = r#"
!module = !"m"
!ndrange = !{64}
!nki = !10
!form = !"B"
%mem_p = memobj addrSpace(1) ui18, !size, !64
%strobj_p = streamobj %mem_p, !read, !"CONT"
@main.p = addrSpace(12) ui18, !"istream", !"CONT", !0, !"strobj_p"
%mem_q = memobj addrSpace(1) ui18, !size, !64
%strobj_q = streamobj %mem_q, !write, !"CONT"
@main.q = addrSpace(12) ui18, !"ostream", !"CONT", !0, !"strobj_q"
define void @f0(ui18 %p, out ui18 %q) pipe {
  ui18 %pp1 = ui18 %p, !offset, !+1
  ui18 %t1 = add ui18 %pp1, %p
  ui18 %q__out = or ui18 %t1, 0
}
define void @main() {
  call @f0(%p, %q) pipe
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics(s in ".{0,400}") {
        let _ = lex(&s);
    }

    #[test]
    fn lexer_never_panics_on_tirl_alphabet(
        s in "[%@!{}(),=\\\"a-z0-9_+\\- \\n;.]{0,400}"
    ) {
        let _ = lex(&s);
    }

    #[test]
    fn parser_never_panics(s in ".{0,400}") {
        let _ = parse_unvalidated(&s);
    }

    #[test]
    fn truncations_of_valid_source_fail_cleanly(cut in 1usize..400) {
        // Any prefix of a valid module either parses (comment/blank
        // boundaries) or errors — no panics, no hangs.
        let src = &VALID[..cut.min(VALID.len())];
        let _ = parse_unvalidated(src);
    }

    #[test]
    fn single_character_deletions_never_panic(pos in 0usize..500) {
        if pos < VALID.len() && VALID.is_char_boundary(pos) && VALID.is_char_boundary(pos + 1) {
            let mut s = String::with_capacity(VALID.len());
            s.push_str(&VALID[..pos]);
            s.push_str(&VALID[pos + 1..]);
            let _ = parse_unvalidated(&s);
        }
    }

    #[test]
    fn random_token_injections_never_panic(
        pos in 0usize..500,
        junk in "[a-z!%@0-9]{1,8}",
    ) {
        if pos < VALID.len() && VALID.is_char_boundary(pos) {
            let mut s = String::with_capacity(VALID.len() + junk.len());
            s.push_str(&VALID[..pos]);
            s.push_str(&junk);
            s.push_str(&VALID[pos..]);
            let _ = parse_unvalidated(&s);
        }
    }
}

#[test]
fn the_reference_source_is_actually_valid() {
    // Guard: the fuzz corpus must start from a parsing module, or the
    // mutation properties are vacuous.
    tytra_ir::parse(VALID).expect("reference fuzz corpus parses");
}

#[test]
fn error_positions_point_into_the_source() {
    let src = "define void @f0(ui18 %p) pipe {\n  ui18 %x = add ui18 %p\n}";
    match parse_unvalidated(src) {
        Err(tytra_ir::IrError::Parse { line, col, .. }) => {
            assert!(line >= 1 && line <= 3, "{line}");
            assert!(col >= 1, "{col}");
        }
        other => panic!("expected a positioned parse error, got {other:?}"),
    }
}
