//! Programmatic construction of TyTra-IR modules.
//!
//! The builder is what the front-end lowering (`tytra-transform`) and the
//! kernel library (`tytra-kernels`) use; it produces the same [`IrModule`]
//! the `.tirl` parser does.
//!
//! ```
//! use tytra_ir::{ModuleBuilder, Opcode, ParKind, ScalarType, MemForm};
//!
//! let mut b = ModuleBuilder::new("double");
//! let t = ScalarType::UInt(32);
//! b.global_input("x", t, 1024);
//! b.global_output("y", t, 1024);
//! {
//!     let f = b.function("f0", ParKind::Pipe);
//!     f.input("x", t);
//!     f.output("y", t);
//!     let two = f.imm(2);
//!     let x = f.arg("x");
//!     let d = f.instr(Opcode::Mul, t, vec![x, two]);
//!     f.write_out("y", d);
//! }
//! b.main_calls("f0");
//! b.ndrange(&[1024]).nki(1).form(MemForm::B);
//! let module = b.finish().expect("valid module");
//! assert_eq!(module.functions.len(), 2);
//! ```

use crate::diag::SrcLoc;
use crate::error::Result;
use crate::function::{Call, IrFunction, OffsetDecl, ParKind, Param, Stmt};
use crate::instr::{Dest, Instruction, Opcode, Operand};
use crate::module::{IrModule, MemForm};
use crate::stream::{AccessPattern, AddrSpace, MemObject, PortDecl, StreamDir, StreamObject};
use crate::types::ScalarType;
use crate::validate;

/// Builds one Compute-IR function. Obtained from
/// [`ModuleBuilder::function`].
pub struct FunctionBuilder {
    func: IrFunction,
    next_tmp: u32,
}

impl FunctionBuilder {
    fn new(name: &str, kind: ParKind) -> FunctionBuilder {
        FunctionBuilder { func: IrFunction::new(name, kind), next_tmp: 0 }
    }

    /// Declare an input streaming port.
    pub fn input(&mut self, name: impl Into<String>, ty: ScalarType) -> &mut Self {
        self.func.params.push(Param::input(name, ty));
        self
    }

    /// Declare an output streaming port.
    pub fn output(&mut self, name: impl Into<String>, ty: ScalarType) -> &mut Self {
        self.func.params.push(Param::output(name, ty));
        self
    }

    /// Reference a declared port by name.
    pub fn arg(&self, name: &str) -> Operand {
        debug_assert!(self.func.param(name).is_some(), "undeclared arg `{name}`");
        Operand::local(name)
    }

    /// Integer immediate operand.
    pub fn imm(&self, v: i64) -> Operand {
        Operand::Imm(v)
    }

    /// Floating-point immediate operand.
    pub fn imm_f(&self, v: f64) -> Operand {
        Operand::ImmF(v)
    }

    /// Declare an offset stream over `src` (a port or previous offset
    /// stream) and return an operand referencing it.
    pub fn offset(&mut self, src: &str, ty: ScalarType, offset: i64) -> Operand {
        let sign = if offset >= 0 { "p" } else { "n" };
        let dest = format!("{src}_{sign}{}", offset.unsigned_abs());
        self.func.body.push(Stmt::Offset(OffsetDecl {
            dest: dest.clone(),
            ty,
            src: src.to_string(),
            offset,
            span: SrcLoc::none(),
        }));
        Operand::Local(dest)
    }

    /// Append an SSA instruction with a fresh destination name; returns an
    /// operand referencing the result.
    pub fn instr(&mut self, op: Opcode, ty: ScalarType, operands: Vec<Operand>) -> Operand {
        self.next_tmp += 1;
        let dest = format!("t{}", self.next_tmp);
        self.func.body.push(Stmt::Instr(Instruction::new(
            Dest::Local(dest.clone()),
            op,
            ty,
            operands,
        )));
        Operand::Local(dest)
    }

    /// Append an SSA instruction with an explicit destination name.
    pub fn instr_named(
        &mut self,
        dest: impl Into<String>,
        op: Opcode,
        ty: ScalarType,
        operands: Vec<Operand>,
    ) -> Operand {
        let dest = dest.into();
        self.func.body.push(Stmt::Instr(Instruction::new(
            Dest::Local(dest.clone()),
            op,
            ty,
            operands,
        )));
        Operand::Local(dest)
    }

    /// Append a reduction into the global accumulator `acc`:
    /// `ty @acc = op ty value, @acc`.
    pub fn reduce(&mut self, acc: &str, op: Opcode, ty: ScalarType, value: Operand) {
        self.func.body.push(Stmt::Instr(Instruction::new(
            Dest::Global(acc.to_string()),
            op,
            ty,
            vec![value, Operand::global(acc)],
        )));
    }

    /// Route a computed value to an output port. In the streaming datapath
    /// this is a wire, realised as a 1-input `or` with zero so that the
    /// value appears as a named SSA assignment to the port.
    pub fn write_out(&mut self, port: &str, value: Operand) {
        let ty = self.func.param(port).map(|p| p.ty).expect("write_out: undeclared output port");
        self.func.body.push(Stmt::Instr(Instruction::new(
            Dest::Local(format!("{port}__out")),
            Opcode::Or,
            ty,
            vec![value, Operand::Imm(0)],
        )));
    }

    /// Append a call to a child function.
    pub fn call(&mut self, callee: &str, args: Vec<Operand>, kind: ParKind) -> &mut Self {
        self.func.body.push(Stmt::Call(Call {
            callee: callee.to_string(),
            args,
            kind,
            span: SrcLoc::none(),
        }));
        self
    }
}

/// Builds a full [`IrModule`].
pub struct ModuleBuilder {
    module: IrModule,
    pending: Vec<IrFunction>,
    pending_fb: Option<FunctionBuilder>,
}

impl ModuleBuilder {
    /// Start a new module.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder { module: IrModule::new(name), pending: Vec::new(), pending_fb: None }
    }

    /// Declare a global-memory input array of `len` elements plus its
    /// contiguous read stream and the port binding `main.<name>`.
    pub fn global_input(&mut self, name: &str, ty: ScalarType, len: u64) -> &mut Self {
        self.mem_stream_port(name, ty, len, StreamDir::Read, AccessPattern::Contiguous)
    }

    /// Declare a global-memory output array plus its contiguous write
    /// stream and port binding.
    pub fn global_output(&mut self, name: &str, ty: ScalarType, len: u64) -> &mut Self {
        self.mem_stream_port(name, ty, len, StreamDir::Write, AccessPattern::Contiguous)
    }

    /// Declare a global-memory array with an explicit direction and access
    /// pattern (e.g. strided).
    pub fn global_array(
        &mut self,
        name: &str,
        ty: ScalarType,
        len: u64,
        dir: StreamDir,
        pattern: AccessPattern,
    ) -> &mut Self {
        self.mem_stream_port(name, ty, len, dir, pattern)
    }

    /// Declare an on-chip (local-memory) array with a stream and port —
    /// used by Form-C designs.
    pub fn local_array(
        &mut self,
        name: &str,
        ty: ScalarType,
        len: u64,
        dir: StreamDir,
    ) -> &mut Self {
        let mem = format!("mem_{name}");
        self.module.mems.push(MemObject {
            name: mem.clone(),
            space: AddrSpace::Local,
            elem_ty: ty,
            len,
            span: SrcLoc::none(),
        });
        self.push_stream_port(name, ty, dir, AccessPattern::Contiguous, &mem);
        self
    }

    fn mem_stream_port(
        &mut self,
        name: &str,
        ty: ScalarType,
        len: u64,
        dir: StreamDir,
        pattern: AccessPattern,
    ) -> &mut Self {
        let mem = format!("mem_{name}");
        self.module.mems.push(MemObject {
            name: mem.clone(),
            space: AddrSpace::Global,
            elem_ty: ty,
            len,
            span: SrcLoc::none(),
        });
        self.push_stream_port(name, ty, dir, pattern, &mem);
        self
    }

    fn push_stream_port(
        &mut self,
        name: &str,
        ty: ScalarType,
        dir: StreamDir,
        pattern: AccessPattern,
        mem: &str,
    ) {
        let stream = format!("strobj_{name}");
        self.module.streams.push(StreamObject {
            name: stream.clone(),
            mem: mem.to_string(),
            dir,
            pattern,
            span: SrcLoc::none(),
        });
        self.module.ports.push(PortDecl {
            name: format!("main.{name}"),
            space: AddrSpace::Other(12),
            ty,
            dir,
            pattern,
            base_offset: 0,
            stream,
            span: SrcLoc::none(),
        });
    }

    /// Open a new function; the returned builder is committed when the
    /// next function is opened or the module is finished.
    pub fn function(&mut self, name: &str, kind: ParKind) -> &mut FunctionBuilder {
        self.commit_functions();
        self.pending_fb = Some(FunctionBuilder::new(name, kind));
        self.pending_fb.as_mut().expect("just set")
    }

    /// Add a `main` that calls `callee` once, forwarding every declared
    /// port as an argument, with the callee's kind.
    pub fn main_calls(&mut self, callee: &str) -> &mut Self {
        self.commit_functions();
        let target = self.pending.iter().find(|f| f.name == callee);
        let kind = target.map(|f| f.kind).unwrap_or(ParKind::Pipe);
        // Forward the port set when it matches the callee's signature
        // (single-lane designs); dispatchers with internally-wired lanes
        // (`par` tops) take no arguments.
        let args: Vec<Operand> = match target {
            Some(f) if f.params.len() == self.module.ports.len() => {
                self.module.ports.iter().map(|p| Operand::local(p.arg_name())).collect()
            }
            _ => Vec::new(),
        };
        let mut main = IrFunction::new("main", ParKind::Seq);
        main.body.push(Stmt::Call(Call {
            callee: callee.to_string(),
            args,
            kind,
            span: SrcLoc::none(),
        }));
        self.pending.push(main);
        self
    }

    /// Set the NDRange.
    pub fn ndrange(&mut self, dims: &[u64]) -> &mut Self {
        self.module.meta.ndrange = dims.to_vec();
        self
    }

    /// Set `NKI`.
    pub fn nki(&mut self, nki: u64) -> &mut Self {
        self.module.meta.nki = nki;
        self
    }

    /// Set the memory-execution form.
    pub fn form(&mut self, form: MemForm) -> &mut Self {
        self.module.meta.form = form;
        self
    }

    /// Set the degree of vectorization per lane (`DV`).
    pub fn vect(&mut self, dv: u32) -> &mut Self {
        self.module.meta.vect = dv;
        self
    }

    /// Set an explicit clock constraint in MHz.
    pub fn freq_mhz(&mut self, f: f64) -> &mut Self {
        self.module.meta.freq_mhz = Some(f);
        self
    }

    fn commit_functions(&mut self) {
        if let Some(fb) = self.pending_fb.take() {
            self.pending.push(fb.func);
        }
    }

    /// Validate and return the finished module.
    pub fn finish(mut self) -> Result<IrModule> {
        self.commit_functions();
        self.module.functions.append(&mut self.pending);
        validate::validate(&self.module)?;
        Ok(self.module)
    }

    /// Return the module without validating (for deliberately-invalid test
    /// inputs).
    pub fn finish_unchecked(mut self) -> IrModule {
        self.commit_functions();
        self.module.functions.append(&mut self.pending);
        self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_module() {
        let t = ScalarType::UInt(32);
        let mut b = ModuleBuilder::new("m");
        b.global_input("x", t, 16);
        b.global_output("y", t, 16);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", t);
            f.output("y", t);
            let x = f.arg("x");
            let two = f.imm(2);
            let d = f.instr(Opcode::Mul, t, vec![x, two]);
            f.write_out("y", d);
        }
        b.main_calls("f0");
        b.ndrange(&[16]).nki(1).form(MemForm::B);
        let m = b.finish().expect("valid");
        assert_eq!(m.functions.len(), 2);
        assert_eq!(m.kernel_lanes(), 1);
        assert_eq!(m.meta.global_size(), 16);
    }

    #[test]
    fn offset_names_encode_sign() {
        let t = ScalarType::UInt(18);
        let mut b = ModuleBuilder::new("m");
        b.global_input("p", t, 64);
        b.global_output("q", t, 64);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", t);
            f.output("q", t);
            let a = f.offset("p", t, 1);
            let c = f.offset("p", t, -8);
            let d = f.instr(Opcode::Add, t, vec![a, c]);
            f.write_out("q", d);
        }
        b.main_calls("f0");
        b.ndrange(&[64]);
        let m = b.finish().unwrap();
        let f0 = m.function("f0").unwrap();
        let names: Vec<&str> = f0.offsets().map(|o| o.dest.as_str()).collect();
        assert_eq!(names, vec!["p_p1", "p_n8"]);
        assert_eq!(f0.offset_window("p"), 9);
    }

    #[test]
    fn reduce_adds_global_accumulator() {
        let t = ScalarType::UInt(18);
        let mut b = ModuleBuilder::new("m");
        b.global_input("p", t, 8);
        b.global_output("q", t, 8);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", t);
            f.output("q", t);
            let p = f.arg("p");
            let e = f.instr(Opcode::Sub, t, vec![p.clone(), f.imm(1)]);
            f.reduce("errAcc", Opcode::Add, t, e.clone());
            f.write_out("q", e);
        }
        b.main_calls("f0");
        b.ndrange(&[8]);
        let m = b.finish().unwrap();
        let f0 = m.function("f0").unwrap();
        assert!(f0.instrs().any(|i| i.is_reduction()));
    }
}
