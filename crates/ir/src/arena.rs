//! Arena / struct-of-arrays representation of a module, for zero-alloc
//! variant costing.
//!
//! A DSE sweep costs thousands of design variants that share almost all
//! of their IR: the same lane body at every lane count, the same Manage-IR
//! at every vectorization degree. The tree representation ([`IrModule`])
//! pays pointer chasing, `String` comparisons and per-variant clones for
//! that sharing; [`ArenaModule`] flattens one lowered module into dense
//! columns once, precomputes every content hash and geometry scalar the
//! estimator's hot path reads, and then represents each variant as a
//! [`PatchedModule`] — a *copy-on-write delta* of exactly three cells
//! (module name, memory form, DV) over the shared base.
//!
//! Layout:
//!
//! * **Typed indices** — [`FnId`], [`StmtId`], [`InstrId`], [`MemId`],
//!   [`StreamId`], [`PortId`] are dense `u32` newtypes into the columns
//!   below; no pointers, no hashing to follow an edge.
//! * **Interned symbols** — every name is a 4-byte [`Symbol`] into one
//!   shared [`SymbolTable`] (contiguous byte storage, see
//!   [`crate::intern`]).
//! * **SoA columns per statement kind** — instructions, stream offsets
//!   and calls each get their own parallel columns; a function is a
//!   `(start, end)` range over the statement column, operands are ranges
//!   over a packed `(tag, bits)` pool. Source spans live in side tables,
//!   excluded from all fingerprints (span transparency, as in
//!   [`crate::fingerprint`]).
//! * **Precomputed digests & geometry** — per-function fingerprints, the
//!   Manage-IR streams fingerprint, the module's kernel-lane count, NGS,
//!   off-chip port counts/bytes, local-memory sizes, Noff, and a
//!   flattened configuration plan ([`ConfigPlan`]) with the lane
//!   subtree's schedule fingerprint. These are the only values the
//!   estimator's bound/estimate passes need per variant, so costing a
//!   [`PatchedModule`] is pure arithmetic over this struct — the tree is
//!   only rematerialized on a memo *miss*.
//!
//! **Bit-identity.** [`ArenaModule::fingerprint_patched`] reproduces
//! [`crate::fingerprint::fingerprint_module`] on the equivalent patched
//! tree byte-for-byte: it replays the exact same FNV-1a write sequence
//! from the columns (locked by unit tests here, the
//! `arena_equivalence` property suite and a fuzz oracle). The base tree
//! is retained behind [`ArenaModule::tree`] as the migration façade —
//! anything not yet rewritten against the columns keeps working on the
//! tree, and memo-miss paths materialize a patched clone on demand.

use crate::config_tree::{self, ConfigNode, ConfigTree};
use crate::diag::SrcLoc;
use crate::fingerprint::{
    self, fingerprint_function, fingerprint_module, fingerprint_streams, fingerprint_subtree,
    StableHasher,
};
use crate::function::{ParKind, PortDir, Stmt};
use crate::instr::{Dest, Opcode, Operand};
use crate::intern::{Symbol, SymbolTable};
use crate::module::{IrModule, MemForm};
use crate::stream::{AccessPattern, AddrSpace, StreamDir};
use crate::types::ScalarType;
use std::collections::HashMap;

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Column index this id addresses.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

dense_id!(
    /// Dense index of a function, in declaration order.
    FnId
);
dense_id!(
    /// Dense index into the flat statement column (all functions).
    StmtId
);
dense_id!(
    /// Dense index into the instruction columns.
    InstrId
);
dense_id!(
    /// Dense index of a memory object.
    MemId
);
dense_id!(
    /// Dense index of a stream object.
    StreamId
);
dense_id!(
    /// Dense index of a port declaration.
    PortId
);

/// Statement discriminant in the flat statement column. Values match the
/// fingerprint encoding tags of [`crate::fingerprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtKind {
    /// SSA instruction (tag 1).
    Instr = 1,
    /// Stream offset declaration (tag 2).
    Offset = 2,
    /// Call to a child function (tag 3).
    Call = 3,
}

/// One node of the flattened configuration plan, in preorder.
#[derive(Debug, Clone, Copy)]
pub struct PlanNode {
    /// The function realising this node.
    pub func: FnId,
    /// The node's parallelism kind.
    pub kind: ParKind,
    /// Instructions in the node's function (the tree's `n_instrs`).
    pub n_instrs: u64,
    /// Number of direct children (lane glue is priced per child).
    pub n_children: u32,
}

/// The configuration tree of the base module, flattened to a preorder
/// slice plus the precomputed scalars the schedule/bound passes read.
/// `None` on [`ArenaModule`] when configuration extraction fails (the
/// estimator then falls back to the tree path, reproducing the same
/// error).
#[derive(Debug, Clone)]
pub struct ConfigPlan {
    /// The extracted tree, kept for report assembly and memo-miss
    /// scheduling (patch-independent: variants share it).
    pub tree: ConfigTree,
    /// Preorder flattening of `tree.root`.
    pub nodes: Vec<PlanNode>,
    /// Start of the lane subtree inside `nodes` (first child of a `par`
    /// root, else the root itself).
    pub lane_start: usize,
    /// Length of the lane subtree's preorder slice.
    pub lane_len: usize,
    /// `fingerprint_subtree` of the lane subtree — the schedule memo key.
    pub lane_fp: u64,
    /// The bound pass's initiation interval (lane kind + instruction
    /// count; `seq` serializes, everything else accepts one item/cycle).
    pub lane_ii: f64,
    /// Lane replication factor for per-lane resource figures: the root's
    /// child count when the root is `par`, else 1.
    pub par_lanes: u64,
}

impl ConfigPlan {
    /// The preorder slice of the lane subtree.
    pub fn lane_nodes(&self) -> &[PlanNode] {
        &self.nodes[self.lane_start..self.lane_start + self.lane_len]
    }
}

/// A module flattened into arena columns with every hot-path scalar
/// precomputed. Built once per lowered base design; see the module docs.
#[derive(Debug, Clone)]
pub struct ArenaModule {
    /// The retained base tree (the thin façade for not-yet-migrated
    /// consumers and memo-miss materialization).
    tree: IrModule,
    symbols: SymbolTable,

    // ---- function columns ----
    fn_name: Vec<Symbol>,
    fn_kind: Vec<ParKind>,
    fn_params: Vec<(u32, u32)>,
    fn_stmts: Vec<(u32, u32)>,
    fn_fp: Vec<u64>,
    fn_span: Vec<SrcLoc>,
    fn_by_sym: HashMap<Symbol, FnId>,

    // ---- parameter columns ----
    param_name: Vec<Symbol>,
    param_ty: Vec<ScalarType>,
    param_dir: Vec<PortDir>,

    // ---- flat statement column ----
    stmt_kind: Vec<StmtKind>,
    stmt_index: Vec<u32>,
    stmt_span: Vec<SrcLoc>,

    // ---- instruction columns ----
    instr_dest_tag: Vec<u8>,
    instr_dest: Vec<Symbol>,
    instr_op: Vec<Opcode>,
    instr_ty: Vec<ScalarType>,
    instr_args: Vec<(u32, u32)>,

    // ---- offset columns ----
    off_dest: Vec<Symbol>,
    off_ty: Vec<ScalarType>,
    off_src: Vec<Symbol>,
    off_amount: Vec<i64>,

    // ---- call columns ----
    call_callee: Vec<Symbol>,
    call_callee_fn: Vec<Option<FnId>>,
    call_kind: Vec<ParKind>,
    call_args: Vec<(u32, u32)>,

    // ---- packed operand pool ----
    opnd_tag: Vec<u8>,
    opnd_bits: Vec<u64>,

    // ---- Manage-IR columns ----
    mem_name: Vec<Symbol>,
    mem_space: Vec<AddrSpace>,
    mem_ty: Vec<ScalarType>,
    mem_len: Vec<u64>,
    stream_name: Vec<Symbol>,
    stream_mem: Vec<Symbol>,
    stream_dir: Vec<StreamDir>,
    stream_pattern: Vec<AccessPattern>,
    port_name: Vec<Symbol>,
    port_ty: Vec<ScalarType>,
    port_offchip: Vec<bool>,

    // ---- precomputed digests ----
    base_fp: u64,
    streams_fp: u64,
    bw_key: u64,

    // ---- precomputed geometry ----
    ngs: u64,
    kernel_lanes: u64,
    offchip_ports: u64,
    offchip_port_bytes: u64,
    local_bytes: u64,
    local_mem_bits: Vec<u64>,
    noff: u64,
    noff_bytes: u64,

    config: Option<ConfigPlan>,
}

impl ArenaModule {
    /// Flatten a module. The module should already be validated (arenas
    /// are built at parse/validate time — e.g. once per lowered base in a
    /// DSE sweep); an unvalidated tree still builds, and the estimator's
    /// arena path revalidates the base before first use.
    pub fn build(tree: IrModule) -> ArenaModule {
        let mut symbols = SymbolTable::new();
        let n_fns = tree.functions.len();

        let mut a = ArenaModule {
            fn_name: Vec::with_capacity(n_fns),
            fn_kind: Vec::with_capacity(n_fns),
            fn_params: Vec::with_capacity(n_fns),
            fn_stmts: Vec::with_capacity(n_fns),
            fn_fp: Vec::with_capacity(n_fns),
            fn_span: Vec::with_capacity(n_fns),
            fn_by_sym: HashMap::new(),
            param_name: Vec::new(),
            param_ty: Vec::new(),
            param_dir: Vec::new(),
            stmt_kind: Vec::new(),
            stmt_index: Vec::new(),
            stmt_span: Vec::new(),
            instr_dest_tag: Vec::new(),
            instr_dest: Vec::new(),
            instr_op: Vec::new(),
            instr_ty: Vec::new(),
            instr_args: Vec::new(),
            off_dest: Vec::new(),
            off_ty: Vec::new(),
            off_src: Vec::new(),
            off_amount: Vec::new(),
            call_callee: Vec::new(),
            call_callee_fn: Vec::new(),
            call_kind: Vec::new(),
            call_args: Vec::new(),
            opnd_tag: Vec::new(),
            opnd_bits: Vec::new(),
            mem_name: Vec::new(),
            mem_space: Vec::new(),
            mem_ty: Vec::new(),
            mem_len: Vec::new(),
            stream_name: Vec::new(),
            stream_mem: Vec::new(),
            stream_dir: Vec::new(),
            stream_pattern: Vec::new(),
            port_name: Vec::new(),
            port_ty: Vec::new(),
            port_offchip: Vec::new(),
            base_fp: 0,
            streams_fp: 0,
            bw_key: 0,
            ngs: 0,
            kernel_lanes: 0,
            offchip_ports: 0,
            offchip_port_bytes: 0,
            local_bytes: 0,
            local_mem_bits: Vec::new(),
            noff: 0,
            noff_bytes: 0,
            config: None,
            symbols,
            tree,
        };
        symbols = std::mem::take(&mut a.symbols);

        // Compute-IR columns.
        for (idx, f) in a.tree.functions.iter().enumerate() {
            let name = symbols.intern(&f.name);
            a.fn_by_sym.entry(name).or_insert(FnId(idx as u32));
            a.fn_name.push(name);
            a.fn_kind.push(f.kind);
            a.fn_span.push(f.span);
            let p0 = a.param_name.len() as u32;
            for p in &f.params {
                a.param_name.push(symbols.intern(&p.name));
                a.param_ty.push(p.ty);
                a.param_dir.push(p.dir);
            }
            a.fn_params.push((p0, a.param_name.len() as u32));
            let s0 = a.stmt_kind.len() as u32;
            for s in &f.body {
                match s {
                    Stmt::Instr(i) => {
                        a.stmt_kind.push(StmtKind::Instr);
                        a.stmt_index.push(a.instr_op.len() as u32);
                        a.stmt_span.push(i.span);
                        let (tag, dest) = match &i.dest {
                            Dest::Local(n) => (1u8, symbols.intern(n)),
                            Dest::Global(n) => (2u8, symbols.intern(n)),
                        };
                        a.instr_dest_tag.push(tag);
                        a.instr_dest.push(dest);
                        a.instr_op.push(i.op);
                        a.instr_ty.push(i.ty);
                        let o0 = a.opnd_tag.len() as u32;
                        for o in &i.operands {
                            push_operand(&mut symbols, &mut a.opnd_tag, &mut a.opnd_bits, o);
                        }
                        a.instr_args.push((o0, a.opnd_tag.len() as u32));
                    }
                    Stmt::Offset(o) => {
                        a.stmt_kind.push(StmtKind::Offset);
                        a.stmt_index.push(a.off_dest.len() as u32);
                        a.stmt_span.push(o.span);
                        a.off_dest.push(symbols.intern(&o.dest));
                        a.off_ty.push(o.ty);
                        a.off_src.push(symbols.intern(&o.src));
                        a.off_amount.push(o.offset);
                    }
                    Stmt::Call(c) => {
                        a.stmt_kind.push(StmtKind::Call);
                        a.stmt_index.push(a.call_callee.len() as u32);
                        a.stmt_span.push(c.span);
                        a.call_callee.push(symbols.intern(&c.callee));
                        a.call_kind.push(c.kind);
                        let o0 = a.opnd_tag.len() as u32;
                        for arg in &c.args {
                            push_operand(&mut symbols, &mut a.opnd_tag, &mut a.opnd_bits, arg);
                        }
                        a.call_args.push((o0, a.opnd_tag.len() as u32));
                    }
                }
            }
            a.fn_stmts.push((s0, a.stmt_kind.len() as u32));
            a.fn_fp.push(fingerprint_function(f));
        }
        // Resolve call targets to dense ids (first declaration wins, as
        // in `IrModule::function`).
        a.call_callee_fn = a.call_callee.iter().map(|sym| a.fn_by_sym.get(sym).copied()).collect();

        // Manage-IR columns + geometry.
        for mem in &a.tree.mems {
            a.mem_name.push(symbols.intern(&mem.name));
            a.mem_space.push(mem.space);
            a.mem_ty.push(mem.elem_ty);
            a.mem_len.push(mem.len);
            if !mem.space.is_offchip() {
                a.local_bytes += mem.bytes();
                a.local_mem_bits.push(mem.bits());
            }
        }
        for s in &a.tree.streams {
            a.stream_name.push(symbols.intern(&s.name));
            a.stream_mem.push(symbols.intern(&s.mem));
            a.stream_dir.push(s.dir);
            a.stream_pattern.push(s.pattern);
        }
        for p in &a.tree.ports {
            a.port_name.push(symbols.intern(&p.name));
            a.port_ty.push(p.ty);
            let offchip = a
                .tree
                .stream(&p.stream)
                .and_then(|s| a.tree.mem(&s.mem))
                .map(|mem| mem.space.is_offchip())
                .unwrap_or(true);
            a.port_offchip.push(offchip);
            if offchip {
                a.offchip_ports += 1;
                a.offchip_port_bytes += u64::from(p.ty.bytes());
            }
        }

        a.ngs = a.tree.meta.global_size();
        a.kernel_lanes = a.tree.kernel_lanes();
        for f in a.tree.reachable_functions() {
            for o in f.offsets() {
                if o.offset > 0 {
                    let lookahead = o.offset as u64;
                    if lookahead > a.noff {
                        a.noff = lookahead;
                        a.noff_bytes = lookahead * u64::from(o.ty.bytes());
                    }
                }
            }
        }

        a.base_fp = fingerprint_module(&a.tree);
        a.streams_fp = fingerprint_streams(&a.tree);
        a.bw_key = {
            let mut h = StableHasher::new();
            h.write_u64(a.streams_fp);
            h.write_u64(a.kernel_lanes);
            h.finish()
        };

        a.symbols = symbols;
        a.config = config_tree::extract(&a.tree).ok().map(|t| build_plan(&a, t));
        a
    }

    // ---- façade & columns ----

    /// The retained base tree.
    pub fn tree(&self) -> &IrModule {
        &self.tree
    }

    /// The shared symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Resolve an interned symbol.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.symbols.resolve(sym)
    }

    /// Number of functions.
    pub fn fn_count(&self) -> usize {
        self.fn_name.len()
    }

    /// A function's interned name.
    pub fn fn_name(&self, f: FnId) -> Symbol {
        self.fn_name[f.index()]
    }

    /// A function's parallelism kind.
    pub fn fn_kind(&self, f: FnId) -> ParKind {
        self.fn_kind[f.index()]
    }

    /// A function's precomputed structural fingerprint — equal to
    /// [`fingerprint_function`] on the tree function.
    pub fn fn_fp(&self, f: FnId) -> u64 {
        self.fn_fp[f.index()]
    }

    /// Dense id of the function a name resolves to (first declaration
    /// wins, as in [`IrModule::function`]).
    pub fn fn_by_name(&self, name: &str) -> Option<FnId> {
        self.fn_by_sym.get(&self.symbols.lookup(name)?).copied()
    }

    /// Callee ids of every `call` statement in a function, in body
    /// order (`None` for unresolved callees).
    pub fn callees(&self, f: FnId) -> impl Iterator<Item = Option<FnId>> + '_ {
        let (s0, s1) = self.fn_stmts[f.index()];
        (s0 as usize..s1 as usize).filter_map(move |s| match self.stmt_kind[s] {
            StmtKind::Call => Some(self.call_callee_fn[self.stmt_index[s] as usize]),
            _ => None,
        })
    }

    /// The flattened configuration plan, when extraction succeeded.
    pub fn config(&self) -> Option<&ConfigPlan> {
        self.config.as_ref()
    }

    // ---- precomputed digests & geometry ----

    /// [`fingerprint_module`] of the base tree (identifies the arena for
    /// base-level memoization such as once-per-arena validation).
    pub fn base_fp(&self) -> u64 {
        self.base_fp
    }

    /// [`fingerprint_streams`] of the base tree (patch-independent).
    pub fn streams_fp(&self) -> u64 {
        self.streams_fp
    }

    /// The bandwidth memo key: `H(streams_fp, kernel_lanes)` — exactly
    /// the session's bandwidth-pass key.
    pub fn bw_key(&self) -> u64 {
        self.bw_key
    }

    /// `NGS`: NDRange product (≥ 1).
    pub fn ngs(&self) -> u64 {
        self.ngs
    }

    /// `NKI` of the base design (patch-independent).
    pub fn nki(&self) -> u64 {
        self.tree.meta.nki
    }

    /// [`IrModule::kernel_lanes`] of the base tree.
    pub fn kernel_lanes(&self) -> u64 {
        self.kernel_lanes
    }

    /// Off-chip port count (the `NWPT` numerator and `n_streams`).
    pub fn offchip_ports(&self) -> u64 {
        self.offchip_ports
    }

    /// Summed element widths of the off-chip ports, in bytes.
    pub fn offchip_port_bytes(&self) -> u64 {
        self.offchip_port_bytes
    }

    /// Total bytes across on-chip (`local`) memory objects.
    pub fn local_bytes(&self) -> u64 {
        self.local_bytes
    }

    /// Bit sizes of the on-chip memory objects, in declaration order
    /// (the module-level BRAM terms of the resource pass).
    pub fn local_mem_bits(&self) -> &[u64] {
        &self.local_mem_bits
    }

    /// `Noff`: largest forward stream-offset look-ahead, in elements.
    pub fn noff(&self) -> u64 {
        self.noff
    }

    /// `Noff` in bytes at the offset stream's element width.
    pub fn noff_bytes(&self) -> u64 {
        self.noff_bytes
    }

    // ---- copy-on-write variants ----

    /// A copy-on-write variant of this base: `name`, `form` and `vect`
    /// are patched, everything else is shared.
    pub fn patched<'a>(&'a self, name: &'a str, form: MemForm, vect: u32) -> PatchedModule<'a> {
        PatchedModule { arena: self, name, form, vect }
    }

    /// The identity patch: the base module itself as a [`PatchedModule`].
    pub fn identity(&self) -> PatchedModule<'_> {
        self.patched(&self.tree.name, self.tree.meta.form, self.tree.meta.vect)
    }

    /// [`fingerprint_module`] of the patched module, computed from the
    /// columns without materializing a tree. Byte-identical to hashing
    /// the patched tree.
    pub fn fingerprint_patched(&self, name: &str, form: MemForm, vect: u32) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(name);
        fingerprint::write_meta_parts(
            &mut h,
            &self.tree.meta.ndrange,
            self.tree.meta.nki,
            form,
            self.tree.meta.freq_mhz,
            vect,
        );
        h.write_u64(self.streams_fp);
        h.write_u64(self.fn_name.len() as u64);
        for i in 0..self.fn_name.len() {
            self.write_function_into(&mut h, FnId(i as u32));
        }
        h.finish()
    }

    /// Recompute one function's fingerprint from the columns (the
    /// precomputed [`fn_fp`][ArenaModule::fn_fp] is this value; exposed
    /// for the equivalence tests).
    pub fn fingerprint_function_arena(&self, f: FnId) -> u64 {
        let mut h = StableHasher::new();
        self.write_function_into(&mut h, f);
        h.finish()
    }

    /// Replay the exact `write_function` byte sequence of
    /// [`crate::fingerprint`] from the SoA columns.
    fn write_function_into(&self, h: &mut StableHasher, f: FnId) {
        let i = f.index();
        h.write_str(self.resolve(self.fn_name[i]));
        h.write_u8(self.fn_kind[i] as u8);
        let (p0, p1) = self.fn_params[i];
        h.write_u64(u64::from(p1 - p0));
        for p in p0 as usize..p1 as usize {
            h.write_str(self.resolve(self.param_name[p]));
            fingerprint::write_ty(h, self.param_ty[p]);
            h.write_u8(self.param_dir[p] as u8);
        }
        let (s0, s1) = self.fn_stmts[i];
        h.write_u64(u64::from(s1 - s0));
        for s in s0 as usize..s1 as usize {
            let k = self.stmt_index[s] as usize;
            match self.stmt_kind[s] {
                StmtKind::Instr => {
                    h.write_u8(1);
                    h.write_u8(self.instr_dest_tag[k]);
                    h.write_str(self.resolve(self.instr_dest[k]));
                    h.write_str(self.instr_op[k].mnemonic());
                    fingerprint::write_ty(h, self.instr_ty[k]);
                    let (a0, a1) = self.instr_args[k];
                    h.write_u64(u64::from(a1 - a0));
                    for a in a0 as usize..a1 as usize {
                        self.write_operand_into(h, a);
                    }
                }
                StmtKind::Offset => {
                    h.write_u8(2);
                    h.write_str(self.resolve(self.off_dest[k]));
                    fingerprint::write_ty(h, self.off_ty[k]);
                    h.write_str(self.resolve(self.off_src[k]));
                    h.write_i64(self.off_amount[k]);
                }
                StmtKind::Call => {
                    h.write_u8(3);
                    h.write_str(self.resolve(self.call_callee[k]));
                    h.write_u8(self.call_kind[k] as u8);
                    let (a0, a1) = self.call_args[k];
                    h.write_u64(u64::from(a1 - a0));
                    for a in a0 as usize..a1 as usize {
                        self.write_operand_into(h, a);
                    }
                }
            }
        }
    }

    fn write_operand_into(&self, h: &mut StableHasher, idx: usize) {
        let tag = self.opnd_tag[idx];
        let bits = self.opnd_bits[idx];
        h.write_u8(tag);
        match tag {
            // Local / Global: bits is a symbol index.
            1 | 2 => h.write_str(self.symbols.resolve(Symbol::from_raw(bits as u32))),
            // Imm: bits is the i64's two's complement.
            3 => h.write_u64(bits),
            // ImmF: bits is already `f64::to_bits`.
            _ => h.write_u64(bits),
        }
    }
}

fn push_operand(symbols: &mut SymbolTable, tags: &mut Vec<u8>, bits: &mut Vec<u64>, o: &Operand) {
    match o {
        Operand::Local(n) => {
            tags.push(1);
            bits.push(u64::from(symbols.intern(n).raw()));
        }
        Operand::Global(n) => {
            tags.push(2);
            bits.push(u64::from(symbols.intern(n).raw()));
        }
        Operand::Imm(v) => {
            tags.push(3);
            bits.push(*v as u64);
        }
        Operand::ImmF(v) => {
            tags.push(4);
            bits.push(v.to_bits());
        }
    }
}

fn build_plan(a: &ArenaModule, tree: ConfigTree) -> ConfigPlan {
    fn flatten(a: &ArenaModule, node: &ConfigNode, out: &mut Vec<PlanNode>) {
        // Plan construction only succeeds when every node's function
        // resolves; `config_tree::extract` already guaranteed that.
        let func = a.fn_by_name(&node.function).expect("config node function exists");
        out.push(PlanNode {
            func,
            kind: node.kind,
            n_instrs: node.n_instrs,
            n_children: node.children.len() as u32,
        });
        for c in &node.children {
            flatten(a, c, out);
        }
    }
    let mut nodes = Vec::new();
    flatten(a, &tree.root, &mut nodes);

    // Lane subtree: first child of a `par` root, else the root (the
    // `lane_subtree` rule of the schedule pass).
    let (lane, lane_start) = if tree.root.kind == ParKind::Par && !tree.root.children.is_empty() {
        (&tree.root.children[0], 1)
    } else {
        (&tree.root, 0)
    };
    let lane_len = {
        fn count(n: &ConfigNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        count(lane)
    };
    let lane_fp = fingerprint_subtree(&a.tree, lane);
    let lane_ii = match lane.kind {
        ParKind::Seq => lane.subtree_instrs().max(1) as f64,
        _ => 1.0,
    };
    let par_lanes =
        if tree.root.kind == ParKind::Par { tree.root.children.len() as u64 } else { 1 };
    ConfigPlan { nodes, lane_start, lane_len, lane_fp, lane_ii, par_lanes, tree }
}

/// A design variant as a copy-on-write delta over a shared
/// [`ArenaModule`]: exactly three patched cells (module name, memory
/// form, DV). Costing a `PatchedModule` through the session's
/// `estimate_design`/`bound_design` touches only the arena's precomputed
/// columns in the steady state; [`materialize`][PatchedModule::materialize]
/// produces the equivalent tree for memo-miss paths.
#[derive(Debug, Clone, Copy)]
pub struct PatchedModule<'a> {
    /// The shared base.
    pub arena: &'a ArenaModule,
    /// Patched module name.
    pub name: &'a str,
    /// Patched memory-execution form.
    pub form: MemForm,
    /// Patched degree of vectorization.
    pub vect: u32,
}

impl PatchedModule<'_> {
    /// [`fingerprint_module`] of this variant, allocation-free.
    pub fn fingerprint(&self) -> u64 {
        self.arena.fingerprint_patched(self.name, self.form, self.vect)
    }

    /// Clone the base tree and apply the patch — the module this variant
    /// stands for. Equal (field-for-field) to lowering the variant from
    /// scratch; only memo-miss paths pay this.
    pub fn materialize(&self) -> IrModule {
        let mut m = self.arena.tree.clone();
        m.name.clear();
        m.name.push_str(self.name);
        m.meta.form = self.form;
        m.meta.vect = self.vect;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::MemForm;
    use crate::types::ScalarType;
    use crate::Opcode;

    const T: ScalarType = ScalarType::UInt(18);
    const F: ScalarType = ScalarType::Float(32);

    fn stencil(lanes: usize, form: MemForm) -> IrModule {
        let n = 4096u64;
        let mut b = ModuleBuilder::new(format!("st_l{lanes}"));
        if lanes > 1 {
            for l in 0..lanes {
                b.global_input(&format!("p{l}"), T, n / lanes as u64);
                b.global_output(&format!("q{l}"), T, n / lanes as u64);
            }
        } else {
            b.global_input("p", T, n);
            b.global_output("q", T, n);
        }
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, 30);
            let c = f.offset("p", T, -30);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            let w = f.instr(Opcode::Mul, T, vec![s, f.imm(3)]);
            f.write_out("q", w);
        }
        if lanes > 1 {
            let f = b.function("f1", ParKind::Par);
            for _ in 0..lanes {
                f.call("f0", vec![], ParKind::Pipe);
            }
            b.main_calls("f1");
        } else {
            b.main_calls("f0");
        }
        b.ndrange(&[n]).nki(10).form(form);
        b.finish().expect("stencil is valid")
    }

    fn float_module() -> IrModule {
        let mut b = ModuleBuilder::new("flt");
        b.global_input("x", F, 256);
        b.global_output("y", F, 256);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("x", F);
            f.output("y", F);
            let x = f.arg("x");
            let v = f.instr(Opcode::Mul, F, vec![x, Operand::ImmF(2.5)]);
            f.write_out("y", v);
        }
        b.main_calls("f0");
        b.ndrange(&[256]);
        b.finish().expect("float module is valid")
    }

    #[test]
    fn identity_fingerprint_matches_tree() {
        for m in [stencil(1, MemForm::B), stencil(4, MemForm::A), float_module()] {
            let tree_fp = fingerprint_module(&m);
            let a = ArenaModule::build(m);
            assert_eq!(a.identity().fingerprint(), tree_fp);
        }
    }

    #[test]
    fn per_function_fingerprints_match_tree() {
        let m = stencil(4, MemForm::B);
        let fps: Vec<u64> = m.functions.iter().map(fingerprint_function).collect();
        let a = ArenaModule::build(m);
        for (i, fp) in fps.iter().enumerate() {
            let id = FnId(i as u32);
            assert_eq!(a.fn_fp(id), *fp);
            assert_eq!(a.fingerprint_function_arena(id), *fp);
        }
        assert_eq!(a.streams_fp(), fingerprint_streams(a.tree()));
    }

    #[test]
    fn patched_fingerprint_matches_materialized_tree() {
        let a = ArenaModule::build(stencil(4, MemForm::B));
        for (name, form, vect) in [
            ("st_l4", MemForm::B, 1u32),
            ("st_l4_v2", MemForm::A, 2),
            ("other", MemForm::C, 4),
            ("t", MemForm::Tiled { tiles: 8 }, 1),
            ("", MemForm::B, 1),
        ] {
            let d = a.patched(name, form, vect);
            assert_eq!(
                d.fingerprint(),
                fingerprint_module(&d.materialize()),
                "patch ({name:?}, {form:?}, {vect})"
            );
        }
    }

    #[test]
    fn materialize_patches_exactly_three_cells() {
        let a = ArenaModule::build(stencil(2, MemForm::B));
        let m = a.patched("renamed", MemForm::C, 8).materialize();
        assert_eq!(m.name, "renamed");
        assert_eq!(m.meta.form, MemForm::C);
        assert_eq!(m.meta.vect, 8);
        let mut back = m;
        back.name = a.tree().name.clone();
        back.meta.form = a.tree().meta.form;
        back.meta.vect = a.tree().meta.vect;
        assert_eq!(fingerprint_module(&back), a.base_fp());
    }

    #[test]
    fn plan_matches_config_tree() {
        for m in [stencil(1, MemForm::B), stencil(4, MemForm::B)] {
            let tree = config_tree::extract(&m).unwrap();
            let lanes = m.kernel_lanes();
            let a = ArenaModule::build(m);
            let plan = a.config().expect("plan extracts");
            assert_eq!(plan.tree.lanes, lanes);
            assert_eq!(plan.nodes.len(), {
                fn count(n: &ConfigNode) -> usize {
                    1 + n.children.iter().map(count).sum::<usize>()
                }
                count(&tree.root)
            });
            // Lane subtree fingerprint equals the schedule memo key the
            // tree path computes.
            let lane = if tree.root.kind == ParKind::Par {
                tree.root.children.first().unwrap_or(&tree.root)
            } else {
                &tree.root
            };
            assert_eq!(plan.lane_fp, fingerprint_subtree(a.tree(), lane));
            assert_eq!(plan.lane_nodes().len(), plan.lane_len);
            assert_eq!(plan.lane_nodes()[0].kind, lane.kind);
        }
    }

    #[test]
    fn geometry_scalars_match_tree_walks() {
        let m = stencil(4, MemForm::B);
        let lanes = m.kernel_lanes();
        let ngs = m.meta.global_size();
        let a = ArenaModule::build(m);
        assert_eq!(a.kernel_lanes(), lanes);
        assert_eq!(a.ngs(), ngs);
        assert_eq!(a.offchip_ports(), 8, "4 lanes x (in + out)");
        assert_eq!(a.offchip_port_bytes(), 8 * 3, "ui18 rounds to 3 bytes");
        assert_eq!(a.noff(), 30);
        assert_eq!(a.noff_bytes(), 90);
        assert_eq!(a.local_bytes(), 0);
        assert!(a.local_mem_bits().is_empty());
    }

    #[test]
    fn bw_key_matches_session_formula() {
        let a = ArenaModule::build(stencil(2, MemForm::B));
        let mut h = StableHasher::new();
        h.write_u64(fingerprint_streams(a.tree()));
        h.write_u64(a.tree().kernel_lanes());
        assert_eq!(a.bw_key(), h.finish());
    }

    #[test]
    fn callees_resolve_to_dense_ids() {
        let a = ArenaModule::build(stencil(4, MemForm::B));
        let f1 = a.fn_by_name("f1").unwrap();
        let f0 = a.fn_by_name("f0").unwrap();
        let callees: Vec<_> = a.callees(f1).collect();
        assert_eq!(callees, vec![Some(f0); 4]);
        let main = a.fn_by_name("main").unwrap();
        assert_eq!(a.callees(main).collect::<Vec<_>>(), vec![Some(f1)]);
        assert_eq!(a.fn_by_name("nope"), None);
    }
}
