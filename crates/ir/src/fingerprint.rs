//! Stable structural fingerprints of IR entities.
//!
//! The session-based estimator (`tytra-cost`) memoizes per-function and
//! per-stream sub-results across the thousands of design variants a DSE
//! sweep costs. Memo keys must be *content* hashes: two structurally
//! identical functions — even ones parsed from different source files —
//! must collide, and the hash must be identical across processes and
//! runs (so cached figures can be compared, logged and replayed).
//!
//! [`StableHasher`] is therefore a fixed-seed FNV-1a 64-bit hasher, not
//! `std`'s randomly seeded `DefaultHasher`. Source locations ([`SrcLoc`]
//! is equality-transparent) are deliberately excluded: moving a function
//! within a file must not invalidate its cache entries. Floating-point
//! fields hash via [`f64::to_bits`] so distinct bit patterns (and only
//! those) produce distinct fingerprints.

use crate::config_tree::ConfigNode;
use crate::function::{IrFunction, Stmt};
use crate::instr::{Dest, Operand};
use crate::module::{ExecMeta, IrModule, MemForm};
use crate::stream::AccessPattern;
use crate::types::ScalarType;

/// FNV-1a, 64-bit: a tiny, allocation-free, deterministic hasher. Not
/// cryptographic — collisions are tolerable (they only cost a spurious
/// memo hit on adversarial input) but astronomically unlikely for the
/// function counts a DSE sweep sees.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Absorb one byte.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorb a `u64` (little-endian byte order).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Absorb an `i64` via its two's-complement bits.
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorb an `f64` via its IEEE-754 bits (`-0.0 ≠ 0.0`, NaN payloads
    /// distinguish — exactly the identity the memo tables need).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.write_u8(b);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

pub(crate) fn write_ty(h: &mut StableHasher, ty: ScalarType) {
    match ty {
        ScalarType::UInt(w) => {
            h.write_u8(1);
            h.write_u64(u64::from(w));
        }
        ScalarType::Int(w) => {
            h.write_u8(2);
            h.write_u64(u64::from(w));
        }
        ScalarType::Float(w) => {
            h.write_u8(3);
            h.write_u64(u64::from(w));
        }
    }
}

fn write_operand(h: &mut StableHasher, o: &Operand) {
    match o {
        Operand::Local(n) => {
            h.write_u8(1);
            h.write_str(n);
        }
        Operand::Global(n) => {
            h.write_u8(2);
            h.write_str(n);
        }
        Operand::Imm(v) => {
            h.write_u8(3);
            h.write_i64(*v);
        }
        Operand::ImmF(v) => {
            h.write_u8(4);
            h.write_f64(*v);
        }
    }
}

pub(crate) fn write_pattern(h: &mut StableHasher, p: AccessPattern) {
    match p {
        AccessPattern::Contiguous => h.write_u8(1),
        AccessPattern::Strided { stride } => {
            h.write_u8(2);
            h.write_u64(stride);
        }
    }
}

pub(crate) fn write_form(h: &mut StableHasher, f: MemForm) {
    match f {
        MemForm::A => h.write_u8(1),
        MemForm::B => h.write_u8(2),
        MemForm::C => h.write_u8(3),
        MemForm::Tiled { tiles } => {
            h.write_u8(4);
            h.write_u64(u64::from(tiles));
        }
    }
}

fn write_function(h: &mut StableHasher, f: &IrFunction) {
    h.write_str(&f.name);
    h.write_u8(f.kind as u8);
    h.write_u64(f.params.len() as u64);
    for p in &f.params {
        h.write_str(&p.name);
        write_ty(h, p.ty);
        h.write_u8(p.dir as u8);
    }
    h.write_u64(f.body.len() as u64);
    for s in &f.body {
        match s {
            Stmt::Instr(i) => {
                h.write_u8(1);
                match &i.dest {
                    Dest::Local(n) => {
                        h.write_u8(1);
                        h.write_str(n);
                    }
                    Dest::Global(n) => {
                        h.write_u8(2);
                        h.write_str(n);
                    }
                }
                h.write_str(i.op.mnemonic());
                write_ty(h, i.ty);
                h.write_u64(i.operands.len() as u64);
                for o in &i.operands {
                    write_operand(h, o);
                }
            }
            Stmt::Offset(o) => {
                h.write_u8(2);
                h.write_str(&o.dest);
                write_ty(h, o.ty);
                h.write_str(&o.src);
                h.write_i64(o.offset);
            }
            Stmt::Call(c) => {
                h.write_u8(3);
                h.write_str(&c.callee);
                h.write_u8(c.kind as u8);
                h.write_u64(c.args.len() as u64);
                for a in &c.args {
                    write_operand(h, a);
                }
            }
        }
    }
}

/// Fingerprint of one Compute-IR function: name, kind, ports and body —
/// everything the per-function cost passes read. Spans are excluded.
pub fn fingerprint_function(f: &IrFunction) -> u64 {
    let mut h = StableHasher::new();
    write_function(&mut h, f);
    h.finish()
}

/// Fingerprint of a module's Manage-IR surface: memory objects, stream
/// objects and port declarations — everything the bandwidth pass and the
/// module-level resource terms read.
pub fn fingerprint_streams(m: &IrModule) -> u64 {
    let mut h = StableHasher::new();
    h.write_u64(m.mems.len() as u64);
    for mem in &m.mems {
        h.write_str(&mem.name);
        h.write_u8(mem.space.number());
        write_ty(&mut h, mem.elem_ty);
        h.write_u64(mem.len);
    }
    h.write_u64(m.streams.len() as u64);
    for s in &m.streams {
        h.write_str(&s.name);
        h.write_str(&s.mem);
        h.write_u8(s.dir as u8);
        write_pattern(&mut h, s.pattern);
    }
    h.write_u64(m.ports.len() as u64);
    for p in &m.ports {
        h.write_str(&p.name);
        h.write_u8(p.space.number());
        write_ty(&mut h, p.ty);
        h.write_u8(p.dir as u8);
        write_pattern(&mut h, p.pattern);
        h.write_i64(p.base_offset);
        h.write_str(&p.stream);
    }
    h.finish()
}

fn write_meta(h: &mut StableHasher, meta: &ExecMeta) {
    write_meta_parts(h, &meta.ndrange, meta.nki, meta.form, meta.freq_mhz, meta.vect);
}

/// Meta encoding with each field passed explicitly, so the arena's
/// copy-on-write fingerprint can hash a *patched* (form, vect) pair over
/// the base module's other fields without materializing an [`ExecMeta`].
/// Byte-compatible with [`write_meta`] by construction.
pub(crate) fn write_meta_parts(
    h: &mut StableHasher,
    ndrange: &[u64],
    nki: u64,
    form: MemForm,
    freq_mhz: Option<f64>,
    vect: u32,
) {
    h.write_u64(ndrange.len() as u64);
    for &d in ndrange {
        h.write_u64(d);
    }
    h.write_u64(nki);
    write_form(h, form);
    match freq_mhz {
        Some(f) => {
            h.write_u8(1);
            h.write_f64(f);
        }
        None => h.write_u8(0),
    }
    h.write_u64(u64::from(vect));
}

/// Fingerprint of a whole module: name, execution metadata, Manage-IR
/// and every function in declaration order. Two modules with equal
/// fingerprints produce identical cost reports.
pub fn fingerprint_module(m: &IrModule) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(&m.name);
    write_meta(&mut h, &m.meta);
    h.write_u64(fingerprint_streams(m));
    h.write_u64(m.functions.len() as u64);
    for f in &m.functions {
        write_function(&mut h, f);
    }
    h.finish()
}

/// Fingerprint of a configuration subtree: node kinds plus the
/// fingerprints of the functions realising each node, recursively. The
/// schedule pass memoizes per lane subtree under this key.
pub fn fingerprint_subtree(m: &IrModule, node: &ConfigNode) -> u64 {
    fn walk(h: &mut StableHasher, m: &IrModule, node: &ConfigNode) {
        h.write_u8(node.kind as u8);
        h.write_u64(node.n_instrs);
        match m.function(&node.function) {
            Some(f) => h.write_u64(fingerprint_function(f)),
            None => h.write_str(&node.function),
        }
        h.write_u64(node.children.len() as u64);
        for c in &node.children {
            walk(h, m, c);
        }
    }
    let mut h = StableHasher::new();
    walk(&mut h, m, node);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::diag::SrcLoc;
    use crate::function::ParKind;
    use crate::instr::Opcode;

    const T: ScalarType = ScalarType::UInt(18);

    fn sample_module(offset: i64) -> IrModule {
        let mut b = ModuleBuilder::new("fp");
        b.global_input("p", T, 4096);
        b.global_output("q", T, 4096);
        {
            let f = b.function("f0", ParKind::Pipe);
            f.input("p", T);
            f.output("q", T);
            let a = f.offset("p", T, offset);
            let c = f.offset("p", T, -offset);
            let s = f.instr(Opcode::Add, T, vec![a, c]);
            f.write_out("q", s);
        }
        b.main_calls("f0");
        b.ndrange(&[4096]);
        b.finish_unchecked()
    }

    #[test]
    fn deterministic_across_calls() {
        let m = sample_module(3);
        assert_eq!(fingerprint_module(&m), fingerprint_module(&m));
        assert_eq!(
            fingerprint_function(m.function("f0").unwrap()),
            fingerprint_function(m.function("f0").unwrap())
        );
    }

    #[test]
    fn equal_structure_equal_fingerprint() {
        assert_eq!(fingerprint_module(&sample_module(3)), fingerprint_module(&sample_module(3)));
    }

    #[test]
    fn structural_change_changes_fingerprint() {
        assert_ne!(fingerprint_module(&sample_module(3)), fingerprint_module(&sample_module(4)));
        assert_ne!(
            fingerprint_function(sample_module(3).function("f0").unwrap()),
            fingerprint_function(sample_module(4).function("f0").unwrap())
        );
    }

    #[test]
    fn spans_are_transparent() {
        let a = sample_module(3);
        let mut b = sample_module(3);
        for f in &mut b.functions {
            f.span = SrcLoc::at(99, 7);
            for s in &mut f.body {
                if let Stmt::Instr(i) = s {
                    i.span = SrcLoc::at(100, 1);
                }
            }
        }
        assert_eq!(fingerprint_module(&a), fingerprint_module(&b));
        assert_eq!(
            fingerprint_function(a.function("f0").unwrap()),
            fingerprint_function(b.function("f0").unwrap())
        );
    }

    #[test]
    fn streams_fingerprint_tracks_manage_ir_only() {
        let a = sample_module(3);
        let b = sample_module(4); // body differs, streams identical
        assert_eq!(fingerprint_streams(&a), fingerprint_streams(&b));
        let mut c = sample_module(3);
        c.mems[0].len = 8192;
        assert_ne!(fingerprint_streams(&a), fingerprint_streams(&c));
    }

    #[test]
    fn subtree_fingerprint_shared_across_meta_changes() {
        let a = sample_module(3);
        let mut b = sample_module(3);
        b.meta.nki = 777; // meta is not part of the subtree key
        let ta = crate::config_tree::extract(&a).unwrap();
        let tb = crate::config_tree::extract(&b).unwrap();
        assert_eq!(fingerprint_subtree(&a, &ta.root), fingerprint_subtree(&b, &tb.root));
        // But the module fingerprint (used for validation memo) differs.
        assert_ne!(fingerprint_module(&a), fingerprint_module(&b));
    }

    #[test]
    fn float_imm_hashed_by_bits() {
        let mut h1 = StableHasher::new();
        h1.write_f64(0.0);
        let mut h2 = StableHasher::new();
        h2.write_f64(-0.0);
        assert_ne!(h1.finish(), h2.finish());
    }
}
