//! Dataflow-graph extraction and ASAP scheduling of `pipe`/`comb`/`seq`
//! function bodies.
//!
//! The datapath of a kernel pipeline (paper Fig 13) is the def–use graph of
//! its SSA instructions. Scheduling it ASAP with per-operation latencies
//! yields the stage of each functional unit, the kernel pipeline depth
//! `KPD`, and the pass-through delay lines (the `∆` registers of Fig 13)
//! needed to keep peer operands aligned — all inputs the cost model and the
//! simulator share.
//!
//! Latencies are supplied through the [`LatencyModel`] trait so this crate
//! stays independent of any device description; `tytra-device` provides a
//! calibrated implementation and [`UnitLatency`] is a trivial one for tests.

use crate::function::{IrFunction, Stmt};
use crate::instr::{Instruction, Opcode};
use crate::types::ScalarType;
use std::collections::HashMap;

/// Supplies the pipeline latency (in cycles) of a functional unit.
pub trait LatencyModel {
    /// Latency of `op` at element type `ty`; must be ≥ 1 for pipelined
    /// units (a latency of 1 means the result registers at the end of the
    /// producing stage).
    fn latency(&self, op: Opcode, ty: ScalarType) -> u32;
}

/// Every operation takes one cycle — sufficient for structural tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitLatency;

impl LatencyModel for UnitLatency {
    fn latency(&self, _op: Opcode, _ty: ScalarType) -> u32 {
        1
    }
}

impl<F: Fn(Opcode, ScalarType) -> u32> LatencyModel for F {
    fn latency(&self, op: Opcode, ty: ScalarType) -> u32 {
        self(op, ty)
    }
}

/// A scheduled node of the dataflow graph (one SSA instruction).
#[derive(Debug, Clone, PartialEq)]
pub struct DfgNode {
    /// Index of the originating statement in the function body.
    pub stmt_index: usize,
    /// The instruction itself (cloned for self-containedness).
    pub instr: Instruction,
    /// Cycle at which the instruction's inputs are consumed (ASAP).
    pub start: u32,
    /// `start + latency`: cycle at which the result is available.
    pub finish: u32,
    /// Indices (into [`Dfg::nodes`]) of producer nodes feeding this one.
    pub preds: Vec<usize>,
}

/// The scheduled dataflow graph of one function body.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    /// Scheduled nodes, in original statement order.
    pub nodes: Vec<DfgNode>,
    /// Pipeline depth of the datapath: the maximum `finish` over all
    /// nodes (0 for an empty body). This is the paper's `KPD` for a
    /// single-stage pipe (coarse pipelines add their children's depths).
    pub depth: u32,
    /// Total pass-through delay-line register bits: for every value
    /// consumed later than it is produced, `width × (consume − produce)`
    /// bits of shift registers (the `∆` chains of Fig 13). Inputs consumed
    /// at stage s > 0 likewise need s stages of balancing delay.
    pub delay_line_bits: u64,
}

impl Dfg {
    /// Build and ASAP-schedule the dataflow graph of `f`'s instruction
    /// statements. Offset declarations are stage-0 sources; calls are
    /// ignored (coarse composition is handled a level up by the cost
    /// model).
    pub fn build(f: &IrFunction, lat: &dyn LatencyModel) -> Dfg {
        // Availability time of every named value: params and offset
        // streams are ready at cycle 0.
        let mut avail: HashMap<&str, u32> = HashMap::new();
        // Producer node index for delay-line and pred accounting.
        let mut producer: HashMap<&str, usize> = HashMap::new();
        let mut width_of: HashMap<&str, u16> = HashMap::new();
        for p in &f.params {
            avail.insert(p.name.as_str(), 0);
            width_of.insert(p.name.as_str(), p.ty.bits());
        }
        for s in &f.body {
            if let Stmt::Offset(o) = s {
                avail.insert(o.dest.as_str(), 0);
                width_of.insert(o.dest.as_str(), o.ty.bits());
            }
        }

        let mut nodes: Vec<DfgNode> = Vec::new();
        let mut depth = 0u32;
        let mut delay_bits = 0u64;

        for (si, s) in f.body.iter().enumerate() {
            let Stmt::Instr(i) = s else { continue };
            let mut start = 0u32;
            let mut preds = Vec::new();
            for o in &i.operands {
                if let Some(name) = o.name() {
                    if let Some(&t) = avail.get(name) {
                        start = start.max(t);
                    }
                    if let Some(&pi) = producer.get(name) {
                        preds.push(pi);
                    }
                }
            }
            let finish = start + lat.latency(i.op, i.ty).max(1);
            // Delay lines: every operand produced before `start` must be
            // carried forward (start − avail) stages at its own width.
            for o in &i.operands {
                if let Some(name) = o.name() {
                    let produced = avail.get(name).copied().unwrap_or(0);
                    let w = width_of.get(name).copied().unwrap_or(i.ty.bits());
                    delay_bits += u64::from(start - produced) * u64::from(w);
                }
            }
            let idx = nodes.len();
            match &i.dest {
                crate::instr::Dest::Local(n) => {
                    avail.insert(n.as_str(), finish);
                    producer.insert(n.as_str(), idx);
                    width_of.insert(n.as_str(), i.ty.bits());
                }
                crate::instr::Dest::Global(_) => {
                    // Reduction accumulators live outside the pipeline
                    // schedule (a feedback register at the drain stage).
                }
            }
            depth = depth.max(finish);
            nodes.push(DfgNode { stmt_index: si, instr: i.clone(), start, finish, preds });
        }
        Dfg { nodes, depth, delay_line_bits: delay_bits }
    }

    /// Nodes on the critical path (each consumes an operand that became
    /// available exactly at its start and finishes at the graph depth when
    /// followed transitively). Returns node indices, producer-first.
    pub fn critical_path(&self) -> Vec<usize> {
        let Some(last) = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.finish == self.depth)
            .map(|(i, _)| i)
            .next_back()
        else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        loop {
            let node = &self.nodes[cur];
            // A predecessor whose finish equals this node's start keeps
            // the chain tight.
            match node.preds.iter().copied().find(|&p| self.nodes[p].finish == node.start) {
                Some(p) => {
                    path.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Number of instructions scheduled in each stage-start cycle,
    /// indexed by cycle. Useful for ILP reporting.
    pub fn occupancy(&self) -> Vec<u32> {
        let mut occ = vec![0u32; self.depth as usize + 1];
        for n in &self.nodes {
            occ[n.start as usize] += 1;
        }
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{IrFunction, OffsetDecl, ParKind, Param};
    use crate::instr::{Dest, Operand};

    const T: ScalarType = ScalarType::UInt(18);

    fn ins(dest: &str, op: Opcode, operands: Vec<Operand>) -> Stmt {
        Stmt::Instr(Instruction::new(Dest::Local(dest.into()), op, T, operands))
    }

    /// d = (a*b) + c — a chain with one balancing delay on c.
    fn chain_fn() -> IrFunction {
        let mut f = IrFunction::new("f", ParKind::Pipe);
        f.params.push(Param::input("a", T));
        f.params.push(Param::input("b", T));
        f.params.push(Param::input("c", T));
        f.body.push(ins("m", Opcode::Mul, vec![Operand::local("a"), Operand::local("b")]));
        f.body.push(ins("d", Opcode::Add, vec![Operand::local("m"), Operand::local("c")]));
        f
    }

    #[test]
    fn unit_latency_chain_depth() {
        let dfg = Dfg::build(&chain_fn(), &UnitLatency);
        assert_eq!(dfg.depth, 2);
        assert_eq!(dfg.nodes[0].start, 0);
        assert_eq!(dfg.nodes[0].finish, 1);
        assert_eq!(dfg.nodes[1].start, 1);
        assert_eq!(dfg.nodes[1].finish, 2);
        // c (18 bits) waits one stage for the multiply.
        assert_eq!(dfg.delay_line_bits, 18);
    }

    #[test]
    fn latency_model_closure_is_used() {
        let lat = |op: Opcode, _ty: ScalarType| if op == Opcode::Mul { 3 } else { 1 };
        let dfg = Dfg::build(&chain_fn(), &lat);
        assert_eq!(dfg.depth, 4);
        assert_eq!(dfg.delay_line_bits, 3 * 18);
    }

    #[test]
    fn independent_ops_schedule_in_parallel() {
        let mut f = IrFunction::new("f", ParKind::Pipe);
        f.params.push(Param::input("a", T));
        f.params.push(Param::input("b", T));
        f.body.push(ins("x", Opcode::Add, vec![Operand::local("a"), Operand::Imm(1)]));
        f.body.push(ins("y", Opcode::Add, vec![Operand::local("b"), Operand::Imm(2)]));
        let dfg = Dfg::build(&f, &UnitLatency);
        assert_eq!(dfg.depth, 1);
        assert_eq!(dfg.occupancy(), vec![2, 0]);
        assert_eq!(dfg.delay_line_bits, 0);
    }

    #[test]
    fn offsets_are_stage_zero_sources() {
        let mut f = IrFunction::new("f", ParKind::Pipe);
        f.params.push(Param::input("p", T));
        f.body.push(Stmt::Offset(OffsetDecl {
            dest: "pp1".into(),
            ty: T,
            src: "p".into(),
            offset: 1,
            span: crate::diag::SrcLoc::none(),
        }));
        f.body.push(ins("s", Opcode::Add, vec![Operand::local("p"), Operand::local("pp1")]));
        let dfg = Dfg::build(&f, &UnitLatency);
        assert_eq!(dfg.nodes.len(), 1);
        assert_eq!(dfg.nodes[0].start, 0);
        assert_eq!(dfg.depth, 1);
    }

    #[test]
    fn critical_path_follows_tight_chain() {
        let dfg = Dfg::build(&chain_fn(), &UnitLatency);
        assert_eq!(dfg.critical_path(), vec![0, 1]);
    }

    #[test]
    fn empty_body_has_zero_depth() {
        let f = IrFunction::new("f", ParKind::Pipe);
        let dfg = Dfg::build(&f, &UnitLatency);
        assert_eq!(dfg.depth, 0);
        assert!(dfg.nodes.is_empty());
        assert!(dfg.critical_path().is_empty());
    }

    #[test]
    fn reduction_does_not_extend_local_schedule() {
        let mut f = IrFunction::new("f", ParKind::Pipe);
        f.params.push(Param::input("a", T));
        f.body.push(ins("x", Opcode::Add, vec![Operand::local("a"), Operand::Imm(1)]));
        f.body.push(Stmt::Instr(Instruction::new(
            Dest::Global("acc".into()),
            Opcode::Add,
            T,
            vec![Operand::local("x"), Operand::global("acc")],
        )));
        let dfg = Dfg::build(&f, &UnitLatency);
        // The accumulator instruction schedules after x is ready.
        assert_eq!(dfg.nodes[1].start, 1);
        assert_eq!(dfg.depth, 2);
    }
}
