//! Tokenizer for the `.tirl` textual IR.

use crate::error::{IrError, Result};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the first character.
    pub col: u32,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `%name` — local value / object reference.
    Percent(String),
    /// `@name` — global / function reference; may contain dots
    /// (`main.p`).
    At(String),
    /// Bare identifier or keyword (`define`, `pipe`, `add`, `ui18`, ...).
    Ident(String),
    /// Integer literal, including explicit `+`/`-` signs.
    Int(i64),
    /// Float literal (contains a `.` or exponent).
    Float(f64),
    /// Double-quoted string contents.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!`
    Bang,
}

impl TokenKind {
    /// Short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Percent(n) => format!("%{n}"),
            TokenKind::At(n) => format!("@{n}"),
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("float {v}"),
            TokenKind::Str(s) => format!("\"{s}\""),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Bang => "`!`".into(),
        }
    }
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

/// Tokenize a `.tirl` source. Comments run from `;` to end of line;
/// whitespace (including newlines) separates tokens.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! bump {
        ($c:expr) => {{
            if $c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
                bump!(c);
            }
            ';' => {
                // Comment to end of line.
                while let Some(&c2) = chars.peek() {
                    chars.next();
                    bump!(c2);
                    if c2 == '\n' {
                        break;
                    }
                }
            }
            '(' | ')' | '{' | '}' | ',' | '=' | '!' => {
                chars.next();
                bump!(c);
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    ',' => TokenKind::Comma,
                    '=' => TokenKind::Eq,
                    _ => TokenKind::Bang,
                };
                out.push(Token { kind, line: tl, col: tc });
            }
            '"' => {
                chars.next();
                bump!(c);
                let mut s = String::new();
                let mut closed = false;
                while let Some(&c2) = chars.peek() {
                    chars.next();
                    bump!(c2);
                    if c2 == '"' {
                        closed = true;
                        break;
                    }
                    if c2 == '\n' {
                        break;
                    }
                    s.push(c2);
                }
                if !closed {
                    return Err(IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: "unterminated string literal".into(),
                    });
                }
                out.push(Token { kind: TokenKind::Str(s), line: tl, col: tc });
            }
            '%' | '@' => {
                let sigil = c;
                chars.next();
                bump!(c);
                let mut name = String::new();
                while let Some(&c2) = chars.peek() {
                    if is_name_char(c2) {
                        name.push(c2);
                        chars.next();
                        bump!(c2);
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("`{sigil}` must be followed by a name"),
                    });
                }
                let kind =
                    if sigil == '%' { TokenKind::Percent(name) } else { TokenKind::At(name) };
                out.push(Token { kind, line: tl, col: tc });
            }
            '+' | '-' | '0'..='9' => {
                let mut text = String::new();
                let mut is_float = false;
                if c == '+' || c == '-' {
                    text.push(c);
                    chars.next();
                    bump!(c);
                    if !matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                        return Err(IrError::Lex {
                            line: tl,
                            col: tc,
                            msg: format!("`{c}` must begin a number"),
                        });
                    }
                }
                while let Some(&c2) = chars.peek() {
                    if c2.is_ascii_digit() {
                        text.push(c2);
                        chars.next();
                        bump!(c2);
                    } else if c2 == '.' && !is_float {
                        // Only a digit after the dot makes it a float
                        // (names cannot start mid-number).
                        is_float = true;
                        text.push(c2);
                        chars.next();
                        bump!(c2);
                    } else if (c2 == 'e' || c2 == 'E') && is_float {
                        text.push(c2);
                        chars.next();
                        bump!(c2);
                        if let Some(&c3) = chars.peek() {
                            if c3 == '+' || c3 == '-' {
                                text.push(c3);
                                chars.next();
                                bump!(c3);
                            }
                        }
                    } else {
                        break;
                    }
                }
                let kind = if is_float {
                    let v: f64 = text.parse().map_err(|_| IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("bad float literal `{text}`"),
                    })?;
                    TokenKind::Float(v)
                } else {
                    let v: i64 = text.parse().map_err(|_| IrError::Lex {
                        line: tl,
                        col: tc,
                        msg: format!("bad integer literal `{text}`"),
                    })?;
                    TokenKind::Int(v)
                };
                out.push(Token { kind, line: tl, col: tc });
            }
            c2 if c2.is_ascii_alphabetic() || c2 == '_' => {
                let mut name = String::new();
                while let Some(&c3) = chars.peek() {
                    if c3.is_ascii_alphanumeric() || c3 == '_' {
                        name.push(c3);
                        chars.next();
                        bump!(c3);
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: TokenKind::Ident(name), line: tl, col: tc });
            }
            other => {
                return Err(IrError::Lex {
                    line: tl,
                    col: tc,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_basic_instruction() {
        let k = kinds("ui18 %1 = mul ui18 %p, %cn2l");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("ui18".into()),
                TokenKind::Percent("1".into()),
                TokenKind::Eq,
                TokenKind::Ident("mul".into()),
                TokenKind::Ident("ui18".into()),
                TokenKind::Percent("p".into()),
                TokenKind::Comma,
                TokenKind::Percent("cn2l".into()),
            ]
        );
    }

    #[test]
    fn lex_offsets_and_signs() {
        let k = kinds("!offset, !+1 !-150");
        assert_eq!(
            k,
            vec![
                TokenKind::Bang,
                TokenKind::Ident("offset".into()),
                TokenKind::Comma,
                TokenKind::Bang,
                TokenKind::Int(1),
                TokenKind::Bang,
                TokenKind::Int(-150),
            ]
        );
    }

    #[test]
    fn lex_strings_and_dotted_names() {
        let k = kinds("@main.p = !\"istream\"");
        assert_eq!(
            k,
            vec![
                TokenKind::At("main.p".into()),
                TokenKind::Eq,
                TokenKind::Bang,
                TokenKind::Str("istream".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = lex("; a comment\n  add ; trailing\nmul").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[0].col, 3);
        assert_eq!(toks[1].line, 3);
        assert_eq!(toks[1].col, 1);
    }

    #[test]
    fn floats_with_exponents() {
        assert_eq!(kinds("!220.5"), vec![TokenKind::Bang, TokenKind::Float(220.5)]);
        assert_eq!(kinds("1.5e3"), vec![TokenKind::Float(1500.0)]);
        assert_eq!(kinds("2.0e-1"), vec![TokenKind::Float(0.2)]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(lex("!\"CONT"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn bare_sigil_is_error() {
        assert!(matches!(lex("% "), Err(IrError::Lex { .. })));
        assert!(matches!(lex("@,"), Err(IrError::Lex { .. })));
    }

    #[test]
    fn stray_character_is_error() {
        let e = lex("add $ mul").unwrap_err();
        match e {
            IrError::Lex { line, col, .. } => {
                assert_eq!((line, col), (1, 5));
            }
            other => panic!("expected lex error, got {other}"),
        }
    }

    #[test]
    fn sign_without_digit_is_error() {
        assert!(matches!(lex("+ x"), Err(IrError::Lex { .. })));
    }
}
